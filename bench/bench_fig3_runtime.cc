/**
 * @file
 * Figure 3 — performance overhead at runtime.
 *
 * Each app runs its scripted workload (17 s Twitter .. 5 min MP3)
 * right after unlock; pages it touches decrypt on demand. Reports the
 * runtime overhead percentage and MBytes decrypted during the script.
 *
 * Paper shape: overheads between 0.2% (MP3) and 4.3% (Contacts),
 * driven by how much data the script touches.
 */

#include <cstdio>

#include "apps/app_profile.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

int
main()
{
    setQuiet(true);
    bench::Session session("fig3_runtime");
    bench::banner("Figure 3: performance overhead at runtime",
                  "scripted runs with on-demand decryption "
                  "(Nexus 4 model, 10 trials)");

    std::printf("%-10s %14s %14s %12s\n", "App", "Script (s)",
                "Overhead (%)", "MB decrypted");
    for (const AppProfile &profile : AppProfile::paperApps()) {
        RunningStat overheadPct, megabytes;
        for (unsigned trial = 0; trial < bench::TRIALS; ++trial) {
            core::Device device(hw::PlatformConfig::nexus4(128 * MiB));
            SyntheticApp app(device.kernel(), profile);
            app.populate({});
            device.sentry().markSensitive(app.process());

            device.kernel().lockScreen();
            device.kernel().unlockScreen("0000");
            app.resume();
            device.sentry().resetStats();

            const double seconds = app.runScript();
            overheadPct.add(100.0 *
                            (seconds - profile.scriptSeconds) /
                            profile.scriptSeconds);
            megabytes.add(
                static_cast<double>(
                    device.sentry().stats().bytesDecryptedOnDemand) /
                (1024.0 * 1024.0));
        }
        std::printf("%-10s %14.1f %10.2f%%    %9.1f MB\n",
                    profile.name.c_str(), profile.scriptSeconds,
                    overheadPct.mean(), megabytes.mean());
        session.metric("sim_overhead_pct_" + profile.name,
                       overheadPct.mean());
        session.metric("sim_decrypted_mb_" + profile.name,
                       megabytes.mean());
    }
    std::printf("\nPaper: Contacts 4.3%%, Maps 1.2%%, Twitter 1.3%%, "
                "MP3 0.2%% — small while apps run.\n");
    return 0;
}
