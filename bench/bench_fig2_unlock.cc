/**
 * @file
 * Figure 2 — performance overhead upon device unlock.
 *
 * For each app (Contacts, Maps, Twitter, MP3) on the Nexus-4 model:
 * lock the device (encrypting the app), unlock, then resume the app —
 * which demand-decrypts exactly its resume working set. Reports seconds
 * of resume latency and MBytes decrypted.
 *
 * Boot-once: each app's device is booted, populated, and locked once,
 * then checkpointed; every trial forks the copy-on-write snapshot
 * instead of re-running the expensive populate/lock warm-up. Unlock
 * trials are fully deterministic — the bench asserts every trial is
 * bit-identical to the first and aborts on divergence, so three forked
 * trials pin the same values ten cold boots did.
 *
 * Paper shape: 200 ms (Contacts) .. ~1.5 s (Maps, ~38 MB); latency
 * roughly proportional to MB decrypted.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "apps/app_profile.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

namespace
{

/** Unlock trials are asserted bit-identical, so three suffice. */
constexpr unsigned FORK_TRIALS = 3;

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fig2_unlock");
    bench::banner("Figure 2: performance overhead upon device unlock",
                  "resume latency and MBytes decrypted per app "
                  "(Nexus 4 model, boot-once + forked trials)");

    std::printf("%-10s %18s %16s\n", "App", "Time (s)", "MB decrypted");
    for (const AppProfile &profile : AppProfile::paperApps()) {
        // Warm once: populate the app, mark it sensitive, and lock the
        // screen (the encrypt-on-lock pass). Every trial forks from
        // this point.
        bench::WarmDevice warm(
            hw::PlatformConfig::nexus4(128 * MiB), {},
            [&profile](core::Device &device) {
                SyntheticApp app(device.kernel(), profile);
                app.populate({});
                device.sentry().markSensitive(app.process());
                device.kernel().lockScreen();
                device.sentry().resetStats();
            });

        RunningStat seconds, megabytes;
        double firstSeconds = 0.0, firstMb = 0.0;
        for (unsigned trial = 0; trial < FORK_TRIALS; ++trial) {
            core::Device &device = warm.fork();
            SyntheticApp app(device.kernel(),
                             *device.kernel().processes().front());

            // Unlock + resume: eager DMA-region decryption happens in
            // the unlock hook, the rest on demand as the app resumes.
            SimStopwatch watch(device.soc().clock());
            device.kernel().unlockScreen("0000");
            app.resume();
            const double trialSeconds = watch.elapsedSeconds();
            const double trialMb =
                static_cast<double>(
                    device.sentry().stats().bytesDecryptedOnDemand +
                    device.sentry().stats().bytesDecryptedEager) /
                (1024.0 * 1024.0);
            if (trial == 0) {
                firstSeconds = trialSeconds;
                firstMb = trialMb;
            } else if (trialSeconds != firstSeconds ||
                       trialMb != firstMb) {
                std::fprintf(stderr,
                             "fig2: %s trial %u diverged from trial 0 "
                             "(%.17g s vs %.17g s) — forked trials "
                             "must be bit-identical\n",
                             profile.name.c_str(), trial, trialSeconds,
                             firstSeconds);
                return 1;
            }
            seconds.add(trialSeconds);
            megabytes.add(trialMb);
        }
        std::printf("%-10s %10.3f ± %-5.3f %12.1f MB\n",
                    profile.name.c_str(), seconds.mean(),
                    seconds.stddev(), megabytes.mean());
        session.metric("sim_resume_seconds_" + profile.name,
                       seconds.mean());
        session.metric("sim_decrypted_mb_" + profile.name,
                       megabytes.mean());
    }
    std::printf("\nPaper: Contacts ~0.2 s ... Maps ~1.5 s / ~38 MB; "
                "overhead proportional to data decrypted.\n");
    return 0;
}
