/**
 * @file
 * Figure 2 — performance overhead upon device unlock.
 *
 * For each app (Contacts, Maps, Twitter, MP3) on the Nexus-4 model:
 * lock the device (encrypting the app), unlock, then resume the app —
 * which demand-decrypts exactly its resume working set. Reports seconds
 * of resume latency and MBytes decrypted, averaged over 10 trials.
 *
 * Paper shape: 200 ms (Contacts) .. ~1.5 s (Maps, ~38 MB); latency
 * roughly proportional to MB decrypted.
 */

#include <cstdio>
#include <memory>

#include "apps/app_profile.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

int
main()
{
    setQuiet(true);
    bench::Session session("fig2_unlock");
    bench::banner("Figure 2: performance overhead upon device unlock",
                  "resume latency and MBytes decrypted per app "
                  "(Nexus 4 model, 10 trials)");

    std::printf("%-10s %18s %16s\n", "App", "Time (s)", "MB decrypted");
    for (const AppProfile &profile : AppProfile::paperApps()) {
        RunningStat seconds, megabytes;
        for (unsigned trial = 0; trial < bench::TRIALS; ++trial) {
            core::Device device(hw::PlatformConfig::nexus4(128 * MiB));
            SyntheticApp app(device.kernel(), profile);
            app.populate({});
            device.sentry().markSensitive(app.process());

            device.kernel().lockScreen();
            device.sentry().resetStats();

            // Unlock + resume: eager DMA-region decryption happens in
            // the unlock hook, the rest on demand as the app resumes.
            SimStopwatch watch(device.soc().clock());
            device.kernel().unlockScreen("0000");
            app.resume();
            seconds.add(watch.elapsedSeconds());
            megabytes.add(static_cast<double>(
                              device.sentry()
                                  .stats()
                                  .bytesDecryptedOnDemand +
                              device.sentry().stats().bytesDecryptedEager) /
                          (1024.0 * 1024.0));
        }
        std::printf("%-10s %10.3f ± %-5.3f %12.1f MB\n",
                    profile.name.c_str(), seconds.mean(),
                    seconds.stddev(), megabytes.mean());
        session.metric("sim_resume_seconds_" + profile.name,
                       seconds.mean());
        session.metric("sim_decrypted_mb_" + profile.name,
                       megabytes.mean());
    }
    std::printf("\nPaper: Contacts ~0.2 s ... Maps ~1.5 s / ~38 MB; "
                "overhead proportional to data decrypted.\n");
    return 0;
}
