/**
 * @file
 * Figure 5 — energy overhead of encrypt-on-lock and decrypt-on-unlock,
 * plus the paper's daily-budget estimate.
 *
 * Paper shape: modest Joule counts per operation (Maps, the largest
 * app, costs ~2.3 J to lock); protecting one app at 150 lock/unlock
 * cycles a day consumes ~2% of the battery.
 */

#include <cstdio>

#include "apps/app_profile.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

int
main()
{
    setQuiet(true);
    bench::Session session("fig5_energy");
    bench::banner("Figure 5: energy overhead of lock and unlock",
                  "Joules per operation, one sensitive app "
                  "(Nexus 4 energy model)");

    std::printf("%-10s %20s %22s\n", "App", "Encrypt-on-Lock (J)",
                "Decrypt-on-Unlock (J)");
    double mapsCycleJoules = 0.0;
    double batteryJoules = 0.0;
    for (const AppProfile &profile : AppProfile::paperApps()) {
        RunningStat lockJ, unlockJ;
        for (unsigned trial = 0; trial < bench::TRIALS; ++trial) {
            core::Device device(hw::PlatformConfig::nexus4(128 * MiB));
            batteryJoules = device.soc().energy().batteryCapacity();
            SyntheticApp app(device.kernel(), profile);
            app.populate({});
            device.sentry().markSensitive(app.process());

            device.soc().energy().reset();
            device.kernel().lockScreen();
            const double lock = device.soc().energy().totalConsumed();
            lockJ.add(lock);

            device.soc().energy().reset();
            device.kernel().unlockScreen("0000");
            app.resume(); // conservative: decrypt the full resume set
            unlockJ.add(device.soc().energy().totalConsumed());

            if (profile.name == "Maps") {
                mapsCycleJoules =
                    lock + device.soc().energy().totalConsumed();
            }
        }
        std::printf("%-10s %14.2f ± %-5.2f %15.2f ± %-5.2f\n",
                    profile.name.c_str(), lockJ.mean(), lockJ.stddev(),
                    unlockJ.mean(), unlockJ.stddev());
        session.metric("sim_lock_joules_" + profile.name, lockJ.mean());
        session.metric("sim_unlock_joules_" + profile.name,
                       unlockJ.mean());
    }

    const double daily = 150.0 * mapsCycleJoules / batteryJoules;
    session.metric("sim_daily_battery_pct", 100.0 * daily);
    std::printf("\nDaily budget (150 unlocks/day, protecting Maps): "
                "%.1f%% of battery\n", 100.0 * daily);
    std::printf("Paper: up to ~2.3 J for Maps; ~2%% of battery per "
                "day at 150 unlocks.\n");
    return 0;
}
