/**
 * @file
 * Section 4.2 — validating the PL310's write-back behaviour, exactly
 * as the paper did on the Tegra 3 board:
 *
 *   1. choose an 8-byte random pattern that never appears in DRAM;
 *   2. write it at a physical address that maps into a locked way;
 *   3. use DMA reads (to the UART debug loopback port, the one device
 *      that lets software observe DMA data) to read the DRAM directly,
 *      bypassing the cache: the pattern must NOT appear;
 *   4. show that flushing the entire cache (the stock operation) DOES
 *      unlock the ways and leak the pattern — and that the masked
 *      flush (the OS change) does not.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/locked_way_manager.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;

int
main()
{
    setQuiet(true);
    bench::Session session("sec42_pl310_validation");
    bench::banner("Section 4.2: PL310 locked-way write-back validation",
                  "the UART-loopback DMA experiment");

    hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
    core::LockedWayManager ways(soc, DRAM_BASE + 16 * MiB);

    // Step 1: a pattern that does not appear in DRAM.
    Rng rng(0xdeba5e);
    std::vector<std::uint8_t> pattern(8);
    do {
        for (auto &b : pattern)
            b = static_cast<std::uint8_t>(rng.below(256));
    } while (containsBytes(soc.dramRaw(), pattern));
    std::printf("pattern: %s\n", toHex(pattern).c_str());

    // Step 2: write it into a locked way.
    const auto region = ways.lockWay();
    soc.memory().write(region->base, pattern.data(), pattern.size());
    std::printf("written at 0x%llx (locked way 0)\n",
                static_cast<unsigned long long>(region->base));

    // Step 3: DMA the backing DRAM to the UART debug port and read the
    // serial loopback.
    soc.dma().transfer(region->base, hw::UART_DEBUG_PORT, 64);
    const auto observed = soc.uart().drainLoopback();
    const bool leaked = containsBytes(observed, pattern);
    std::printf("DMA read of backing DRAM sees pattern?    %s\n",
                leaked ? "YES (hardware would be unusable!)" : "no");
    std::printf("pattern anywhere in DRAM?                 %s\n",
                containsBytes(soc.dramRaw(), pattern) ? "YES" : "no");

    // Step 4a: masked flush (the patched kernel): still safe.
    soc.l2().flushAllMasked();
    const bool afterMasked = containsBytes(soc.dramRaw(), pattern);
    std::printf("after masked flush, pattern in DRAM?      %s\n",
                afterMasked ? "YES" : "no");

    // Step 4b: the stock full flush: unlocks and leaks.
    soc.l2().rawFlushAll();
    const bool afterRaw = containsBytes(soc.dramRaw(), pattern);
    std::printf("after RAW full flush, pattern in DRAM?    %s  "
                "(the hazard the OS change prevents)\n",
                afterRaw ? "YES" : "no");
    session.metric("sim_dma_leaked", static_cast<std::uint64_t>(leaked));
    session.metric("sim_leak_after_masked_flush",
                   static_cast<std::uint64_t>(afterMasked));
    session.metric("sim_leak_after_raw_flush",
                   static_cast<std::uint64_t>(afterRaw));
    std::printf("lockdown register after raw flush:        0x%x "
                "(ways unlocked)\n",
                soc.l2().lockdownReg());

    std::printf("\nPaper findings reproduced: locked entries are never "
                "evicted or written back; a full\ncache flush unlocks "
                "all locked ways, so Sentry's kernel masks locked ways "
                "out of every flush.\n");
    return 0;
}
