/**
 * @file
 * Figure 12 — energy overhead of AES (micro-Joules per byte) on the
 * Nexus 4, for 4 KB requests: user-mode OpenSSL-style AES, the kernel
 * Crypto API path, and the hardware accelerator.
 *
 * Paper shape: the accelerator is the LEAST energy-efficient option
 * for 4 KB pages — its low throughput while down-scaled means the
 * request is powered for far longer per byte.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/bytes.hh"
#include "crypto/aes_on_soc.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::crypto;

namespace
{

constexpr std::size_t TOTAL = 8 * MiB;

double
measureMicroJoulesPerByte(hw::Soc &soc,
                          const std::function<void()> &work)
{
    soc.energy().reset();
    work();
    return soc.energy().totalConsumed() /
           static_cast<double>(TOTAL) * 1e6;
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fig12_aes_energy");
    bench::banner("Figure 12: AES energy overhead (uJ/byte)",
                  "Nexus 4, 4 KB requests");

    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    hw::Soc soc(hw::PlatformConfig::nexus4(64 * MiB));
    std::vector<std::uint8_t> page(4 * KiB, 0x31);

    SimAesEngine user(soc, DRAM_BASE + 16 * MiB, key,
                      StatePlacement::Dram, /*kernel_path=*/false);
    const double openssl = measureMicroJoulesPerByte(soc, [&] {
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            user.cbcEncrypt(Iv{}, page);
    });

    SimAesEngine kernel(soc, DRAM_BASE + 17 * MiB, key,
                        StatePlacement::Dram, /*kernel_path=*/true);
    const double cryptoApi = measureMicroJoulesPerByte(soc, [&] {
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            kernel.cbcEncrypt(Iv{}, page);
    });

    soc.accel()->setKey(key);
    soc.accel()->setDownscaled(true);
    const double hw = measureMicroJoulesPerByte(soc, [&] {
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            soc.accel()->cbcEncrypt(Iv{}, page);
    });

    std::printf("%-20s %10.4f uJ/byte\n", "OpenSSL", openssl);
    std::printf("%-20s %10.4f uJ/byte\n", "CryptoAPI", cryptoApi);
    std::printf("%-20s %10.4f uJ/byte\n", "HW Accelerated", hw);
    session.metric("sim_uj_per_byte_openssl", openssl);
    session.metric("sim_uj_per_byte_cryptoapi", cryptoApi);
    session.metric("sim_uj_per_byte_accel", hw);
    session.socStats(soc);

    std::printf("\nPaper shape: OpenSSL < CryptoAPI << HW-accelerated "
                "(~0.02 / ~0.03 / ~0.10 uJ/B):\nthe accelerator's low "
                "4 KB throughput makes it the most expensive per "
                "byte.\n");
    return 0;
}
