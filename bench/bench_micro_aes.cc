/**
 * @file
 * Host-side microbenchmarks (google-benchmark) for the crypto core:
 * raw AES block throughput per key size, T-table vs canonical path,
 * CBC/CTR modes, key expansion, SHA-256, and PBKDF2. These measure
 * real host performance of the from-scratch implementations (not
 * simulated time) and guard against performance regressions.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"
#include "crypto/kdf.hh"
#include "crypto/modes.hh"
#include "crypto/sha256.hh"

using namespace sentry;
using namespace sentry::crypto;

namespace
{

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.below(256));
    return out;
}

} // namespace

static void
BM_AesEncryptBlock(benchmark::State &state)
{
    const auto key = randomBytes(static_cast<std::size_t>(state.range(0)),
                                 1);
    Aes aes(key);
    std::uint8_t block[16] = {1, 2, 3};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock)->Arg(16)->Arg(24)->Arg(32);

static void
BM_AesDecryptBlock(benchmark::State &state)
{
    const auto key = randomBytes(16, 2);
    Aes aes(key);
    std::uint8_t block[16] = {4, 5, 6};
    for (auto _ : state) {
        aes.decryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesDecryptBlock);

static void
BM_AesEncryptBlockCanonical(benchmark::State &state)
{
    const auto key = randomBytes(16, 3);
    Aes aes(key);
    std::uint8_t block[16] = {7, 8, 9};
    for (auto _ : state) {
        aes.encryptBlockCanonical(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlockCanonical);

static void
BM_CbcEncrypt4k(benchmark::State &state)
{
    const auto key = randomBytes(16, 4);
    Aes aes(key);
    AesBlockCipher cipher(aes);
    auto data = randomBytes(4096, 5);
    for (auto _ : state) {
        cbcEncrypt(cipher, Iv{}, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CbcEncrypt4k);

static void
BM_CtrTransform4k(benchmark::State &state)
{
    const auto key = randomBytes(16, 6);
    Aes aes(key);
    AesBlockCipher cipher(aes);
    auto data = randomBytes(4096, 7);
    for (auto _ : state) {
        ctrTransform(cipher, Iv{}, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CtrTransform4k);

static void
BM_KeyExpansion(benchmark::State &state)
{
    const auto key = randomBytes(static_cast<std::size_t>(state.range(0)),
                                 8);
    for (auto _ : state) {
        AesKeySchedule schedule(key);
        benchmark::DoNotOptimize(schedule.encWords().data());
    }
}
BENCHMARK(BM_KeyExpansion)->Arg(16)->Arg(24)->Arg(32);

static void
BM_Sha256(benchmark::State &state)
{
    auto data = randomBytes(static_cast<std::size_t>(state.range(0)), 9);
    for (auto _ : state) {
        auto digest = Sha256::hash(data);
        benchmark::DoNotOptimize(digest.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

static void
BM_Pbkdf2(benchmark::State &state)
{
    const auto pw = randomBytes(12, 10);
    const auto salt = randomBytes(32, 11);
    for (auto _ : state) {
        auto dk = pbkdf2Sha256(pw, salt,
                               static_cast<unsigned>(state.range(0)), 16);
        benchmark::DoNotOptimize(dk.data());
    }
}
BENCHMARK(BM_Pbkdf2)->Arg(100)->Arg(1000);

/**
 * Explicit main (instead of BENCHMARK_MAIN) so the run also leaves a
 * BENCH_micro_aes.json record. google-benchmark numbers are host-side
 * only; one representative throughput metric is captured directly.
 */
int
main(int argc, char **argv)
{
    bench::Session session("micro_aes");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Host CBC throughput over 4 KiB pages, measured outside the
    // google-benchmark harness so it lands in the JSON record.
    {
        const auto key = randomBytes(16, 4);
        Aes aes(key);
        AesBlockCipher cipher(aes);
        auto data = randomBytes(4096, 5);
        constexpr int REPS = 2048;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < REPS; ++i)
            cbcEncrypt(cipher, Iv{}, data);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        session.metric("host_cbc4k_mbps",
                       REPS * 4096.0 / (1024.0 * 1024.0) / secs);
    }
    return 0;
}
