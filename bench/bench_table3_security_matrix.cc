/**
 * @file
 * Table 3 — security analysis of storage alternatives to DRAM.
 *
 * For each storage location (DRAM baseline, iRAM, locked L2 cache) and
 * each in-scope attack (cold boot, bus monitoring, DMA), actually run
 * the attack against a device holding a secret in that location and
 * report Safe/UNSAFE.
 *
 * Paper reference: iRAM and locked L2 are Safe against all three (iRAM
 * vs DMA requires TrustZone protection); DRAM is unsafe against all.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "attacks/bus_monitor_attack.hh"
#include "attacks/cold_boot.hh"
#include "attacks/dma_attack.hh"
#include "attacks/v2/cache_attack.hh"
#include "attacks/v2/rowhammer.hh"
#include "attacks/v2/tz_side_channel.hh"
#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/defense_backend.hh"
#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "fleet/fleet.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"
#include "os/phys_allocator.hh"

using namespace sentry;
using namespace sentry::attacks;

namespace
{

enum class Storage
{
    Dram,
    Iram,
    IramUnprotected,
    LockedL2,
};

const char *
storageName(Storage s)
{
    switch (s) {
      case Storage::Dram:
        return "DRAM (baseline)";
      case Storage::Iram:
        return "iRAM (TZ-protected)";
      case Storage::IramUnprotected:
        return "iRAM (no TrustZone)";
      case Storage::LockedL2:
        return "Locked L2 Cache";
    }
    return "?";
}

const auto SECRET = fromHex("ba5eba11f005ba11ba5eba11f005ba11");

/** Place SECRET into the requested storage on a fresh device. */
std::unique_ptr<hw::Soc>
makeVictim(Storage storage)
{
    auto soc =
        std::make_unique<hw::Soc>(hw::PlatformConfig::tegra3(32 * MiB));
    switch (storage) {
      case Storage::Dram:
        // Several copies, as real app data would have (heap, caches,
        // IPC buffers) — and so one decayed bit cannot flip the cell.
        for (unsigned i = 0; i < 16; ++i) {
            soc->memory().write(DRAM_BASE + 4 * MiB + i * PAGE_SIZE,
                                SECRET.data(), SECRET.size());
        }
        soc->l2().cleanAllMasked();
        break;
      case Storage::Iram: {
        soc->iram().write(128 * KiB, SECRET.data(), SECRET.size());
        hw::SecureWorldGuard guard(soc->trustzone());
        soc->trustzone().protectRegionFromDma(IRAM_BASE,
                                              soc->iram().size());
        break;
      }
      case Storage::IramUnprotected:
        soc->iram().write(128 * KiB, SECRET.data(), SECRET.size());
        break;
      case Storage::LockedL2: {
        core::LockedWayManager manager(*soc, DRAM_BASE + 16 * MiB);
        const auto region = manager.lockWay();
        soc->memory().write(region->base, SECRET.data(), SECRET.size());
        break;
      }
    }
    return soc;
}

bool
coldBootUnsafe(Storage storage)
{
    // The strongest cold-boot variant per target: reflash for on-SoC
    // storage (power loss => firmware zeroing), reflash for DRAM too
    // (97.5% survives).
    auto soc = makeVictim(storage);
    ColdBootAttack attack(ColdBootVariant::DeviceReflash);
    return attack.run(*soc, SECRET, storageName(storage))
        .secretRecovered;
}

bool
busMonitorUnsafe(Storage storage)
{
    auto soc = makeVictim(storage);
    BusMonitorAttack attack(*soc);
    attack.startCapture();

    // The victim actively uses the secret: read it 64 times through
    // the CPU path, with cache pressure so DRAM-resident secrets keep
    // crossing the bus.
    PhysAddr addr = 0;
    switch (storage) {
      case Storage::Dram:
        addr = DRAM_BASE + 4 * MiB;
        break;
      case Storage::Iram:
      case Storage::IramUnprotected:
        addr = IRAM_BASE + 128 * KiB;
        break;
      case Storage::LockedL2:
        addr = DRAM_BASE + 16 * MiB;
        break;
    }
    std::uint8_t buf[16];
    for (int i = 0; i < 64; ++i) {
        soc->memory().read(addr, buf, sizeof(buf));
        soc->l2().flushAllMasked(); // ambient cache pressure
    }
    return attack.analyzeForSecret(SECRET, storageName(storage))
        .secretRecovered;
}

bool
dmaUnsafe(Storage storage)
{
    auto soc = makeVictim(storage);
    DmaAttack attack;
    return attack.run(*soc, SECRET, storageName(storage))
        .secretRecovered;
}

// ---------------------------------------------------------------------
// Adversary suite v2 (DESIGN.md section 12): each row runs the attack
// twice — defense off, defense on — on fresh fixed-seed devices.
// ---------------------------------------------------------------------

constexpr std::uint64_t V2_SEED = 0x5eedf00d;

v2::CacheAttackConfig
v2AttackerConfig(hw::Soc &soc, PhysAddr victim)
{
    v2::CacheAttackConfig config;
    config.victimAddr = victim;
    const std::size_t span =
        (soc.l2().ways() + 1) * soc.l2().waySizeBytes();
    config.attackerBase = soc.dramEnd() - span;
    config.attackerSpan = span;
    return config;
}

v2::VictimFn
v2ReadVictim(PhysAddr victim)
{
    return [victim](hw::Soc &s) {
        std::uint8_t buf[4];
        s.memory().read(victim, buf, sizeof buf);
    };
}

/** Run one cache attack against a plain line or a locked-way line. */
v2::AttackOutcome
cacheAttackOutcome(bool prime_probe, bool locked)
{
    hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
    PhysAddr victim = DRAM_BASE + 4 * MiB + 64;
    std::unique_ptr<core::LockedWayManager> manager;
    if (locked) {
        manager = std::make_unique<core::LockedWayManager>(
            soc, DRAM_BASE + 16 * MiB);
        victim = manager->lockWay()->base + 64;
    }
    soc.memory().write(victim, SECRET.data(), SECRET.size());

    const v2::CacheAttackConfig config = v2AttackerConfig(soc, victim);
    if (prime_probe) {
        v2::PrimeProbeAttack attack(config, v2ReadVictim(victim), V2_SEED);
        return attack.run(soc);
    }
    v2::EvictReloadAttack attack(config, v2ReadVictim(victim), V2_SEED);
    return attack.run(soc);
}

/**
 * Hammer and count flips that reached the victim row. Defense off: the
 * attacker's aggressor row is bank-adjacent to the victim's. Defense
 * on: aggressors come from the CATT-partitioned allocator's attacker
 * region, a guard row away from every victim row.
 */
std::uint64_t
rowhammerVictimFlips(bool catt)
{
    hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
    const hw::DramGeometry &geom = soc.dram().geometry();

    v2::RowhammerConfig config;
    os::PhysAllocator alloc(DRAM_BASE, soc.dram().size());
    if (catt) {
        os::RowPartition plan;
        plan.rowBytes = geom.rowBytes;
        plan.banks = geom.banks;
        plan.victimRowLimit = geom.rowsPerBank(soc.dram().size()) * 3 / 4;
        plan.guardRows = 1;
        plan.geomBase = DRAM_BASE;
        alloc.partitionRows(plan);
        for (int i = 0; i < 4; ++i)
            config.aggressors.push_back(
                alloc.allocFrame(os::MemDomain::Attacker));
    } else {
        // The attacker managed to grab a frame one bank-adjacent row
        // away from the victim's secret.
        config.aggressors.push_back(DRAM_BASE + 64 * geom.rowBytes);
    }

    const PhysAddr victimOff =
        catt ? (alloc.allocFrame(os::MemDomain::Victim) - DRAM_BASE)
             : (64 + geom.banks) * geom.rowBytes;
    soc.dram().raw()[victimOff] = 0xff; // the bit the attacker wants

    v2::RowhammerAttack attack(config, V2_SEED);
    attack.run(soc);
    std::uint64_t victimFlips = 0;
    for (const hw::FlippedBit &flip : attack.flips()) {
        const bool hit =
            catt ? alloc.inVictimRows(
                       alignDown(DRAM_BASE + flip.offset, PAGE_SIZE))
                 : geom.globalRow(flip.offset) == geom.globalRow(victimOff);
        if (hit)
            ++victimFlips;
    }
    return victimFlips;
}

// ---------------------------------------------------------------------
// Defense backends (DESIGN.md section 13): the same attack schedule
// dispatched against Sentry, Amnesia, and MemShield through the fleet
// device runner. Each cell is one fixed-seed device: warm it up, lock
// it, mount exactly one attack verb, and score the verdict.
// ---------------------------------------------------------------------

/** One (backend, attack) cell of the defense comparison matrix. */
fleet::DeviceResult
defenseCell(core::DefenseKind kind, const char *verb)
{
    const std::string text = std::string("defense ") +
                             core::defenseKindName(kind) +
                             "\n"
                             "spawn wallet sensitive heap 128KiB\n"
                             "filebench 128KiB randread\n"
                             "lock\n"
                             "unlock 0000\n"
                             "touch wallet 64KiB\n"
                             "lock\n"
                             "sleep 100ms\n"
                             "attack " +
                             verb + "\n";
    const fleet::Scenario scenario = fleet::parseScenario(
        text, std::string("defense-") + core::defenseKindName(kind));
    fleet::FleetOptions options;
    options.devices = 1;
    options.seed = V2_SEED;
    return fleet::replayFleetDevice(scenario, options, 0);
}

v2::AttackOutcome
tzSideChannelOutcome(bool hardened)
{
    hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
    v2::TzSecretService service(soc, DRAM_BASE + 4 * MiB, hardened);
    v2::TzSideChannelConfig config;
    const std::size_t span =
        (soc.l2().ways() + 1) * soc.l2().waySizeBytes();
    config.attackerBase = soc.dramEnd() - span;
    config.attackerSpan = span;
    v2::TzSideChannelAttack attack(config, service, V2_SEED);
    return attack.run(soc);
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("table3_security_matrix");
    bench::banner("Table 3: security analysis of storage alternatives",
                  "each cell = outcome of actually running the attack");

    const char *storageSlugs[] = {"dram", "iram_tz", "iram_plain",
                                  "locked_l2"};
    const Storage storages[] = {Storage::Dram, Storage::Iram,
                                Storage::IramUnprotected,
                                Storage::LockedL2};
    std::printf("%-22s %-16s %-16s %-16s\n", "", "Cold Boot",
                "Bus Monitoring", "DMA Attacks");
    for (std::size_t s = 0; s < std::size(storages); ++s) {
        const Storage storage = storages[s];
        const bool cold = coldBootUnsafe(storage);
        const bool busmon = busMonitorUnsafe(storage);
        const bool dma = dmaUnsafe(storage);
        std::printf("%-22s %-16s %-16s %-16s\n", storageName(storage),
                    cold ? "UNSAFE" : "Safe", busmon ? "UNSAFE" : "Safe",
                    dma ? "UNSAFE" : "Safe");
        session.metric(std::string("sim_unsafe_coldboot_") +
                           storageSlugs[s],
                       static_cast<std::uint64_t>(cold));
        session.metric(std::string("sim_unsafe_busmon_") + storageSlugs[s],
                       static_cast<std::uint64_t>(busmon));
        session.metric(std::string("sim_unsafe_dma_") + storageSlugs[s],
                       static_cast<std::uint64_t>(dma));
    }
    std::printf("\nPaper: iRAM Safe/Safe/Safe (DMA safety requires ARM "
                "TrustZone);\n       locked L2 Safe/Safe/Safe; "
                "plain DRAM is the attack surface.\n");

    // Section 9 comparison: TRESOR/AESSE-style register-only key
    // protection. The key survives cold boot and DMA, but the lookup
    // tables stay in DRAM — and their access pattern leaks the key to
    // a bus monitor.
    std::printf("\nRelated work (section 9): TRESOR-style register-only "
                "AES key\n");
    {
        const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
        hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
        crypto::SimAesEngine tresor(
            soc, DRAM_BASE + 8 * MiB, key, crypto::StatePlacement::Dram,
            false, crypto::SecretResidency::RegistersOnly);

        soc.l2().cleanAllMasked();
        const bool keyInDram = containsBytes(soc.dramRaw(), key);

        BusMonitorAttack probe(soc);
        Rng rng(77);
        const auto sideChannel = probe.recoverAesKeyBits(tresor, 60, rng);

        std::printf("%-22s %-16s %-16s %-16s\n", "Key in registers",
                    keyInDram ? "UNSAFE" : "Safe",
                    sideChannel.recoveredBytes() >= 8 ? "UNSAFE" : "Safe",
                    keyInDram ? "UNSAFE" : "Safe");
        std::printf("  (bus monitor recovered the top 5 bits of %zu/16 "
                    "key bytes from table accesses)\n",
                    sideChannel.recoveredBytes());
        session.metric("sim_tresor_key_in_dram",
                       static_cast<std::uint64_t>(keyInDram));
        session.metric(
            "sim_tresor_recovered_bytes",
            static_cast<std::uint64_t>(sideChannel.recoveredBytes()));
    }

    // Adversary suite v2: the post-paper attacks (DESIGN.md section
    // 12), each run with the matching defense off and on.
    std::printf("\nAdversary suite v2: microarchitectural attacks\n");
    std::printf("%-22s %-16s %-16s\n", "", "Defense off", "Defense on");
    {
        const v2::AttackOutcome ppOpen =
            cacheAttackOutcome(/*prime_probe=*/true, /*locked=*/false);
        const v2::AttackOutcome ppLocked =
            cacheAttackOutcome(/*prime_probe=*/true, /*locked=*/true);
        std::printf("%-22s %-16s %-16s\n", "Prime+Probe (L2)",
                    ppOpen.secretRecovered ? "UNSAFE" : "Safe",
                    ppLocked.secretRecovered ? "UNSAFE" : "Safe");
        session.metric("sim_unsafe_prime_probe_open",
                       static_cast<std::uint64_t>(ppOpen.secretRecovered));
        session.metric(
            "sim_unsafe_prime_probe_locked",
            static_cast<std::uint64_t>(ppLocked.secretRecovered));
        session.metric("sim_v2_prime_probe_locked_writebacks",
                       ppLocked.counter("locked_writebacks"));

        const v2::AttackOutcome erOpen =
            cacheAttackOutcome(/*prime_probe=*/false, /*locked=*/false);
        const v2::AttackOutcome erLocked =
            cacheAttackOutcome(/*prime_probe=*/false, /*locked=*/true);
        std::printf("%-22s %-16s %-16s\n", "Evict+Reload (L2)",
                    erOpen.secretRecovered ? "UNSAFE" : "Safe",
                    erLocked.secretRecovered ? "UNSAFE" : "Safe");
        session.metric("sim_unsafe_evict_reload_open",
                       static_cast<std::uint64_t>(erOpen.secretRecovered));
        session.metric(
            "sim_unsafe_evict_reload_locked",
            static_cast<std::uint64_t>(erLocked.secretRecovered));

        const std::uint64_t hammerOpen =
            rowhammerVictimFlips(/*catt=*/false);
        const std::uint64_t hammerCatt =
            rowhammerVictimFlips(/*catt=*/true);
        std::printf("%-22s %-16s %-16s\n", "Rowhammer (DRAM)",
                    hammerOpen != 0 ? "UNSAFE" : "Safe",
                    hammerCatt != 0 ? "UNSAFE" : "Safe");
        session.metric("sim_unsafe_rowhammer_open",
                       static_cast<std::uint64_t>(hammerOpen != 0));
        session.metric("sim_unsafe_rowhammer_catt",
                       static_cast<std::uint64_t>(hammerCatt != 0));
        session.metric("sim_v2_rowhammer_victim_flips_open", hammerOpen);
        session.metric("sim_v2_rowhammer_victim_flips_catt", hammerCatt);

        const v2::AttackOutcome tzOpen =
            tzSideChannelOutcome(/*hardened=*/false);
        const v2::AttackOutcome tzHardened =
            tzSideChannelOutcome(/*hardened=*/true);
        std::printf("%-22s %-16s %-16s\n", "TZ mailbox channel",
                    tzOpen.secretRecovered ? "UNSAFE" : "Safe",
                    tzHardened.secretRecovered ? "UNSAFE" : "Safe");
        session.metric("sim_unsafe_tz_sidechannel_open",
                       static_cast<std::uint64_t>(tzOpen.secretRecovered));
        session.metric(
            "sim_unsafe_tz_sidechannel_hardened",
            static_cast<std::uint64_t>(tzHardened.secretRecovered));
        session.metric("sim_v2_tz_recovered_nibbles_open",
                       tzOpen.counter("recovered_nibbles"));
        session.metric("sim_v2_tz_recovered_nibbles_hardened",
                       tzHardened.counter("recovered_nibbles"));
    }
    std::printf("\nDefenses: locked L2 ways pin the monitored line "
                "(no eviction signal);\n          CATT row partition "
                "keeps aggressors a guard row away;\n          "
                "constant-touch mailboxes make SMC timing "
                "secret-independent.\n");

    // Defense backends: 3 designs x 7 attack verbs, identical fixed
    // attack schedule per verb (the schedule digest is derived from the
    // seed alone, so every backend faces the same adversary).
    std::printf("\nDefense backends: verdicts under identical attack "
                "schedules\n");
    const core::DefenseKind kinds[] = {core::DefenseKind::Sentry,
                                       core::DefenseKind::Amnesia,
                                       core::DefenseKind::MemShield};
    const char *verbs[] = {"cold_boot",    "bus_monitor", "dma",
                           "prime_probe",  "evict_reload", "rowhammer",
                           "tz_side_channel"};
    std::printf("%-22s %-16s %-16s %-16s\n", "", "Sentry", "Amnesia",
                "MemShield");
    std::uint64_t scheduleMismatches = 0;
    for (const char *verb : verbs) {
        std::printf("%-22s", verb);
        std::string sentrySchedule;
        for (const core::DefenseKind kind : kinds) {
            const fleet::DeviceResult cell = defenseCell(kind, verb);
            const std::uint64_t breaches =
                cell.defenseClaimBreaches + cell.defenseVulnerableHits;
            std::printf(" %-16s", breaches != 0 ? "BREACHED" : "Defended");
            session.metric(std::string("sim_defense_breached_") +
                               core::defenseKindName(kind) + "_" + verb,
                           static_cast<std::uint64_t>(breaches != 0));
            // The attack-side schedule must not depend on the defense:
            // any cross-backend divergence is a harness bug.
            if (kind == core::DefenseKind::Sentry)
                sentrySchedule = cell.scheduleDigest;
            else if (cell.scheduleDigest != sentrySchedule)
                ++scheduleMismatches;
        }
        std::printf("\n");
    }
    session.metric("sim_defense_schedule_mismatches", scheduleMismatches);

    // Per-backend simulated overhead over baseline Sentry, measured on
    // the shared warm-up workload (unlocked filebench + paging + one
    // lock epoch) with the non-destructive DMA attack appended.
    std::printf("\n%-22s %-10s %-10s %-14s %-14s\n", "Backend overhead",
                "rekeys", "evictions", "extra ms", "extra mJ");
    for (const core::DefenseKind kind : kinds) {
        const fleet::DeviceResult cell = defenseCell(kind, "dma");
        const std::string name = core::defenseKindName(kind);
        std::printf("%-22s %-10llu %-10llu %-14.3f %-14.3f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(cell.defenseRekeys),
                    static_cast<unsigned long long>(cell.defenseEvictions),
                    cell.defenseExtraSeconds * 1e3,
                    cell.defenseExtraJoules * 1e3);
        session.metric("sim_defense_" + name + "_rekeys",
                       cell.defenseRekeys);
        session.metric("sim_defense_" + name + "_evictions",
                       cell.defenseEvictions);
        session.metric("sim_defense_" + name + "_extra_seconds",
                       cell.defenseExtraSeconds);
        session.metric("sim_defense_" + name + "_extra_joules",
                       cell.defenseExtraJoules);
    }
    std::printf("\nClaims: Sentry defeats all seven; Amnesia only the "
                "power-loss attacks\n        (cold boot, DMA); MemShield "
                "everything but Rowhammer and the\n        TrustZone "
                "side channel. BREACHED cells outside a backend's\n"
                "        claim are expected: that is the design's "
                "documented exposure.\n");
    return 0;
}
