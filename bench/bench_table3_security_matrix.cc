/**
 * @file
 * Table 3 — security analysis of storage alternatives to DRAM.
 *
 * For each storage location (DRAM baseline, iRAM, locked L2 cache) and
 * each in-scope attack (cold boot, bus monitoring, DMA), actually run
 * the attack against a device holding a secret in that location and
 * report Safe/UNSAFE.
 *
 * Paper reference: iRAM and locked L2 are Safe against all three (iRAM
 * vs DMA requires TrustZone protection); DRAM is unsafe against all.
 */

#include <cstdio>
#include <memory>

#include "attacks/bus_monitor_attack.hh"
#include "attacks/cold_boot.hh"
#include "attacks/dma_attack.hh"
#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::attacks;

namespace
{

enum class Storage
{
    Dram,
    Iram,
    IramUnprotected,
    LockedL2,
};

const char *
storageName(Storage s)
{
    switch (s) {
      case Storage::Dram:
        return "DRAM (baseline)";
      case Storage::Iram:
        return "iRAM (TZ-protected)";
      case Storage::IramUnprotected:
        return "iRAM (no TrustZone)";
      case Storage::LockedL2:
        return "Locked L2 Cache";
    }
    return "?";
}

const auto SECRET = fromHex("ba5eba11f005ba11ba5eba11f005ba11");

/** Place SECRET into the requested storage on a fresh device. */
std::unique_ptr<hw::Soc>
makeVictim(Storage storage)
{
    auto soc =
        std::make_unique<hw::Soc>(hw::PlatformConfig::tegra3(32 * MiB));
    switch (storage) {
      case Storage::Dram:
        // Several copies, as real app data would have (heap, caches,
        // IPC buffers) — and so one decayed bit cannot flip the cell.
        for (unsigned i = 0; i < 16; ++i) {
            soc->memory().write(DRAM_BASE + 4 * MiB + i * PAGE_SIZE,
                                SECRET.data(), SECRET.size());
        }
        soc->l2().cleanAllMasked();
        break;
      case Storage::Iram: {
        soc->iram().write(128 * KiB, SECRET.data(), SECRET.size());
        hw::SecureWorldGuard guard(soc->trustzone());
        soc->trustzone().protectRegionFromDma(IRAM_BASE,
                                              soc->iram().size());
        break;
      }
      case Storage::IramUnprotected:
        soc->iram().write(128 * KiB, SECRET.data(), SECRET.size());
        break;
      case Storage::LockedL2: {
        core::LockedWayManager manager(*soc, DRAM_BASE + 16 * MiB);
        const auto region = manager.lockWay();
        soc->memory().write(region->base, SECRET.data(), SECRET.size());
        break;
      }
    }
    return soc;
}

bool
coldBootUnsafe(Storage storage)
{
    // The strongest cold-boot variant per target: reflash for on-SoC
    // storage (power loss => firmware zeroing), reflash for DRAM too
    // (97.5% survives).
    auto soc = makeVictim(storage);
    ColdBootAttack attack(ColdBootVariant::DeviceReflash);
    return attack.run(*soc, SECRET, storageName(storage))
        .secretRecovered;
}

bool
busMonitorUnsafe(Storage storage)
{
    auto soc = makeVictim(storage);
    BusMonitorAttack attack(*soc);
    attack.startCapture();

    // The victim actively uses the secret: read it 64 times through
    // the CPU path, with cache pressure so DRAM-resident secrets keep
    // crossing the bus.
    PhysAddr addr = 0;
    switch (storage) {
      case Storage::Dram:
        addr = DRAM_BASE + 4 * MiB;
        break;
      case Storage::Iram:
      case Storage::IramUnprotected:
        addr = IRAM_BASE + 128 * KiB;
        break;
      case Storage::LockedL2:
        addr = DRAM_BASE + 16 * MiB;
        break;
    }
    std::uint8_t buf[16];
    for (int i = 0; i < 64; ++i) {
        soc->memory().read(addr, buf, sizeof(buf));
        soc->l2().flushAllMasked(); // ambient cache pressure
    }
    return attack.analyzeForSecret(SECRET, storageName(storage))
        .secretRecovered;
}

bool
dmaUnsafe(Storage storage)
{
    auto soc = makeVictim(storage);
    DmaAttack attack;
    return attack.run(*soc, SECRET, storageName(storage))
        .secretRecovered;
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("table3_security_matrix");
    bench::banner("Table 3: security analysis of storage alternatives",
                  "each cell = outcome of actually running the attack");

    const char *storageSlugs[] = {"dram", "iram_tz", "iram_plain",
                                  "locked_l2"};
    const Storage storages[] = {Storage::Dram, Storage::Iram,
                                Storage::IramUnprotected,
                                Storage::LockedL2};
    std::printf("%-22s %-16s %-16s %-16s\n", "", "Cold Boot",
                "Bus Monitoring", "DMA Attacks");
    for (std::size_t s = 0; s < std::size(storages); ++s) {
        const Storage storage = storages[s];
        const bool cold = coldBootUnsafe(storage);
        const bool busmon = busMonitorUnsafe(storage);
        const bool dma = dmaUnsafe(storage);
        std::printf("%-22s %-16s %-16s %-16s\n", storageName(storage),
                    cold ? "UNSAFE" : "Safe", busmon ? "UNSAFE" : "Safe",
                    dma ? "UNSAFE" : "Safe");
        session.metric(std::string("sim_unsafe_coldboot_") +
                           storageSlugs[s],
                       static_cast<std::uint64_t>(cold));
        session.metric(std::string("sim_unsafe_busmon_") + storageSlugs[s],
                       static_cast<std::uint64_t>(busmon));
        session.metric(std::string("sim_unsafe_dma_") + storageSlugs[s],
                       static_cast<std::uint64_t>(dma));
    }
    std::printf("\nPaper: iRAM Safe/Safe/Safe (DMA safety requires ARM "
                "TrustZone);\n       locked L2 Safe/Safe/Safe; "
                "plain DRAM is the attack surface.\n");

    // Section 9 comparison: TRESOR/AESSE-style register-only key
    // protection. The key survives cold boot and DMA, but the lookup
    // tables stay in DRAM — and their access pattern leaks the key to
    // a bus monitor.
    std::printf("\nRelated work (section 9): TRESOR-style register-only "
                "AES key\n");
    {
        const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
        hw::Soc soc(hw::PlatformConfig::tegra3(32 * MiB));
        crypto::SimAesEngine tresor(
            soc, DRAM_BASE + 8 * MiB, key, crypto::StatePlacement::Dram,
            false, crypto::SecretResidency::RegistersOnly);

        soc.l2().cleanAllMasked();
        const bool keyInDram = containsBytes(soc.dramRaw(), key);

        BusMonitorAttack probe(soc);
        Rng rng(77);
        const auto sideChannel = probe.recoverAesKeyBits(tresor, 60, rng);

        std::printf("%-22s %-16s %-16s %-16s\n", "Key in registers",
                    keyInDram ? "UNSAFE" : "Safe",
                    sideChannel.recoveredBytes() >= 8 ? "UNSAFE" : "Safe",
                    keyInDram ? "UNSAFE" : "Safe");
        std::printf("  (bus monitor recovered the top 5 bits of %zu/16 "
                    "key bytes from table accesses)\n",
                    sideChannel.recoveredBytes());
        session.metric("sim_tresor_key_in_dram",
                       static_cast<std::uint64_t>(keyInDram));
        session.metric(
            "sim_tresor_recovered_bytes",
            static_cast<std::uint64_t>(sideChannel.recoveredBytes()));
    }
    return 0;
}
