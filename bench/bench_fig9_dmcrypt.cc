/**
 * @file
 * Figure 9 — dm-crypt throughput for random reads and random
 * read/writes, buffered and with direct I/O, under three ciphers:
 * none, generic (kernel) AES, and Sentry's AES On SoC.
 *
 * Setup mirrors the paper: an in-memory partition protected by
 * dm-crypt, filebench-style workloads, Tegra 3 with cache locking.
 *
 * Paper shape: the buffer cache masks most of the crypto cost for
 * cached reads; randrw loses ~2x even cached; with direct I/O the
 * crypto cost is fully exposed; Sentry ~= generic AES (<1% apart).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "bench_util.hh"
#include "crypto/aes_on_soc.hh"
#include "crypto/sha256.hh"
#include "common/bytes.hh"
#include "core/device.hh"
#include "os/buffer_cache.hh"
#include "os/dm_crypt.hh"
#include "os/filebench.hh"

using namespace sentry;
using namespace sentry::os;

namespace
{

enum class CryptoMode
{
    None,
    GenericAes,
    Sentry,
};

const char *
modeName(CryptoMode mode)
{
    switch (mode) {
      case CryptoMode::None:
        return "No Crypto";
      case CryptoMode::GenericAes:
        return "Generic AES";
      case CryptoMode::Sentry:
        return "Sentry";
    }
    return "?";
}

/** The paper's partition is 450 MB; 32 MB keeps trials fast with the
 *  same cached/uncached contrast. */
constexpr std::size_t PARTITION = 32 * MiB;
constexpr std::size_t IO_BYTES = 16 * MiB;

/**
 * Boot-once, fork-per-trial: the five trial seeds each get one warmed
 * template (booted + crypto providers registered), cached for the
 * whole run; every runOne() call forks its seed's snapshot instead of
 * re-booting. Simulated MB/s stay bit-identical to the cold-boot
 * numbers in bench/reference/ — only host wall-clock changes.
 */
core::Device &
forkedDevice(std::uint64_t seed)
{
    static std::map<std::uint64_t, std::unique_ptr<bench::WarmDevice>>
        cache;
    auto &slot = cache[seed];
    if (!slot) {
        core::SentryOptions options;
        options.placement = core::AesPlacement::LockedL2;
        hw::PlatformConfig config = hw::PlatformConfig::tegra3(64 * MiB);
        config.seed = seed;
        slot = std::make_unique<bench::WarmDevice>(
            config, options, [](core::Device &device) {
                device.sentry().registerCryptoProviders();
            });
    }
    return slot->fork();
}

double
runOne(CryptoMode mode, FilebenchWorkload workload, bool direct_io,
       std::uint64_t seed)
{
    core::Device &device = forkedDevice(seed);

    RamBlockDevice disk(device.soc().clock(), PARTITION);
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");

    std::unique_ptr<DmCrypt> dm;
    BlockLayer *layer = &disk;
    if (mode != CryptoMode::None) {
        auto &api = device.kernel().cryptoApi();
        std::unique_ptr<crypto::SimAesEngine> cipher;
        if (mode == CryptoMode::GenericAes) {
            for (const auto &impl : api.implementations()) {
                if (impl.implName == "aes-generic")
                    cipher = impl.factory(key);
            }
        } else {
            cipher = api.allocCipher("aes", key); // best = AES On SoC
        }
        // kcryptd spreads write-side encryption across all four cores.
        dm = std::make_unique<DmCrypt>(disk, std::move(cipher),
                                       device.soc().config().cores);
        layer = dm.get();
    }

    BufferCache cache(device.soc().clock(), *layer, PARTITION / 2);
    Filebench bench(device.soc().clock(), cache, PARTITION / 2);
    Rng rng(seed);
    return bench.run(workload, IO_BYTES, direct_io, rng).mbPerSec();
}

const char *
modeSlug(CryptoMode mode)
{
    switch (mode) {
      case CryptoMode::None:
        return "none";
      case CryptoMode::GenericAes:
        return "generic";
      case CryptoMode::Sentry:
        return "sentry";
    }
    return "?";
}

void
runWorkload(bench::Session &session, FilebenchWorkload workload,
            bool direct_io)
{
    std::printf("%-22s", direct_io
                             ? (std::string(filebenchWorkloadName(
                                    workload)) +
                                " (direct I/O)")
                                   .c_str()
                             : filebenchWorkloadName(workload));
    RunningStat sentryStat;
    for (CryptoMode mode : {CryptoMode::None, CryptoMode::GenericAes,
                            CryptoMode::Sentry}) {
        RunningStat stat;
        for (unsigned trial = 0; trial < 5; ++trial)
            stat.add(runOne(mode, workload, direct_io, 40 + trial));
        std::printf(" %11.1f", stat.mean());
        // Simulated MB/s: deterministic given the seeds above.
        session.metric(std::string("sim_mbps_") +
                           filebenchWorkloadName(workload) +
                           (direct_io ? "_direct_" : "_buffered_") +
                           modeSlug(mode),
                       stat.mean());
        if (mode == CryptoMode::Sentry)
            sentryStat = stat;
    }
    std::printf("   (sentry p50/p95 %.1f/%.1f)\n", sentryStat.p50(),
                sentryStat.p95());
}

/**
 * Measure the batched kcryptd write path against the per-block loop:
 * identical on-disk bytes and simulated charges, host wall-clock free
 * to improve with the worker pool.
 */
void
kcryptdBatchSection(bench::Session &session)
{
    constexpr std::size_t BATCH_BLOCKS = 1024; // 4 MiB
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    std::vector<std::uint8_t> data(BATCH_BLOCKS * BLOCK_SIZE);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 29 + 3);

    struct Pass
    {
        double hostSeconds = 0.0;
        Cycles cycles = 0;
        std::vector<std::uint8_t> disk;
    };
    const auto runPass = [&](unsigned workers, bool batched) {
        hw::PlatformConfig config = hw::PlatformConfig::tegra3(64 * MiB);
        core::Device device(config);
        device.sentry().registerCryptoProviders();
        RamBlockDevice disk(device.soc().clock(), PARTITION);
        DmCrypt dm(disk, device.kernel().cryptoApi().allocCipher("aes", key),
                   workers);
        Pass pass;
        const Cycles c0 = device.soc().clock().now();
        const auto t0 = std::chrono::steady_clock::now();
        if (batched) {
            dm.writeBlocks(0, data);
        } else {
            for (std::size_t b = 0; b < BATCH_BLOCKS; ++b)
                dm.writeBlock(b, std::span(data).subspan(b * BLOCK_SIZE,
                                                         BLOCK_SIZE));
        }
        pass.hostSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        pass.cycles = device.soc().clock().now() - c0;
        const auto raw = disk.raw();
        pass.disk.assign(raw.begin(), raw.begin() + data.size());
        return pass;
    };

    const Pass batch = runPass(4, /*batched=*/true);
    const Pass loop = runPass(4, /*batched=*/false);
    const bool identical =
        batch.cycles == loop.cycles && batch.disk == loop.disk;

    std::printf("\nkcryptd batch write (%zu MiB, 4 workers):\n",
                data.size() / MiB);
    std::printf("  batched writeBlocks: %8.3f s host\n", batch.hostSeconds);
    std::printf("  per-block loop     : %8.3f s host\n", loop.hostSeconds);
    std::printf("  host speedup       : %8.2fx  (simulation %s)\n",
                loop.hostSeconds / batch.hostSeconds,
                identical ? "bit-identical" : "DIVERGED");
    if (!identical) {
        std::fprintf(stderr, "fig9: kcryptd batch path diverged from the "
                             "per-block reference\n");
        std::exit(1);
    }

    session.metric("host_kcryptd_batch_seconds", batch.hostSeconds);
    session.metric("host_kcryptd_loop_seconds", loop.hostSeconds);
    session.metric("sim_kcryptd_batch_cycles",
                   static_cast<std::uint64_t>(batch.cycles));
    session.metric("sim_kcryptd_ciphertext_sha256",
                   toHex(crypto::Sha256::hash(batch.disk)));
}

/**
 * Time the host-side CBC bulk path under the active kernel tier and
 * again pinned to the portable tier. Ciphertexts must match byte for
 * byte — the tiers are interchangeable by construction (registry KATs)
 * and this cross-check would catch a divergence on the actual workload.
 */
void
hostTierSection(bench::Session &session)
{
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const crypto::AesKeySchedule schedule(key);
    const crypto::HostAesCbc cbc(schedule);
    crypto::Iv iv{};
    for (std::size_t i = 0; i < iv.size(); ++i)
        iv[i] = static_cast<std::uint8_t>(i * 17 + 1);

    std::vector<std::uint8_t> seedBuf(8 * MiB);
    for (std::size_t i = 0; i < seedBuf.size(); ++i)
        seedBuf[i] = static_cast<std::uint8_t>(i * 37 + 11);

    const auto timeTier = [&](std::vector<std::uint8_t> &buf) {
        buf = seedBuf;
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned pass = 0; pass < 8; ++pass) {
            cbc.cbcEncrypt(iv, buf);
            cbc.cbcDecrypt(iv, buf);
        }
        cbc.cbcEncrypt(iv, buf);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::vector<std::uint8_t> activeOut;
    std::vector<std::uint8_t> portableOut;
    const double active = timeTier(activeOut);
    host::setActiveKernelsForTest(&host::portableKernels());
    const double portable = timeTier(portableOut);
    host::setActiveKernelsForTest(nullptr);
    if (activeOut != portableOut) {
        std::fprintf(stderr, "fig9: kernel tiers disagree on the bulk "
                             "CBC workload\n");
        std::exit(1);
    }

    std::printf("\nhost AES tier (%s), 8 MiB CBC x8 round trips:\n",
                host::kernels().aes.tier);
    std::printf("  active tier  : %8.3f s host\n", active);
    std::printf("  portable tier: %8.3f s host\n", portable);
    std::printf("  host speedup : %8.2fx  (ciphertext bit-identical)\n",
                portable / active);
    session.metric("host_wall_tier_active_seconds", active);
    session.metric("host_wall_tier_portable_seconds", portable);
    session.metric("sim_tier_ciphertext_sha256",
                   toHex(crypto::Sha256::hash(activeOut)));
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fig9_dmcrypt");
    bench::banner("Figure 9: dm-crypt throughput (MB/s)",
                  "randread and randrw, buffered vs direct I/O, "
                  "Tegra 3 with cache locking");

    std::printf("%-22s %11s %11s %11s\n", "workload",
                modeName(CryptoMode::None), modeName(CryptoMode::GenericAes),
                modeName(CryptoMode::Sentry));
    runWorkload(session, FilebenchWorkload::RandRead, false);
    runWorkload(session, FilebenchWorkload::RandRead, true);
    runWorkload(session, FilebenchWorkload::RandRW, false);
    runWorkload(session, FilebenchWorkload::RandRW, true);

    kcryptdBatchSection(session);
    hostTierSection(session);

    std::printf("\nPaper shape: cached randread masks encryption "
                "entirely; randrw pays ~2x even cached;\ndirect I/O "
                "exposes the full crypto cost; Sentry tracks generic "
                "AES within ~1%%.\n");
    return 0;
}
