/**
 * @file
 * Figure 9 — dm-crypt throughput for random reads and random
 * read/writes, buffered and with direct I/O, under three ciphers:
 * none, generic (kernel) AES, and Sentry's AES On SoC.
 *
 * Setup mirrors the paper: an in-memory partition protected by
 * dm-crypt, filebench-style workloads, Tegra 3 with cache locking.
 *
 * Paper shape: the buffer cache masks most of the crypto cost for
 * cached reads; randrw loses ~2x even cached; with direct I/O the
 * crypto cost is fully exposed; Sentry ~= generic AES (<1% apart).
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/device.hh"
#include "os/buffer_cache.hh"
#include "os/dm_crypt.hh"
#include "os/filebench.hh"

using namespace sentry;
using namespace sentry::os;

namespace
{

enum class CryptoMode
{
    None,
    GenericAes,
    Sentry,
};

const char *
modeName(CryptoMode mode)
{
    switch (mode) {
      case CryptoMode::None:
        return "No Crypto";
      case CryptoMode::GenericAes:
        return "Generic AES";
      case CryptoMode::Sentry:
        return "Sentry";
    }
    return "?";
}

/** The paper's partition is 450 MB; 32 MB keeps trials fast with the
 *  same cached/uncached contrast. */
constexpr std::size_t PARTITION = 32 * MiB;
constexpr std::size_t IO_BYTES = 16 * MiB;

double
runOne(CryptoMode mode, FilebenchWorkload workload, bool direct_io,
       std::uint64_t seed)
{
    core::SentryOptions options;
    options.placement = core::AesPlacement::LockedL2;
    hw::PlatformConfig config = hw::PlatformConfig::tegra3(64 * MiB);
    config.seed = seed;
    core::Device device(config, options);
    device.sentry().registerCryptoProviders();

    RamBlockDevice disk(device.soc().clock(), PARTITION);
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");

    std::unique_ptr<DmCrypt> dm;
    BlockLayer *layer = &disk;
    if (mode != CryptoMode::None) {
        auto &api = device.kernel().cryptoApi();
        std::unique_ptr<crypto::SimAesEngine> cipher;
        if (mode == CryptoMode::GenericAes) {
            for (const auto &impl : api.implementations()) {
                if (impl.implName == "aes-generic")
                    cipher = impl.factory(key);
            }
        } else {
            cipher = api.allocCipher("aes", key); // best = AES On SoC
        }
        // kcryptd spreads write-side encryption across all four cores.
        dm = std::make_unique<DmCrypt>(disk, std::move(cipher),
                                       config.cores);
        layer = dm.get();
    }

    BufferCache cache(device.soc().clock(), *layer, PARTITION / 2);
    Filebench bench(device.soc().clock(), cache, PARTITION / 2);
    Rng rng(seed);
    return bench.run(workload, IO_BYTES, direct_io, rng).mbPerSec();
}

void
runWorkload(FilebenchWorkload workload, bool direct_io)
{
    std::printf("%-22s", direct_io
                             ? (std::string(filebenchWorkloadName(
                                    workload)) +
                                " (direct I/O)")
                                   .c_str()
                             : filebenchWorkloadName(workload));
    for (CryptoMode mode : {CryptoMode::None, CryptoMode::GenericAes,
                            CryptoMode::Sentry}) {
        RunningStat stat;
        for (unsigned trial = 0; trial < 5; ++trial)
            stat.add(runOne(mode, workload, direct_io, 40 + trial));
        std::printf(" %11.1f", stat.mean());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::banner("Figure 9: dm-crypt throughput (MB/s)",
                  "randread and randrw, buffered vs direct I/O, "
                  "Tegra 3 with cache locking");

    std::printf("%-22s %11s %11s %11s\n", "workload",
                modeName(CryptoMode::None), modeName(CryptoMode::GenericAes),
                modeName(CryptoMode::Sentry));
    runWorkload(FilebenchWorkload::RandRead, false);
    runWorkload(FilebenchWorkload::RandRead, true);
    runWorkload(FilebenchWorkload::RandRW, false);
    runWorkload(FilebenchWorkload::RandRW, true);

    std::printf("\nPaper shape: cached randread masks encryption "
                "entirely; randrw pays ~2x even cached;\ndirect I/O "
                "exposes the full crypto cost; Sentry tracks generic "
                "AES within ~1%%.\n");
    return 0;
}
