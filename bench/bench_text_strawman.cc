/**
 * @file
 * Section 7 text anchors — the numbers that motivate Sentry's design:
 *
 *   - the strawman (encrypt ALL of DRAM at lock): >60 s and >70 J on a
 *     2 GB Nexus 4, battery dead after ~410 cycles;
 *   - freed-page zeroing: ~4 GB/s at ~2.8 uJ/MB (cheap enough to wait
 *     for at lock time);
 *   - the AES On SoC interrupt-off window: ~160 us;
 *   - selective encryption (what Sentry actually does) as the
 *     comparison point.
 */

#include <cstdio>

#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;

int
main()
{
    setQuiet(true);
    bench::Session session("text_strawman");
    bench::banner("Section 7 anchors: the strawman vs selective "
                  "encryption",
                  "Nexus 4 model");

    // Strawman: full-memory encryption. (The simulated device carries
    // 2 GB here, like the Nexus 4.)
    {
        core::Device device(hw::PlatformConfig::nexus4(2 * GiB));
        device.soc().energy().reset();
        const double seconds =
            device.sentry().encryptAllMemoryStrawman();
        const double joules = device.soc().energy().totalConsumed();
        const double cycles =
            device.soc().energy().batteryCapacity() / joules;
        std::printf("Full-memory (2 GB) encryption:\n");
        std::printf("  time                 : %6.1f s   (paper: >60 s)\n",
                    seconds);
        std::printf("  energy               : %6.1f J   (paper: >70 J)\n",
                    joules);
        std::printf("  battery dead after   : %6.0f cycles (paper: 410)\n",
                    cycles);
        session.metric("sim_strawman_seconds", seconds);
        session.metric("sim_strawman_joules", joules);
    }

    // Freed-page zeroing.
    {
        core::Device device(hw::PlatformConfig::nexus4(256 * MiB));
        os::Process &p = device.kernel().createProcess("bloat");
        device.kernel().addVma(p, "heap", os::VmaType::Heap, 64 * MiB);
        device.kernel().destroyProcess(p);

        const std::size_t bytes = device.kernel().freedPendingBytes();
        device.soc().energy().reset();
        const double seconds = device.kernel().zeroFreedPages();
        const double joules = device.soc().energy().totalConsumed();
        std::printf("Freed-page zeroing (64 MB):\n");
        std::printf("  rate                 : %6.3f GB/s (paper: 4.014)\n",
                    static_cast<double>(bytes) / seconds / 1e9);
        std::printf("  energy               : %6.2f uJ/MB (paper: 2.8)\n",
                    joules * 1e6 /
                        (static_cast<double>(bytes) / (1024.0 * 1024.0)));
    }

    // Interrupt-off window of a guarded AES On SoC operation (the
    // paper measured ~160 us on the Tegra 3 board).
    {
        core::Device device(hw::PlatformConfig::tegra3(256 * MiB));
        std::vector<std::uint8_t> page(4 * KiB, 1);
        device.sentry().engine().cbcEncrypt(crypto::Iv{}, page);
        std::printf("AES On SoC irq-off window (Tegra 3):  %.0f us "
                    "(paper: ~160 us)\n",
                    device.soc().cpu().maxIrqOffSeconds() * 1e6);
        session.metric("sim_irq_off_us",
                       device.soc().cpu().maxIrqOffSeconds() * 1e6);
    }

    // Selective encryption: Sentry's actual cost for one app.
    {
        core::Device device(hw::PlatformConfig::nexus4(256 * MiB));
        apps::SyntheticApp maps(device.kernel(),
                                apps::AppProfile::byName("Maps"));
        maps.populate({});
        device.sentry().markSensitive(maps.process());
        device.soc().energy().reset();
        device.kernel().lockScreen();
        std::printf("Selective encryption (Maps, 48 MB): %.2f s, "
                    "%.2f J — the design Sentry ships.\n",
                    device.sentry().stats().lastLockSeconds,
                    device.soc().energy().totalConsumed());
        session.metric("sim_selective_seconds",
                       device.sentry().stats().lastLockSeconds);
        session.metric("sim_selective_joules",
                       device.soc().energy().totalConsumed());
    }
    return 0;
}
