/**
 * @file
 * SentryFleet scaling benchmark: run the fleet-smoke scenario at 1, 4,
 * 16, and 64 devices, report devices/sec (host throughput of the
 * engine), and cross-check that the deterministic fleet metrics are
 * byte-identical between 1-thread and multi-thread execution — the
 * engine's replay guarantee.
 *
 * Every `sim_` metric is drift-checked against
 * bench/reference/BENCH_fleet.json by bench/run_benches.sh.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hh"
#include "common/stats.hh"
#include "fleet/fleet.hh"
#include "fleet/scenario.hh"

using namespace sentry;

namespace
{

constexpr unsigned SCALES[] = {1, 4, 16, 64};

fleet::FleetOptions
baseOptions(unsigned devices, unsigned threads)
{
    fleet::FleetOptions options;
    options.devices = devices;
    options.threads = threads;
    options.seed = 0x5e47ee1dULL;
    return options;
}

/** Render a report's sim_ metrics as one comparable string. */
std::string
simFingerprint(const fleet::FleetReport &report)
{
    std::string out;
    for (const fleet::FleetMetric &metric : report.metrics) {
        if (metric.name.rfind("sim_", 0) == 0) {
            out += metric.name;
            out += '=';
            out += metric.jsonValue();
            out += '\n';
        }
    }
    return out;
}

/**
 * Boot-once spin-up: host cost of standing up one device, cold boot vs
 * COW fork, across growing DRAM models. Cold boot scales with the
 * memory model (DRAM init is O(size)); forking a snapshot only
 * re-threads COW page tables and small state, so it stays near-flat.
 * That sublinearity is what lets one warmed template fan out to
 * thousands of devices. Host timings carry no sim_ prefix — they are
 * machine-dependent and exempt from drift checks.
 */
void
spinUpSection(bench::Session &session)
{
    constexpr std::size_t SIZES_MIB[] = {16, 64, 256};
    constexpr unsigned COLD_REPS = 3, FORK_REPS = 24;
    std::printf("\nspin-up host cost per device (nexus4 model):\n");
    std::printf("%10s %14s %14s %10s\n", "dram", "cold boot ms",
                "fork ms", "ratio");
    for (std::size_t mib : SIZES_MIB) {
        const hw::PlatformConfig config =
            hw::PlatformConfig::nexus4(mib * MiB);
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < COLD_REPS; ++i)
            core::Device device(config);
        const auto t1 = std::chrono::steady_clock::now();
        bench::WarmDevice warm(config);
        const auto t2 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < FORK_REPS; ++i)
            warm.fork();
        const auto t3 = std::chrono::steady_clock::now();
        const double coldMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count() /
            COLD_REPS;
        const double forkMs =
            std::chrono::duration<double, std::milli>(t3 - t2).count() /
            FORK_REPS;
        std::printf("%7zuMiB %14.3f %14.3f %9.1fx\n", mib, coldMs,
                    forkMs, forkMs > 0.0 ? coldMs / forkMs : 0.0);
        const std::string tag = std::to_string(mib) + "mib";
        session.metric("host_spinup_cold_ms_" + tag, coldMs);
        session.metric("host_spinup_fork_ms_" + tag, forkMs);
    }
}

/**
 * Snapshot-mode fleet: the same 8-device fleet, but every device forks
 * one warmed template instead of cold-booting. Checks the replay
 * guarantee holds on the fork path too, and records the deterministic
 * metrics under sim_snap_* (drift-checked like any other sim metric).
 */
int
snapshotFleetSection(bench::Session &session,
                     const fleet::Scenario &scenario)
{
    fleet::FleetOptions serialOptions = baseOptions(8, 1);
    serialOptions.spawnMode = fleet::SpawnMode::Snapshot;
    fleet::FleetOptions threadedOptions = baseOptions(8, 4);
    threadedOptions.spawnMode = fleet::SpawnMode::Snapshot;

    const fleet::FleetReport serial =
        fleet::runFleet(scenario, serialOptions);
    const fleet::FleetReport threaded =
        fleet::runFleet(scenario, threadedOptions);
    if (!serial.allOk || !threaded.allOk) {
        std::fprintf(stderr,
                     "fleet: invariants violated in snapshot spawn "
                     "mode:\n%s",
                     (serial.allOk ? threaded : serial).summary().c_str());
        return 1;
    }
    const bool identical =
        simFingerprint(serial) == simFingerprint(threaded);
    const double rate = serial.hostSeconds > 0
                            ? 8 / serial.hostSeconds
                            : 0.0;
    std::printf("snapshot-mode fleet (8 devices, forked spawn): "
                "%.1f devices/s, 1-thread vs 4-thread %s\n",
                rate, identical ? "bit-identical" : "DIVERGED");
    if (!identical) {
        std::fprintf(stderr,
                     "fleet: snapshot spawn mode broke the replay "
                     "guarantee\n--- 1 thread ---\n%s--- 4 threads "
                     "---\n%s",
                     simFingerprint(serial).c_str(),
                     simFingerprint(threaded).c_str());
        return 1;
    }
    for (const fleet::FleetMetric &metric : serial.metrics) {
        if (metric.name.rfind("sim_", 0) == 0) {
            const std::string key =
                "sim_snap_" + metric.name.substr(4);
            if (metric.isInt)
                session.metric(key, metric.u);
            else
                session.metric(key, metric.d);
        }
    }
    session.metric("host_snap_devices_per_sec", rate);
    return 0;
}

/**
 * Population scale: the fleet-scale preset (transition-only audits,
 * snapshot spawn, streaming aggregation) at 1k / 10k / 100k devices,
 * all forking one shared warmed template. The claim under test is
 * *flat per-device overhead*: worker-local device recycling plus
 * O(shards) accumulator memory keep the per-device host cost at 100k
 * within ~2x of the 1k point. The 100k run's sim_shard_* layout keys
 * land in the drift-checked record; per-device host-ns series carry no
 * sim_ prefix (machine-dependent).
 */
int
scaleSection(bench::Session &session)
{
    constexpr unsigned SCALE_POINTS[] = {1000, 10000, 100000};
    const fleet::Scenario scenario =
        fleet::builtinScenario("fleet-scale");
    const unsigned hostThreads =
        std::max(1u, std::min(8u, std::thread::hardware_concurrency()));

    // One template for every point: none of them pays the boot.
    fleet::FleetOptions templateOptions = baseOptions(1, 1);
    const auto snapshot =
        fleet::makeFleetTemplate(scenario, templateOptions);

    std::printf("\npopulation scale (fleet-scale scenario, snapshot "
                "spawn, streaming aggregation):\n");
    std::printf("%9s %9s %12s %16s %10s\n", "devices", "shards",
                "host s", "per-device ns", "steals");
    double perDeviceNs1k = 0.0, perDeviceNs100k = 0.0;
    for (unsigned devices : SCALE_POINTS) {
        fleet::FleetOptions options = baseOptions(devices, hostThreads);
        options.spawnMode = fleet::SpawnMode::Snapshot;
        options.templateSnapshot = snapshot;
        options.retainResults = false;
        const fleet::FleetReport report =
            fleet::runFleet(scenario, options);
        if (!report.allOk) {
            std::fprintf(stderr,
                         "fleet: invariants violated at %u devices:\n%s",
                         devices, report.summary().c_str());
            return 1;
        }
        const double perDeviceNs =
            report.hostSeconds * 1e9 / static_cast<double>(devices);
        if (devices == SCALE_POINTS[0])
            perDeviceNs1k = perDeviceNs;
        if (devices == 100000)
            perDeviceNs100k = perDeviceNs;
        std::printf("%9u %9u %12.3f %16.0f %10llu\n", devices,
                    report.shards, report.hostSeconds, perDeviceNs,
                    static_cast<unsigned long long>(report.steals));
        session.metric("host_per_device_ns_" + std::to_string(devices),
                       perDeviceNs);
        // Deterministic per-point spot checks (cheap drift tripwires
        // at population scale).
        const std::string tag = "sim_scale" + std::to_string(devices);
        const auto *cycles = report.find("sim_cycles_total");
        const auto *failedCount = report.find("sim_devices_failed");
        const auto *seedHash = report.find("sim_device_seed_hash");
        if (cycles != nullptr)
            session.metric(tag + "_cycles_total", cycles->u);
        if (failedCount != nullptr)
            session.metric(tag + "_devices_failed", failedCount->u);
        if (seedHash != nullptr)
            session.metric(tag + "_seed_hash", seedHash->u);
        if (devices == 100000) {
            // The streaming layout of the headline point, verbatim —
            // plus the defense-backend ledger, which must stay exact
            // across the shard fold/merge tree at population scale.
            for (const fleet::FleetMetric &metric : report.metrics) {
                if (metric.name.rfind("sim_shard_", 0) == 0)
                    session.metric(metric.name, metric.u);
                if (metric.name.rfind("sim_defense_", 0) == 0) {
                    if (metric.isInt)
                        session.metric(metric.name, metric.u);
                    else
                        session.metric(metric.name, metric.d);
                }
            }
        }
    }
    const double flatness =
        perDeviceNs1k > 0.0 ? perDeviceNs100k / perDeviceNs1k : 0.0;
    std::printf("per-device host cost, 100k vs 1k devices: %.2fx "
                "(flat-overhead target: <= 2x)\n",
                flatness);
    session.metric("host_scale_flatness_100k_vs_1k", flatness);
    return 0;
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fleet");
    bench::banner("SentryFleet scaling (fleet-smoke scenario)",
                  "devices/sec of the scenario engine; sim metrics are "
                  "thread-count independent");

    const fleet::Scenario scenario =
        fleet::builtinScenario("fleet-smoke");
    const unsigned hostThreads =
        std::max(1u, std::min(8u, std::thread::hardware_concurrency()));

    std::printf("%8s %10s %12s %14s %14s\n", "devices", "threads",
                "host s", "devices/s", "unlock p95 us");
    RunningStat devicesPerSec;
    for (unsigned devices : SCALES) {
        const fleet::FleetReport report =
            fleet::runFleet(scenario, baseOptions(devices, hostThreads));
        if (!report.allOk) {
            std::fprintf(stderr, "fleet: invariants violated at %u "
                                 "devices:\n%s",
                         devices, report.summary().c_str());
            return 1;
        }
        const fleet::FleetMetric *p95 = report.find("sim_unlock_p95_us");
        const double rate = report.hostSeconds > 0
                                ? devices / report.hostSeconds
                                : 0.0;
        devicesPerSec.add(rate);
        std::printf("%8u %10u %12.3f %14.1f %14.2f\n", devices,
                    report.threads, report.hostSeconds, rate,
                    p95 != nullptr ? p95->d : 0.0);

        const std::string tag = "n" + std::to_string(devices);
        for (const fleet::FleetMetric &metric : report.metrics) {
            if (metric.name.rfind("sim_", 0) == 0) {
                const std::string key =
                    "sim_" + tag + "_" + metric.name.substr(4);
                if (metric.isInt)
                    session.metric(key, metric.u);
                else
                    session.metric(key, metric.d);
            }
        }
        session.metric("host_" + tag + "_devices_per_sec", rate);
    }
    std::printf("host devices/s across scales: p50 %.1f  p95 %.1f  "
                "p99 %.1f\n",
                devicesPerSec.p50(), devicesPerSec.p95(),
                devicesPerSec.p99());

    // Replay guarantee: same seed => byte-identical sim metrics no
    // matter how many worker threads executed the fleet.
    const fleet::FleetReport serial =
        fleet::runFleet(scenario, baseOptions(8, 1));
    const fleet::FleetReport threaded =
        fleet::runFleet(scenario, baseOptions(8, 4));
    const bool identical =
        simFingerprint(serial) == simFingerprint(threaded);
    std::printf("\n1-thread vs 4-thread sim metrics: %s\n",
                identical ? "bit-identical" : "DIVERGED");
    if (!identical) {
        std::fprintf(stderr,
                     "fleet: thread count changed deterministic "
                     "metrics\n--- 1 thread ---\n%s--- 4 threads ---\n%s",
                     simFingerprint(serial).c_str(),
                     simFingerprint(threaded).c_str());
        return 1;
    }

    // Kernel-tier parity: the same fleet pinned to the portable tier
    // must reproduce every deterministic metric byte for byte — the
    // accelerated kernels change host wall-clock only. The active- and
    // portable-tier host times land in the record (drift check asserts
    // their presence; values are machine-dependent).
    host::setActiveKernelsForTest(&host::portableKernels());
    const fleet::FleetReport portableRun =
        fleet::runFleet(scenario, baseOptions(8, 1));
    host::setActiveKernelsForTest(nullptr);
    const bool tierIdentical =
        simFingerprint(serial) == simFingerprint(portableRun);
    std::printf("active tier (%s) vs portable tier sim metrics: %s "
                "(host %.3fs vs %.3fs)\n",
                host::kernels().aes.tier,
                tierIdentical ? "bit-identical" : "DIVERGED",
                serial.hostSeconds, portableRun.hostSeconds);
    if (!tierIdentical) {
        std::fprintf(stderr,
                     "fleet: kernel tier changed deterministic "
                     "metrics\n--- active ---\n%s--- portable ---\n%s",
                     simFingerprint(serial).c_str(),
                     simFingerprint(portableRun).c_str());
        return 1;
    }
    session.metric("host_wall_tier_active_seconds", serial.hostSeconds);
    session.metric("host_wall_tier_portable_seconds",
                   portableRun.hostSeconds);

    if (const int rc = snapshotFleetSection(session, scenario); rc != 0)
        return rc;
    spinUpSection(session);
    if (const int rc = scaleSection(session); rc != 0)
        return rc;

    return 0;
}
