/**
 * @file
 * SentryFleet scaling benchmark: run the fleet-smoke scenario at 1, 4,
 * 16, and 64 devices, report devices/sec (host throughput of the
 * engine), and cross-check that the deterministic fleet metrics are
 * byte-identical between 1-thread and multi-thread execution — the
 * engine's replay guarantee.
 *
 * Every `sim_` metric is drift-checked against
 * bench/reference/BENCH_fleet.json by bench/run_benches.sh.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hh"
#include "common/stats.hh"
#include "fleet/fleet.hh"
#include "fleet/scenario.hh"

using namespace sentry;

namespace
{

constexpr unsigned SCALES[] = {1, 4, 16, 64};

fleet::FleetOptions
baseOptions(unsigned devices, unsigned threads)
{
    fleet::FleetOptions options;
    options.devices = devices;
    options.threads = threads;
    options.seed = 0x5e47ee1dULL;
    return options;
}

/** Render a report's sim_ metrics as one comparable string. */
std::string
simFingerprint(const fleet::FleetReport &report)
{
    std::string out;
    for (const fleet::FleetMetric &metric : report.metrics) {
        if (metric.name.rfind("sim_", 0) == 0) {
            out += metric.name;
            out += '=';
            out += metric.jsonValue();
            out += '\n';
        }
    }
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fleet");
    bench::banner("SentryFleet scaling (fleet-smoke scenario)",
                  "devices/sec of the scenario engine; sim metrics are "
                  "thread-count independent");

    const fleet::Scenario scenario =
        fleet::builtinScenario("fleet-smoke");
    const unsigned hostThreads =
        std::max(1u, std::min(8u, std::thread::hardware_concurrency()));

    std::printf("%8s %10s %12s %14s %14s\n", "devices", "threads",
                "host s", "devices/s", "unlock p95 us");
    RunningStat devicesPerSec;
    for (unsigned devices : SCALES) {
        const fleet::FleetReport report =
            fleet::runFleet(scenario, baseOptions(devices, hostThreads));
        if (!report.allOk) {
            std::fprintf(stderr, "fleet: invariants violated at %u "
                                 "devices:\n%s",
                         devices, report.summary().c_str());
            return 1;
        }
        const fleet::FleetMetric *p95 = report.find("sim_unlock_p95_us");
        const double rate = report.hostSeconds > 0
                                ? devices / report.hostSeconds
                                : 0.0;
        devicesPerSec.add(rate);
        std::printf("%8u %10u %12.3f %14.1f %14.2f\n", devices,
                    report.threads, report.hostSeconds, rate,
                    p95 != nullptr ? p95->d : 0.0);

        const std::string tag = "n" + std::to_string(devices);
        for (const fleet::FleetMetric &metric : report.metrics) {
            if (metric.name.rfind("sim_", 0) == 0) {
                const std::string key =
                    "sim_" + tag + "_" + metric.name.substr(4);
                if (metric.isInt)
                    session.metric(key, metric.u);
                else
                    session.metric(key, metric.d);
            }
        }
        session.metric("host_" + tag + "_devices_per_sec", rate);
    }
    std::printf("host devices/s across scales: p50 %.1f  p95 %.1f  "
                "p99 %.1f\n",
                devicesPerSec.p50(), devicesPerSec.p95(),
                devicesPerSec.p99());

    // Replay guarantee: same seed => byte-identical sim metrics no
    // matter how many worker threads executed the fleet.
    const fleet::FleetReport serial =
        fleet::runFleet(scenario, baseOptions(8, 1));
    const fleet::FleetReport threaded =
        fleet::runFleet(scenario, baseOptions(8, 4));
    const bool identical =
        simFingerprint(serial) == simFingerprint(threaded);
    std::printf("\n1-thread vs 4-thread sim metrics: %s\n",
                identical ? "bit-identical" : "DIVERGED");
    if (!identical) {
        std::fprintf(stderr,
                     "fleet: thread count changed deterministic "
                     "metrics\n--- 1 thread ---\n%s--- 4 threads ---\n%s",
                     simFingerprint(serial).c_str(),
                     simFingerprint(threaded).c_str());
        return 1;
    }

    return 0;
}
