/**
 * @file
 * Figure 4 — performance overhead upon device lock.
 *
 * At lock time every resident page of the sensitive app is encrypted
 * before the device is considered locked. Reports lock latency and
 * MBytes encrypted.
 *
 * Paper shape: 0.7 s .. 2 s per app, proportional to the amount of
 * data encrypted (up to ~48 MB for Maps).
 */

#include <cstdio>

#include "apps/app_profile.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

int
main()
{
    setQuiet(true);
    bench::Session session("fig4_lock");
    bench::banner("Figure 4: performance overhead upon device lock",
                  "encrypt-on-lock latency and MBytes encrypted "
                  "(Nexus 4 model, 10 trials)");

    std::printf("%-10s %18s %16s\n", "App", "Time (s)", "MB encrypted");
    for (const AppProfile &profile : AppProfile::paperApps()) {
        RunningStat seconds, megabytes;
        for (unsigned trial = 0; trial < bench::TRIALS; ++trial) {
            core::Device device(hw::PlatformConfig::nexus4(128 * MiB));
            SyntheticApp app(device.kernel(), profile);
            app.populate({});
            device.sentry().markSensitive(app.process());

            device.kernel().lockScreen();
            seconds.add(device.sentry().stats().lastLockSeconds);
            megabytes.add(
                static_cast<double>(
                    device.sentry().stats().bytesEncryptedOnLock) /
                (1024.0 * 1024.0));
        }
        std::printf("%-10s %10.3f ± %-5.3f %12.1f MB\n",
                    profile.name.c_str(), seconds.mean(),
                    seconds.stddev(), megabytes.mean());
        session.metric("sim_lock_seconds_" + profile.name, seconds.mean());
        session.metric("sim_encrypted_mb_" + profile.name,
                       megabytes.mean());
    }
    std::printf("\nPaper: 0.7-2 s per app; proportional to data "
                "encrypted (Maps ~48 MB).\n");
    return 0;
}
