/**
 * @file
 * Figure 11 — AES performance (MB/s) on 4 KB pages.
 *
 * Left (Nexus 4): generic user-mode AES, generic AES via the kernel
 * Crypto API, and the hardware crypto engine (down-scaled, as it is
 * when the device is locked — the condition Sentry runs under).
 * Right (Tegra 3): generic AES vs AES On SoC (locked-L2 and iRAM).
 *
 * Paper shape: the accelerator LOSES to the CPU on 4 KB pages (setup
 * cost + down-scaling); Nexus is much faster than Tegra; AES On SoC is
 * within 1% of generic AES.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "crypto/aes_on_soc.hh"
#include "crypto/sha256.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::crypto;

namespace
{

constexpr std::size_t TOTAL = 8 * MiB; // processed in 4 KB requests

/** MB/s for a SimAesEngine processing TOTAL bytes in 4 KB chunks. */
double
engineRate(hw::Soc &soc, SimAesEngine &engine)
{
    std::vector<std::uint8_t> page(4 * KiB, 0x7e);
    SimStopwatch watch(soc.clock());
    for (std::size_t done = 0; done < TOTAL; done += page.size())
        engine.cbcEncrypt(Iv{}, page);
    return static_cast<double>(TOTAL) / (1024.0 * 1024.0) /
           watch.elapsedSeconds();
}

/** Result of one audited CBC pass over a fresh Tegra 3 machine. */
struct AuditedRun
{
    double hostSeconds = 0.0;
    hw::L2Stats l2;
    hw::BusStats bus;
    Cycles cycles = 0;
    Sha256Digest digest{};
};

/**
 * Run the fully audited DRAM-placement CBC path over @p bytes of data
 * with the host fast path on or off. Everything except hostSeconds is
 * required to be bit-identical between the two settings.
 */
AuditedRun
auditedPass(std::size_t bytes, bool fast_path)
{
    hw::Soc soc(hw::PlatformConfig::tegra3(64 * MiB));
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    SimAesEngine engine(soc, DRAM_BASE + 16 * MiB, key,
                        StatePlacement::Dram);
    engine.setFastPath(fast_path);

    std::vector<std::uint8_t> data(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 131 + 7);

    AuditedRun run;
    const auto t0 = std::chrono::steady_clock::now();
    engine.cbcEncryptAudited(Iv{}, data);
    run.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    run.l2 = soc.l2().stats();
    run.bus = soc.bus().stats();
    run.cycles = soc.clock().now();
    run.digest = Sha256::hash(data);
    return run;
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fig11_aes_throughput");
    bench::banner("Figure 11: AES performance (MB/s, 4 KB requests)",
                  "Nexus 4 (left) and Tegra 3 (right)");

    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const auto layout = AesStateLayout::forKeyBytes(16);

    std::printf("Nexus 4:\n");
    {
        hw::Soc soc(hw::PlatformConfig::nexus4(64 * MiB));

        SimAesEngine user(soc, DRAM_BASE + 16 * MiB, key,
                          StatePlacement::Dram, /*kernel_path=*/false);
        const double userRate = engineRate(soc, user);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES (user)", userRate);
        session.metric("sim_nexus4_user_mbps", userRate);

        SimAesEngine kernel(soc, DRAM_BASE + 17 * MiB, key,
                            StatePlacement::Dram, /*kernel_path=*/true);
        const double kernelRate = engineRate(soc, kernel);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES (in kernel)",
                    kernelRate);
        session.metric("sim_nexus4_kernel_mbps", kernelRate);

        // The crypto engine, down-scaled as it is while locked.
        soc.accel()->setKey(key);
        soc.accel()->setDownscaled(true);
        std::vector<std::uint8_t> page(4 * KiB, 0x7e);
        SimStopwatch watch(soc.clock());
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            soc.accel()->cbcEncrypt(Iv{}, page);
        const double lockedRate = static_cast<double>(TOTAL) /
                                  (1024.0 * 1024.0) /
                                  watch.elapsedSeconds();
        std::printf("  %-28s %8.1f MB/s\n", "Crypto Hardware (locked)",
                    lockedRate);

        soc.accel()->setDownscaled(false);
        watch.restart();
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            soc.accel()->cbcEncrypt(Iv{}, page);
        const double awakeRate = static_cast<double>(TOTAL) /
                                 (1024.0 * 1024.0) /
                                 watch.elapsedSeconds();
        std::printf("  %-28s %8.1f MB/s  (%.1fx the locked rate)\n",
                    "Crypto Hardware (awake)", awakeRate,
                    awakeRate / lockedRate);
        session.metric("sim_nexus4_accel_locked_mbps", lockedRate);
        session.metric("sim_nexus4_accel_awake_mbps", awakeRate);
        session.socStats(soc, "nexus4");
    }

    std::printf("Tegra 3:\n");
    {
        hw::Soc soc(hw::PlatformConfig::tegra3(64 * MiB));

        SimAesEngine generic(soc, DRAM_BASE + 16 * MiB, key,
                             StatePlacement::Dram);
        const double genericRate = engineRate(soc, generic);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES", genericRate);
        session.metric("sim_tegra3_generic_mbps", genericRate);

        core::LockedWayManager ways(soc, DRAM_BASE + 32 * MiB);
        SimAesEngine lockedL2(soc, ways.lockWay()->base, key,
                              StatePlacement::LockedL2);
        const double lockedRate = engineRate(soc, lockedL2);
        std::printf("  %-28s %8.1f MB/s\n", "AES_On_SoC (Locked L2)",
                    lockedRate);
        session.metric("sim_tegra3_lockedl2_mbps", lockedRate);

        core::OnSocAllocator iram =
            core::OnSocAllocator::forIram(soc.iram().size());
        SimAesEngine iramEngine(soc, iram.alloc(layout.totalBytes()).base,
                                key, StatePlacement::Iram);
        const double iramRate = engineRate(soc, iramEngine);
        std::printf("  %-28s %8.1f MB/s\n", "AES_On_SoC (iRAM)", iramRate);
        session.metric("sim_tegra3_iram_mbps", iramRate);
        session.socStats(soc, "tegra3");
    }

    // Host fast path: the audited DRAM-placement CBC pipeline with the
    // resident-line/native-block fast layer on vs off. The simulation
    // must be indistinguishable; only host wall-clock may change.
    std::printf("\nHost fast path (audited CBC, DRAM placement, %zu KiB):\n",
                (128 * KiB) / KiB);
    const AuditedRun fast = auditedPass(128 * KiB, /*fast_path=*/true);
    const AuditedRun slow = auditedPass(128 * KiB, /*fast_path=*/false);

    const bool identical =
        fast.cycles == slow.cycles && fast.l2.hits == slow.l2.hits &&
        fast.l2.misses == slow.l2.misses &&
        fast.l2.fills == slow.l2.fills &&
        fast.l2.writebacks == slow.l2.writebacks &&
        fast.l2.uncachedAccesses == slow.l2.uncachedAccesses &&
        fast.bus.reads == slow.bus.reads &&
        fast.bus.writes == slow.bus.writes && fast.digest == slow.digest;
    const double speedup = slow.hostSeconds / fast.hostSeconds;
    std::printf("  fast path on : %8.3f s host\n", fast.hostSeconds);
    std::printf("  fast path off: %8.3f s host\n", slow.hostSeconds);
    std::printf("  speedup      : %8.1fx  (simulation %s)\n", speedup,
                identical ? "bit-identical" : "DIVERGED");
    if (!identical) {
        std::fprintf(stderr, "fig11: fast path diverged from reference "
                             "simulation — counters or ciphertext differ\n");
        return 1;
    }

    session.metric("host_fastpath_seconds", fast.hostSeconds);
    session.metric("host_slowpath_seconds", slow.hostSeconds);
    session.metric("host_fastpath_speedup", speedup);
    session.metric("sim_audited_cycles",
                   static_cast<std::uint64_t>(fast.cycles));
    session.metric("sim_audited_l2_hits", fast.l2.hits);
    session.metric("sim_audited_l2_misses", fast.l2.misses);
    session.metric("sim_audited_l2_fills", fast.l2.fills);
    session.metric("sim_audited_l2_writebacks", fast.l2.writebacks);
    session.metric("sim_audited_bus_reads", fast.bus.reads);
    session.metric("sim_audited_bus_writes", fast.bus.writes);
    session.metric("sim_audited_ciphertext_sha256",
                   toHex(std::span<const std::uint8_t>(fast.digest)));

    std::printf("\nPaper shape: accelerator slower than CPU on 4 KB "
                "pages while locked (and ~4x faster awake);\nNexus >> "
                "Tegra; AES On SoC within 1%% of generic AES.\n");
    return 0;
}
