/**
 * @file
 * Figure 11 — AES performance (MB/s) on 4 KB pages.
 *
 * Left (Nexus 4): generic user-mode AES, generic AES via the kernel
 * Crypto API, and the hardware crypto engine (down-scaled, as it is
 * when the device is locked — the condition Sentry runs under).
 * Right (Tegra 3): generic AES vs AES On SoC (locked-L2 and iRAM).
 *
 * Paper shape: the accelerator LOSES to the CPU on 4 KB pages (setup
 * cost + down-scaling); Nexus is much faster than Tegra; AES On SoC is
 * within 1% of generic AES.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "crypto/aes_on_soc.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::crypto;

namespace
{

constexpr std::size_t TOTAL = 8 * MiB; // processed in 4 KB requests

/** MB/s for a SimAesEngine processing TOTAL bytes in 4 KB chunks. */
double
engineRate(hw::Soc &soc, SimAesEngine &engine)
{
    std::vector<std::uint8_t> page(4 * KiB, 0x7e);
    SimStopwatch watch(soc.clock());
    for (std::size_t done = 0; done < TOTAL; done += page.size())
        engine.cbcEncrypt(Iv{}, page);
    return static_cast<double>(TOTAL) / (1024.0 * 1024.0) /
           watch.elapsedSeconds();
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::banner("Figure 11: AES performance (MB/s, 4 KB requests)",
                  "Nexus 4 (left) and Tegra 3 (right)");

    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const auto layout = AesStateLayout::forKeyBytes(16);

    std::printf("Nexus 4:\n");
    {
        hw::Soc soc(hw::PlatformConfig::nexus4(64 * MiB));

        SimAesEngine user(soc, DRAM_BASE + 16 * MiB, key,
                          StatePlacement::Dram, /*kernel_path=*/false);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES (user)",
                    engineRate(soc, user));

        SimAesEngine kernel(soc, DRAM_BASE + 17 * MiB, key,
                            StatePlacement::Dram, /*kernel_path=*/true);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES (in kernel)",
                    engineRate(soc, kernel));

        // The crypto engine, down-scaled as it is while locked.
        soc.accel()->setKey(key);
        soc.accel()->setDownscaled(true);
        std::vector<std::uint8_t> page(4 * KiB, 0x7e);
        SimStopwatch watch(soc.clock());
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            soc.accel()->cbcEncrypt(Iv{}, page);
        const double lockedRate = static_cast<double>(TOTAL) /
                                  (1024.0 * 1024.0) /
                                  watch.elapsedSeconds();
        std::printf("  %-28s %8.1f MB/s\n", "Crypto Hardware (locked)",
                    lockedRate);

        soc.accel()->setDownscaled(false);
        watch.restart();
        for (std::size_t done = 0; done < TOTAL; done += page.size())
            soc.accel()->cbcEncrypt(Iv{}, page);
        const double awakeRate = static_cast<double>(TOTAL) /
                                 (1024.0 * 1024.0) /
                                 watch.elapsedSeconds();
        std::printf("  %-28s %8.1f MB/s  (%.1fx the locked rate)\n",
                    "Crypto Hardware (awake)", awakeRate,
                    awakeRate / lockedRate);
    }

    std::printf("Tegra 3:\n");
    {
        hw::Soc soc(hw::PlatformConfig::tegra3(64 * MiB));

        SimAesEngine generic(soc, DRAM_BASE + 16 * MiB, key,
                             StatePlacement::Dram);
        std::printf("  %-28s %8.1f MB/s\n", "Generic AES",
                    engineRate(soc, generic));

        core::LockedWayManager ways(soc, DRAM_BASE + 32 * MiB);
        SimAesEngine lockedL2(soc, ways.lockWay()->base, key,
                              StatePlacement::LockedL2);
        std::printf("  %-28s %8.1f MB/s\n", "AES_On_SoC (Locked L2)",
                    engineRate(soc, lockedL2));

        core::OnSocAllocator iram =
            core::OnSocAllocator::forIram(soc.iram().size());
        SimAesEngine iramEngine(soc, iram.alloc(layout.totalBytes()).base,
                                key, StatePlacement::Iram);
        std::printf("  %-28s %8.1f MB/s\n", "AES_On_SoC (iRAM)",
                    engineRate(soc, iramEngine));
    }

    std::printf("\nPaper shape: accelerator slower than CPU on 4 KB "
                "pages while locked (and ~4x faster awake);\nNexus >> "
                "Tegra; AES On SoC within 1%% of generic AES.\n");
    return 0;
}
