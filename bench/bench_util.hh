/**
 * @file
 * Shared helpers for the reproduction benchmarks: headers, repeated
 * trials with mean/stddev (the paper runs every experiment >= 10
 * times), consistent row formatting, and the machine-readable
 * BENCH_<name>.json record every benchmark emits (see README.md,
 * "Benchmark JSON records").
 */

#ifndef SENTRY_BENCH_UTIL_HH
#define SENTRY_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "core/device.hh"
#include "host/kernels.hh"
#include "hw/soc.hh"

namespace sentry::bench
{

/**
 * One benchmark run's machine-readable record.
 *
 * Construct at the top of main(); add metrics as results are produced;
 * the destructor writes `BENCH_<name>.json` into the current directory
 * (override with the SENTRY_BENCH_JSON_DIR environment variable). The
 * record always carries `host_wall_seconds` for the whole process.
 *
 * Naming convention: metrics prefixed `sim_` are *deterministic*
 * simulation quantities (cycles, cache counters, byte counts, hashes)
 * — bench/run_benches.sh compares exactly those against the committed
 * reference records and fails on any drift. Host-side quantities
 * (wall-clock, MB/s of the host) must not carry the prefix.
 */
class Session
{
  public:
    explicit Session(std::string name)
        : name_(std::move(name)), start_(std::chrono::steady_clock::now())
    {}

    ~Session()
    {
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
        const char *dir = std::getenv("SENTRY_BENCH_JSON_DIR");
        const std::string path = (dir != nullptr && dir[0] != '\0')
                                     ? std::string(dir) + "/BENCH_" + name_ +
                                           ".json"
                                     : "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
        std::fprintf(f, "  \"host_wall_seconds\": %.6f,\n", wall);
        // Also surface the wall time inside metrics{}: the perf-smoke
        // driver checks host_wall_* keys for presence (never value), so
        // a bench silently losing its timing shows up as drift.
        {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6f", wall);
            entries_.emplace_back("host_wall_seconds", buf);
        }
        // Every record carries the host CPU features and active kernel
        // tiers, so a perf regression can be traced to the tier that
        // produced the numbers (run_benches.sh asserts presence).
        entries_.emplace_back("host_cpu_features",
                              "\"" + host::hostFeaturesKey() + "\"");
        std::fprintf(f, "  \"metrics\": {");
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                         entries_[i].first.c_str(),
                         entries_[i].second.c_str());
        }
        std::fprintf(f, "\n  }\n}\n");
        std::fclose(f);
    }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Record a floating-point metric. */
    void
    metric(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        entries_.emplace_back(key, buf);
    }

    /** Record an integer metric (sim counters, cycle totals). */
    void
    metric(const std::string &key, std::uint64_t value)
    {
        entries_.emplace_back(key, std::to_string(value));
    }

    /** Record a string metric (placements, hashes). */
    void
    metric(const std::string &key, const std::string &value)
    {
        entries_.emplace_back(key, "\"" + value + "\"");
    }

    /**
     * Record a machine's deterministic counters: simulated cycles plus
     * the full L2Stats and bus totals, all under the `sim_` prefix
     * (optionally namespaced as `sim_<tag>_...`).
     */
    void
    socStats(hw::Soc &soc, const std::string &tag = "")
    {
        const std::string p =
            tag.empty() ? std::string("sim_") : "sim_" + tag + "_";
        metric(p + "cycles", static_cast<std::uint64_t>(soc.clock().now()));
        const hw::L2Stats &l2 = soc.l2().stats();
        metric(p + "l2_hits", l2.hits);
        metric(p + "l2_misses", l2.misses);
        metric(p + "l2_fills", l2.fills);
        metric(p + "l2_writebacks", l2.writebacks);
        metric(p + "l2_uncached", l2.uncachedAccesses);
        const hw::BusStats &bus = soc.bus().stats();
        metric(p + "bus_reads", bus.reads);
        metric(p + "bus_writes", bus.writes);
    }

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, std::string>> entries_;
};

/** Print the benchmark banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("%s\n", caption);
    std::printf("==============================================================\n");
}

/** Run @p trial @p n times, collecting one sample per run. */
inline RunningStat
repeat(unsigned n, const std::function<double()> &trial)
{
    RunningStat stat;
    for (unsigned i = 0; i < n; ++i)
        stat.add(trial());
    return stat;
}

/** Default trial count (matches the paper's "at least ten times"). */
constexpr unsigned TRIALS = 10;

/**
 * Boot-once / fork-per-trial helper: constructs one template device,
 * runs @p warm on it (populate apps, lock the screen, ...), snapshots
 * it, and hands out a freshly forked device per trial. The fork
 * overwrites one reused target, so per-trial cost is the COW fork, not
 * a device boot — the simulated results are bit-identical to
 * cold-booting every trial (tests/test_snapshot_fork.cc proves it).
 */
class WarmDevice
{
  public:
    WarmDevice(const hw::PlatformConfig &config,
               core::SentryOptions options = {},
               const std::function<void(core::Device &)> &warm = {})
        : target_(config, options)
    {
        core::Device templ(config, options);
        if (warm)
            warm(templ);
        snapshot_ = templ.snapshot();
    }

    /** @return the reused target device, freshly forked from the warm
     * snapshot (any state from the previous trial is discarded). */
    core::Device &
    fork()
    {
        target_.forkFrom(*snapshot_);
        return target_;
    }

    /** @return the warm checkpoint (shareable across threads). */
    const std::shared_ptr<const core::DeviceSnapshot> &
    snapshot() const
    {
        return snapshot_;
    }

  private:
    core::Device target_;
    std::shared_ptr<const core::DeviceSnapshot> snapshot_;
};

} // namespace sentry::bench

#endif // SENTRY_BENCH_UTIL_HH
