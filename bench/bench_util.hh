/**
 * @file
 * Shared helpers for the reproduction benchmarks: headers, repeated
 * trials with mean/stddev (the paper runs every experiment >= 10
 * times), and consistent row formatting.
 */

#ifndef SENTRY_BENCH_UTIL_HH
#define SENTRY_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"

namespace sentry::bench
{

/** Print the benchmark banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("%s\n", caption);
    std::printf("==============================================================\n");
}

/** Run @p trial @p n times, collecting one sample per run. */
inline RunningStat
repeat(unsigned n, const std::function<double()> &trial)
{
    RunningStat stat;
    for (unsigned i = 0; i < n; ++i)
        stat.add(trial());
    return stat;
}

/** Default trial count (matches the paper's "at least ten times"). */
constexpr unsigned TRIALS = 10;

} // namespace sentry::bench

#endif // SENTRY_BENCH_UTIL_HH
