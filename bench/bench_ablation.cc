/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *   A. decrypt-on-demand vs eager full decryption at unlock
 *      (the latency motivation for lazy decryption);
 *   B. skipping the post-encrypt cache clean (cleanCacheAfterLock=off):
 *      shows the plaintext-in-DRAM leak the clean prevents;
 *   C. skipping the freed-page zeroing wait: shows freed plaintext
 *      surviving into the locked state;
 *   D. pager pool size sweep (1..4 locked ways) for a fixed background
 *      working set.
 */

#include <cstdio>

#include "apps/background_app.hh"
#include "apps/synthetic_app.hh"
#include "bench_util.hh"
#include "common/bytes.hh"
#include "core/device.hh"
#include "core/dram_scanner.hh"

using namespace sentry;
using namespace sentry::core;
using namespace sentry::os;

namespace
{
const auto SECRET = fromHex("ab1ade00ab1ade00ab1ade00ab1ade00");
}

int
main()
{
    setQuiet(true);
    bench::Session session("ablation");
    bench::banner("Ablations", "design-choice experiments");

    // --- A: lazy vs eager decryption at unlock --------------------
    {
        std::printf("A. Unlock latency: decrypt-on-demand vs eager\n");
        for (const bool eager : {false, true}) {
            core::Device device(hw::PlatformConfig::nexus4(128 * MiB));
            apps::SyntheticApp maps(device.kernel(),
                                    apps::AppProfile::byName("Maps"));
            maps.populate({});
            device.sentry().markSensitive(maps.process());
            device.kernel().lockScreen();

            SimStopwatch watch(device.soc().clock());
            device.kernel().unlockScreen("0000");
            if (eager) {
                // Eager policy: touch everything right now.
                const auto &vmas =
                    maps.process().addressSpace().vmas();
                for (const Vma &vma : vmas) {
                    device.kernel().touchRange(maps.process(), vma.base,
                                               vma.size);
                }
            } else {
                maps.resume(); // lazy: only the resume set
            }
            std::printf("   %-22s unlock-to-usable: %6.2f s\n",
                        eager ? "eager (everything)" : "lazy (paper)",
                        watch.elapsedSeconds());
            session.metric(eager ? "sim_unlock_seconds_eager"
                                 : "sim_unlock_seconds_lazy",
                           watch.elapsedSeconds());
        }
    }

    // --- B: cache clean after encrypt-on-lock ---------------------
    {
        std::printf("B. Post-encrypt L2 clean:\n");
        for (const bool clean : {true, false}) {
            SentryOptions options;
            options.cleanCacheAfterLock = clean;
            core::Device device(hw::PlatformConfig::tegra3(64 * MiB),
                                options);
            Process &app = device.kernel().createProcess("app");
            const Vma &heap = device.kernel().addVma(
                app, "heap", VmaType::Heap, 4 * PAGE_SIZE);
            device.kernel().writeVirt(app, heap.base, SECRET.data(),
                                      SECRET.size());
            // The app has been running a while: its plaintext has long
            // been written back to DRAM.
            device.soc().l2().cleanAllMasked();
            device.sentry().markSensitive(app);
            device.kernel().lockScreen();

            // Cold-boot view: cache contents vanish, DRAM remains.
            device.soc().powerCycle(0.0);
            const bool leak =
                DramScanner(device.soc()).dramContains(SECRET);
            std::printf("   clean=%-5s plaintext recoverable after "
                        "reset: %s\n",
                        clean ? "on" : "off",
                        leak ? "YES (leak!)" : "no");
            session.metric(clean ? "sim_leak_clean_on"
                                 : "sim_leak_clean_off",
                           static_cast<std::uint64_t>(leak));
        }
    }

    // --- C: waiting for the freed-page zero thread ----------------
    {
        std::printf("C. Freed-page zeroing before lock:\n");
        for (const bool wait : {true, false}) {
            SentryOptions options;
            options.waitForZeroThread = wait;
            core::Device device(hw::PlatformConfig::tegra3(64 * MiB),
                                options);
            Process &doomed = device.kernel().createProcess("doomed");
            const Vma &heap = device.kernel().addVma(
                doomed, "heap", VmaType::Heap, 4 * PAGE_SIZE);
            device.kernel().writeVirt(doomed, heap.base, SECRET.data(),
                                      SECRET.size());
            device.soc().l2().cleanAllMasked();
            device.kernel().destroyProcess(doomed);

            device.kernel().lockScreen();
            device.soc().l2().cleanAllMasked();
            const bool leak =
                DramScanner(device.soc()).dramContains(SECRET);
            std::printf("   wait=%-5s freed plaintext in locked DRAM: "
                        "%s\n",
                        wait ? "on" : "off",
                        leak ? "YES (leak!)" : "no");
            session.metric(wait ? "sim_leak_wait_on" : "sim_leak_wait_off",
                           static_cast<std::uint64_t>(leak));
        }
    }

    // --- D: pager pool size sweep ---------------------------------
    {
        std::printf("D. Background kernel time vs locked-cache size "
                    "(alpine):\n");
        for (unsigned pagerWays : {1u, 2u, 3u, 4u}) {
            SentryOptions options;
            options.backgroundMode = true;
            options.pagerWays = pagerWays;
            core::Device device(hw::PlatformConfig::tegra3(64 * MiB),
                                options);
            apps::BackgroundApp app(device.kernel(),
                                    apps::BackgroundProfile::alpine());
            app.populate();
            device.sentry().markSensitive(app.process());
            device.sentry().markBackground(app.process());
            device.kernel().lockScreen();

            Rng rng(17);
            app.run(20, rng);
            device.kernel().resetKernelCycles();
            const auto result = app.run(60, rng);
            std::printf("   %u way(s) = %3u KB: kernel time %6.3f s\n",
                        pagerWays, pagerWays * 128,
                        result.kernelSeconds);
            session.metric("sim_kernel_seconds_ways" +
                               std::to_string(pagerWays),
                           result.kernelSeconds);
        }
    }
    return 0;
}
