/**
 * @file
 * Figures 6, 7, 8 — performance of background computation while the
 * device is locked, for alpine (e-mail), vlock (lock screen), and
 * xmms2 (MP3 player), with 256 KB and 512 KB of locked L2 cache.
 *
 * Reports time spent inside the kernel with and without Sentry (the
 * paper's metric), on the Tegra 3 model with cache locking.
 *
 * Paper shape: alpine 2.74x at 256 KB (its working set thrashes the
 * pool), xmms2 +48% at 512 KB (streaming faults dominate), vlock close
 * to baseline (its state fits).
 */

#include <cstdio>

#include "apps/background_app.hh"
#include "bench_util.hh"
#include "core/device.hh"

using namespace sentry;
using namespace sentry::apps;

namespace
{

constexpr unsigned STEPS = 120;

/** Kernel seconds for one configuration (0 ways = without Sentry). */
double
measureKernelSeconds(const BackgroundProfile &profile, unsigned pager_ways,
                     std::uint64_t seed)
{
    core::SentryOptions options;
    options.placement = core::AesPlacement::Iram;
    options.backgroundMode = pager_ways > 0;
    options.pagerWays = pager_ways > 0 ? pager_ways : 2;

    hw::PlatformConfig config = hw::PlatformConfig::tegra3(64 * MiB);
    config.seed = seed;
    core::Device device(config, options);

    BackgroundApp app(device.kernel(), profile);
    app.populate();
    if (pager_ways > 0) {
        device.sentry().markSensitive(app.process());
        device.sentry().markBackground(app.process());
        device.kernel().lockScreen();
    }

    Rng rng(seed * 13 + 7);
    app.run(STEPS / 4, rng); // warm-up pass
    device.kernel().resetKernelCycles();
    return app.run(STEPS, rng).kernelSeconds;
}

void
runFigure(bench::Session &session, const char *figure,
          const BackgroundProfile &profile)
{
    RunningStat baseline, with256, with512;
    for (unsigned trial = 0; trial < bench::TRIALS; ++trial) {
        baseline.add(measureKernelSeconds(profile, 0, 100 + trial));
        with256.add(measureKernelSeconds(profile, 2, 200 + trial));
        with512.add(measureKernelSeconds(profile, 4, 300 + trial));
    }
    session.metric("sim_baseline_seconds_" + profile.name,
                   baseline.mean());
    session.metric("sim_sentry256_seconds_" + profile.name,
                   with256.mean());
    session.metric("sim_sentry512_seconds_" + profile.name,
                   with512.mean());
    std::printf("%s %s: time in kernel over %u steps\n", figure,
                profile.name.c_str(), STEPS);
    std::printf("  %-24s %8.3f ± %.3f s\n", "Without Sentry",
                baseline.mean(), baseline.stddev());
    std::printf("  %-24s %8.3f ± %.3f s  (%.2fx)\n",
                "With Sentry (256KB)", with256.mean(), with256.stddev(),
                with256.mean() / baseline.mean());
    std::printf("  %-24s %8.3f ± %.3f s  (%.2fx)\n\n",
                "With Sentry (512KB)", with512.mean(), with512.stddev(),
                with512.mean() / baseline.mean());
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("fig6to8_background");
    bench::banner("Figures 6-8: background computation while locked",
                  "kernel time with/without Sentry at 256/512 KB of "
                  "locked cache (Tegra 3, 10 trials)");

    runFigure(session, "Figure 6:", BackgroundProfile::alpine());
    runFigure(session, "Figure 7:", BackgroundProfile::vlock());
    runFigure(session, "Figure 8:", BackgroundProfile::xmms2());

    std::printf("Paper: alpine 2.74x @256KB; xmms2 +48%% @512KB; "
                "vlock near baseline; apps stay responsive.\n");
    return 0;
}
