/**
 * @file
 * Table 4 — the breakdown of AES state in bytes, by key size and
 * sensitivity class.
 *
 * Sizes are measured from this implementation's actual on-SoC state
 * layout (the same layout AES On SoC materialises), printed alongside
 * the paper's OpenSSL-based accounting. Our layout carries both the
 * encryption and decryption schedules and all eight T-tables, so the
 * round-key and table rows are larger than the paper's single-
 * direction numbers; the classification and the conclusions (access-
 * protected state dominates; everything fits in one 128 KB way) are
 * identical. See EXPERIMENTS.md for the detailed comparison.
 */

#include <cstdio>

#include "bench_util.hh"
#include "crypto/aes_state.hh"

using namespace sentry;
using namespace sentry::crypto;

int
main()
{
    bench::Session session("table4_aes_state");
    bench::banner("Table 4: the breakdown of AES state in bytes",
                  "measured from the AES On SoC state layout");

    const AesStateLayout layouts[] = {
        AesStateLayout::forKeyBytes(16),
        AesStateLayout::forKeyBytes(24),
        AesStateLayout::forKeyBytes(32),
    };

    std::printf("%-28s %10s %10s %10s  %s\n", "", "AES-128", "AES-192",
                "AES-256", "Sensitivity");
    for (std::size_t row = 0; row < layouts[0].components().size();
         ++row) {
        const auto &name = layouts[0].components()[row].name;
        std::printf("%-28s %10zu %10zu %10zu  %s\n", name.c_str(),
                    layouts[0].components()[row].bytes,
                    layouts[1].components()[row].bytes,
                    layouts[2].components()[row].bytes,
                    sensitivityName(
                        layouts[0].components()[row].sensitivity));
    }

    std::printf("%-28s %10zu %10zu %10zu\n", "TOTAL",
                layouts[0].totalBytes(), layouts[1].totalBytes(),
                layouts[2].totalBytes());
    session.metric("sim_total_bytes_aes128",
                   static_cast<std::uint64_t>(layouts[0].totalBytes()));
    session.metric("sim_total_bytes_aes192",
                   static_cast<std::uint64_t>(layouts[1].totalBytes()));
    session.metric("sim_total_bytes_aes256",
                   static_cast<std::uint64_t>(layouts[2].totalBytes()));

    std::printf("\nPer sensitivity class (AES-128):\n");
    for (auto s : {Sensitivity::Secret, Sensitivity::AccessProtected,
                   Sensitivity::Public}) {
        std::printf("  %-18s %6zu bytes\n", sensitivityName(s),
                    layouts[0].bytesOf(s));
        session.metric(std::string("sim_bytes_") + sensitivityName(s),
                       static_cast<std::uint64_t>(layouts[0].bytesOf(s)));
    }
    std::printf("\nPaper (OpenSSL single-direction accounting, AES-128): "
                "352 secret + 2600 access-protected + 18 public = 2970 "
                "bytes.\nKey property preserved: access-protected state "
                "is ~an order of magnitude larger than the rest — the "
                "reason register-only schemes cannot protect it.\n");
    return 0;
}
