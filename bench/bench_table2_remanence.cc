/**
 * @file
 * Table 2 — iRAM (SRAM) and DRAM data remanence on a commodity tablet.
 *
 * Methodology per section 4.1: fill memory with a repeating 8-byte
 * pattern, perform each of the three board resets, dump all of DRAM
 * and iRAM from the attacker boot, grep for the pattern, and report
 * the surviving fraction. Five trials each, room temperature.
 *
 * Paper reference values:
 *   OS reboot (no power loss):  iRAM 100%,  DRAM 96.4%
 *   Device reflash (power loss): iRAM 0%,   DRAM 97.5%
 *   2 second reset (power loss): iRAM 0%,   DRAM 0.1%
 */

#include <cstdio>

#include "attacks/cold_boot.hh"
#include "bench_util.hh"
#include "common/bytes.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::attacks;

namespace
{

/** One measurement: fresh device, filled memories, one reset. */
RemanenceMeasurement
runTrial(ColdBootVariant variant, std::uint64_t seed)
{
    // 256 MiB stands in for the paper's 1 GiB tablet; remanence is a
    // per-cell property, so the fraction is size-independent.
    hw::PlatformConfig config = hw::PlatformConfig::tegra3(256 * MiB);
    config.seed = seed;
    hw::Soc soc(config);

    const auto pattern = fromHex("5a5aa5a5c33c3cc3");
    fillPattern(soc.dram().raw(), pattern);
    fillPattern(soc.iram().raw(), pattern);

    ColdBootAttack attack(variant);
    return attack.measureRemanence(soc, pattern);
}

} // namespace

int
main()
{
    setQuiet(true);
    bench::Session session("table2_remanence");
    bench::banner("Table 2: iRAM and DRAM data remanence rates",
                  "memory preserved after each reset type "
                  "(5 trials, room temperature)");

    struct Row
    {
        ColdBootVariant variant;
        const char *label;
        double paperIram, paperDram;
    };
    const Row rows[] = {
        {ColdBootVariant::OsReboot, "OS Reboot (no power loss)", 100.0,
         96.4},
        {ColdBootVariant::DeviceReflash, "Device Reflash (power loss)",
         0.0, 97.5},
        {ColdBootVariant::TwoSecondReset, "2 Second Reset (power loss)",
         0.0, 0.1},
    };
    const char *slugs[] = {"os_reboot", "reflash", "two_second"};

    std::printf("%-30s %14s %14s %20s\n", "Memory Preserved", "iRAM",
                "DRAM", "(paper: iRAM/DRAM)");
    for (std::size_t r = 0; r < std::size(rows); ++r) {
        const Row &row = rows[r];
        RunningStat iram, dram;
        for (unsigned trial = 0; trial < 5; ++trial) {
            const RemanenceMeasurement m =
                runTrial(row.variant, 1000 + trial);
            iram.add(100.0 * m.iramFraction);
            dram.add(100.0 * m.dramFraction);
        }
        std::printf("%-30s %13.1f%% %13.1f%% %11.1f%% /%5.1f%%\n",
                    row.label, iram.mean(), dram.mean(), row.paperIram,
                    row.paperDram);
        session.metric(std::string("sim_iram_pct_") + slugs[r],
                       iram.mean());
        session.metric(std::string("sim_dram_pct_") + slugs[r],
                       dram.mean());
    }

    std::printf("\nFreezer variant (2 s reset at -18 C, Frost-style):\n");
    {
        hw::PlatformConfig config = hw::PlatformConfig::tegra3(256 * MiB);
        hw::Soc soc(config);
        const auto pattern = fromHex("5a5aa5a5c33c3cc3");
        fillPattern(soc.dram().raw(), pattern);
        fillPattern(soc.iram().raw(), pattern);
        ColdBootAttack frozen(ColdBootVariant::TwoSecondReset, -18.0);
        const auto m = frozen.measureRemanence(soc, pattern);
        std::printf("%-30s %13.1f%% %13.1f%%\n",
                    "2 Second Reset (frozen)", 100.0 * m.iramFraction,
                    100.0 * m.dramFraction);
        session.metric("sim_dram_pct_frozen", 100.0 * m.dramFraction);
    }
    return 0;
}
