/**
 * @file
 * Figure 10 — Linux kernel compile time ("make -j 5") as a function of
 * the number of locked L2 cache ways.
 *
 * The cache-sensitive compile workload runs through the real cache
 * model at every lockdown setting; compile time scales with the
 * measured miss-rate increase around the 14.41-minute baseline.
 *
 * Paper shape: one locked way costs ~7 seconds (<1%); time grows
 * gradually and is worst with the cache fully locked.
 */

#include <cstdio>

#include "apps/kernel_compile.hh"
#include "bench_util.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::apps;

int
main()
{
    setQuiet(true);
    bench::Session session("fig10_kernel_compile");
    bench::banner("Figure 10: kernel compile vs locked cache ways",
                  "make -j5 model on Tegra 3 (1 MB, 8-way L2), "
                  "5 trials per point");

    std::printf("%-14s %12s %14s %16s\n", "Locked ways", "Minutes",
                "vs baseline", "L2 miss rate");

    double baselineMinutes = 0.0;
    for (unsigned ways = 0; ways <= 8; ++ways) {
        RunningStat minutes, missRate;
        for (unsigned trial = 0; trial < 5; ++trial) {
            hw::PlatformConfig config =
                hw::PlatformConfig::tegra3(32 * MiB);
            config.seed = 500 + trial;
            hw::Soc soc(config);
            KernelCompileWorkload workload(14.41, 200'000);
            Rng rng(trial * 31 + ways);

            // Establish each trial's own unlocked baseline first so
            // the miss-rate delta is internally consistent.
            workload.run(soc, 0, rng);
            const KernelCompileResult result =
                workload.run(soc, ways, rng);
            minutes.add(result.minutes);
            missRate.add(result.l2MissRate);
        }
        if (ways == 0)
            baselineMinutes = minutes.mean();
        std::printf("%-14u %8.2f min %+12.1f%% %15.1f%%\n", ways,
                    minutes.mean(),
                    100.0 * (minutes.mean() / baselineMinutes - 1.0),
                    100.0 * missRate.mean());
        session.metric("sim_minutes_ways" + std::to_string(ways),
                       minutes.mean());
        session.metric("sim_missrate_ways" + std::to_string(ways),
                       missRate.mean());
    }

    std::printf("\nPaper: 14.41 min unlocked, 14.53 min with one way "
                "locked (+7.2 s, <1%%), gradually slower as more ways "
                "lock.\n");
    return 0;
}
