#!/usr/bin/env bash
# Perf-smoke driver: build and run the benchmarks that exercise the
# host fast path (bench_fig11_aes_throughput), the batched kcryptd
# pipeline (bench_fig9_dmcrypt), the fleet scenario engine
# (bench_fleet), the boot-once unlock path (bench_fig2_unlock), and
# the full security matrix with the adversary-v2 rows and the
# 3-backend x 7-attack defense comparison
# (bench_table3_security_matrix), then compare every `sim_`-prefixed
# metric in their BENCH_*.json records against the committed
# references in bench/reference/.
# Simulated quantities are deterministic, so ANY drift is a
# correctness regression and fails the run. `host_wall_*` keys are
# checked for *presence* only (their values are machine-dependent): a
# bench silently losing its timing is drift too.
#
# When the build was configured with -DSENTRY_TSAN=ON, the fleet,
# snapshot, and defense test labels also run under ThreadSanitizer at
# the end. With
# -DSENTRY_ASAN=ON or -DSENTRY_UBSAN=ON the full tier-1 test suite
# runs under that sanitizer instead.
#
# Usage: bench/run_benches.sh
#   BUILD_DIR=...  override the build tree (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
    cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j --target bench_fig11_aes_throughput \
    bench_fig9_dmcrypt bench_fleet bench_fig2_unlock \
    bench_table3_security_matrix

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

for bench in fig11_aes_throughput fig9_dmcrypt fleet fig2_unlock \
             table3_security_matrix; do
    echo "== bench_$bench =="
    SENTRY_BENCH_JSON_DIR="$OUT" "$BUILD/bench/bench_$bench"
done

python3 - "$ROOT/bench/reference" "$OUT" <<'EOF'
import json, math, sys
from pathlib import Path

refdir, outdir = Path(sys.argv[1]), Path(sys.argv[2])
failures = 0
for ref_path in sorted(refdir.glob("BENCH_*.json")):
    new_path = outdir / ref_path.name
    if not new_path.exists():
        print(f"DRIFT: {ref_path.name} was not produced by this run")
        failures += 1
        continue
    ref = json.load(ref_path.open())["metrics"]
    new = json.load(new_path.open())["metrics"]
    for key, want in ref.items():
        if not key.startswith("sim_"):
            continue
        got = new.get(key)
        if isinstance(want, float):
            ok = got is not None and math.isclose(
                want, got, rel_tol=1e-12, abs_tol=1e-12)
        else:
            ok = want == got
        if not ok:
            print(f"DRIFT: {ref_path.name}: {key}: "
                  f"reference {want!r} != current {got!r}")
            failures += 1
    for key in new:
        if key.startswith("sim_") and key not in ref:
            print(f"DRIFT: {ref_path.name}: new metric {key} not in "
                  f"reference (regenerate bench/reference/)")
            failures += 1
    # host_wall_* values are machine-dependent, but the *set* of keys
    # is part of the record format: compare presence both directions.
    ref_wall = {k for k in ref if k.startswith("host_wall_")}
    new_wall = {k for k in new if k.startswith("host_wall_")}
    for key in sorted(ref_wall ^ new_wall):
        where = "lost" if key in ref_wall else "gained"
        print(f"DRIFT: {ref_path.name}: {where} host timing key {key}")
        failures += 1
    # Every record names the host CPU features and active kernel tiers
    # (host/kernels.hh), so a perf number can always be traced to the
    # tier that produced it.
    if "host_cpu_features" not in new:
        print(f"DRIFT: {ref_path.name}: missing host_cpu_features key")
        failures += 1
# The two tier-parity benchmarks time the active kernel tier against
# the pinned portable tier (and exit nonzero themselves if the outputs
# diverge); losing either timing key means the comparison stopped
# running.
for name in ("BENCH_fig9_dmcrypt.json", "BENCH_fleet.json"):
    path = outdir / name
    if not path.exists():
        continue
    record = json.load(path.open())["metrics"]
    for key in ("host_wall_tier_active_seconds",
                "host_wall_tier_portable_seconds"):
        if key not in record:
            print(f"DRIFT: {name}: missing kernel-tier timing key {key}")
            failures += 1
# The sharded fleet engine must publish its streaming-aggregation
# layout (sim_shard_*) and the population-scale per-device host-time
# series. Values are covered above (sim_) or machine-dependent (host_);
# here we pin that the keys exist at all.
fleet_new = outdir / "BENCH_fleet.json"
if fleet_new.exists():
    fleet = json.load(fleet_new.open())["metrics"]
    required = ["sim_shard_count", "sim_shard_size",
                "sim_shard_sample_cap", "sim_shard_samples_retained",
                "sim_defense_kind", "sim_defense_claim_breaches",
                "sim_defense_vulnerable_hits", "sim_defense_rekeys",
                "sim_defense_evictions", "sim_defense_extra_seconds",
                "sim_defense_extra_joules",
                "host_per_device_ns_1000", "host_per_device_ns_10000",
                "host_per_device_ns_100000",
                "host_scale_flatness_100k_vs_1k"]
    for key in required:
        if key not in fleet:
            print(f"DRIFT: BENCH_fleet.json: missing required sharded-"
                  f"engine key {key}")
            failures += 1
# The security matrix must carry the adversary-v2 rows (defense off
# and on for each new attack); values are pinned by the sim_ check
# above, presence is pinned here so a silently dropped row is drift.
matrix_new = outdir / "BENCH_table3_security_matrix.json"
if matrix_new.exists():
    matrix = json.load(matrix_new.open())["metrics"]
    required = ["sim_unsafe_prime_probe_open",
                "sim_unsafe_prime_probe_locked",
                "sim_v2_prime_probe_locked_writebacks",
                "sim_unsafe_evict_reload_open",
                "sim_unsafe_evict_reload_locked",
                "sim_unsafe_rowhammer_open",
                "sim_unsafe_rowhammer_catt",
                "sim_v2_rowhammer_victim_flips_catt",
                "sim_unsafe_tz_sidechannel_open",
                "sim_unsafe_tz_sidechannel_hardened",
                "sim_v2_tz_recovered_nibbles_hardened"]
    for key in required:
        if key not in matrix:
            print(f"DRIFT: BENCH_table3_security_matrix.json: missing "
                  f"required adversary-v2 key {key}")
            failures += 1
    # The defense-backend comparison (DESIGN.md section 13): the full
    # 3-backend x 7-attack verdict grid, the cross-backend schedule
    # parity counter, and each backend's simulated overhead ledger.
    backends = ["sentry", "amnesia", "memshield"]
    verbs = ["cold_boot", "bus_monitor", "dma", "prime_probe",
             "evict_reload", "rowhammer", "tz_side_channel"]
    required = [f"sim_defense_breached_{b}_{v}"
                for b in backends for v in verbs]
    required.append("sim_defense_schedule_mismatches")
    required += [f"sim_defense_{b}_{cost}" for b in backends
                 for cost in ("rekeys", "evictions", "extra_seconds",
                              "extra_joules")]
    for key in required:
        if key not in matrix:
            print(f"DRIFT: BENCH_table3_security_matrix.json: missing "
                  f"required defense-backend key {key}")
            failures += 1
if failures:
    print(f"{failures} deterministic metric(s) drifted")
    sys.exit(1)
print("all sim_ metrics match the committed references")
EOF

# TSAN builds: run the fleet, snapshot, and defense concurrency tests
# under the sanitizer (the scenario engine, the per-device stacks, the
# kcryptd pools, the shared COW snapshots, and the multi-backend
# differential harness all cross real threads).
if grep -q "^SENTRY_TSAN:BOOL=ON$" "$BUILD/CMakeCache.txt"; then
    echo "== fleet + snapshot + defense tests under ThreadSanitizer =="
    cmake --build "$BUILD" -j --target sentry_fleet_tests \
        sentry_snapshot_tests sentry_defense_tests
    ctest --test-dir "$BUILD" -L 'fleet|snapshot|defense' \
        --output-on-failure
fi

# ASAN/UBSAN builds: the whole tier-1 suite runs under the sanitizer
# (memory errors and UB hide anywhere, not just in the threaded code).
for san in ASAN UBSAN; do
    if grep -q "^SENTRY_${san}:BOOL=ON$" "$BUILD/CMakeCache.txt"; then
        echo "== tier-1 tests under SENTRY_${san} =="
        cmake --build "$BUILD" -j
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
    fi
done
