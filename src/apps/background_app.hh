/**
 * @file
 * Background applications for the locked-device experiments (Figures
 * 6-8): alpine (e-mail), vlock (lock screen), and xmms2 (MP3 player) —
 * "the types of actions users do when their smartphones are locked".
 *
 * Each profile combines up to three access components per step:
 *   - randomHot:  uniform touches over a hot working set (alpine's
 *     mailbox index, vlock's tiny state);
 *   - ring:       cyclic sequential touches over a reuse buffer
 *     (xmms2's decode ring — fits in 512 KB of locked cache, thrashes
 *     in 256 KB);
 *   - stream:     strictly new pages every step (xmms2's incoming
 *     audio data — faults regardless of pool size).
 */

#ifndef SENTRY_APPS_BACKGROUND_APP_HH
#define SENTRY_APPS_BACKGROUND_APP_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "os/kernel.hh"

namespace sentry::apps
{

/** Access mix of one background app. */
struct BackgroundProfile
{
    std::string name;

    std::size_t randomHotBytes = 0;
    unsigned randomTouchesPerStep = 0;

    std::size_t ringBytes = 0;
    unsigned ringTouchesPerStep = 0;

    std::size_t streamBytes = 0;
    unsigned streamTouchesPerStep = 0;

    /** Kernel time per step without Sentry (syscalls, I/O). */
    double baselineKernelSecondsPerStep = 0.0;
    /** User-mode compute per step. */
    double userSecondsPerStep = 0.0;

    static BackgroundProfile alpine();
    static BackgroundProfile vlock();
    static BackgroundProfile xmms2();
};

/** Result of a background run. */
struct BackgroundRunResult
{
    double kernelSeconds = 0.0;
    double totalSeconds = 0.0;
};

/** One instantiated background app. */
class BackgroundApp
{
  public:
    BackgroundApp(os::Kernel &kernel, const BackgroundProfile &profile);

    /** @return the underlying process. */
    os::Process &process() { return *process_; }

    /** @return the profile. */
    const BackgroundProfile &profile() const { return profile_; }

    /** Write initial data into every VMA. */
    void populate();

    /**
     * Run @p steps steps of the access mix, measuring time spent in the
     * kernel (fault handling, paging, crypto, baseline syscalls).
     */
    BackgroundRunResult run(unsigned steps, Rng &rng);

  private:
    os::Kernel &kernel_;
    BackgroundProfile profile_;
    os::Process *process_;
    VirtAddr hotBase_ = 0;
    VirtAddr ringBase_ = 0;
    VirtAddr streamBase_ = 0;
    std::size_t ringCursor_ = 0;
    std::size_t streamCursor_ = 0;
};

} // namespace sentry::apps

#endif // SENTRY_APPS_BACKGROUND_APP_HH
