#include "apps/background_app.hh"

#include <vector>

#include "common/logging.hh"

namespace sentry::apps
{

BackgroundProfile
BackgroundProfile::alpine()
{
    BackgroundProfile p;
    p.name = "alpine";
    // Mailbox index + message cache: random touches over ~800 KB.
    p.randomHotBytes = 800 * KiB;
    p.randomTouchesPerStep = 22;
    p.baselineKernelSecondsPerStep = 6.4e-3;
    p.userSecondsPerStep = 20e-3;
    return p;
}

BackgroundProfile
BackgroundProfile::vlock()
{
    BackgroundProfile p;
    p.name = "vlock";
    // Tiny state: a few pages of screen/input bookkeeping, plus an
    // occasional cold page (redraw buffers).
    p.randomHotBytes = 80 * KiB;
    p.randomTouchesPerStep = 5;
    p.streamBytes = 256 * KiB;
    p.streamTouchesPerStep = 1;
    p.baselineKernelSecondsPerStep = 2.0e-3;
    p.userSecondsPerStep = 5e-3;
    return p;
}

BackgroundProfile
BackgroundProfile::xmms2()
{
    BackgroundProfile p;
    p.name = "xmms2";
    // Decode ring (reused; survives in 512 KB of locked cache once
    // the streaming traffic is accounted for, thrashes in 256 KB) plus
    // a stream of fresh audio data that always faults.
    p.ringBytes = 224 * KiB;
    p.ringTouchesPerStep = 10;
    p.streamBytes = 4 * MiB;
    p.streamTouchesPerStep = 4;
    p.baselineKernelSecondsPerStep = 9.0e-3;
    p.userSecondsPerStep = 30e-3;
    return p;
}

BackgroundApp::BackgroundApp(os::Kernel &kernel,
                             const BackgroundProfile &profile)
    : kernel_(kernel), profile_(profile)
{
    process_ = &kernel_.createProcess(profile.name);
    if (profile.randomHotBytes > 0) {
        hotBase_ = kernel_
                       .addVma(*process_, "hot", os::VmaType::Heap,
                               profile.randomHotBytes)
                       .base;
    }
    if (profile.ringBytes > 0) {
        ringBase_ = kernel_
                        .addVma(*process_, "ring", os::VmaType::Heap,
                                profile.ringBytes)
                        .base;
    }
    if (profile.streamBytes > 0) {
        streamBase_ = kernel_
                          .addVma(*process_, "stream", os::VmaType::Heap,
                                  profile.streamBytes)
                          .base;
    }
}

void
BackgroundApp::populate()
{
    std::vector<std::uint8_t> page(PAGE_SIZE);
    for (const os::Vma &vma : process_->addressSpace().vmas()) {
        for (std::size_t off = 0; off < vma.size; off += PAGE_SIZE) {
            for (std::size_t i = 0; i < PAGE_SIZE; ++i) {
                page[i] = static_cast<std::uint8_t>(profile_.name[0] + i +
                                                    (off >> 12));
            }
            kernel_.writeVirt(*process_, vma.base + off, page.data(),
                              PAGE_SIZE);
        }
    }
}

BackgroundRunResult
BackgroundApp::run(unsigned steps, Rng &rng)
{
    hw::Soc &soc = kernel_.soc();
    const Cycles kernelStart = kernel_.kernelCycles();
    SimStopwatch watch(soc.clock());

    for (unsigned step = 0; step < steps; ++step) {
        // User-mode compute (decode, polling) — not kernel time.
        soc.chargeCpuSeconds(profile_.userSecondsPerStep);

        // Baseline kernel work (syscalls, device I/O).
        {
            os::Kernel::KernelTimer timer(kernel_);
            soc.chargeCpuSeconds(profile_.baselineKernelSecondsPerStep);
        }

        // Memory touches: every touch may fault into the pager.
        const std::size_t hotPages = profile_.randomHotBytes / PAGE_SIZE;
        for (unsigned t = 0; t < profile_.randomTouchesPerStep; ++t) {
            const std::size_t page = rng.below(hotPages);
            kernel_.touchRange(*process_, hotBase_ + page * PAGE_SIZE, 8);
        }
        const std::size_t ringPages = profile_.ringBytes / PAGE_SIZE;
        for (unsigned t = 0; t < profile_.ringTouchesPerStep; ++t) {
            kernel_.touchRange(
                *process_, ringBase_ + ringCursor_ * PAGE_SIZE, 8);
            ringCursor_ = (ringCursor_ + 1) % ringPages;
        }
        const std::size_t streamPages = profile_.streamBytes / PAGE_SIZE;
        for (unsigned t = 0; t < profile_.streamTouchesPerStep; ++t) {
            kernel_.touchRange(
                *process_, streamBase_ + streamCursor_ * PAGE_SIZE, 8,
                /*write=*/true);
            streamCursor_ = (streamCursor_ + 1) % streamPages;
        }
    }

    BackgroundRunResult result;
    result.kernelSeconds = soc.clock().toSeconds(kernel_.kernelCycles() -
                                                 kernelStart);
    result.totalSeconds = watch.elapsedSeconds();
    return result;
}

} // namespace sentry::apps
