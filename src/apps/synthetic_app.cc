#include "apps/synthetic_app.hh"

#include <cstring>

#include "common/logging.hh"

namespace sentry::apps
{

SyntheticApp::SyntheticApp(os::Kernel &kernel, const AppProfile &profile)
    : kernel_(kernel), profile_(profile)
{
    if (profile.resumeSetBytes + profile.scriptTouchedBytes +
            profile.dmaRegionBytes >
        profile.residentBytes) {
        fatal("app \"%s\": working sets exceed the resident size",
              profile.name.c_str());
    }

    process_ = &kernel_.createProcess(profile.name);
    const std::size_t heapBytes =
        profile.residentBytes - profile.dmaRegionBytes;
    heapBase_ = kernel_
                    .addVma(*process_, "heap", os::VmaType::Heap,
                            heapBytes)
                    .base;
    if (profile.dmaRegionBytes > 0) {
        dmaBase_ = kernel_
                       .addVma(*process_, "gpu-dma",
                               os::VmaType::DmaRegion,
                               profile.dmaRegionBytes)
                       .base;
    }
}

SyntheticApp::SyntheticApp(os::Kernel &kernel, os::Process &process)
    : kernel_(kernel), profile_(AppProfile::byName(process.name())),
      process_(&process)
{
    for (const os::Vma &vma : process.addressSpace().vmas()) {
        if (vma.name == "heap")
            heapBase_ = vma.base;
        else if (vma.name == "gpu-dma")
            dmaBase_ = vma.base;
    }
    if (heapBase_ == 0)
        fatal("app \"%s\": process has no heap VMA to attach to",
              profile_.name.c_str());
}

void
SyntheticApp::populate(std::span<const std::uint8_t> secret)
{
    std::vector<std::uint8_t> page(PAGE_SIZE);
    const std::size_t heapBytes =
        profile_.residentBytes - profile_.dmaRegionBytes;

    for (std::size_t off = 0; off < heapBytes; off += PAGE_SIZE) {
        // App data: name, counters, and the secret every fourth page.
        for (std::size_t i = 0; i < PAGE_SIZE; ++i) {
            page[i] = static_cast<std::uint8_t>(
                profile_.name[i % profile_.name.size()] + (off >> 12));
        }
        if (!secret.empty() && (off / PAGE_SIZE) % 4 == 0)
            std::memcpy(page.data() + 64, secret.data(), secret.size());
        kernel_.writeVirt(*process_, heapBase_ + off, page.data(),
                          PAGE_SIZE);
    }
    if (profile_.dmaRegionBytes > 0) {
        for (std::size_t off = 0; off < profile_.dmaRegionBytes;
             off += PAGE_SIZE) {
            kernel_.writeVirt(*process_, dmaBase_ + off, page.data(),
                              PAGE_SIZE);
        }
    }
}

double
SyntheticApp::resume()
{
    SimStopwatch watch(kernel_.soc().clock());
    kernel_.touchRange(*process_, heapBase_, profile_.resumeSetBytes);
    return watch.elapsedSeconds();
}

double
SyntheticApp::runScript()
{
    SimStopwatch watch(kernel_.soc().clock());

    // Interleave foreground compute with on-demand page touches: the
    // script touches its pages uniformly across its duration.
    const std::size_t pages = profile_.scriptTouchedBytes / PAGE_SIZE;
    const double computePerPage =
        pages > 0 ? profile_.scriptSeconds / static_cast<double>(pages)
                  : profile_.scriptSeconds;
    const VirtAddr scriptBase = heapBase_ + profile_.resumeSetBytes;

    if (pages == 0) {
        kernel_.soc().chargeCpuSeconds(profile_.scriptSeconds);
        return watch.elapsedSeconds();
    }
    for (std::size_t page = 0; page < pages; ++page) {
        kernel_.soc().chargeCpuSeconds(computePerPage);
        kernel_.touchRange(*process_, scriptBase + page * PAGE_SIZE,
                           PAGE_SIZE);
    }
    return watch.elapsedSeconds();
}

} // namespace sentry::apps
