/**
 * @file
 * sentry_fuzz — FaultSim invariant fuzzer.
 *
 * Campaign mode generates random (scenario, fault schedule) trials from
 * a seed, runs each on one simulated device with the full security
 * audit after every step, and shrinks any failure to a minimal
 * reproducer written to disk. Generated scenarios draw on the whole
 * attack verb set, including the adversary-v2 kinds (prime_probe,
 * evict_reload, rowhammer, tz_side_channel); their AttackOutcome
 * digests ride in each trial digest (the "atk:" segment), so a replay
 * must reproduce the attack byte for byte, not just the verdict:
 *
 *   $ sentry_fuzz --seed 0xdecaf --trials 16
 *
 * Replay mode re-runs a reproducer file and reports whether the
 * recorded verdict reproduces:
 *
 *   $ sentry_fuzz --schedule FUZZ_repro_3.fuzz
 *
 * All output is deterministic (no timestamps, no host randomness), so
 * two runs with the same arguments are byte-identical.
 *
 * Exit status, campaign mode: 0 when every trial upheld the invariants,
 * 1 when any failed. Replay mode: 0 when the recorded verdict
 * reproduced (or the file had none and the trial passed), 1 otherwise.
 * 2 on usage/parse errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "fault/fuzzer.hh"
#include "fleet/shard.hh"
#include "host/kernels.hh"

using namespace sentry;

namespace
{

void
usage()
{
    std::printf(
        "usage: sentry_fuzz [options]\n"
        "  --seed HEX|DEC   campaign seed (default 0x5e47f0220000001)\n"
        "  --trials N       trials to run (default 8)\n"
        "  --jobs N         campaign worker threads (default 1; output\n"
        "                   is identical for any job count)\n"
        "  --steps N        approx. scenario steps per trial (default 18)\n"
        "  --schedule FILE  replay a reproducer instead of fuzzing\n"
        "  --repro-dir DIR  where to write reproducers (default '.')\n"
        "  --no-shrink      keep failing trials unminimized\n"
        "  --platform NAME  tegra3 or nexus4 (default tegra3)\n"
        "  --defense NAME   pin every trial to one backend (sentry,\n"
        "                   amnesia, or memshield; default: draw per\n"
        "                   trial)\n"
        "  --dram SIZE      per-trial DRAM, e.g. 16MiB\n"
        "  --trace-out PATH write the last trial's timeline as\n"
        "                   chrome://tracing JSON\n"
        "  --snapshot       fork each trial device from a warmed COW\n"
        "                   snapshot (fuzzes the fork path)\n"
        "  --cold-boot      boot each trial device from scratch "
        "(default)\n"
        "  --host-info      print detected host CPU features and the\n"
        "                   active kernel tier per hot path, then exit\n");
}

[[noreturn]] void
usageError(const std::string &what)
{
    std::fprintf(stderr, "sentry_fuzz: %s\n", what.c_str());
    usage();
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        usageError(std::string(flag) + " needs a value");
    return argv[++i];
}

std::string
trialSummary(const fault::FuzzTrialSpec &spec)
{
    std::ostringstream out;
    out << spec.scenario.steps.size() << " steps, "
        << spec.faults.faults.size() << " faults";
    return out.str();
}

int
replay(const std::string &path, const fault::FuzzOptions &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "sentry_fuzz: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    fault::TrialFile file;
    try {
        file = fault::parseTrialFile(text.str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sentry_fuzz: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
    }

    const fault::TrialOutcome outcome =
        fault::runTrial(file.spec, options);
    std::printf("replay %s: seed 0x%llx (%s)\n", path.c_str(),
                static_cast<unsigned long long>(file.spec.seed),
                trialSummary(file.spec).c_str());
    std::printf("  verdict %s  [%s]\n", outcome.ok ? "OK" : "FAIL",
                outcome.digest.c_str());
    if (!outcome.ok)
        std::printf("  error: %s\n", outcome.error.c_str());

    if (!file.hasExpectation)
        return outcome.ok ? 0 : 1;
    const bool reproduced = file.expectFail != outcome.ok;
    std::printf("  recorded verdict %s: %s\n",
                file.expectFail ? "FAIL" : "OK",
                reproduced ? "reproduced" : "DIVERGED");
    return reproduced ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    fault::FuzzOptions options;
    std::string schedulePath;
    std::string reproDir = ".";
    unsigned jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--seed") == 0) {
            options.seed =
                std::strtoull(nextArg(argc, argv, i, arg), nullptr, 0);
        } else if (std::strcmp(arg, "--trials") == 0) {
            options.trials = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--jobs") == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--steps") == 0) {
            options.steps = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--schedule") == 0) {
            schedulePath = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--repro-dir") == 0) {
            reproDir = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            options.shrink = false;
        } else if (std::strcmp(arg, "--snapshot") == 0) {
            options.spawnSnapshot = true;
        } else if (std::strcmp(arg, "--cold-boot") == 0) {
            options.spawnSnapshot = false;
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            options.traceOutPath = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--platform") == 0) {
            const std::string name = nextArg(argc, argv, i, arg);
            if (name == "tegra3")
                options.platform = fleet::FleetPlatform::Tegra3;
            else if (name == "nexus4")
                options.platform = fleet::FleetPlatform::Nexus4;
            else
                usageError("unknown platform '" + name + "'");
        } else if (std::strcmp(arg, "--defense") == 0) {
            const std::string name = nextArg(argc, argv, i, arg);
            const auto kind = core::parseDefenseKind(name);
            if (!kind.has_value())
                usageError("unknown defense backend '" + name + "'");
            options.defense = *kind;
        } else if (std::strcmp(arg, "--dram") == 0) {
            try {
                options.dramBytes =
                    fleet::parseSize(nextArg(argc, argv, i, arg), 0);
            } catch (const fleet::ScenarioError &e) {
                usageError(std::string("--dram: ") + e.what());
            }
        } else if (std::strcmp(arg, "--host-info") == 0) {
            std::printf("%s", host::hostInfoString().c_str());
            return 0;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else {
            usageError(std::string("unknown option '") + arg + "'");
        }
    }
    if (options.trials == 0 || options.steps == 0)
        usageError("--trials and --steps must be positive");
    if (jobs == 0)
        usageError("--jobs must be positive");
    if (jobs > 1 && !options.traceOutPath.empty())
        usageError("--trace-out needs --jobs 1 (a single trial's "
                   "timeline cannot interleave workers)");

    if (!schedulePath.empty())
        return replay(schedulePath, options);

    std::printf("campaign seed 0x%llx: %u trials, ~%u steps each\n",
                static_cast<unsigned long long>(options.seed),
                options.trials, options.steps);

    // Trials are independent (each builds its own device), so the
    // campaign fans out over the fleet work-stealing queue — one
    // "shard" per trial. Output is buffered per trial and printed in
    // trial order, so any job count emits identical bytes.
    std::vector<std::string> reports(options.trials);
    // Plain bytes, not vector<bool>: workers write distinct elements
    // concurrently, which the bit-packed specialization cannot take.
    std::vector<unsigned char> failed(options.trials, 0);
    const auto runTrialAt = [&](unsigned t) {
        std::string &out = reports[t];
        char head[64];
        const fault::FuzzTrialSpec spec =
            fault::generateTrial(options, t);
        const fault::TrialOutcome outcome =
            fault::runTrial(spec, options);
        std::snprintf(head, sizeof head, "trial %u seed 0x%llx (", t,
                      static_cast<unsigned long long>(spec.seed));
        out += head;
        out += trialSummary(spec);
        out += "): ";
        out += outcome.ok ? "OK"
                          : "FAIL/" + fault::classifyOutcome(outcome);
        out += "  [";
        out += outcome.digest;
        out += "]\n";
        if (outcome.ok)
            return;
        failed[t] = 1;
        out += "  error: " + outcome.error + "\n";

        fault::FuzzTrialSpec repro = spec;
        fault::TrialOutcome reproOutcome = outcome;
        if (options.shrink) {
            repro = fault::shrinkTrial(spec, options);
            reproOutcome = fault::runTrial(repro, options);
            out += "  shrunk to " + trialSummary(repro) + "\n";
        }
        char stem[64];
        std::snprintf(stem, sizeof stem, "/FUZZ_repro_%016llx_%u.fuzz",
                      static_cast<unsigned long long>(options.seed), t);
        const std::string name = reproDir + stem;
        std::ofstream file(name, std::ios::binary | std::ios::trunc);
        if (file) {
            file << fault::formatTrialFile(repro, &reproOutcome);
            out += "  wrote " + name + "\n";
        } else {
            std::fprintf(stderr, "sentry_fuzz: cannot write %s\n",
                         name.c_str());
        }
    };

    const unsigned workers = std::min(jobs, options.trials);
    if (workers <= 1) {
        for (unsigned t = 0; t < options.trials; ++t)
            runTrialAt(t);
    } else {
        fleet::WorkQueue queue(options.trials, workers);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                unsigned t = 0;
                while (queue.next(w, t))
                    runTrialAt(t);
            });
        }
        for (std::thread &thread : pool)
            thread.join();
    }

    unsigned failures = 0;
    for (unsigned t = 0; t < options.trials; ++t) {
        std::fputs(reports[t].c_str(), stdout);
        if (failed[t])
            ++failures;
    }
    std::printf("%u/%u trials upheld the invariant set\n",
                options.trials - failures, options.trials);
    return failures == 0 ? 0 : 1;
}
