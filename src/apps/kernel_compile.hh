/**
 * @file
 * The cache-sensitive "Linux kernel compile" workload behind Figure 10:
 * compilation time as a function of how many L2 ways are locked.
 *
 * A `make -j5` build has a hot working set (compiler + headers) that
 * almost fits in the 1 MB L2 plus a long tail of cold accesses. The
 * workload replays that mix through the real cache model at each
 * lockdown setting, measures the resulting miss rate, and converts the
 * miss-rate increase into compile time around the paper's 14.41-minute
 * baseline (one locked way costs < 1%; locking everything makes every
 * access go uncached).
 */

#ifndef SENTRY_APPS_KERNEL_COMPILE_HH
#define SENTRY_APPS_KERNEL_COMPILE_HH

#include <cstdint>

#include "common/rng.hh"
#include "hw/soc.hh"

namespace sentry::apps
{

/** One simulated compile. */
struct KernelCompileResult
{
    unsigned lockedWays = 0;
    double l2MissRate = 0.0;
    double minutes = 0.0;
};

/** The workload driver. */
class KernelCompileWorkload
{
  public:
    /**
     * @param baseline_minutes compile time with no ways locked
     * @param accesses         sampled memory accesses per run
     */
    explicit KernelCompileWorkload(double baseline_minutes = 14.41,
                                   std::size_t accesses = 300'000)
        : baselineMinutes_(baseline_minutes), accesses_(accesses)
    {}

    /**
     * Run the compile with @p locked_ways ways locked. Requires the
     * secure world (lockdown programming); restores lockdown state
     * afterwards.
     */
    KernelCompileResult run(hw::Soc &soc, unsigned locked_ways, Rng &rng);

  private:
    double baselineMinutes_;
    std::size_t accesses_;
    double baselineMissRate_ = -1.0; //!< measured lazily at 0 ways
};

} // namespace sentry::apps

#endif // SENTRY_APPS_KERNEL_COMPILE_HH
