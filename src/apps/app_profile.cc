#include "apps/app_profile.hh"

#include "common/logging.hh"

namespace sentry::apps
{

const std::vector<AppProfile> &
AppProfile::paperApps()
{
    // resident / resume / script-touched / script-seconds / dma.
    // Resume + script + DMA never exceeds the resident set.
    static const std::vector<AppProfile> apps = {
        {"Contacts", 24 * MiB, 4 * MiB, 18 * MiB, 23.0, 1 * MiB},
        {"Maps", 48 * MiB, 20 * MiB, 3 * MiB, 20.0, 15 * MiB},
        {"Twitter", 32 * MiB, 16 * MiB, 4 * MiB, 17.0, 3 * MiB},
        {"MP3", 25 * MiB, 7 * MiB, 1 * MiB, 300.0, 1 * MiB},
    };
    return apps;
}

const AppProfile &
AppProfile::byName(const std::string &name)
{
    for (const auto &app : paperApps()) {
        if (app.name == name)
            return app;
    }
    fatal("unknown paper app \"%s\"", name.c_str());
}

} // namespace sentry::apps
