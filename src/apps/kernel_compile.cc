#include "apps/kernel_compile.hh"

#include <cmath>

#include "common/logging.hh"

namespace sentry::apps
{

KernelCompileResult
KernelCompileWorkload::run(hw::Soc &soc, unsigned locked_ways, Rng &rng)
{
    hw::L2Cache &l2 = soc.l2();
    if (locked_ways > l2.ways())
        fatal("cannot lock %u of %u ways", locked_ways, l2.ways());

    // Address mix: 85% of accesses hit a ~768 KiB hot set (compiler
    // binary + headers, zipf-skewed), 15% stream over an 8 MiB cold
    // region (sources, objects).
    const std::size_t hotBytes = 640 * KiB;
    const std::size_t coldBytes = 8 * MiB;
    const PhysAddr hotBase = DRAM_BASE;
    const PhysAddr coldBase = DRAM_BASE + hotBytes;

    const std::uint32_t savedLockdown = l2.lockdownReg();
    {
        hw::SecureWorldGuard secure(soc.trustzone());
        if (!secure.entered())
            fatal("kernel-compile sweep needs lockdown access");
        // Locked ways hold Sentry's data, not the compiler's: start
        // each configuration from an empty cache so residual lines
        // from a previous sweep point cannot serve hits.
        l2.rawFlushAll();
        l2.writeLockdownReg((1u << locked_ways) - 1);
    }

    // Warm up, then measure.
    const auto runAccesses = [&](std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            PhysAddr addr;
            if (rng.chance(0.85)) {
                // Quadratic skew approximates a zipf-ish hot set.
                const double u = rng.uniform();
                addr = hotBase +
                       alignDown(static_cast<PhysAddr>(
                                     u * u * static_cast<double>(hotBytes)),
                                 4);
            } else {
                addr = coldBase + alignDown(rng.below(coldBytes), 4);
            }
            soc.memory().read32(addr);
        }
    };

    runAccesses(accesses_ / 4); // warm-up
    l2.clearStats();
    runAccesses(accesses_);

    const hw::L2Stats &stats = l2.stats();
    // Uncached accesses (all ways locked) are already counted in
    // misses by the cache model.
    const double total = static_cast<double>(stats.hits + stats.misses);
    const double missRate =
        total > 0 ? static_cast<double>(stats.misses) / total : 0.0;

    {
        hw::SecureWorldGuard secure(soc.trustzone());
        l2.writeLockdownReg(savedLockdown);
    }

    // Lazily establish the unlocked-baseline miss rate.
    if (locked_ways == 0)
        baselineMissRate_ = missRate;
    if (baselineMissRate_ < 0) {
        Rng baselineRng(rng.next64());
        KernelCompileWorkload probe(baselineMinutes_, accesses_);
        baselineMissRate_ = probe.run(soc, 0, baselineRng).l2MissRate;
    }

    // Miss-rate increase -> compile-time increase. alpha calibrated so
    // a fully-locked cache (miss rate ~1) costs ~40% more wall clock.
    constexpr double alpha = 0.45;
    KernelCompileResult result;
    result.lockedWays = locked_ways;
    result.l2MissRate = missRate;
    result.minutes = baselineMinutes_ *
                     (1.0 + alpha * std::max(0.0, missRate -
                                                      baselineMissRate_));
    return result;
}

} // namespace sentry::apps
