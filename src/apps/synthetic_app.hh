/**
 * @file
 * A synthetic sensitive application driven by an AppProfile: it owns a
 * process with a heap VMA and a DMA-region VMA, populates them with
 * recognisable plaintext (so attacks have something to find), and
 * replays the paper's workload phases — resume-after-unlock and the
 * scripted foreground run.
 */

#ifndef SENTRY_APPS_SYNTHETIC_APP_HH
#define SENTRY_APPS_SYNTHETIC_APP_HH

#include <cstdint>
#include <span>
#include <vector>

#include "apps/app_profile.hh"
#include "os/kernel.hh"

namespace sentry::apps
{

/** One instantiated sensitive app. */
class SyntheticApp
{
  public:
    /** Create the process and map its VMAs in @p kernel. */
    SyntheticApp(os::Kernel &kernel, const AppProfile &profile);

    /**
     * Attach to an existing process created by an earlier SyntheticApp
     * (typically on a forked device, where the process and its VMAs
     * arrive via the snapshot). Recovers the profile from the process
     * name and the heap/DMA bases from the mapped VMAs; fatal when the
     * process was not built by this class.
     */
    SyntheticApp(os::Kernel &kernel, os::Process &process);

    /** @return the underlying process. */
    os::Process &process() { return *process_; }

    /** @return the profile. */
    const AppProfile &profile() const { return profile_; }

    /**
     * Fill the heap with app data laced with @p secret every few pages
     * (the e-mails/photos/web-history an attacker wants).
     */
    void populate(std::span<const std::uint8_t> secret);

    /**
     * Resume after unlock: touch the resume working set.
     * @return simulated seconds taken.
     */
    double resume();

    /**
     * Run the scripted workload: touches scriptTouchedBytes spread over
     * scriptSeconds of foreground compute.
     * @return total simulated seconds (compute + decryption overhead).
     */
    double runScript();

    /** @return heap VMA base (tests poke specific pages). */
    VirtAddr heapBase() const { return heapBase_; }

    /** @return DMA VMA base. */
    VirtAddr dmaBase() const { return dmaBase_; }

  private:
    os::Kernel &kernel_;
    AppProfile profile_;
    os::Process *process_;
    VirtAddr heapBase_ = 0;
    VirtAddr dmaBase_ = 0;
};

} // namespace sentry::apps

#endif // SENTRY_APPS_SYNTHETIC_APP_HH
