/**
 * @file
 * sentry_fleet — run a fleet of simulated Sentry devices through a
 * scenario and report aggregate metrics.
 *
 *   $ sentry_fleet --devices 32 --scenario attack-campaign --threads 8
 *   $ sentry_fleet --scenario my_workload.scn --seed 42 --json out.json
 *   $ sentry_fleet --list
 *
 * Exit status: 0 when every device finished with all Sentry invariants
 * green; 1 on invariant violations; 2 on usage/parse errors (scenario
 * parse failures print the offending line number).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "fleet/scenario.hh"
#include "host/kernels.hh"

using namespace sentry;

namespace
{

void
usage()
{
    std::printf(
        "usage: sentry_fleet [options]\n"
        "  --devices N          fleet size (default: scenario's, else 8)\n"
        "  --threads N          worker threads (default 1)\n"
        "  --shards N           work shards (default: scenario's, else\n"
        "                       derived from the fleet size)\n"
        "  --scenario NAME|FILE built-in preset or .scn file\n"
        "                       (default interactive-day)\n"
        "  --seed HEX|DEC       fleet seed (default 0x5e47ee1d)\n"
        "  --platform NAME      tegra3 or nexus4 (default: scenario's)\n"
        "  --defense NAME       sentry, amnesia, or memshield\n"
        "                       (default: scenario's, else sentry)\n"
        "  --dram SIZE          per-device DRAM, e.g. 16MiB\n"
        "  --json PATH          metrics record (default BENCH_fleet.json)\n"
        "  --no-json            skip the JSON record\n"
        "  --trace-out PATH     write device 0's timeline as\n"
        "                       chrome://tracing JSON\n"
        "  --snapshot           boot one template device and fork every\n"
        "                       fleet device from its COW snapshot\n"
        "  --cold-boot          boot every device from scratch (default)\n"
        "  --no-results         stream aggregation only: do not keep a\n"
        "                       DeviceResult per device (fleet memory\n"
        "                       stays O(shards) at any fleet size)\n"
        "  --replay-device N    re-run the single device index N exactly\n"
        "                       as the fleet run would and print its\n"
        "                       digest (see sim_shard_* determinism)\n"
        "  --list               list built-in scenarios and exit\n"
        "  --host-info          print detected host CPU features and the\n"
        "                       active kernel tier per hot path, then "
        "exit\n");
}

[[noreturn]] void
usageError(const std::string &what)
{
    std::fprintf(stderr, "sentry_fleet: %s\n", what.c_str());
    usage();
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        usageError(std::string(flag) + " needs a value");
    return argv[++i];
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string scenarioName = "interactive-day";
    std::string jsonPath = "BENCH_fleet.json";
    bool wantJson = true;
    unsigned devices = 0; // 0 = take the scenario's default
    fleet::FleetOptions options;
    bool platformOverride = false;
    bool defenseOverride = false;
    bool wantReplay = false;
    unsigned replayIndex = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--devices") == 0) {
            devices = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--threads") == 0) {
            options.threads = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--shards") == 0) {
            options.shards = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--scenario") == 0) {
            scenarioName = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--seed") == 0) {
            options.seed =
                std::strtoull(nextArg(argc, argv, i, arg), nullptr, 0);
        } else if (std::strcmp(arg, "--platform") == 0) {
            const std::string name = nextArg(argc, argv, i, arg);
            if (name == "tegra3")
                options.platform = fleet::FleetPlatform::Tegra3;
            else if (name == "nexus4")
                options.platform = fleet::FleetPlatform::Nexus4;
            else
                usageError("unknown platform '" + name + "'");
            platformOverride = true;
        } else if (std::strcmp(arg, "--defense") == 0) {
            const std::string name = nextArg(argc, argv, i, arg);
            const auto kind = core::parseDefenseKind(name);
            if (!kind.has_value())
                usageError("unknown defense backend '" + name + "'");
            options.defense = *kind;
            defenseOverride = true;
        } else if (std::strcmp(arg, "--dram") == 0) {
            try {
                options.dramBytes =
                    fleet::parseSize(nextArg(argc, argv, i, arg), 0);
            } catch (const fleet::ScenarioError &e) {
                usageError(std::string("--dram: ") + e.what());
            }
        } else if (std::strcmp(arg, "--json") == 0) {
            jsonPath = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            options.traceOutPath = nextArg(argc, argv, i, arg);
        } else if (std::strcmp(arg, "--no-json") == 0) {
            wantJson = false;
        } else if (std::strcmp(arg, "--snapshot") == 0) {
            options.spawnMode = fleet::SpawnMode::Snapshot;
        } else if (std::strcmp(arg, "--cold-boot") == 0) {
            options.spawnMode = fleet::SpawnMode::ColdBoot;
        } else if (std::strcmp(arg, "--no-results") == 0) {
            options.retainResults = false;
        } else if (std::strcmp(arg, "--replay-device") == 0) {
            wantReplay = true;
            replayIndex = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i, arg), nullptr, 0));
        } else if (std::strcmp(arg, "--list") == 0) {
            for (const std::string &name : fleet::builtinScenarioNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (std::strcmp(arg, "--host-info") == 0) {
            std::printf("%s", host::hostInfoString().c_str());
            return 0;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else {
            usageError(std::string("unknown option '") + arg + "'");
        }
    }

    fleet::Scenario scenario;
    try {
        scenario = fleet::isBuiltinScenario(scenarioName)
                       ? fleet::builtinScenario(scenarioName)
                       : fleet::loadScenarioFile(scenarioName);
    } catch (const fleet::ScenarioError &e) {
        std::fprintf(stderr, "sentry_fleet: %s: %s\n",
                     scenarioName.c_str(), e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sentry_fleet: %s\n", e.what());
        return 2;
    }

    options.devices = devices != 0            ? devices
                      : scenario.defaultDevices != 0
                          ? scenario.defaultDevices
                          : 8;
    if (platformOverride)
        scenario.hasPlatform = false; // CLI wins over the directive
    if (defenseOverride)
        scenario.hasDefense = false; // CLI wins over the directive

    if (wantReplay) {
        try {
            const fleet::DeviceResult result =
                fleet::replayFleetDevice(scenario, options, replayIndex);
            std::printf("device %u seed 0x%llx: %s\n", result.index,
                        static_cast<unsigned long long>(result.seed),
                        result.ok ? "ok" : result.error.c_str());
            std::printf("  steps %u, audits %u, cycles %llu\n",
                        result.stepsExecuted, result.auditsRun,
                        static_cast<unsigned long long>(result.simCycles));
            std::printf("  unlocks %llu, locks %llu, filebench %llu\n",
                        static_cast<unsigned long long>(
                            result.unlock.count()),
                        static_cast<unsigned long long>(
                            result.lock.count()),
                        static_cast<unsigned long long>(
                            result.filebench.count()));
            std::printf("  digest %s\n",
                        fleet::deviceDigest(result).c_str());
            return result.ok ? 0 : 1;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sentry_fleet: %s\n", e.what());
            return 2;
        }
    }

    fleet::FleetReport report;
    try {
        report = fleet::runFleet(scenario, options);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sentry_fleet: %s\n", e.what());
        return 2;
    }

    std::printf("%s", report.summary().c_str());
    if (wantJson) {
        if (!report.writeJson(jsonPath))
            std::fprintf(stderr, "sentry_fleet: cannot write %s\n",
                         jsonPath.c_str());
        else
            std::printf("wrote %s\n", jsonPath.c_str());
    }
    return report.allOk ? 0 : 1;
}
