/**
 * @file
 * Memory-footprint profiles of the Android applications the paper
 * evaluates (Contacts, Google Maps, Twitter, and the ServeStream MP3
 * player). The sizes reproduce the working sets behind Figures 2-5:
 * how much is encrypted at lock, decrypted to resume, decrypted on
 * demand while the scripted workload runs, and how large the eagerly-
 * decrypted DMA regions are (1 MB Contacts .. 15 MB Maps, section 7).
 */

#ifndef SENTRY_APPS_APP_PROFILE_HH
#define SENTRY_APPS_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sentry::apps
{

/** Footprint and workload description of one sensitive app. */
struct AppProfile
{
    std::string name;
    /** Total resident bytes encrypted at device lock (Figure 4). */
    std::size_t residentBytes;
    /** Bytes decrypted to resume after unlock (Figure 2). */
    std::size_t resumeSetBytes;
    /** Bytes decrypted on demand during the scripted run (Figure 3). */
    std::size_t scriptTouchedBytes;
    /** Baseline duration of the scripted run without Sentry. */
    double scriptSeconds;
    /** GPU/I-O DMA region size, decrypted eagerly at unlock. */
    std::size_t dmaRegionBytes;

    /** The paper's four apps. */
    static const std::vector<AppProfile> &paperApps();

    /** Find a paper app by name; fatal when unknown. */
    static const AppProfile &byName(const std::string &name);
};

} // namespace sentry::apps

#endif // SENTRY_APPS_APP_PROFILE_HH
