#include "hw/mem_crypto_engine.hh"

#include "common/logging.hh"
#include "host/kernels.hh"

namespace sentry::hw
{

MemCryptoEngine::MemCryptoEngine(SimClock &clock, EnergyModel &energy,
                                 MemCryptoParams params)
    : clock_(clock), energy_(energy), params_(params)
{}

void
MemCryptoEngine::setKey(std::span<const std::uint8_t> key)
{
    cipher_ = std::make_unique<crypto::Aes>(key);
}

void
MemCryptoEngine::chargeRequest(std::size_t bytes, bool encrypt)
{
    const double seconds =
        params_.setupSeconds +
        static_cast<double>(bytes) / params_.fullRateBytesPerSec;
    const double joules =
        params_.joulesPerRequest +
        params_.joulesPerByte * static_cast<double>(bytes);
    clock_.advanceSeconds(seconds);
    energy_.charge(EnergyCategory::CryptoAccel, joules);
    ++stats_.requests;
    stats_.bytesProcessed += bytes;
    stats_.secondsCharged += seconds;
    stats_.joulesCharged += joules;
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::CryptoOp)) {
        probe::CryptoOp event{bytes, encrypt};
        trace_->emit(event);
    }
}

void
MemCryptoEngine::cbcEncrypt(const crypto::Iv &iv,
                            std::span<std::uint8_t> data)
{
    if (!cipher_)
        fatal("memory-crypto engine used before a key was loaded");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcEncrypt requires a multiple of 16 bytes");
    host::kernels().aes.cbcEncrypt(cipher_->schedule(), iv.data(),
                                   data.data(), data.size());
    chargeRequest(data.size(), true);
}

void
MemCryptoEngine::cbcDecrypt(const crypto::Iv &iv,
                            std::span<std::uint8_t> data)
{
    if (!cipher_)
        fatal("memory-crypto engine used before a key was loaded");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcDecrypt requires a multiple of 16 bytes");
    host::kernels().aes.cbcDecrypt(cipher_->schedule(), iv.data(),
                                   data.data(), data.size());
    chargeRequest(data.size(), false);
}

} // namespace sentry::hw
