/**
 * @file
 * JTAG debug port model (paper section 3.2).
 *
 * JTAG gives an attacker full memory visibility, but the paper
 * classifies it as preventable: vendors either depopulate the connector
 * (defeated by re-soldering a cable), burn a hardware fuse at
 * provisioning time (permanent), or require authentication
 * ("authenticated JTAG"). All three policies are modelled so the attack
 * matrix can show which ones actually hold.
 */

#ifndef SENTRY_HW_JTAG_HH
#define SENTRY_HW_JTAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sentry::hw
{

class Soc;

/** How the vendor shipped the JTAG interface. */
enum class JtagPolicy
{
    Enabled,        //!< development parts
    Depopulated,    //!< connector removed (re-solderable!)
    FuseDisabled,   //!< hardware fuse burned at provisioning
    Authenticated,  //!< reader must present the vendor credential
};

/** @return printable policy name. */
const char *jtagPolicyName(JtagPolicy policy);

/** Result of a JTAG connection attempt. */
enum class JtagStatus
{
    Connected,
    NoConnector,    //!< depopulated and not re-soldered
    Disabled,       //!< fuse burned: permanently dead
    AuthRequired,   //!< credential missing or wrong
};

/** The debug port. */
class JtagPort
{
  public:
    explicit JtagPort(JtagPolicy policy,
                      std::string vendor_credential = "");

    JtagPolicy policy() const { return policy_; }

    /** Solder a cable onto the depopulated pad (paper: Riff Box). */
    void resolderConnector();

    /** Burn the disable fuse; irreversible. */
    void burnDisableFuse();

    /**
     * Attempt to attach a debugger.
     * @param credential authentication string (Authenticated policy)
     */
    JtagStatus connect(const std::string &credential = "");

    /** @return true while a debugger is attached. */
    bool connected() const { return connected_; }

    /**
     * Halt the cores and dump memory through the debug access port.
     * Sees everything: DRAM, iRAM, even locked cache lines. This is why
     * JTAG must be disabled on production devices.
     * @return the dump, or empty when no debugger is attached.
     */
    std::vector<std::uint8_t> dumpMemory(Soc &soc, PhysAddr base,
                                         std::size_t len);

  private:
    JtagPolicy policy_;
    std::string credential_;
    bool connectorPresent_;
    bool fuseBurned_;
    bool connected_ = false;
};

} // namespace sentry::hw

#endif // SENTRY_HW_JTAG_HH
