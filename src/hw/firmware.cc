#include "hw/firmware.hh"

#include "common/types.hh"
#include "hw/dram.hh"
#include "hw/iram.hh"
#include "hw/l2_cache.hh"

namespace sentry::hw
{

void
Firmware::overwriteBootSlice(Dram &dram, double fraction, Rng &rng) const
{
    // The loader and kernel image land on scattered physical pages;
    // model as randomly chosen 4 KiB pages filled with image bytes.
    auto memory = dram.raw();
    const std::size_t totalPages = memory.size() / PAGE_SIZE;
    const auto pagesToWrite =
        static_cast<std::size_t>(fraction * static_cast<double>(totalPages));

    for (std::size_t i = 0; i < pagesToWrite; ++i) {
        const std::size_t page = rng.below(totalPages);
        std::uint8_t *base = memory.data() + page * PAGE_SIZE;
        // Boot-image contents: deterministic-looking code bytes.
        for (std::size_t off = 0; off < PAGE_SIZE; off += 8) {
            const std::uint64_t word = rng.next64();
            for (std::size_t b = 0; b < 8; ++b)
                base[off + b] = static_cast<std::uint8_t>(word >> (8 * b));
        }
    }
}

void
Firmware::coldBoot(Dram &dram, Iram &iram, L2Cache &l2, Rng &rng) const
{
    iram.zeroize();
    l2.resetAndZero();
    overwriteBootSlice(dram, footprint_.coldOverwriteFraction, rng);
}

void
Firmware::warmBoot(Dram &dram, L2Cache &l2, Rng &rng) const
{
    // No power loss: iRAM keeps its contents (Table 2 row 1: 100%).
    // Caches are invalidated without writeback by the reset sequence.
    l2.resetAndZero();
    overwriteBootSlice(dram, footprint_.warmOverwriteFraction, rng);
}

bool
Firmware::acceptImage(std::span<const std::uint8_t> image,
                      bool signed_by_manufacturer) const
{
    return !image.empty() && signed_by_manufacturer;
}

} // namespace sentry::hw
