#include "hw/cpu.hh"

#include <cstring>

#include "common/logging.hh"

namespace sentry::hw
{

namespace
{
constexpr Cycles contextSwitchCycles = 800;
} // namespace

Cpu::Cpu(SimClock &clock) : clock_(clock) {}

void
Cpu::setMemoryPort(
    std::function<void(PhysAddr, const std::uint8_t *, std::size_t)>
        write_fn)
{
    writeMem_ = std::move(write_fn);
}

void
Cpu::loadRegisters(std::span<const std::uint32_t> words)
{
    if (words.size() > regs_.size())
        panic("loadRegisters: %zu words exceed the register file",
              words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        regs_[i] = words[i];
}

void
Cpu::zeroRegisters()
{
    regs_.fill(0);
}

void
Cpu::disableIrq()
{
    if (!irqEnabled_)
        return;
    irqEnabled_ = false;
    irqOffStart_ = clock_.now();
}

double
Cpu::enableIrq()
{
    if (irqEnabled_)
        return 0.0;
    irqEnabled_ = true;
    const double window = clock_.toSeconds(clock_.now() - irqOffStart_);
    if (window > maxIrqOffSeconds_)
        maxIrqOffSeconds_ = window;
    return window;
}

bool
Cpu::pollPreemption()
{
    if (!preemptPending_ || !irqEnabled_)
        return false;
    preemptPending_ = false;
    contextSwitchSpill();
    return true;
}

void
Cpu::contextSwitchSpill()
{
    if (!writeMem_)
        panic("CPU memory port not wired");
    if (stackPhys_ == 0)
        panic("context switch with no kernel stack configured");

    // The register save area is written to the stack exactly as the
    // kernel's switch path would: 16 words, descending.
    std::uint8_t frame[sizeof(RegisterFile)];
    std::memcpy(frame, regs_.data(), sizeof(frame));
    writeMem_(stackPhys_ - sizeof(frame), frame, sizeof(frame));
    clock_.advance(contextSwitchCycles);
    ++spillCount_;
}

OnSocIrqGuard::OnSocIrqGuard(Cpu &cpu) : cpu_(cpu)
{
    cpu_.disableIrq();
}

OnSocIrqGuard::~OnSocIrqGuard()
{
    cpu_.zeroRegisters();
    cpu_.enableIrq();
}

} // namespace sentry::hw
