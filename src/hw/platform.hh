/**
 * @file
 * Platform configurations for the paper's two prototype devices.
 *
 * All throughput/energy parameters are calibration anchors taken from
 * the paper's own measurements (see DESIGN.md section 4); the simulation
 * reproduces *shapes* — who wins, by what factor, where the crossovers
 * are — not testbed-exact numbers.
 */

#ifndef SENTRY_HW_PLATFORM_HH
#define SENTRY_HW_PLATFORM_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "hw/crypto_accel.hh"
#include "hw/energy.hh"
#include "hw/l2_cache.hh"

namespace sentry::hw
{

/** Memory-path timing parameters. */
struct MemTiming
{
    Cycles iramAccessCycles = 4; //!< per <=line-sized on-SoC access
    L2Timing l2;
};

/** CPU-side cost model (cycles / rates). */
struct CpuCost
{
    /** Software AES, user mode, cycles per byte. */
    double aesCyclesPerByteUser = 33.0;
    /** Software AES via the kernel Crypto API (extra call overhead). */
    double aesCyclesPerByteKernel = 43.0;
    /** AES On SoC multiplicative overhead vs generic (paper: < 1%). */
    double aesOnSocFactor = 1.008;
    /** Bulk copy throughput, bytes per cycle. */
    double memCopyBytesPerCycle = 4.0;
    /** Freed-page zeroing rate, bytes per second (paper: 4.014 GB/s). */
    double zeroingBytesPerSec = 4.014e9;
    /** Page-fault cost: trap, mm locking, PTE + TLB maintenance
     *  (~80 us at 1.5 GHz, an Android-class fault path). */
    Cycles pageFaultCycles = 120'000;
    /**
     * Aggregate bandwidth cap for whole-memory encryption with all
     * cores + accelerator (the strawman experiment is memory bound;
     * anchored to "2 GB takes over a minute" => ~34 MB/s).
     */
    double fullMemEncryptBytesPerSec = 34e6;
    /**
     * Effective energy of whole-memory encryption (CPU cores + crypto
     * accelerator together; anchored to "a single full-memory (2 GB)
     * encryption consumed over 70 Joules").
     */
    double fullMemEncryptJoulesPerByte = 0.0333e-6;
};

/** Boot-time DRAM footprint of the firmware + OS loader. */
struct BootFootprint
{
    /** Fraction of DRAM overwritten by a full OS warm reboot (Table 2:
     *  96.4% preserved => 3.6% overwritten). */
    double warmOverwriteFraction = 0.036;
    /** Fraction overwritten by the minimal reflash loader (tiny: the
     *  flashing stub barely touches DRAM, which is how Table 2's
     *  reflash row preserves *more* than the full OS reboot). */
    double coldOverwriteFraction = 0.004;
};

/** Complete description of a simulated device. */
struct PlatformConfig
{
    std::string name;
    double cpuFreqHz = 1.2e9;
    unsigned cores = 4;
    std::size_t dramSize = 256 * MiB;
    std::size_t iramSize = IRAM_SIZE;
    std::size_t l2Size = 1 * MiB;
    unsigned l2Ways = 8;
    /** True when we control boot firmware (Tegra 3 dev board): secure
     *  world is enterable and cache locking can be enabled. */
    bool secureWorldAvailable = true;
    bool hasCryptoAccel = false;
    CryptoAccelParams accel;
    MemTiming timing;
    CpuCost cost;
    EnergyParams energy;
    /** Usable battery capacity in Joules (0 = not modelled). */
    double batteryJoules = 0.0;
    BootFootprint boot;
    std::uint64_t seed = 0x5e47ee1d;

    /**
     * The NVidia Tegra 3 development board: unlocked firmware, cache
     * locking available, no retail-grade energy optimisation.
     */
    static PlatformConfig tegra3(std::size_t dram_size = 256 * MiB);

    /**
     * The Google Nexus 4: locked firmware (no secure world, no cache
     * locking), hardware crypto engine, calibrated battery model.
     */
    static PlatformConfig nexus4(std::size_t dram_size = 256 * MiB);
};

} // namespace sentry::hw

#endif // SENTRY_HW_PLATFORM_HH
