#include "hw/devices.hh"

#include <cstring>
#include <utility>

namespace sentry::hw
{

DmaStatus
UartDevice::dmaWrite(PhysAddr offset, const std::uint8_t *buf,
                     std::size_t len)
{
    (void)offset; // the whole window aliases the loopback FIFO
    loopback_.insert(loopback_.end(), buf, buf + len);
    return DmaStatus::Ok;
}

DmaStatus
UartDevice::dmaRead(PhysAddr offset, std::uint8_t *buf, std::size_t len)
{
    (void)offset;
    // The debug port loops written data back out of the serial channel.
    const std::size_t avail = std::min(len, loopback_.size());
    std::memcpy(buf, loopback_.data(), avail);
    std::memset(buf + avail, 0, len - avail);
    loopback_.erase(loopback_.begin(),
                    loopback_.begin() + static_cast<long>(avail));
    return DmaStatus::Ok;
}

std::vector<std::uint8_t>
UartDevice::drainLoopback()
{
    return std::exchange(loopback_, {});
}

DmaStatus
NicDevice::dmaWrite(PhysAddr offset, const std::uint8_t *buf, std::size_t len)
{
    if (offset >= NIC_RX_FIFO - NIC_TX_FIFO) {
        // Writing into the RX window is not something hardware allows.
        return DmaStatus::BadAddress;
    }
    (void)buf; // transmitted data leaves the system
    bytesTransmitted_ += len;
    return DmaStatus::Ok;
}

DmaStatus
NicDevice::dmaRead(PhysAddr offset, std::uint8_t *buf, std::size_t len)
{
    if (offset < NIC_RX_FIFO - NIC_TX_FIFO) {
        // The transmit FIFO cannot be DMA-ed back in (paper 4.2).
        return DmaStatus::DeviceNotReadable;
    }
    const std::size_t avail = std::min(len, rxFifo_.size());
    std::memcpy(buf, rxFifo_.data(), avail);
    std::memset(buf + avail, 0, len - avail);
    rxFifo_.erase(rxFifo_.begin(), rxFifo_.begin() + static_cast<long>(avail));
    return DmaStatus::Ok;
}

void
NicDevice::receiveFrame(std::vector<std::uint8_t> frame)
{
    rxFifo_.insert(rxFifo_.end(), frame.begin(), frame.end());
}

} // namespace sentry::hw
