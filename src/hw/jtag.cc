#include "hw/jtag.hh"

#include "hw/soc.hh"

namespace sentry::hw
{

const char *
jtagPolicyName(JtagPolicy policy)
{
    switch (policy) {
      case JtagPolicy::Enabled:
        return "enabled";
      case JtagPolicy::Depopulated:
        return "depopulated";
      case JtagPolicy::FuseDisabled:
        return "fuse-disabled";
      case JtagPolicy::Authenticated:
        return "authenticated";
      default:
        return "?";
    }
}

JtagPort::JtagPort(JtagPolicy policy, std::string vendor_credential)
    : policy_(policy), credential_(std::move(vendor_credential)),
      connectorPresent_(policy != JtagPolicy::Depopulated),
      fuseBurned_(policy == JtagPolicy::FuseDisabled)
{}

void
JtagPort::resolderConnector()
{
    connectorPresent_ = true;
}

void
JtagPort::burnDisableFuse()
{
    fuseBurned_ = true;
}

JtagStatus
JtagPort::connect(const std::string &credential)
{
    if (fuseBurned_)
        return JtagStatus::Disabled;
    if (!connectorPresent_)
        return JtagStatus::NoConnector;
    if (policy_ == JtagPolicy::Authenticated &&
        credential != credential_) {
        return JtagStatus::AuthRequired;
    }
    connected_ = true;
    return JtagStatus::Connected;
}

std::vector<std::uint8_t>
JtagPort::dumpMemory(Soc &soc, PhysAddr base, std::size_t len)
{
    if (!connected_)
        return {};
    // The debug access port sits inside the SoC: it sees the coherent
    // view, including locked cache lines and iRAM.
    std::vector<std::uint8_t> dump(len);
    soc.memory().read(base, dump.data(), len);
    return dump;
}

} // namespace sentry::hw
