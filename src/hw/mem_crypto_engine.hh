/**
 * @file
 * GPU-like memory-encryption engine (the MemShield design point).
 *
 * MemShield keeps guest pages ciphertext-at-rest in DRAM and decrypts
 * them on access into a small plaintext working set. The crypto is done
 * by a bulk engine sitting beside the CPU — in MemShield's prototype the
 * integrated GPU — whose key schedule lives in engine-internal registers
 * and never touches system memory. Compared with the per-request
 * CryptoAccelerator (the Nexus 4 crypto block), this engine is tuned for
 * streaming whole pages: a higher full rate, a smaller per-request setup
 * cost, and no lock-time frequency down-scaling (the GPU clock is not
 * tied to the screen state).
 *
 * The engine produces real AES-CBC output (it shares the software
 * cipher's mathematics); time and energy are charged per request against
 * the owning Soc's clock and energy model.
 */

#ifndef SENTRY_HW_MEM_CRYPTO_ENGINE_HH
#define SENTRY_HW_MEM_CRYPTO_ENGINE_HH

#include <cstdint>
#include <memory>
#include <span>

#include "common/sim_clock.hh"
#include "common/trace_engine.hh"
#include "crypto/aes.hh"
#include "crypto/modes.hh"
#include "hw/energy.hh"

namespace sentry::hw
{

/** Performance/energy characteristics of the memory-crypto engine. */
struct MemCryptoParams
{
    double fullRateBytesPerSec = 400e6; //!< streaming page-crypt rate
    double setupSeconds = 40e-6;        //!< fixed per-request latency
    double joulesPerByte = 0.05e-6;     //!< active energy (GPU shader)
    double joulesPerRequest = 120e-6;   //!< per-request kickoff energy
};

/** Work counters (also the simulated cost ledger for sim_defense_*). */
struct MemCryptoStats
{
    std::uint64_t requests = 0;
    std::uint64_t bytesProcessed = 0;
    double secondsCharged = 0.0;
    double joulesCharged = 0.0;
};

/** The GPU-like bulk AES engine. */
class MemCryptoEngine
{
  public:
    MemCryptoEngine(SimClock &clock, EnergyModel &energy,
                    MemCryptoParams params = {});

    /** Load a key into the engine's internal key registers. */
    void setKey(std::span<const std::uint8_t> key);

    /** Drop the loaded key (deep-lock scrub). */
    void clearKey() { cipher_ = nullptr; }

    /** @return true once a key has been loaded. */
    bool hasKey() const { return cipher_ != nullptr; }

    /** CBC-encrypt @p data in place (one bulk request). */
    void cbcEncrypt(const crypto::Iv &iv, std::span<std::uint8_t> data);

    /** CBC-decrypt @p data in place (one bulk request). */
    void cbcDecrypt(const crypto::Iv &iv, std::span<std::uint8_t> data);

    /** @return accumulated work/cost counters. */
    const MemCryptoStats &stats() const { return stats_; }

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** Engine-internal register state for snapshot/fork. The loaded key
     * schedule is shared immutably between snapshot holders. */
    struct ForkState
    {
        std::shared_ptr<const crypto::Aes> cipher;
        MemCryptoStats stats;
    };

    ForkState forkState() const
    {
        ForkState fs;
        if (cipher_ != nullptr)
            fs.cipher = std::make_shared<const crypto::Aes>(*cipher_);
        fs.stats = stats_;
        return fs;
    }

    void restoreForkState(const ForkState &fs)
    {
        cipher_ = fs.cipher != nullptr
                      ? std::make_unique<crypto::Aes>(*fs.cipher)
                      : nullptr;
        stats_ = fs.stats;
    }

  private:
    void chargeRequest(std::size_t bytes, bool encrypt);

    SimClock &clock_;
    EnergyModel &energy_;
    MemCryptoParams params_;
    std::unique_ptr<crypto::Aes> cipher_;
    MemCryptoStats stats_;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_MEM_CRYPTO_ENGINE_HH
