/**
 * @file
 * Low-level boot firmware behaviour.
 *
 * Two properties of the boot ROM carry Sentry's cold-boot defence
 * (paper sections 4.1, 4.3):
 *
 *   - on every cold boot (any power loss) it zeroes iRAM and resets the
 *     PL310, so on-SoC storage yields nothing to a reboot attacker;
 *   - it is signed with the manufacturer's key, so an attacker cannot
 *     replace it with a version that skips the zeroing.
 *
 * Booting also overwrites a slice of DRAM (loader + kernel image),
 * which is what limits even the no-power-loss OS-reboot attack to
 * ~96.4% recovery in Table 2.
 */

#ifndef SENTRY_HW_FIRMWARE_HH
#define SENTRY_HW_FIRMWARE_HH

#include <cstdint>
#include <span>

#include "common/rng.hh"
#include "hw/platform.hh"

namespace sentry::hw
{

class Dram;
class Iram;
class L2Cache;

/** The platform boot ROM. */
class Firmware
{
  public:
    /** @param footprint boot-time DRAM overwrite fractions */
    explicit Firmware(BootFootprint footprint) : footprint_(footprint) {}

    /**
     * Cold-boot path (runs after any power loss): zero iRAM, reset and
     * zero the L2, then load the (minimal) boot image over a slice of
     * DRAM.
     */
    void coldBoot(Dram &dram, Iram &iram, L2Cache &l2, Rng &rng) const;

    /**
     * Warm-reboot path (no power loss, e.g. an OS reboot): iRAM is
     * untouched, caches are invalidated without writeback, and the full
     * OS image lands in DRAM.
     */
    void warmBoot(Dram &dram, L2Cache &l2, Rng &rng) const;

    /**
     * Verify a replacement firmware image against the manufacturer key.
     * The firmware-replacement attack fails here: unsigned images are
     * rejected by the boot ROM.
     *
     * @param image candidate image
     * @param signed_by_manufacturer whether it carries a valid signature
     * @return true iff the image would be accepted
     */
    bool acceptImage(std::span<const std::uint8_t> image,
                     bool signed_by_manufacturer) const;

  private:
    void overwriteBootSlice(Dram &dram, double fraction, Rng &rng) const;

    BootFootprint footprint_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_FIRMWARE_HH
