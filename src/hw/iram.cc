#include "hw/iram.hh"


#include "common/logging.hh"

namespace sentry::hw
{

namespace
{

/** Fire one probe::MemAccess for an iRAM cell-array access. */
inline void
traceIramOp(probe::TraceEngine *trace, bool is_write, PhysAddr offset,
            std::size_t len)
{
    if (trace == nullptr || !trace->enabled(probe::TraceKind::MemAccess))
        return;
    probe::MemAccess event{probe::MemAccess::Device::Iram, is_write, offset,
                           len};
    trace->emit(event);
}

} // namespace

Iram::Iram(std::size_t size) : data_(size), remanence_(MemoryTech::Sram)
{
    if (size == 0)
        fatal("iRAM size must be non-zero");
}

void
Iram::checkRange(PhysAddr offset, std::size_t len) const
{
    if (offset + len > data_.size())
        panic("iRAM access out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
}

void
Iram::read(PhysAddr offset, std::uint8_t *buf, std::size_t len) const
{
    checkRange(offset, len);
    traceIramOp(trace_, false, offset, len);
    data_.read(offset, buf, len);
}

void
Iram::write(PhysAddr offset, const std::uint8_t *buf, std::size_t len)
{
    checkRange(offset, len);
    data_.write(offset, buf, len);
    traceIramOp(trace_, true, offset, len);
}

void
Iram::powerLoss(double off_seconds, double celsius, Rng &rng)
{
    remanence_.decay(data_.contiguous(), off_seconds, celsius, rng);
}

void
Iram::zeroize()
{
    data_.zeroAll();
}

} // namespace sentry::hw
