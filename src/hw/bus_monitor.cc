#include "hw/bus_monitor.hh"

namespace sentry::hw
{

void
BusMonitor::onBusTransfer(probe::BusTransfer &event)
{
    CapturedTransaction cap;
    cap.addr = event.addr;
    cap.size = event.size;
    cap.isWrite = event.isWrite;
    cap.initiator = event.initiator;
    if (capturePayloads_ && event.data != nullptr)
        cap.data.assign(event.data, event.data + event.size);
    bytesObserved_ += event.size;
    trace_.push_back(std::move(cap));
}

std::vector<std::uint8_t>
BusMonitor::concatenatedPayloads() const
{
    std::vector<std::uint8_t> out;
    out.reserve(bytesObserved_);
    for (const auto &txn : trace_)
        out.insert(out.end(), txn.data.begin(), txn.data.end());
    return out;
}

} // namespace sentry::hw
