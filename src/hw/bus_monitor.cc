#include "hw/bus_monitor.hh"

namespace sentry::hw
{

void
BusMonitor::onTransaction(const BusTransaction &txn)
{
    CapturedTransaction cap;
    cap.addr = txn.addr;
    cap.size = txn.size;
    cap.isWrite = txn.isWrite;
    cap.initiator = txn.initiator;
    if (capturePayloads_ && txn.data != nullptr)
        cap.data.assign(txn.data, txn.data + txn.size);
    bytesObserved_ += txn.size;
    trace_.push_back(std::move(cap));
}

std::vector<std::uint8_t>
BusMonitor::concatenatedPayloads() const
{
    std::vector<std::uint8_t> out;
    out.reserve(bytesObserved_);
    for (const auto &txn : trace_)
        out.insert(out.end(), txn.data.begin(), txn.data.end());
    return out;
}

} // namespace sentry::hw
