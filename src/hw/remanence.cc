#include "hw/remanence.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace sentry::hw
{

RemanenceModel::RemanenceModel(MemoryTech tech, double tau_bit_room)
    : tech_(tech),
      tauBitRoom_(tau_bit_room > 0 ? tau_bit_room : defaultTau(tech))
{
    if (tau_bit_room < 0)
        fatal("RemanenceModel: tau must be non-negative");
}

namespace
{
constexpr double ROOM_CELSIUS = 22.0;

double
temperatureScale(double celsius)
{
    // Retention roughly doubles per 10 C of cooling.
    return std::exp2((ROOM_CELSIUS - celsius) / 10.0);
}
} // namespace

double
RemanenceModel::bitSurvival(double off_seconds, double celsius) const
{
    if (off_seconds <= 0)
        return 1.0;
    const double tau = tauBitRoom_ * temperatureScale(celsius);
    return std::exp(-off_seconds / tau);
}

double
RemanenceModel::unitSurvival(double off_seconds, double celsius) const
{
    return std::pow(bitSurvival(off_seconds, celsius), 64.0);
}

void
RemanenceModel::decay(std::span<std::uint8_t> memory, double off_seconds,
                      double celsius, Rng &rng) const
{
    if (off_seconds <= 0)
        return;

    const double byteSurvival =
        std::pow(bitSurvival(off_seconds, celsius), 8.0);
    if (byteSurvival >= 1.0)
        return;

    // 16-bit threshold gives probability resolution of ~1.5e-5, enough
    // for the 97.5%-survival reflash case.
    const auto threshold =
        static_cast<std::uint32_t>(byteSurvival * 65536.0);

    std::size_t index = 0;
    while (index < memory.size()) {
        // One ground polarity per 4 KiB region.
        const std::uint8_t ground = rng.chance(0.5) ? 0x00 : 0xff;
        const std::size_t regionEnd =
            std::min(memory.size(), (index / PAGE_SIZE + 1) * PAGE_SIZE);

        while (index < regionEnd) {
            // Four 16-bit survival lanes per PRNG draw.
            std::uint64_t lanes = rng.next64();
            const std::size_t chunk =
                std::min<std::size_t>(4, regionEnd - index);
            for (std::size_t i = 0; i < chunk; ++i) {
                if (static_cast<std::uint32_t>(lanes & 0xffff) >= threshold)
                    memory[index + i] = ground;
                lanes >>= 16;
            }
            index += chunk;
        }
    }
}

} // namespace sentry::hw
