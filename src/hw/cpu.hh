/**
 * @file
 * Minimal CPU model: a register file, the IRQ enable flag, and the one
 * behaviour Sentry's AES On SoC must defend against — a context switch
 * spilling live registers to the stack in DRAM (paper section 6.2).
 *
 * Software that handles secrets "in registers" loads them into this
 * register file. If an interrupt fires while they are live, the context
 * switch writes the register file to the current kernel stack, which
 * lives in DRAM — leaking the secrets to memory an attacker can dump.
 * The OnSocIrqGuard reproduces onsoc_disable_irq()/onsoc_enable_irq():
 * interrupts are masked for the duration and every register is zeroed
 * before they are re-enabled.
 */

#ifndef SENTRY_HW_CPU_HH
#define SENTRY_HW_CPU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <span>

#include "common/sim_clock.hh"
#include "common/types.hh"

namespace sentry::hw
{

/** ARM-style register file (r0-r15, 32-bit). */
using RegisterFile = std::array<std::uint32_t, 16>;

/** One simulated core (the one Sentry's critical sections run on). */
class Cpu
{
  public:
    explicit Cpu(SimClock &clock);

    /** Wire the cacheable memory port used for register spills. */
    void setMemoryPort(
        std::function<void(PhysAddr, const std::uint8_t *, std::size_t)>
            write_fn);

    /** Set the physical address of the current kernel stack top. */
    void setCurrentStack(PhysAddr stack_phys) { stackPhys_ = stack_phys; }

    /** @return the architectural register file. */
    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }

    /** Load words into r0.. (software moving secrets into registers). */
    void loadRegisters(std::span<const std::uint32_t> words);

    /** Zero every general-purpose register. */
    void zeroRegisters();

    /** @return true when interrupts are enabled. */
    bool irqEnabled() const { return irqEnabled_; }

    /** Mask interrupts; records the start of the irq-off window. */
    void disableIrq();

    /** Unmask interrupts; returns the irq-off window length in seconds. */
    double enableIrq();

    /** @return the longest irq-off window seen, in seconds. */
    double maxIrqOffSeconds() const { return maxIrqOffSeconds_; }

    /** An interrupt (timer tick, device) wants to preempt. */
    void requestPreemption() { preemptPending_ = true; }

    /** @return true if a preemption request is pending delivery. */
    bool preemptionPending() const { return preemptPending_; }

    /**
     * Deliver a pending preemption if interrupts allow it: the context
     * switch spills the register file to the current kernel stack in
     * DRAM through the cacheable memory port.
     *
     * @return true if a context switch happened.
     */
    bool pollPreemption();

    /** Explicit context switch (scheduler-driven): spill registers. */
    void contextSwitchSpill();

    /** @return number of context-switch spills performed. */
    std::uint64_t spillCount() const { return spillCount_; }

    /** Architectural + accounting state for snapshot/fork. The memory
     * port and clock are wiring and stay with the device. */
    struct ForkState
    {
        RegisterFile regs{};
        bool irqEnabled = true;
        bool preemptPending = false;
        Cycles irqOffStart = 0;
        double maxIrqOffSeconds = 0.0;
        PhysAddr stackPhys = 0;
        std::uint64_t spillCount = 0;
    };

    ForkState forkState() const
    {
        return ForkState{regs_,        irqEnabled_, preemptPending_,
                         irqOffStart_, maxIrqOffSeconds_, stackPhys_,
                         spillCount_};
    }

    void restoreForkState(const ForkState &fs)
    {
        regs_ = fs.regs;
        irqEnabled_ = fs.irqEnabled;
        preemptPending_ = fs.preemptPending;
        irqOffStart_ = fs.irqOffStart;
        maxIrqOffSeconds_ = fs.maxIrqOffSeconds;
        stackPhys_ = fs.stackPhys;
        spillCount_ = fs.spillCount;
    }

  private:
    SimClock &clock_;
    RegisterFile regs_{};
    bool irqEnabled_ = true;
    bool preemptPending_ = false;
    Cycles irqOffStart_ = 0;
    double maxIrqOffSeconds_ = 0.0;
    PhysAddr stackPhys_ = 0;
    std::uint64_t spillCount_ = 0;
    std::function<void(PhysAddr, const std::uint8_t *, std::size_t)>
        writeMem_;
};

/**
 * RAII critical section for on-SoC crypto: interrupts are masked on
 * entry; on exit all registers are zeroed and interrupts re-enabled
 * (the onsoc_disable_irq / onsoc_enable_irq macro pair).
 */
class OnSocIrqGuard
{
  public:
    explicit OnSocIrqGuard(Cpu &cpu);
    ~OnSocIrqGuard();

    OnSocIrqGuard(const OnSocIrqGuard &) = delete;
    OnSocIrqGuard &operator=(const OnSocIrqGuard &) = delete;

  private:
    Cpu &cpu_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_CPU_HH
