/**
 * @file
 * Full-system energy accounting and battery model.
 *
 * Energy is charged per operation by the layers doing the work (AES
 * bytes, page copies, zeroing, DMA, crypto-accelerator activity), in the
 * categories the paper's evaluation separates. Parameters are calibrated
 * to the Nexus 4 anchors reported in the paper:
 *
 *   - a full 2 GB memory encryption costs > 70 J and drains the battery
 *     after 410 suspend/resume cycles  =>  battery ~ 28.7 kJ;
 *   - freed-page zeroing costs 2.8 micro-J per MB;
 *   - Figure 12: ~0.02 uJ/B (user OpenSSL), ~0.03 uJ/B (kernel Crypto
 *     API), ~0.10 uJ/B (down-scaled HW accelerator) for 4 KB pages.
 */

#ifndef SENTRY_HW_ENERGY_HH
#define SENTRY_HW_ENERGY_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/trace_engine.hh"

namespace sentry::hw
{

/** Energy accounting categories. */
enum class EnergyCategory
{
    CpuAes,      //!< software AES on CPU cores
    CryptoAccel, //!< the hardware AES engine
    MemCopy,     //!< page copies between DRAM and on-SoC storage
    Zeroing,     //!< freed-page scrubbing
    Dma,
    PageFault,   //!< trap entry/exit and PTE maintenance
    Other,
    NumCategories,
};

/** @return human-readable category name. */
const char *energyCategoryName(EnergyCategory category);

/** Per-operation energy cost parameters (Joules). */
struct EnergyParams
{
    double cpuAesPerByte = 0.02e-6;       //!< user-mode software AES
    double kernelAesExtraPerByte = 0.01e-6; //!< Crypto API overhead
    double accelPerByte = 0.02e-6;        //!< accelerator active energy
    double accelPerRequest = 350e-6;      //!< per-request setup energy
    double memCopyPerByte = 0.6e-9;
    double zeroingPerByte = 2.8e-6 / (1024.0 * 1024.0); //!< 2.8 uJ/MB
    double dmaPerByte = 0.8e-9;
    double pageFaultEach = 1.2e-6;
};

/** Accumulates Joules per category and drains a battery. */
class EnergyModel
{
  public:
    /**
     * @param params  per-operation costs
     * @param battery_joules  usable battery capacity (0 = not modelled)
     */
    explicit EnergyModel(EnergyParams params, double battery_joules = 0.0);

    /** Charge @p joules to @p category. */
    void charge(EnergyCategory category, double joules);

    /** @return Joules consumed in @p category since the last reset. */
    double consumed(EnergyCategory category) const;

    /** @return total Joules consumed since the last reset. */
    double totalConsumed() const;

    /** @return the cost parameter set. */
    const EnergyParams &params() const { return params_; }

    /** @return battery capacity in Joules (0 when not modelled). */
    double batteryCapacity() const { return batteryJoules_; }

    /** @return fraction of battery consumed since last reset [0, 1+]. */
    double batteryFractionUsed() const;

    /** Zero the accumulators (fresh measurement window). */
    void reset();

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** Accumulator state for snapshot/fork (params and battery capacity
     * are config constants). */
    struct ForkState
    {
        std::array<double, static_cast<std::size_t>(
                               EnergyCategory::NumCategories)>
            consumed{};
    };

    ForkState forkState() const { return ForkState{consumed_}; }
    void restoreForkState(const ForkState &fs) { consumed_ = fs.consumed; }

  private:
    EnergyParams params_;
    double batteryJoules_;
    std::array<double, static_cast<std::size_t>(
                           EnergyCategory::NumCategories)>
        consumed_{};
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_ENERGY_HH
