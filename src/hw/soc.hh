/**
 * @file
 * The assembled System-on-Chip plus its off-chip DRAM: the device the
 * OS, Sentry, and the attack harnesses all run against.
 *
 * MemorySystem is the CPU-side memory port. It routes physical accesses:
 *   - iRAM window  -> on-SoC SRAM, never visible on the external bus;
 *   - DRAM window  -> through the shared L2 cache, which fills/evicts
 *                     over the external (monitorable) bus.
 * DMA traffic takes its own path through DmaController and never touches
 * the cache.
 */

#ifndef SENTRY_HW_SOC_HH
#define SENTRY_HW_SOC_HH

#include <memory>
#include <optional>

#include "common/rng.hh"
#include "common/sim_clock.hh"
#include "common/trace_engine.hh"
#include "common/types.hh"
#include "hw/bus.hh"
#include "hw/cpu.hh"
#include "hw/crypto_accel.hh"
#include "hw/devices.hh"
#include "hw/dma.hh"
#include "hw/dram.hh"
#include "hw/energy.hh"
#include "hw/firmware.hh"
#include "hw/iram.hh"
#include "hw/l2_cache.hh"
#include "hw/mem_crypto_engine.hh"
#include "hw/platform.hh"
#include "hw/trustzone.hh"

namespace sentry::hw
{

/** CPU-side physical memory port (cacheable path). */
class MemorySystem
{
  public:
    MemorySystem(SimClock &clock, Iram &iram, L2Cache &l2,
                 MemTiming timing);

    /** Read @p len bytes from physical address @p addr. */
    void read(PhysAddr addr, void *buf, std::size_t len);

    /** Write @p len bytes to physical address @p addr. */
    void write(PhysAddr addr, const void *buf, std::size_t len);

    /** @return one 32-bit little-endian word. */
    std::uint32_t read32(PhysAddr addr);

    /** Write one 32-bit little-endian word. */
    void write32(PhysAddr addr, std::uint32_t value);

    /** Fill [addr, addr+len) with @p value. */
    void fill(PhysAddr addr, std::uint8_t value, std::size_t len);

    /**
     * Copy @p len bytes within simulated physical memory. Overlapping
     * ranges are handled with memmove semantics (the destination always
     * receives the original source bytes).
     */
    void copy(PhysAddr dst, PhysAddr src, std::size_t len);

    /** @return true if @p addr lies in the iRAM window. */
    bool isIram(PhysAddr addr) const;

  private:
    SimClock &clock_;
    Iram &iram_;
    L2Cache &l2_;
    MemTiming timing_;
};

/**
 * Immutable checkpoint of a whole Soc, produced by Soc::snapshot().
 *
 * The big cell arrays (DRAM, iRAM) are ref-counted COW images — forks
 * share their pages read-only and privatize on first write — while the
 * small per-device state (cache, CPU, TrustZone, clock, RNG streams,
 * accelerator registers, traffic counters) is deep-copied by value.
 * Wiring (trace engines, bus mappings, memory ports) is never part of
 * a snapshot: it belongs to each device's own construction.
 *
 * TraceEngine counters follow the "reset by default, owner decides"
 * policy: the engine itself holds no counters (they live in subscriber
 * CounterSinks, which are per-device wiring), so a forked device starts
 * with whatever sinks its owner attaches — typically fresh zeros.
 */
struct SocSnapshot
{
    /** Geometry fingerprint; forkFrom() refuses a mismatched target. */
    std::string platformName;
    std::size_t dramSize = 0;
    std::size_t iramSize = 0;
    std::size_t l2Size = 0;
    unsigned l2Ways = 0;

    std::shared_ptr<const CowImage> dram;
    std::shared_ptr<const CowImage> iram;

    Cycles clockNow = 0;
    Rng rng;
    EnergyModel::ForkState energy;
    BusStats bus;
    TrustZone::ForkState trustzone;
    L2Cache::ForkState l2;
    DmaController::ForkState dma;
    UartDevice::ForkState uart;
    NicDevice::ForkState nic;
    Cpu::ForkState cpu;
    CryptoAccelerator::ForkState accel; //!< cipher null when absent
    MemCryptoEngine::ForkState memCrypto; //!< cipher null when unkeyed
};

/** The simulated device. */
class Soc
{
  public:
    explicit Soc(const PlatformConfig &config);

    const PlatformConfig &config() const { return config_; }

    SimClock &clock() { return clock_; }
    Rng &rng() { return rng_; }
    EnergyModel &energy() { return energy_; }
    Dram &dram() { return dram_; }
    Iram &iram() { return iram_; }
    Bus &bus() { return bus_; }
    TrustZone &trustzone() { return tz_; }
    L2Cache &l2() { return l2_; }
    DmaController &dma() { return dma_; }
    UartDevice &uart() { return uart_; }
    NicDevice &nic() { return nic_; }
    Cpu &cpu() { return cpu_; }
    Firmware &firmware() { return firmware_; }
    MemorySystem &memory() { return memory_; }

    /** @return the crypto engine, or nullptr on platforms without one. */
    CryptoAccelerator *accel() { return accel_ ? accel_.get() : nullptr; }

    /** @return the GPU-like bulk memory-crypto engine (every platform
     * has one; it sits idle unless the MemShield backend keys it). */
    MemCryptoEngine &memCrypto() { return *memCrypto_; }

    /** Const view of the DRAM cell array (forensics/tests). */
    std::span<const std::uint8_t> dramRaw() const { return dram_.raw(); }

    /** Const view of the iRAM cell array (forensics/tests). */
    std::span<const std::uint8_t> iramRaw() const { return iram_.raw(); }

    /** Physical address of the first DRAM byte. */
    PhysAddr dramBase() const { return DRAM_BASE; }

    /** One past the last DRAM physical address. */
    PhysAddr dramEnd() const { return DRAM_BASE + dram_.size(); }

    /**
     * Cut power for @p off_seconds at @p celsius, then run the cold-boot
     * firmware path. Simulated time is NOT advanced (the device is off).
     */
    void powerCycle(double off_seconds, double celsius = 22.0);

    /** Reboot without power loss (the OS-reboot cold-boot variant). */
    void warmReboot();

    /**
     * Charge CPU work of @p seconds to the clock (models computation
     * this simulation does not execute instruction-by-instruction).
     */
    void chargeCpuSeconds(double seconds);

    /**
     * The machine's single observation spine: every device of this Soc
     * fires its trace points here. Subscribe a probe::Subscriber (the
     * fault injector, a bus monitor, a CounterSink, ...) to observe or
     * perturb the machine; with no subscribers every emission site
     * early-outs at one pointer + bit test.
     */
    probe::TraceEngine &trace() { return trace_; }
    const probe::TraceEngine &trace() const { return trace_; }

    /** Checkpoint the entire device state (see SocSnapshot). Cheap: the
     * cell arrays are frozen copy-on-write, not copied. */
    SocSnapshot snapshot() const;

    /**
     * Overwrite this device's whole state with @p snap. The target must
     * have been constructed from the same platform geometry (fatal
     * otherwise). Invalidates any outstanding dramRaw()/iramRaw()
     * spans. Wiring — trace subscribers, hooks, bus mappings — is
     * untouched; only simulated state is replaced.
     */
    void forkFrom(const SocSnapshot &snap);

  private:
    // Declared first so it is destroyed last: devices hold raw pointers
    // to it, and subscribers detach through it in their destructors.
    probe::TraceEngine trace_;
    PlatformConfig config_;
    SimClock clock_;
    Rng rng_;
    EnergyModel energy_;
    Dram dram_;
    Iram iram_;
    Bus bus_;
    TrustZone tz_;
    L2Cache l2_;
    DmaController dma_;
    UartDevice uart_;
    NicDevice nic_;
    Cpu cpu_;
    Firmware firmware_;
    MemorySystem memory_;
    std::unique_ptr<CryptoAccelerator> accel_;
    std::unique_ptr<MemCryptoEngine> memCrypto_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_SOC_HH
