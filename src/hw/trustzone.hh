/**
 * @file
 * ARM TrustZone model: the secure/normal world split, the secure
 * hardware fuse, and the two access-control duties Sentry gives the
 * secure world (paper sections 3.1, 4.4, 10):
 *
 *   1. gating the PL310 lockdown registers (cache locking can only be
 *      configured from the secure world);
 *   2. denying DMA access to protected regions (iRAM), since an IOMMU
 *      is absent and DMA devices cannot be authenticated.
 *
 * On retail devices with locked firmware (the Nexus 4 prototype) the
 * secure world is inaccessible, which is modelled by constructing the
 * TrustZone with secure-world entry disabled — exactly why the paper's
 * Nexus prototype cannot use cache locking.
 */

#ifndef SENTRY_HW_TRUSTZONE_HH
#define SENTRY_HW_TRUSTZONE_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace sentry::hw
{

/** Processor security state. */
enum class World
{
    Normal,
    Secure,
};

/**
 * The write-once secret burned into the device at provisioning time;
 * readable only from the secure world.
 */
class SecureFuse
{
  public:
    /** Provision the fuse with a random secret derived from @p seed. */
    explicit SecureFuse(std::uint64_t seed);

    /** @return the 32-byte fuse secret (caller must be in secure world;
     *          enforced by TrustZone::readFuse). */
    const std::array<std::uint8_t, 32> &secret() const { return secret_; }

  private:
    std::array<std::uint8_t, 32> secret_;
};

/** TrustZone security controller. */
class TrustZone
{
  public:
    /**
     * @param secure_world_available false on devices with locked boot
     *        firmware (no way to install secure-world code)
     * @param fuse_seed seed for the provisioning-time fuse secret
     */
    TrustZone(bool secure_world_available, std::uint64_t fuse_seed);

    /** @return the current processor world. */
    World world() const { return world_; }

    /** @return true if secure-world entry is possible on this device. */
    bool secureWorldAvailable() const { return secureAvailable_; }

    /**
     * SMC into the secure world. @return false when the device's
     * firmware is locked and no secure-world code can run.
     */
    bool enterSecureWorld();

    /** SMC back to the normal world. */
    void exitSecureWorld();

    /**
     * Read the fuse secret.
     * @return true and fill @p out when in the secure world;
     *         false otherwise (the hardware refuses).
     */
    bool readFuse(std::array<std::uint8_t, 32> &out) const;

    /**
     * Protect [base, base+size) from all DMA masters. Secure world only.
     * @return false if not in the secure world.
     */
    bool protectRegionFromDma(PhysAddr base, std::size_t size);

    /** Remove a DMA protection. Secure world only. */
    bool unprotectRegionFromDma(PhysAddr base, std::size_t size);

    /** @return true if any byte of [addr, addr+len) is DMA-protected. */
    bool dmaDenied(PhysAddr addr, std::size_t len) const;

    /**
     * @return true if the current world may program the PL310 lockdown
     *         registers (secure world only).
     */
    bool lockdownConfigAllowed() const { return world_ == World::Secure; }

    /**
     * Register the world-shared mailbox buffer a secure service uses to
     * pass results to the normal world (the Ahn & Lee side-channel
     * setting: the buffer is cacheable and normal-world-visible, so the
     * secure service's access pattern on it leaks through the shared
     * L2). Secure world only; @return false otherwise.
     */
    bool bindSharedBuffer(PhysAddr base, std::size_t size);

    /** @return true once bindSharedBuffer succeeded. */
    bool hasSharedBuffer() const { return sharedSize_ != 0; }

    /** @return the shared mailbox base (0 when unbound). */
    PhysAddr sharedBufferBase() const { return sharedBase_; }

    /** @return the shared mailbox size (0 when unbound). */
    std::size_t sharedBufferSize() const { return sharedSize_; }

    /** @return successful secure-world entries so far (SMC count). */
    std::uint64_t smcEntries() const { return smcEntries_; }

    /**
     * Mutable security state for snapshot/fork. The fuse secret and
     * secure-world availability are provisioning-time constants derived
     * from the device's own config, so they stay with the target device
     * (a fork with the same seed matches the source exactly).
     */
    struct ForkState
    {
        World world = World::Normal;
        std::vector<std::pair<PhysAddr, std::size_t>> dmaProtected;
        PhysAddr sharedBase = 0;
        std::size_t sharedSize = 0;
        std::uint64_t smcEntries = 0;
    };

    ForkState forkState() const
    {
        ForkState fs;
        fs.world = world_;
        for (const Region &region : dmaProtected_)
            fs.dmaProtected.emplace_back(region.base, region.size);
        fs.sharedBase = sharedBase_;
        fs.sharedSize = sharedSize_;
        fs.smcEntries = smcEntries_;
        return fs;
    }

    void restoreForkState(const ForkState &fs)
    {
        world_ = fs.world;
        dmaProtected_.clear();
        for (const auto &[base, size] : fs.dmaProtected)
            dmaProtected_.push_back(Region{base, size});
        sharedBase_ = fs.sharedBase;
        sharedSize_ = fs.sharedSize;
        smcEntries_ = fs.smcEntries;
    }

  private:
    struct Region
    {
        PhysAddr base;
        std::size_t size;
    };

    bool secureAvailable_;
    World world_ = World::Normal;
    SecureFuse fuse_;
    std::vector<Region> dmaProtected_;
    PhysAddr sharedBase_ = 0;
    std::size_t sharedSize_ = 0;
    std::uint64_t smcEntries_ = 0;
};

/** RAII secure-world section; fatal if the device's firmware is locked. */
class SecureWorldGuard
{
  public:
    explicit SecureWorldGuard(TrustZone &tz);
    ~SecureWorldGuard();

    SecureWorldGuard(const SecureWorldGuard &) = delete;
    SecureWorldGuard &operator=(const SecureWorldGuard &) = delete;

    /** @return true if secure world was actually entered. */
    bool entered() const { return entered_; }

  private:
    TrustZone &tz_;
    bool entered_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_TRUSTZONE_HH
