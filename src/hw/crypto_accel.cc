#include "hw/crypto_accel.hh"

#include "common/logging.hh"

namespace sentry::hw
{

CryptoAccelerator::CryptoAccelerator(SimClock &clock, EnergyModel &energy,
                                     CryptoAccelParams params)
    : clock_(clock), energy_(energy), params_(params)
{}

void
CryptoAccelerator::setKey(std::span<const std::uint8_t> key)
{
    cipher_ = std::make_unique<crypto::Aes>(key);
}

double
CryptoAccelerator::currentRate() const
{
    const double rate = params_.fullRateBytesPerSec;
    return downscaled_ ? rate / params_.downscaleFactor : rate;
}

void
CryptoAccelerator::chargeRequest(std::size_t bytes, bool encrypt)
{
    // The whole engine (including its request setup path) runs at the
    // reduced clock while down-scaled.
    const double setup = downscaled_
                             ? params_.setupSeconds *
                                   params_.downscaleFactor
                             : params_.setupSeconds;
    clock_.advanceSeconds(setup +
                          static_cast<double>(bytes) / currentRate());
    energy_.charge(EnergyCategory::CryptoAccel,
                   energy_.params().accelPerRequest +
                       energy_.params().accelPerByte *
                           static_cast<double>(bytes));
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::CryptoOp)) {
        probe::CryptoOp event{bytes, encrypt};
        trace_->emit(event);
    }
}

void
CryptoAccelerator::cbcEncrypt(const crypto::Iv &iv,
                              std::span<std::uint8_t> data)
{
    if (!cipher_)
        fatal("crypto accelerator used before a key was loaded");
    crypto::AesBlockCipher block(*cipher_);
    crypto::cbcEncrypt(block, iv, data);
    chargeRequest(data.size(), true);
}

void
CryptoAccelerator::cbcDecrypt(const crypto::Iv &iv,
                              std::span<std::uint8_t> data)
{
    if (!cipher_)
        fatal("crypto accelerator used before a key was loaded");
    crypto::AesBlockCipher block(*cipher_);
    crypto::cbcDecrypt(block, iv, data);
    chargeRequest(data.size(), false);
}

} // namespace sentry::hw
