/**
 * @file
 * Data-remanence model for DRAM and SRAM (iRAM) cells.
 *
 * Calibration targets are the paper's Table 2 (room-temperature pattern
 * survival on the Tegra 3 tablet) plus the temperature behaviour reported
 * by Halderman et al. (cold boot) and Skorobogatov (low-temperature SRAM
 * remanence): retention time roughly doubles for every 10 degrees C drop.
 *
 * The model decays individual bits: each bit survives a power loss of t
 * seconds with probability exp(-t / tau_bit(T)). A "pattern unit" of 64
 * bits therefore survives with probability exp(-64 t / tau_bit(T)), which
 * with tau_bit(22C) = 17.7 s reproduces Table 2:
 *   - reflash tap (~7 ms off):   97.5% of 8-byte units survive
 *   - 2 second reset:             0.1% of units survive
 * Decayed bits collapse to the ground polarity of their 4 KiB region
 * (real DRAM cells discharge toward 0 or 1 depending on cell wiring).
 */

#ifndef SENTRY_HW_REMANENCE_HH
#define SENTRY_HW_REMANENCE_HH

#include <cstdint>
#include <span>

#include "common/rng.hh"

namespace sentry::hw
{

/** Memory technology being decayed. */
enum class MemoryTech
{
    Dram,
    Sram, //!< decays ~10x more slowly than DRAM (Skorobogatov)
};

/** Stochastic cell-decay model. */
class RemanenceModel
{
  public:
    /**
     * @param tech          DRAM or SRAM decay constants
     * @param tau_bit_room  per-bit retention time constant at 22 C;
     *                      0 selects the technology default
     */
    explicit RemanenceModel(MemoryTech tech, double tau_bit_room = 0.0);

    /** @return default room-temperature tau for a technology. */
    static double
    defaultTau(MemoryTech tech)
    {
        return tech == MemoryTech::Dram ? 17.7 : 177.0;
    }

    /** @return probability that a single bit survives @p off_seconds. */
    double bitSurvival(double off_seconds, double celsius) const;

    /** @return probability that an 8-byte aligned unit survives intact. */
    double unitSurvival(double off_seconds, double celsius) const;

    /**
     * Decay @p memory in place as if power was lost for @p off_seconds at
     * @p celsius. Decayed bytes collapse to a per-4KiB-region ground
     * polarity drawn from @p rng.
     *
     * Decay is applied at byte granularity with the byte survival
     * probability implied by the bit model; this keeps a 1 GiB decay pass
     * fast while preserving unit-level survival statistics.
     */
    void decay(std::span<std::uint8_t> memory, double off_seconds,
               double celsius, Rng &rng) const;

  private:
    MemoryTech tech_;
    double tauBitRoom_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_REMANENCE_HH
