/**
 * @file
 * The external memory bus connecting the SoC to off-chip DRAM.
 *
 * Everything that crosses this bus — cache-line fills, writebacks, DMA
 * transfers — fires a probe::BusTransfer trace point, including
 * addresses and payloads. Traffic that stays on the SoC (iRAM
 * accesses, L2 hits) never appears here; that asymmetry is the core of
 * Sentry's security argument. Attach a hw::BusMonitor (or any other
 * probe::Subscriber) to the owning Soc's TraceEngine to observe it.
 */

#ifndef SENTRY_HW_BUS_HH
#define SENTRY_HW_BUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/probe.hh"
#include "common/trace_engine.hh"
#include "common/types.hh"

namespace sentry::hw
{

/** Bus transactions carry the probe-layer initiator tag. */
using probe::BusInitiator;

/** A device addressable over the bus. */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Read @p len bytes at device-relative @p offset. */
    virtual void busRead(PhysAddr offset, std::uint8_t *buf,
                         std::size_t len) = 0;

    /** Write @p len bytes at device-relative @p offset. */
    virtual void busWrite(PhysAddr offset, const std::uint8_t *buf,
                          std::size_t len) = 0;
};

/** External-bus traffic counters (cheap enough to keep always-on). */
struct BusStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;

    /** @return total transactions of either direction. */
    std::uint64_t transactions() const { return reads + writes; }
};

/** Address-routing bus firing BusTransfer trace points. */
class Bus
{
  public:
    /** Map @p target at [base, base+size). Ranges must not overlap. */
    void attach(BusTarget *target, PhysAddr base, std::size_t size,
                std::string name);

    /** @return true if [addr, addr+len) maps to exactly one target. */
    bool covers(PhysAddr addr, std::size_t len) const;

    /** Read from the mapped device; fires a BusTransfer trace point. */
    void read(PhysAddr addr, std::uint8_t *buf, std::size_t len,
              BusInitiator initiator);

    /** Write to the mapped device; fires a BusTransfer trace point. */
    void write(PhysAddr addr, const std::uint8_t *buf, std::size_t len,
               BusInitiator initiator);

    /** @return transaction counters. */
    const BusStats &stats() const { return stats_; }

    /** Zero the transaction counters. */
    void clearStats() { stats_ = BusStats{}; }

    /** Overwrite the transaction counters (snapshot/fork restore; the
     * mappings themselves are construction-time wiring). */
    void restoreStats(const BusStats &stats) { stats_ = stats; }

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

  private:
    struct Mapping
    {
        BusTarget *target;
        PhysAddr base;
        std::size_t size;
        std::string name;
    };

    const Mapping &route(PhysAddr addr, std::size_t len) const;

    std::vector<Mapping> mappings_;
    // Route cache: index of the last mapping hit. Line fills and
    // writebacks stream against one target, so this turns the routing
    // scan into a single range check on the hot path.
    mutable std::size_t lastRoute_ = SIZE_MAX;
    BusStats stats_;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_BUS_HH
