/**
 * @file
 * The external memory bus connecting the SoC to off-chip DRAM, plus the
 * observer interface a hardware bus-monitoring probe attaches to.
 *
 * Everything that crosses this bus — cache-line fills, writebacks, DMA
 * transfers — is visible to observers, including addresses and payloads.
 * Traffic that stays on the SoC (iRAM accesses, L2 hits) never appears
 * here; that asymmetry is the core of Sentry's security argument.
 */

#ifndef SENTRY_HW_BUS_HH
#define SENTRY_HW_BUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sentry::fault
{
class FaultHooks;
}

namespace sentry::hw
{

/** Who initiated a bus transaction. */
enum class BusInitiator
{
    CpuCache, //!< L2 line fill or writeback on behalf of the CPU
    Dma,      //!< a DMA controller transfer
};

/** One observable transaction on the external memory bus. */
struct BusTransaction
{
    PhysAddr addr;
    std::uint32_t size;
    bool isWrite;
    BusInitiator initiator;
    /** Payload; valid only during the observer callback. */
    const std::uint8_t *data;
};

/** Attachment point for hardware probes (see attacks/BusMonitorAttack). */
class BusObserver
{
  public:
    virtual ~BusObserver() = default;

    /** Called synchronously for every transaction. */
    virtual void onTransaction(const BusTransaction &txn) = 0;
};

/** A device addressable over the bus. */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Read @p len bytes at device-relative @p offset. */
    virtual void busRead(PhysAddr offset, std::uint8_t *buf,
                         std::size_t len) = 0;

    /** Write @p len bytes at device-relative @p offset. */
    virtual void busWrite(PhysAddr offset, const std::uint8_t *buf,
                          std::size_t len) = 0;
};

/** External-bus traffic counters (cheap enough to keep always-on). */
struct BusStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;

    /** @return total transactions of either direction. */
    std::uint64_t transactions() const { return reads + writes; }
};

/** Address-routing bus with probe support. */
class Bus
{
  public:
    /** Map @p target at [base, base+size). Ranges must not overlap. */
    void attach(BusTarget *target, PhysAddr base, std::size_t size,
                std::string name);

    /** Register a probe; it sees every subsequent transaction. */
    void addObserver(BusObserver *observer);

    /** Remove a previously-registered probe. */
    void removeObserver(BusObserver *observer);

    /** @return true if [addr, addr+len) maps to exactly one target. */
    bool covers(PhysAddr addr, std::size_t len) const;

    /** Read from the mapped device; notifies observers. */
    void read(PhysAddr addr, std::uint8_t *buf, std::size_t len,
              BusInitiator initiator);

    /** Write to the mapped device; notifies observers. */
    void write(PhysAddr addr, const std::uint8_t *buf, std::size_t len,
               BusInitiator initiator);

    /** @return true while at least one probe is attached. */
    bool hasObservers() const { return !observers_.empty(); }

    /** @return transaction counters. */
    const BusStats &stats() const { return stats_; }

    /** Zero the transaction counters. */
    void clearStats() { stats_ = BusStats{}; }

    /** Arm (or with nullptr disarm) fault injection on this bus. */
    void setFaultHooks(fault::FaultHooks *hooks) { faultHooks_ = hooks; }

  private:
    struct Mapping
    {
        BusTarget *target;
        PhysAddr base;
        std::size_t size;
        std::string name;
    };

    const Mapping &route(PhysAddr addr, std::size_t len) const;
    void notify(const BusTransaction &txn);

    std::vector<Mapping> mappings_;
    std::vector<BusObserver *> observers_;
    // Route cache: index of the last mapping hit. Line fills and
    // writebacks stream against one target, so this turns the routing
    // scan into a single range check on the hot path.
    mutable std::size_t lastRoute_ = SIZE_MAX;
    BusStats stats_;
    fault::FaultHooks *faultHooks_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_BUS_HH
