/**
 * @file
 * Page-granular copy-on-write byte array.
 *
 * `CowBytes` backs the large simulated cell arrays (DRAM, iRAM) so that
 * a whole warmed device can be checkpointed and forked without copying
 * the full model. Pages are in one of three states:
 *
 *  - Zero:    never written; reads come from a shared all-zero page.
 *  - Shared:  read-only view into an immutable `CowImage` (a snapshot).
 *  - Private: this instance owns the page; writes landed here.
 *
 * `freeze()` publishes the current contents as an immutable, ref-counted
 * `CowImage` without disturbing this instance. `adopt()` rebinds this
 * instance to an image: every page becomes Shared (or Zero) and the
 * first write to a page privatizes it ("private-on-first-write"). The
 * set of Private pages is the fork's dirty bitmap; `privatePages()`
 * reports its population count.
 *
 * Span-stability rule (the `raw()` contract for Dram/Iram): the
 * contiguous span returned by `contiguous()` materializes every page
 * into private storage and stays valid — and visible to reads through
 * this object — until the next `adopt()` (i.e. until the owning device
 * is forked again). `freeze()` and `zeroAll()` never invalidate it.
 * Code that holds a span across `adopt()` reads stale bytes; take a
 * fresh span instead.
 */

#ifndef SENTRY_HW_COW_BYTES_HH
#define SENTRY_HW_COW_BYTES_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hh"

namespace sentry::hw
{

/**
 * Immutable page array published by CowBytes::freeze(). Safe to share
 * between threads: contents never change after publication, so many
 * workers can fork devices from one image concurrently.
 */
class CowImage
{
  public:
    /** @return logical size in bytes. */
    std::size_t size() const { return size_; }

    /** @return number of 4 KiB pages (last one may be partial). */
    std::size_t pageCount() const { return pages_.size(); }

    /** @return page data (PAGE_SIZE bytes), or nullptr for an all-zero
     * page. */
    const std::uint8_t *page(std::size_t index) const
    {
        return pages_[index];
    }

  private:
    friend class CowBytes;

    std::size_t size_ = 0;
    /** Per-page pointer; nullptr = zero page. Non-null entries point
     * either into owned_ or into a page of parent_. */
    std::vector<const std::uint8_t *> pages_;
    /** Storage for pages copied out of the freezing CowBytes. */
    std::unique_ptr<std::uint8_t[]> owned_;
    /** Keeps pages shared from an earlier image alive. */
    std::shared_ptr<const CowImage> parent_;
};

/** Copy-on-write byte array; see file comment for the page lifecycle. */
class CowBytes
{
  public:
    /** All pages start in the Zero state; no memory is touched, so
     * construction is O(size / PAGE_SIZE), not O(size). */
    explicit CowBytes(std::size_t size);

    CowBytes(const CowBytes &) = delete;
    CowBytes &operator=(const CowBytes &) = delete;

    std::size_t size() const { return size_; }
    std::size_t pageCount() const { return nPages_; }

    /** Copy @p len bytes at @p offset into @p buf. Caller checks
     * bounds. */
    void read(std::size_t offset, void *buf, std::size_t len) const
    {
        const std::size_t page = offset / PAGE_SIZE;
        const std::size_t inPage = offset % PAGE_SIZE;
        if (len <= PAGE_SIZE - inPage) {
            std::memcpy(buf, readPtr_[page] + inPage, len);
            return;
        }
        readSlow(offset, static_cast<std::uint8_t *>(buf), len);
    }

    /** Write @p len bytes at @p offset, privatizing touched pages.
     * Caller checks bounds. */
    void write(std::size_t offset, const void *buf, std::size_t len)
    {
        const std::size_t page = offset / PAGE_SIZE;
        const std::size_t inPage = offset % PAGE_SIZE;
        if (len <= PAGE_SIZE - inPage) {
            std::memcpy(privatePage(page) + inPage, buf, len);
            return;
        }
        writeSlow(offset, static_cast<const std::uint8_t *>(buf), len);
    }

    /**
     * Materialize every page into private storage and return the whole
     * array as one mutable span. See the span-stability rule in the
     * file comment. Logically const: contents are unchanged, only the
     * page states move to Private.
     */
    std::span<std::uint8_t> contiguous() const;

    /** Publish the current contents as an immutable image. Does not
     * change this instance's page states. */
    std::shared_ptr<const CowImage> freeze() const;

    /** Become a COW view of @p image (same size required): drop all
     * private pages, share the image's. Invalidates prior spans. */
    void adopt(std::shared_ptr<const CowImage> image);

    /**
     * Reset contents to all-zero. Pages already Private are memset in
     * place (so existing spans keep reading zeros, matching what a
     * plain memset of the old storage did); Shared/Zero pages drop to
     * the Zero state for free.
     */
    void zeroAll();

    /** @return number of Private pages (the fork's dirty bitmap
     * population). */
    std::size_t privatePages() const { return privateCount_; }

    /** @return true if page @p index has been privatized (dirty since
     * the last adopt()). */
    bool pageIsPrivate(std::size_t index) const
    {
        return private_[index] != 0;
    }

    /** The shared all-zero page backing Zero-state reads. */
    static const std::uint8_t *zeroPage();

  private:
    void readSlow(std::size_t offset, std::uint8_t *out,
                  std::size_t len) const;
    void writeSlow(std::size_t offset, const std::uint8_t *in,
                   std::size_t len);

    std::uint8_t *localPage(std::size_t page) const
    {
        return local_.get() + page * PAGE_SIZE;
    }

    /** Copy-on-write: give page @p page its own storage. */
    std::uint8_t *privatePage(std::size_t page)
    {
        std::uint8_t *data = localPage(page);
        if (!private_[page]) {
            std::memcpy(data, readPtr_[page], PAGE_SIZE);
            readPtr_[page] = data;
            private_[page] = 1;
            ++privateCount_;
        }
        return data;
    }

    std::size_t size_;
    std::size_t nPages_;
    /** Private storage, nPages_ * PAGE_SIZE bytes. Deliberately left
     * uninitialized: the host OS lazily backs it, so an instance that
     * never privatizes a page costs no physical memory. */
    std::unique_ptr<std::uint8_t[]> local_;
    /* Page state is mutable so that contiguous() can be const: reads
     * observe identical bytes before and after materialization. */
    mutable std::vector<const std::uint8_t *> readPtr_;
    mutable std::vector<std::uint8_t> private_;
    mutable std::size_t privateCount_ = 0;
    std::shared_ptr<const CowImage> base_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_COW_BYTES_HH
