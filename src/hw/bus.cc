#include "hw/bus.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/hooks.hh"

namespace sentry::hw
{

void
Bus::attach(BusTarget *target, PhysAddr base, std::size_t size,
            std::string name)
{
    for (const auto &m : mappings_) {
        const bool overlaps = base < m.base + m.size && m.base < base + size;
        if (overlaps) {
            panic("bus mapping \"%s\" overlaps \"%s\"", name.c_str(),
                  m.name.c_str());
        }
    }
    mappings_.push_back({target, base, size, std::move(name)});
}

void
Bus::addObserver(BusObserver *observer)
{
    observers_.push_back(observer);
}

void
Bus::removeObserver(BusObserver *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

bool
Bus::covers(PhysAddr addr, std::size_t len) const
{
    for (const auto &m : mappings_) {
        if (addr >= m.base && addr + len <= m.base + m.size)
            return true;
    }
    return false;
}

const Bus::Mapping &
Bus::route(PhysAddr addr, std::size_t len) const
{
    if (lastRoute_ < mappings_.size()) {
        const Mapping &m = mappings_[lastRoute_];
        if (addr >= m.base && addr + len <= m.base + m.size)
            return m;
    }
    for (std::size_t i = 0; i < mappings_.size(); ++i) {
        const Mapping &m = mappings_[i];
        if (addr >= m.base && addr + len <= m.base + m.size) {
            lastRoute_ = i;
            return m;
        }
    }
    panic("bus access to unmapped address 0x%llx (+%zu)",
          static_cast<unsigned long long>(addr), len);
}

void
Bus::notify(const BusTransaction &txn)
{
    for (auto *obs : observers_)
        obs->onTransaction(txn);
}

void
Bus::read(PhysAddr addr, std::uint8_t *buf, std::size_t len,
          BusInitiator initiator)
{
    const Mapping &m = route(addr, len);
    m.target->busRead(addr - m.base, buf, len);
    ++stats_.reads;
    stats_.readBytes += len;
    if (faultHooks_ != nullptr)
        faultHooks_->onBusRead(addr, len);
    if (!observers_.empty())
        notify({addr, static_cast<std::uint32_t>(len), false, initiator,
                buf});
}

void
Bus::write(PhysAddr addr, const std::uint8_t *buf, std::size_t len,
           BusInitiator initiator)
{
    const Mapping &m = route(addr, len);
    m.target->busWrite(addr - m.base, buf, len);
    ++stats_.writes;
    stats_.writeBytes += len;
    // A glitched interconnect may replay the transaction. Duplicates go
    // to the same target and are visible to observers, but do NOT
    // re-consult the hooks — a duplicate must not trigger further
    // duplication.
    unsigned duplicates = 0;
    if (faultHooks_ != nullptr)
        duplicates = faultHooks_->onBusWrite(addr, len);
    for (unsigned i = 0; i < duplicates; ++i) {
        m.target->busWrite(addr - m.base, buf, len);
        ++stats_.writes;
        stats_.writeBytes += len;
        if (!observers_.empty())
            notify({addr, static_cast<std::uint32_t>(len), true,
                    initiator, buf});
    }
    if (!observers_.empty())
        notify({addr, static_cast<std::uint32_t>(len), true, initiator,
                buf});
}

} // namespace sentry::hw
