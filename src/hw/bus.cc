#include "hw/bus.hh"

#include "common/logging.hh"

namespace sentry::hw
{

void
Bus::attach(BusTarget *target, PhysAddr base, std::size_t size,
            std::string name)
{
    for (const auto &m : mappings_) {
        const bool overlaps = base < m.base + m.size && m.base < base + size;
        if (overlaps) {
            panic("bus mapping \"%s\" overlaps \"%s\"", name.c_str(),
                  m.name.c_str());
        }
    }
    mappings_.push_back({target, base, size, std::move(name)});
}

bool
Bus::covers(PhysAddr addr, std::size_t len) const
{
    for (const auto &m : mappings_) {
        if (addr >= m.base && addr + len <= m.base + m.size)
            return true;
    }
    return false;
}

const Bus::Mapping &
Bus::route(PhysAddr addr, std::size_t len) const
{
    if (lastRoute_ < mappings_.size()) {
        const Mapping &m = mappings_[lastRoute_];
        if (addr >= m.base && addr + len <= m.base + m.size)
            return m;
    }
    for (std::size_t i = 0; i < mappings_.size(); ++i) {
        const Mapping &m = mappings_[i];
        if (addr >= m.base && addr + len <= m.base + m.size) {
            lastRoute_ = i;
            return m;
        }
    }
    panic("bus access to unmapped address 0x%llx (+%zu)",
          static_cast<unsigned long long>(addr), len);
}

void
Bus::read(PhysAddr addr, std::uint8_t *buf, std::size_t len,
          BusInitiator initiator)
{
    const Mapping &m = route(addr, len);
    m.target->busRead(addr - m.base, buf, len);
    ++stats_.reads;
    stats_.readBytes += len;
    if (trace_ != nullptr &&
        trace_->enabled(probe::TraceKind::BusTransfer)) {
        probe::BusTransfer event{addr, static_cast<std::uint32_t>(len),
                                 false, initiator, buf, false, 0};
        trace_->emit(event);
        // End of the burst: hand everything the transaction generated
        // (line fills, cell accesses, this transfer) to the batch sinks.
        trace_->flushPending();
    }
}

void
Bus::write(PhysAddr addr, const std::uint8_t *buf, std::size_t len,
           BusInitiator initiator)
{
    const Mapping &m = route(addr, len);
    m.target->busWrite(addr - m.base, buf, len);
    ++stats_.writes;
    stats_.writeBytes += len;
    if (trace_ == nullptr || !trace_->enabled(probe::TraceKind::BusTransfer))
        return;
    probe::BusTransfer event{addr, static_cast<std::uint32_t>(len), true,
                             initiator, buf, false, 0};
    trace_->emit(event);
    // A glitched interconnect may replay the transaction (a subscriber
    // filled event.extraWrites). Replays go to the same target and fire
    // again with `duplicate` set, but their responses are ignored — a
    // duplicate must not trigger further duplication.
    for (unsigned i = 0; i < event.extraWrites; ++i) {
        m.target->busWrite(addr - m.base, buf, len);
        ++stats_.writes;
        stats_.writeBytes += len;
        probe::BusTransfer replay{addr, static_cast<std::uint32_t>(len),
                                  true, initiator, buf, true, 0};
        trace_->emit(replay);
    }
    trace_->flushPending();
}

} // namespace sentry::hw
