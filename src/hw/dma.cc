#include "hw/dma.hh"

#include <memory>

#include "common/logging.hh"
#include "hw/iram.hh"
#include "hw/trustzone.hh"

namespace sentry::hw
{

namespace
{
/** DMA engine moves roughly one byte per CPU cycle in this model. */
constexpr Cycles dmaCyclesPerByte = 1;
} // namespace

DmaController::DmaController(SimClock &clock, Bus &bus, Iram &iram,
                             TrustZone &tz)
    : clock_(clock), bus_(bus), iram_(iram), tz_(tz)
{}

void
DmaController::attachDevice(DmaDevice *device, PhysAddr base,
                            std::size_t size, std::string name)
{
    devices_.push_back({device, base, size, std::move(name)});
}

const DmaController::DeviceMapping *
DmaController::findDevice(PhysAddr addr, std::size_t len) const
{
    for (const auto &m : devices_) {
        if (addr >= m.base && addr + len <= m.base + m.size)
            return &m;
    }
    return nullptr;
}

bool
DmaController::isMemory(PhysAddr addr, std::size_t len) const
{
    const bool inIram =
        addr >= IRAM_BASE && addr + len <= IRAM_BASE + iram_.size();
    return inIram || bus_.covers(addr, len);
}

DmaStatus
DmaController::readMemory(PhysAddr addr, std::uint8_t *buf, std::size_t len)
{
    if (tz_.dmaDenied(addr, len))
        return DmaStatus::DeniedByTrustZone;

    if (addr >= IRAM_BASE && addr + len <= IRAM_BASE + iram_.size()) {
        iram_.read(addr - IRAM_BASE, buf, len);
    } else if (bus_.covers(addr, len)) {
        bus_.read(addr, buf, len, BusInitiator::Dma);
    } else {
        return DmaStatus::BadAddress;
    }

    clock_.advance(len * dmaCyclesPerByte);
    bytesTransferred_ += len;
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::DmaBurst)) {
        probe::DmaBurst event{addr, len, false};
        trace_->emit(event);
    }
    return DmaStatus::Ok;
}

DmaStatus
DmaController::writeMemory(PhysAddr addr, const std::uint8_t *buf,
                           std::size_t len)
{
    if (tz_.dmaDenied(addr, len))
        return DmaStatus::DeniedByTrustZone;

    if (addr >= IRAM_BASE && addr + len <= IRAM_BASE + iram_.size()) {
        iram_.write(addr - IRAM_BASE, buf, len);
    } else if (bus_.covers(addr, len)) {
        bus_.write(addr, buf, len, BusInitiator::Dma);
    } else {
        return DmaStatus::BadAddress;
    }

    clock_.advance(len * dmaCyclesPerByte);
    bytesTransferred_ += len;
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::DmaBurst)) {
        probe::DmaBurst event{addr, len, true};
        trace_->emit(event);
    }
    return DmaStatus::Ok;
}

DmaStatus
DmaController::transfer(PhysAddr src, PhysAddr dst, std::size_t len)
{
    const DeviceMapping *srcDev = findDevice(src, len);
    const DeviceMapping *dstDev = findDevice(dst, len);

    std::vector<std::uint8_t> staging(len);

    if (srcDev != nullptr) {
        const DmaStatus status =
            srcDev->device->dmaRead(src - srcDev->base, staging.data(), len);
        if (status != DmaStatus::Ok)
            return status;
    } else if (isMemory(src, len)) {
        const DmaStatus status = readMemory(src, staging.data(), len);
        if (status != DmaStatus::Ok)
            return status;
    } else {
        return DmaStatus::BadAddress;
    }

    if (dstDev != nullptr) {
        return dstDev->device->dmaWrite(dst - dstDev->base, staging.data(),
                                        len);
    }
    if (isMemory(dst, len))
        return writeMemory(dst, staging.data(), len);
    return DmaStatus::BadAddress;
}

} // namespace sentry::hw
