#include "hw/soc.hh"

#include <cstring>

#include "common/logging.hh"

namespace sentry::hw
{

MemorySystem::MemorySystem(SimClock &clock, Iram &iram, L2Cache &l2,
                           MemTiming timing)
    : clock_(clock), iram_(iram), l2_(l2), timing_(timing)
{}

bool
MemorySystem::isIram(PhysAddr addr) const
{
    return addr >= IRAM_BASE && addr < IRAM_BASE + iram_.size();
}

void
MemorySystem::read(PhysAddr addr, void *buf, std::size_t len)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const PhysAddr lineEnd =
            alignDown(addr, CACHE_LINE_SIZE) + CACHE_LINE_SIZE;
        const std::size_t chunk =
            std::min<std::size_t>(len, lineEnd - addr);
        if (isIram(addr)) {
            iram_.read(addr - IRAM_BASE, out, chunk);
            clock_.advance(timing_.iramAccessCycles);
        } else if (l2_.cacheable(addr)) {
            l2_.read(addr, out, chunk);
        } else {
            panic("MemorySystem read at unmapped 0x%llx",
                  static_cast<unsigned long long>(addr));
        }
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MemorySystem::write(PhysAddr addr, const void *buf, std::size_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        const PhysAddr lineEnd =
            alignDown(addr, CACHE_LINE_SIZE) + CACHE_LINE_SIZE;
        const std::size_t chunk =
            std::min<std::size_t>(len, lineEnd - addr);
        if (isIram(addr)) {
            iram_.write(addr - IRAM_BASE, in, chunk);
            clock_.advance(timing_.iramAccessCycles);
        } else if (l2_.cacheable(addr)) {
            l2_.write(addr, in, chunk);
        } else {
            panic("MemorySystem write at unmapped 0x%llx",
                  static_cast<unsigned long long>(addr));
        }
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::uint32_t
MemorySystem::read32(PhysAddr addr)
{
    std::uint32_t value;
    read(addr, &value, sizeof(value));
    return value;
}

void
MemorySystem::write32(PhysAddr addr, std::uint32_t value)
{
    write(addr, &value, sizeof(value));
}

void
MemorySystem::fill(PhysAddr addr, std::uint8_t value, std::size_t len)
{
    std::uint8_t chunk[CACHE_LINE_SIZE];
    std::memset(chunk, value, sizeof(chunk));
    while (len > 0) {
        const std::size_t n =
            std::min<std::size_t>(len, CACHE_LINE_SIZE -
                                           (addr % CACHE_LINE_SIZE));
        write(addr, chunk, n);
        addr += n;
        len -= n;
    }
}

void
MemorySystem::copy(PhysAddr dst, PhysAddr src, std::size_t len)
{
    std::uint8_t buffer[CACHE_LINE_SIZE];
    // memmove semantics: when the destination overlaps the source from
    // above, a forward chunked copy would re-read bytes it already
    // overwrote — walk the chunks backward instead. Non-overlapping
    // copies keep the original forward chunking bit-for-bit.
    if (dst > src && dst < src + len) {
        PhysAddr srcEnd = src + len;
        PhysAddr dstEnd = dst + len;
        while (len > 0) {
            const std::size_t n =
                std::min<std::size_t>(len, CACHE_LINE_SIZE);
            srcEnd -= n;
            dstEnd -= n;
            read(srcEnd, buffer, n);
            write(dstEnd, buffer, n);
            len -= n;
        }
        return;
    }
    while (len > 0) {
        const std::size_t n = std::min<std::size_t>(len, CACHE_LINE_SIZE);
        read(src, buffer, n);
        write(dst, buffer, n);
        src += n;
        dst += n;
        len -= n;
    }
}

Soc::Soc(const PlatformConfig &config)
    : config_(config), clock_(config.cpuFreqHz), rng_(config.seed),
      energy_(config.energy, config.batteryJoules), dram_(config.dramSize),
      iram_(config.iramSize),
      tz_(config.secureWorldAvailable, config.seed ^ 0xf05e0000ULL),
      l2_(clock_, bus_, tz_, DRAM_BASE, config.dramSize, config.l2Size,
          config.l2Ways, config.timing.l2),
      dma_(clock_, bus_, iram_, tz_), cpu_(clock_), firmware_(config.boot),
      memory_(clock_, iram_, l2_, config.timing)
{
    trace_.setClock(&clock_);
    dram_.setTraceEngine(&trace_);
    iram_.setTraceEngine(&trace_);
    bus_.setTraceEngine(&trace_);
    l2_.setTraceEngine(&trace_);
    dma_.setTraceEngine(&trace_);
    energy_.setTraceEngine(&trace_);

    bus_.attach(&dram_, DRAM_BASE, dram_.size(), "dram");
    dma_.attachDevice(&uart_, UART_DEBUG_PORT, UART_DEBUG_PORT_SIZE,
                      "uart-debug");
    dma_.attachDevice(&nic_, NIC_TX_FIFO,
                      (NIC_RX_FIFO + NIC_RX_FIFO_SIZE) - NIC_TX_FIFO,
                      "nic");

    cpu_.setMemoryPort([this](PhysAddr addr, const std::uint8_t *buf,
                              std::size_t len) {
        memory_.write(addr, buf, len);
    });

    if (config.hasCryptoAccel) {
        accel_ =
            std::make_unique<CryptoAccelerator>(clock_, energy_,
                                                config.accel);
        accel_->setTraceEngine(&trace_);
    }
    memCrypto_ = std::make_unique<MemCryptoEngine>(clock_, energy_);
    memCrypto_->setTraceEngine(&trace_);
}

SocSnapshot
Soc::snapshot() const
{
    SocSnapshot snap;
    snap.platformName = config_.name;
    snap.dramSize = dram_.size();
    snap.iramSize = iram_.size();
    snap.l2Size = l2_.size();
    snap.l2Ways = l2_.ways();
    snap.dram = dram_.snapshotImage();
    snap.iram = iram_.snapshotImage();
    snap.clockNow = clock_.now();
    snap.rng = rng_;
    snap.energy = energy_.forkState();
    snap.bus = bus_.stats();
    snap.trustzone = tz_.forkState();
    snap.l2 = l2_.forkState();
    snap.dma = dma_.forkState();
    snap.uart = uart_.forkState();
    snap.nic = nic_.forkState();
    snap.cpu = cpu_.forkState();
    if (accel_ != nullptr)
        snap.accel = accel_->forkState();
    snap.memCrypto = memCrypto_->forkState();
    return snap;
}

void
Soc::forkFrom(const SocSnapshot &snap)
{
    if (snap.platformName != config_.name || snap.dramSize != dram_.size() ||
        snap.iramSize != iram_.size() || snap.l2Size != l2_.size() ||
        snap.l2Ways != l2_.ways())
        fatal("Soc::forkFrom: snapshot of platform '%s' does not match "
              "target '%s' geometry",
              snap.platformName.c_str(), config_.name.c_str());
    if ((snap.accel.cipher != nullptr || snap.accel.downscaled) &&
        accel_ == nullptr)
        fatal("Soc::forkFrom: snapshot has crypto-accelerator state but "
              "the target platform has none");

    dram_.adoptImage(snap.dram);
    iram_.adoptImage(snap.iram);
    clock_.reset();
    clock_.advance(snap.clockNow);
    rng_ = snap.rng;
    energy_.restoreForkState(snap.energy);
    bus_.restoreStats(snap.bus);
    tz_.restoreForkState(snap.trustzone);
    l2_.restoreForkState(snap.l2);
    dma_.restoreForkState(snap.dma);
    uart_.restoreForkState(snap.uart);
    nic_.restoreForkState(snap.nic);
    cpu_.restoreForkState(snap.cpu);
    if (accel_ != nullptr)
        accel_->restoreForkState(snap.accel);
    memCrypto_->restoreForkState(snap.memCrypto);
}

void
Soc::powerCycle(double off_seconds, double celsius)
{
    dram_.powerLoss(off_seconds, celsius, rng_);
    iram_.powerLoss(off_seconds, celsius, rng_);
    cpu_.zeroRegisters();
    firmware_.coldBoot(dram_, iram_, l2_, rng_);
}

void
Soc::warmReboot()
{
    cpu_.zeroRegisters();
    firmware_.warmBoot(dram_, l2_, rng_);
}

void
Soc::chargeCpuSeconds(double seconds)
{
    clock_.advanceSeconds(seconds);
}

} // namespace sentry::hw
