/**
 * @file
 * On-SoC internal SRAM (iRAM).
 *
 * iRAM is *not* a BusTarget on the external memory bus: CPU accesses to
 * it stay inside the SoC and are invisible to a bus-monitoring probe.
 * DMA controllers, however, can address it like any other system memory
 * unless TrustZone protection is enabled (paper section 4.4) — the DMA
 * path therefore goes through dmaRead/dmaWrite, which consult the
 * TrustZone access-control hook.
 *
 * Physically the array is SRAM: it keeps its contents across a power
 * blip far longer than DRAM, but the platform's boot firmware zeroes it
 * on every cold boot, which is what actually makes it cold-boot safe
 * (Table 2: 0% recovered after any power loss).
 */

#ifndef SENTRY_HW_IRAM_HH
#define SENTRY_HW_IRAM_HH

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.hh"
#include "common/trace_engine.hh"
#include "common/types.hh"
#include "hw/cow_bytes.hh"
#include "hw/remanence.hh"

namespace sentry::hw
{

/** On-chip SRAM device. */
class Iram
{
  public:
    /** @param size capacity in bytes (256 KiB on Tegra 3). */
    explicit Iram(std::size_t size);

    /** CPU-side read (on-SoC; never observable on the external bus). */
    void read(PhysAddr offset, std::uint8_t *buf, std::size_t len) const;

    /** CPU-side write. */
    void write(PhysAddr offset, const std::uint8_t *buf, std::size_t len);

    /** @return capacity in bytes. */
    std::size_t size() const { return data_.size(); }

    /**
     * Direct simulation-level view (attack dumps, test assertions).
     *
     * Invalidation rule: the span materializes the COW backing store
     * and stays valid until the next adoptImage() / Soc::forkFrom().
     * Never hold it across a fork; take a fresh span instead (see
     * cow_bytes.hh for the full contract).
     */
    std::span<std::uint8_t> raw() { return data_.contiguous(); }
    std::span<const std::uint8_t> raw() const { return data_.contiguous(); }

    /** Publish the cell array as an immutable COW image. */
    std::shared_ptr<const CowImage> snapshotImage() const
    {
        return data_.freeze();
    }

    /** Rebind the cell array to @p image copy-on-write. Invalidates
     * raw() spans. */
    void adoptImage(std::shared_ptr<const CowImage> image)
    {
        data_.adopt(std::move(image));
    }

    /** @return pages privatized since the last adoptImage(). */
    std::size_t dirtyPages() const { return data_.privatePages(); }

    /** Apply SRAM cell decay for a power loss. */
    void powerLoss(double off_seconds, double celsius, Rng &rng);

    /** Zero the whole array (the boot-firmware behaviour). */
    void zeroize();

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

  private:
    void checkRange(PhysAddr offset, std::size_t len) const;

    CowBytes data_;
    RemanenceModel remanence_;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_IRAM_HH
