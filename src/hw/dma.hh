/**
 * @file
 * DMA controller model.
 *
 * DMA transfers move data directly between system memory and peripheral
 * FIFOs without CPU involvement. Two properties matter for Sentry:
 *
 *   - DMA bypasses the L2 cache (coherence is software-managed on these
 *     SoCs), so a DMA read of an address whose current value lives in a
 *     locked cache way returns the *stale DRAM* content — this is both
 *     why cache-locking defeats DMA attacks and the mechanism behind the
 *     paper's PL310 validation experiment (section 4.2);
 *   - DMA can address iRAM like any other memory, so iRAM is only DMA-
 *     safe when TrustZone has been programmed to deny it (section 4.4).
 */

#ifndef SENTRY_HW_DMA_HH
#define SENTRY_HW_DMA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.hh"
#include "common/types.hh"
#include "hw/bus.hh"

namespace sentry::hw
{

class Iram;
class TrustZone;

/** Result of a DMA operation. */
enum class DmaStatus
{
    Ok,
    DeniedByTrustZone,
    BadAddress,
    DeviceNotReadable, //!< e.g. a NIC transmit FIFO cannot be read back
};

/** A peripheral endpoint DMA can target. */
class DmaDevice
{
  public:
    virtual ~DmaDevice() = default;

    /** Push @p len bytes into the device FIFO at @p offset. */
    virtual DmaStatus dmaWrite(PhysAddr offset, const std::uint8_t *buf,
                               std::size_t len) = 0;

    /** Pull @p len bytes from the device FIFO at @p offset. */
    virtual DmaStatus dmaRead(PhysAddr offset, std::uint8_t *buf,
                              std::size_t len) = 0;
};

/** The DMA engine. */
class DmaController
{
  public:
    /**
     * @param clock simulated clock (transfers charge bus time)
     * @param bus   external memory bus (DRAM window)
     * @param iram  on-chip SRAM (DMA-addressable unless protected)
     * @param tz    TrustZone access controller
     */
    DmaController(SimClock &clock, Bus &bus, Iram &iram, TrustZone &tz);

    /** Map a peripheral FIFO window for descriptor-based transfers. */
    void attachDevice(DmaDevice *device, PhysAddr base, std::size_t size,
                      std::string name);

    /**
     * Read @p len bytes of system memory (DRAM or iRAM) into @p buf,
     * exactly as a malicious or benign DMA master would: straight off
     * the bus, bypassing the cache, subject to TrustZone protection.
     */
    DmaStatus readMemory(PhysAddr addr, std::uint8_t *buf, std::size_t len);

    /** Write @p len bytes into system memory, bypassing the cache. */
    DmaStatus writeMemory(PhysAddr addr, const std::uint8_t *buf,
                          std::size_t len);

    /**
     * Descriptor transfer: memory -> device FIFO or device FIFO ->
     * memory, depending on which side of the pair is a device address.
     */
    DmaStatus transfer(PhysAddr src, PhysAddr dst, std::size_t len);

    /** @return total bytes moved by this controller. */
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** Transfer accounting for snapshot/fork (device mappings are
     * construction-time wiring). */
    struct ForkState
    {
        std::uint64_t bytesTransferred = 0;
    };

    ForkState forkState() const { return ForkState{bytesTransferred_}; }
    void restoreForkState(const ForkState &fs)
    {
        bytesTransferred_ = fs.bytesTransferred;
    }

  private:
    struct DeviceMapping
    {
        DmaDevice *device;
        PhysAddr base;
        std::size_t size;
        std::string name;
    };

    const DeviceMapping *findDevice(PhysAddr addr, std::size_t len) const;
    bool isMemory(PhysAddr addr, std::size_t len) const;

    SimClock &clock_;
    Bus &bus_;
    Iram &iram_;
    TrustZone &tz_;
    std::vector<DeviceMapping> devices_;
    std::uint64_t bytesTransferred_ = 0;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_DMA_HH
