/**
 * @file
 * Off-SoC DRAM device. Sits on the external memory bus, so every access
 * is observable by a bus monitor, and its contents survive power loss
 * according to the remanence model — both properties the paper's attacks
 * exploit.
 */

#ifndef SENTRY_HW_DRAM_HH
#define SENTRY_HW_DRAM_HH

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.hh"
#include "common/types.hh"
#include "hw/bus.hh"
#include "hw/cow_bytes.hh"
#include "hw/remanence.hh"

namespace sentry::hw
{

/** Simulated DRAM module. */
class Dram : public BusTarget
{
  public:
    /** @param size capacity in bytes. */
    explicit Dram(std::size_t size);

    void busRead(PhysAddr offset, std::uint8_t *buf,
                 std::size_t len) override;
    void busWrite(PhysAddr offset, const std::uint8_t *buf,
                  std::size_t len) override;

    /** @return capacity in bytes. */
    std::size_t size() const { return data_.size(); }

    /**
     * Direct (simulation-level) view of the cell array. Used by attack
     * code that dumps memory and by test assertions; not charged to the
     * simulated clock and not visible on the bus.
     *
     * Invalidation rule: the span materializes the COW backing store
     * and stays valid until the next adoptImage() / Soc::forkFrom().
     * Never hold it across a fork; take a fresh span instead (see
     * cow_bytes.hh for the full contract).
     */
    std::span<std::uint8_t> raw() { return data_.contiguous(); }
    std::span<const std::uint8_t> raw() const { return data_.contiguous(); }

    /** Publish the cell array as an immutable COW image. */
    std::shared_ptr<const CowImage> snapshotImage() const
    {
        return data_.freeze();
    }

    /** Rebind the cell array to @p image copy-on-write. Invalidates
     * raw() spans. */
    void adoptImage(std::shared_ptr<const CowImage> image)
    {
        data_.adopt(std::move(image));
    }

    /** @return pages privatized since the last adoptImage() (the
     * fork's dirty-page count). */
    std::size_t dirtyPages() const { return data_.privatePages(); }

    /** Apply cell decay for a power loss of @p off_seconds. */
    void powerLoss(double off_seconds, double celsius, Rng &rng);

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

  private:
    CowBytes data_;
    RemanenceModel remanence_;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_DRAM_HH
