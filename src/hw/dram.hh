/**
 * @file
 * Off-SoC DRAM device. Sits on the external memory bus, so every access
 * is observable by a bus monitor, and its contents survive power loss
 * according to the remanence model — both properties the paper's attacks
 * exploit.
 */

#ifndef SENTRY_HW_DRAM_HH
#define SENTRY_HW_DRAM_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "hw/bus.hh"
#include "hw/cow_bytes.hh"
#include "hw/remanence.hh"

namespace sentry::hw
{

/**
 * Row/bank geometry of the DRAM module — the Rowhammer model's map from
 * cell-array offsets to physical rows. Consecutive rowBytes-sized
 * chunks of the address space interleave across the banks, so two
 * offsets rowBytes*banks apart share a bank and sit in *physically
 * adjacent* rows — the adjacency that disturbance errors follow.
 */
struct DramGeometry
{
    std::size_t rowBytes = 8 * KiB; //!< cells per row
    unsigned banks = 8;             //!< independent banks

    /** @return the global row index holding @p offset. */
    std::size_t globalRow(PhysAddr offset) const
    {
        return offset / rowBytes;
    }

    /** @return the bank @p offset lives in. */
    unsigned bankOf(PhysAddr offset) const
    {
        return static_cast<unsigned>(globalRow(offset) % banks);
    }

    /** @return the row index *within its bank* for @p offset. */
    std::size_t rowInBank(PhysAddr offset) const
    {
        return globalRow(offset) / banks;
    }

    /** @return the cell-array offset of (bank, row-in-bank)'s first
     * byte — the inverse of bankOf()/rowInBank(). */
    PhysAddr rowBase(unsigned bank, std::size_t row_in_bank) const
    {
        return (row_in_bank * banks + bank) * rowBytes;
    }

    /** @return total rows a module of @p size bytes has. */
    std::size_t rowCount(std::size_t size) const
    {
        return (size + rowBytes - 1) / rowBytes;
    }

    /** @return rows per bank for a module of @p size bytes. */
    std::size_t rowsPerBank(std::size_t size) const
    {
        return rowCount(size) / banks;
    }
};

/** One disturbance-induced bit flip (cell-array-relative offset). */
struct FlippedBit
{
    PhysAddr offset = 0;
    unsigned bit = 0;
};

/** Knobs of the row-disturbance (Rowhammer) error model. */
struct DisturbParams
{
    /** Activations of one row within a refresh window before its
     *  bank-adjacent neighbours start to disturb. */
    std::uint32_t activationThreshold = 8192;
    /** Per-site flip probability at 2x the threshold (scales linearly
     *  with the overdrive up to this cap). */
    double flipChance = 0.25;
    /** One disturbance-vulnerable cell site per this many bytes. */
    std::size_t siteStride = 64;
};

/** Simulated DRAM module. */
class Dram : public BusTarget
{
  public:
    /** @param size capacity in bytes. */
    explicit Dram(std::size_t size);

    void busRead(PhysAddr offset, std::uint8_t *buf,
                 std::size_t len) override;
    void busWrite(PhysAddr offset, const std::uint8_t *buf,
                  std::size_t len) override;

    /** @return capacity in bytes. */
    std::size_t size() const { return data_.size(); }

    /**
     * Direct (simulation-level) view of the cell array. Used by attack
     * code that dumps memory and by test assertions; not charged to the
     * simulated clock and not visible on the bus.
     *
     * Invalidation rule: the span materializes the COW backing store
     * and stays valid until the next adoptImage() / Soc::forkFrom().
     * Never hold it across a fork; take a fresh span instead (see
     * cow_bytes.hh for the full contract).
     */
    std::span<std::uint8_t> raw() { return data_.contiguous(); }
    std::span<const std::uint8_t> raw() const { return data_.contiguous(); }

    /** Publish the cell array as an immutable COW image. */
    std::shared_ptr<const CowImage> snapshotImage() const
    {
        return data_.freeze();
    }

    /** Rebind the cell array to @p image copy-on-write. Invalidates
     * raw() spans. Also clears the activation counters: a fork adopts
     * memory *contents*, not in-flight analog cell stress, so a forked
     * device observes the same disturbance behavior as a cold boot. */
    void adoptImage(std::shared_ptr<const CowImage> image)
    {
        data_.adopt(std::move(image));
        activations_.clear();
    }

    /** @return pages privatized since the last adoptImage() (the
     * fork's dirty-page count). */
    std::size_t dirtyPages() const { return data_.privatePages(); }

    /** Apply cell decay for a power loss of @p off_seconds. */
    void powerLoss(double off_seconds, double celsius, Rng &rng);

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** @return the module's row/bank geometry. */
    const DramGeometry &geometry() const { return geometry_; }

    /**
     * Charge @p n row activations to the row holding @p offset. Only
     * attack drivers that model tight activate/precharge loops call
     * this; ordinary bus traffic is far below the disturbance
     * threshold and is not tracked.
     */
    void recordActivations(PhysAddr offset, std::uint32_t n);

    /** @return activations charged to @p global_row since the last
     * refresh. */
    std::uint32_t activationCount(std::size_t global_row) const;

    /** Refresh every row: all activation counters reset to zero. */
    void refreshRows();

    /**
     * Fire the disturbance model for the row holding
     * @p aggressor_offset: each bank-adjacent neighbour row whose
     * aggressor crossed params.activationThreshold gets per-site
     * coin flips from @p rng, and losing sites have one bit inverted
     * in the cell array. Deterministic for a given rng state.
     *
     * @return the flips applied, in ascending site order.
     */
    std::vector<FlippedBit> disturbAdjacentRows(PhysAddr aggressor_offset,
                                                Rng &rng,
                                                const DisturbParams &params);

  private:
    CowBytes data_;
    RemanenceModel remanence_;
    probe::TraceEngine *trace_ = nullptr;
    DramGeometry geometry_;
    /** Per-global-row activation counters; lazily sized, empty means
     * all zero (so untouched modules pay nothing). */
    std::vector<std::uint32_t> activations_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_DRAM_HH
