#include "hw/l2_cache.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "host/kernels.hh"
#include "hw/trustzone.hh"

namespace sentry::hw
{

L2Cache::L2Cache(SimClock &clock, Bus &bus, TrustZone &tz,
                 PhysAddr cacheable_base, std::size_t cacheable_size,
                 std::size_t size, unsigned ways, L2Timing timing)
    : clock_(clock), bus_(bus), tz_(tz), cacheableBase_(cacheable_base),
      cacheableSize_(cacheable_size), ways_(ways), timing_(timing)
{
    if (ways == 0 || ways > 32)
        fatal("L2 associativity must be 1..32 (got %u)", ways);
    if (size % (ways * CACHE_LINE_SIZE) != 0)
        fatal("L2 size must be a multiple of ways*line");
    sets_ = size / (ways * CACHE_LINE_SIZE);
    if ((sets_ & (sets_ - 1)) != 0)
        fatal("L2 set count must be a power of two (got %zu)", sets_);

    lines_.resize(sets_ * ways_);
    data_.assign(sets_ * ways_ * CACHE_LINE_SIZE, 0);
    rr_.assign(sets_, 0);
    mru_.assign(sets_, 0);
}

bool
L2Cache::cacheable(PhysAddr addr) const
{
    return addr >= cacheableBase_ && addr < cacheableBase_ + cacheableSize_;
}

int
L2Cache::findWay(std::size_t set, std::uint64_t tag) const
{
    // MRU hint first: a tag can live in at most one way, so a hint hit
    // is the same answer the scan would give.
    const unsigned hint = mru_[set];
    if (hint < ways_) {
        const Line &line = lines_[lineIndex(set, hint)];
        if (line.valid && line.tag == tag)
            return static_cast<int>(hint);
    }
    for (unsigned way = 0; way < ways_; ++way) {
        const Line &line = lines_[lineIndex(set, way)];
        if (line.valid && line.tag == tag) {
            mru_[set] = static_cast<std::uint8_t>(way);
            return static_cast<int>(way);
        }
    }
    return -1;
}

int
L2Cache::pickVictim(std::size_t set)
{
    // Round-robin among allocatable (unlocked) ways; prefer invalid lines.
    for (unsigned way = 0; way < ways_; ++way) {
        if (lockdownMask_ & (1u << way))
            continue;
        if (!lines_[lineIndex(set, way)].valid)
            return static_cast<int>(way);
    }
    for (unsigned probe = 0; probe < ways_; ++probe) {
        const unsigned way = (rr_[set] + probe) % ways_;
        if (lockdownMask_ & (1u << way))
            continue;
        rr_[set] = (way + 1) % ways_;
        return static_cast<int>(way);
    }
    return -1; // every way locked: caller falls back to uncached access
}

void
L2Cache::writebackLine(std::size_t set, unsigned way)
{
    Line &line = lines_[lineIndex(set, way)];
    if (!line.valid || !line.dirty)
        return;
    // Fire before the bus write so a scheduled DMA burst races the
    // flush (reads DRAM while the line is still only in the cache).
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::CacheEvent)) {
        probe::CacheEvent event{way, (lockdownMask_ & (1u << way)) != 0,
                                lineAddr(set, line)};
        trace_->emit(event);
    }
    bus_.write(lineAddr(set, line), lineData(set, way), CACHE_LINE_SIZE,
               BusInitiator::CpuCache);
    clock_.advance(timing_.writebackCycles);
    line.dirty = false;
    ++stats_.writebacks;
}

void
L2Cache::access(PhysAddr addr, std::uint8_t *rbuf, const std::uint8_t *wbuf,
                std::size_t len)
{
    if (len == 0)
        return;
    const PhysAddr lineBase = alignDown(addr, CACHE_LINE_SIZE);
    if (addr + len > lineBase + CACHE_LINE_SIZE)
        panic("L2 access crosses a line boundary: 0x%llx (+%zu)",
              static_cast<unsigned long long>(addr), len);
    if (!cacheable(addr))
        panic("L2 access outside the cacheable window: 0x%llx",
              static_cast<unsigned long long>(addr));

    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const std::size_t offsetInLine = addr - lineBase;

    int way = findWay(set, tag);
    if (way >= 0) {
        ++stats_.hits;
        clock_.advance(timing_.hitCycles);
    } else {
        ++stats_.misses;
        clock_.advance(timing_.hitCycles + timing_.missPenaltyCycles);
        way = pickVictim(set);
        if (way < 0) {
            // All ways locked: the transaction goes straight to DRAM.
            ++stats_.uncachedAccesses;
            if (rbuf != nullptr) {
                bus_.read(addr, rbuf, len, BusInitiator::CpuCache);
            } else {
                bus_.write(addr, wbuf, len, BusInitiator::CpuCache);
            }
            return;
        }
        writebackLine(set, static_cast<unsigned>(way));
        Line &line = lines_[lineIndex(set, static_cast<unsigned>(way))];
        bus_.read(lineBase, lineData(set, static_cast<unsigned>(way)),
                  CACHE_LINE_SIZE, BusInitiator::CpuCache);
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        mru_[set] = static_cast<std::uint8_t>(way);
        ++stats_.fills;
    }

    std::uint8_t *cached =
        lineData(set, static_cast<unsigned>(way)) + offsetInLine;
    if (rbuf != nullptr) {
        host::copyLine(rbuf, cached, len);
    } else {
        host::copyLine(cached, wbuf, len);
        lines_[lineIndex(set, static_cast<unsigned>(way))].dirty = true;
    }
}

void
L2Cache::read(PhysAddr addr, std::uint8_t *buf, std::size_t len)
{
    access(addr, buf, nullptr, len);
}

void
L2Cache::write(PhysAddr addr, const std::uint8_t *buf, std::size_t len)
{
    access(addr, nullptr, buf, len);
}

bool
L2Cache::writeLockdownReg(std::uint32_t mask)
{
    if (!tz_.lockdownConfigAllowed())
        return false;
    lockdownMask_ = mask;
    return true;
}

void
L2Cache::flushAllMasked()
{
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned way = 0; way < ways_; ++way) {
            if (flushWayMask_ & (1u << way))
                continue;
            Line &line = lines_[lineIndex(set, way)];
            if (!line.valid)
                continue;
            writebackLine(set, way);
            line.valid = false;
        }
    }
}

void
L2Cache::cleanAllMasked()
{
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned way = 0; way < ways_; ++way) {
            if (flushWayMask_ & (1u << way))
                continue;
            writebackLine(set, way);
        }
    }
}

void
L2Cache::rawFlushAll()
{
    // The stock full flush ignores locks: every dirty line (locked or
    // not) is written back to DRAM and everything is invalidated. The
    // lockdown register is cleared — locked ways are gone.
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned way = 0; way < ways_; ++way) {
            Line &line = lines_[lineIndex(set, way)];
            if (!line.valid)
                continue;
            writebackLine(set, way);
            line.valid = false;
        }
    }
    lockdownMask_ = 0;
}

void
L2Cache::cleanRange(PhysAddr addr, std::size_t len)
{
    const PhysAddr start = alignDown(addr, CACHE_LINE_SIZE);
    for (PhysAddr a = start; a < addr + len; a += CACHE_LINE_SIZE) {
        const std::size_t set = setOf(a);
        const int way = findWay(set, tagOf(a));
        if (way < 0 || (flushWayMask_ & (1u << way)))
            continue;
        writebackLine(set, static_cast<unsigned>(way));
    }
}

void
L2Cache::invalidateRange(PhysAddr addr, std::size_t len)
{
    const PhysAddr start = alignDown(addr, CACHE_LINE_SIZE);
    for (PhysAddr a = start; a < addr + len; a += CACHE_LINE_SIZE) {
        const std::size_t set = setOf(a);
        const int way = findWay(set, tagOf(a));
        if (way < 0 || (flushWayMask_ & (1u << way)))
            continue;
        lines_[lineIndex(set, static_cast<unsigned>(way))].valid = false;
        lines_[lineIndex(set, static_cast<unsigned>(way))].dirty = false;
    }
}

void
L2Cache::resetAndZero()
{
    for (auto &line : lines_)
        line = Line{};
    std::memset(data_.data(), 0, data_.size());
    lockdownMask_ = 0;
    flushWayMask_ = 0;
}

const std::uint8_t *
L2Cache::peek(PhysAddr addr, unsigned *way_out) const
{
    if (!cacheable(addr))
        return nullptr;
    const std::size_t set = setOf(addr);
    const int way = findWay(set, tagOf(addr));
    if (way < 0)
        return nullptr;
    if (way_out != nullptr)
        *way_out = static_cast<unsigned>(way);
    return lineData(set, static_cast<unsigned>(way)) +
           (addr % CACHE_LINE_SIZE);
}

const std::uint8_t *
L2Cache::probeLine(PhysAddr addr, L2LineId &id) const
{
    if (!cacheable(addr))
        return nullptr;
    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const int way = findWay(set, tag);
    if (way < 0)
        return nullptr;
    const std::size_t index = lineIndex(set, static_cast<unsigned>(way));
    id.line = &lines_[index];
    id.tag = tag;
    id.index = static_cast<std::uint32_t>(index);
    return lineData(set, static_cast<unsigned>(way));
}

bool
L2Cache::wayHasDirtyLines(unsigned way) const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        const Line &line = lines_[lineIndex(set, way)];
        if (line.valid && line.dirty)
            return true;
    }
    return false;
}

L2Cache::ForkState
L2Cache::forkState() const
{
    return ForkState{lines_, data_,          rr_,    mru_,
                     lockdownMask_, flushWayMask_, stats_};
}

void
L2Cache::restoreForkState(const ForkState &fs)
{
    if (fs.lines.size() != lines_.size() || fs.data.size() != data_.size() ||
        fs.rr.size() != rr_.size() || fs.mru.size() != mru_.size())
        fatal("L2Cache::restoreForkState: geometry mismatch");
    std::copy(fs.lines.begin(), fs.lines.end(), lines_.begin());
    std::copy(fs.data.begin(), fs.data.end(), data_.begin());
    std::copy(fs.rr.begin(), fs.rr.end(), rr_.begin());
    std::copy(fs.mru.begin(), fs.mru.end(), mru_.begin());
    lockdownMask_ = fs.lockdownMask;
    flushWayMask_ = fs.flushWayMask;
    stats_ = fs.stats;
}

} // namespace sentry::hw
