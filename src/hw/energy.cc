#include "hw/energy.hh"

#include "common/logging.hh"

namespace sentry::hw
{

const char *
energyCategoryName(EnergyCategory category)
{
    switch (category) {
      case EnergyCategory::CpuAes:
        return "cpu-aes";
      case EnergyCategory::CryptoAccel:
        return "crypto-accel";
      case EnergyCategory::MemCopy:
        return "mem-copy";
      case EnergyCategory::Zeroing:
        return "zeroing";
      case EnergyCategory::Dma:
        return "dma";
      case EnergyCategory::PageFault:
        return "page-fault";
      case EnergyCategory::Other:
        return "other";
      default:
        return "?";
    }
}

EnergyModel::EnergyModel(EnergyParams params, double battery_joules)
    : params_(params), batteryJoules_(battery_joules)
{}

void
EnergyModel::charge(EnergyCategory category, double joules)
{
    if (joules < 0)
        panic("negative energy charge (%f J)", joules);
    consumed_[static_cast<std::size_t>(category)] += joules;
    if (trace_ != nullptr && trace_->enabled(probe::TraceKind::PowerEvent)) {
        probe::PowerEvent event{energyCategoryName(category), joules};
        trace_->emit(event);
    }
}

double
EnergyModel::consumed(EnergyCategory category) const
{
    return consumed_[static_cast<std::size_t>(category)];
}

double
EnergyModel::totalConsumed() const
{
    double total = 0.0;
    for (double j : consumed_)
        total += j;
    return total;
}

double
EnergyModel::batteryFractionUsed() const
{
    if (batteryJoules_ <= 0)
        return 0.0;
    return totalConsumed() / batteryJoules_;
}

void
EnergyModel::reset()
{
    consumed_.fill(0.0);
}

} // namespace sentry::hw
