#include "hw/cow_bytes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentry::hw
{

const std::uint8_t *
CowBytes::zeroPage()
{
    alignas(64) static const std::uint8_t zeros[PAGE_SIZE] = {};
    return zeros;
}

CowBytes::CowBytes(std::size_t size)
    : size_(size), nPages_((size + PAGE_SIZE - 1) / PAGE_SIZE)
{
    if (size == 0)
        panic("CowBytes: zero size");
    local_.reset(new std::uint8_t[nPages_ * PAGE_SIZE]);
    readPtr_.assign(nPages_, zeroPage());
    private_.assign(nPages_, 0);
}

void
CowBytes::readSlow(std::size_t offset, std::uint8_t *out,
                   std::size_t len) const
{
    while (len > 0) {
        const std::size_t inPage = offset % PAGE_SIZE;
        const std::size_t chunk = std::min(len, PAGE_SIZE - inPage);
        std::memcpy(out, readPtr_[offset / PAGE_SIZE] + inPage, chunk);
        offset += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
CowBytes::writeSlow(std::size_t offset, const std::uint8_t *in,
                    std::size_t len)
{
    while (len > 0) {
        const std::size_t inPage = offset % PAGE_SIZE;
        const std::size_t chunk = std::min(len, PAGE_SIZE - inPage);
        std::memcpy(privatePage(offset / PAGE_SIZE) + inPage, in, chunk);
        offset += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::span<std::uint8_t>
CowBytes::contiguous() const
{
    if (privateCount_ != nPages_) {
        for (std::size_t page = 0; page < nPages_; ++page) {
            if (private_[page])
                continue;
            std::uint8_t *data = localPage(page);
            std::memcpy(data, readPtr_[page], PAGE_SIZE);
            readPtr_[page] = data;
            private_[page] = 1;
        }
        privateCount_ = nPages_;
    }
    return {local_.get(), size_};
}

std::shared_ptr<const CowImage>
CowBytes::freeze() const
{
    auto image = std::make_shared<CowImage>();
    image->size_ = size_;
    image->pages_.resize(nPages_, nullptr);

    // Private pages are copied out so this instance stays free to keep
    // mutating them; Shared pages are aliased (parent_ keeps the older
    // image alive); Zero pages stay nullptr.
    std::size_t copied = 0;
    for (std::size_t page = 0; page < nPages_; ++page)
        copied += private_[page] ? 1 : 0;
    if (copied > 0)
        image->owned_.reset(new std::uint8_t[copied * PAGE_SIZE]);

    std::size_t slot = 0;
    bool sharesBase = false;
    for (std::size_t page = 0; page < nPages_; ++page) {
        if (private_[page]) {
            std::uint8_t *dst = image->owned_.get() + slot * PAGE_SIZE;
            std::memcpy(dst, readPtr_[page], PAGE_SIZE);
            image->pages_[page] = dst;
            ++slot;
        } else if (readPtr_[page] != zeroPage()) {
            image->pages_[page] = readPtr_[page];
            sharesBase = true;
        }
    }
    if (sharesBase)
        image->parent_ = base_;
    return image;
}

void
CowBytes::adopt(std::shared_ptr<const CowImage> image)
{
    if (image == nullptr)
        panic("CowBytes::adopt: null image");
    if (image->size() != size_)
        panic("CowBytes::adopt: size mismatch (%zu vs %zu)",
              image->size(), size_);
    base_ = std::move(image);
    for (std::size_t page = 0; page < nPages_; ++page) {
        const std::uint8_t *src = base_->page(page);
        readPtr_[page] = src != nullptr ? src : zeroPage();
        private_[page] = 0;
    }
    privateCount_ = 0;
}

void
CowBytes::zeroAll()
{
    for (std::size_t page = 0; page < nPages_; ++page) {
        if (private_[page]) {
            std::memset(localPage(page), 0, PAGE_SIZE);
        } else {
            readPtr_[page] = zeroPage();
        }
    }
    base_.reset();
}

} // namespace sentry::hw
