#include "hw/platform.hh"

namespace sentry::hw
{

PlatformConfig
PlatformConfig::tegra3(std::size_t dram_size)
{
    PlatformConfig cfg;
    cfg.name = "tegra3";
    cfg.cpuFreqHz = 1.2e9; // quad Cortex-A9 @ 1.2 GHz
    cfg.cores = 4;
    cfg.dramSize = dram_size;
    cfg.iramSize = 256 * KiB;
    cfg.l2Size = 1 * MiB;
    cfg.l2Ways = 8;
    cfg.secureWorldAvailable = true; // we control the boot firmware
    cfg.hasCryptoAccel = false;
    // Older core, no NEON-tuned AES: ~13 MB/s generic software AES.
    cfg.cost.aesCyclesPerByteUser = 92.0;
    cfg.cost.aesCyclesPerByteKernel = 98.0;
    cfg.cost.zeroingBytesPerSec = 2.0e9;
    cfg.batteryJoules = 0.0; // dev board: energy not meaningful
    return cfg;
}

PlatformConfig
PlatformConfig::nexus4(std::size_t dram_size)
{
    PlatformConfig cfg;
    cfg.name = "nexus4";
    cfg.cpuFreqHz = 1.5e9; // quad Snapdragon S4 @ 1.5 GHz
    cfg.cores = 4;
    cfg.dramSize = dram_size;
    cfg.iramSize = 256 * KiB;
    cfg.l2Size = 1 * MiB;
    cfg.l2Ways = 8;
    cfg.secureWorldAvailable = false; // locked retail firmware
    cfg.hasCryptoAccel = true;
    cfg.accel.fullRateBytesPerSec = 80e6;
    cfg.accel.setupSeconds = 150e-6;
    cfg.accel.downscaleFactor = 4;
    // ~45 MB/s user-mode software AES, ~35 MB/s via the Crypto API.
    cfg.cost.aesCyclesPerByteUser = 33.0;
    cfg.cost.aesCyclesPerByteKernel = 43.0;
    cfg.cost.zeroingBytesPerSec = 4.014e9;
    // 2100 mAh at 3.8 V nominal ~= 28.7 kJ; 70 J per full-memory
    // encryption then drains it in ~410 cycles, the paper's anchor.
    cfg.batteryJoules = 28700.0;
    return cfg;
}

} // namespace sentry::hw
