#include "hw/trustzone.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sentry::hw
{

SecureFuse::SecureFuse(std::uint64_t seed)
{
    Rng rng(seed ^ 0xf05ecafeULL);
    for (std::size_t i = 0; i < secret_.size(); i += 8) {
        const std::uint64_t word = rng.next64();
        for (std::size_t j = 0; j < 8; ++j)
            secret_[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
}

TrustZone::TrustZone(bool secure_world_available, std::uint64_t fuse_seed)
    : secureAvailable_(secure_world_available), fuse_(fuse_seed)
{}

bool
TrustZone::enterSecureWorld()
{
    if (!secureAvailable_)
        return false;
    world_ = World::Secure;
    ++smcEntries_;
    return true;
}

void
TrustZone::exitSecureWorld()
{
    world_ = World::Normal;
}

bool
TrustZone::readFuse(std::array<std::uint8_t, 32> &out) const
{
    if (world_ != World::Secure)
        return false;
    out = fuse_.secret();
    return true;
}

bool
TrustZone::protectRegionFromDma(PhysAddr base, std::size_t size)
{
    if (world_ != World::Secure)
        return false;
    dmaProtected_.push_back({base, size});
    return true;
}

bool
TrustZone::unprotectRegionFromDma(PhysAddr base, std::size_t size)
{
    if (world_ != World::Secure)
        return false;
    for (auto it = dmaProtected_.begin(); it != dmaProtected_.end(); ++it) {
        if (it->base == base && it->size == size) {
            dmaProtected_.erase(it);
            return true;
        }
    }
    return false;
}

bool
TrustZone::bindSharedBuffer(PhysAddr base, std::size_t size)
{
    if (world_ != World::Secure)
        return false;
    sharedBase_ = base;
    sharedSize_ = size;
    return true;
}

bool
TrustZone::dmaDenied(PhysAddr addr, std::size_t len) const
{
    for (const auto &region : dmaProtected_) {
        const bool overlaps = addr < region.base + region.size &&
                              region.base < addr + len;
        if (overlaps)
            return true;
    }
    return false;
}

SecureWorldGuard::SecureWorldGuard(TrustZone &tz)
    : tz_(tz), entered_(tz.enterSecureWorld())
{}

SecureWorldGuard::~SecureWorldGuard()
{
    if (entered_)
        tz_.exitSecureWorld();
}

} // namespace sentry::hw
