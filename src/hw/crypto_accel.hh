/**
 * @file
 * Hardware AES accelerator (the Nexus 4 crypto engine).
 *
 * The paper found the accelerator *slower* than the CPU for Sentry's
 * workload because (a) Sentry feeds it 4 KB pages, so the fixed per-
 * request setup cost dominates, and (b) the engine down-scales its
 * frequency when the phone is locked — precisely when Sentry runs. Both
 * effects are modelled: throughput is max_rate/4 while down-scaled, and
 * every request pays a setup latency.
 *
 * The engine produces real AES-CBC output (it shares the software
 * cipher's mathematics) but keeps its key schedule in engine-internal
 * registers, not DRAM.
 */

#ifndef SENTRY_HW_CRYPTO_ACCEL_HH
#define SENTRY_HW_CRYPTO_ACCEL_HH

#include <cstdint>
#include <memory>
#include <span>

#include "common/sim_clock.hh"
#include "common/trace_engine.hh"
#include "crypto/aes.hh"
#include "crypto/modes.hh"
#include "hw/energy.hh"

namespace sentry::hw
{

/** Performance/energy characteristics of the accelerator. */
struct CryptoAccelParams
{
    double fullRateBytesPerSec = 80e6; //!< streaming rate when awake
    double setupSeconds = 150e-6;      //!< fixed per-request latency
    unsigned downscaleFactor = 4;      //!< rate divisor when locked
};

/** The hardware AES engine. */
class CryptoAccelerator
{
  public:
    CryptoAccelerator(SimClock &clock, EnergyModel &energy,
                      CryptoAccelParams params = {});

    /** Load a key into the engine's internal key registers. */
    void setKey(std::span<const std::uint8_t> key);

    /** @return true once a key has been loaded. */
    bool hasKey() const { return cipher_ != nullptr; }

    /**
     * Device power management: the engine drops to 1/downscaleFactor of
     * its rate while the device is locked/suspending.
     */
    void setDownscaled(bool downscaled) { downscaled_ = downscaled; }

    /** @return true while frequency-down-scaled. */
    bool downscaled() const { return downscaled_; }

    /** CBC-encrypt @p data in place (one DMA-style request). */
    void cbcEncrypt(const crypto::Iv &iv, std::span<std::uint8_t> data);

    /** CBC-decrypt @p data in place (one request). */
    void cbcDecrypt(const crypto::Iv &iv, std::span<std::uint8_t> data);

    /** @return effective streaming rate right now, bytes/second. */
    double currentRate() const;

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** Engine-internal register state for snapshot/fork. The loaded key
     * schedule is shared immutably between snapshot holders. */
    struct ForkState
    {
        bool downscaled = false;
        std::shared_ptr<const crypto::Aes> cipher;
    };

    ForkState forkState() const
    {
        ForkState fs;
        fs.downscaled = downscaled_;
        if (cipher_ != nullptr)
            fs.cipher = std::make_shared<const crypto::Aes>(*cipher_);
        return fs;
    }

    void restoreForkState(const ForkState &fs)
    {
        downscaled_ = fs.downscaled;
        cipher_ = fs.cipher != nullptr
                      ? std::make_unique<crypto::Aes>(*fs.cipher)
                      : nullptr;
    }

  private:
    void chargeRequest(std::size_t bytes, bool encrypt);

    SimClock &clock_;
    EnergyModel &energy_;
    CryptoAccelParams params_;
    bool downscaled_ = false;
    std::unique_ptr<crypto::Aes> cipher_;
    probe::TraceEngine *trace_ = nullptr;
};

} // namespace sentry::hw

#endif // SENTRY_HW_CRYPTO_ACCEL_HH
