/**
 * @file
 * A recording bus probe — the hardware a bus-monitoring attacker clips
 * onto the DDR traces (paper section 3.1, e.g. a FuturePlus DDR analysis
 * probe). It captures addresses, directions, and payloads of everything
 * crossing the external memory bus.
 */

#ifndef SENTRY_HW_BUS_MONITOR_HH
#define SENTRY_HW_BUS_MONITOR_HH

#include <cstdint>
#include <vector>

#include "common/trace_engine.hh"
#include "common/types.hh"
#include "hw/bus.hh"

namespace sentry::hw
{

/** Captured copy of one bus transaction. */
struct CapturedTransaction
{
    PhysAddr addr;
    std::uint32_t size;
    bool isWrite;
    BusInitiator initiator;
    std::vector<std::uint8_t> data;
};

/** Passive probe that records all bus traffic while attached. */
class BusMonitor : public probe::Subscriber
{
  public:
    /**
     * @param capture_payloads when false, only addresses are recorded
     *        (an access-pattern-only probe); payload vectors stay empty.
     */
    explicit BusMonitor(bool capture_payloads = true)
        : capturePayloads_(capture_payloads)
    {}

    ~BusMonitor() override { detach(); }

    /** Clip the probe onto @p engine's bus-transfer trace point. */
    void attach(probe::TraceEngine &engine)
    {
        engine_ = &engine;
        engine.subscribe(this,
                         probe::maskOf(probe::TraceKind::BusTransfer));
    }

    /** Unclip the probe; the captured trace is kept. */
    void detach()
    {
        if (engine_ != nullptr) {
            engine_->unsubscribe(this);
            engine_ = nullptr;
        }
    }

    void onBusTransfer(probe::BusTransfer &event) override;

    /** @return the captured trace, in order. */
    const std::vector<CapturedTransaction> &trace() const { return trace_; }

    /** Drop everything captured so far. */
    void clear() { trace_.clear(); }

    /** @return total bytes observed crossing the bus. */
    std::uint64_t bytesObserved() const { return bytesObserved_; }

    /** Concatenate all captured payloads into one buffer. */
    std::vector<std::uint8_t> concatenatedPayloads() const;

  private:
    bool capturePayloads_;
    probe::TraceEngine *engine_ = nullptr;
    std::vector<CapturedTransaction> trace_;
    std::uint64_t bytesObserved_ = 0;
};

} // namespace sentry::hw

#endif // SENTRY_HW_BUS_MONITOR_HH
