/**
 * @file
 * PL310-style shared L2 cache with lockdown-by-way.
 *
 * Models exactly the behaviours the paper's mechanism depends on
 * (validated against the real controller in paper section 4.2):
 *
 *   - allocation can be restricted to a subset of ways via the lockdown
 *     register; locked ways still *hit* for reads and writes, but are
 *     never chosen as eviction victims, so dirty data in a locked way
 *     never reaches DRAM;
 *   - a raw full-cache flush (the stock hardware operation) cleans and
 *     invalidates locked ways too — i.e. "flushing the entire cache does
 *     unlock all locked ways" and leaks their contents to DRAM. The OS
 *     change from section 4.5 is modelled by the flush-way mask: masked
 *     flush operations skip the masked ways;
 *   - DMA bypasses the cache entirely (coherence is software-managed on
 *     these SoCs), so cache contents are invisible to DMA attacks;
 *   - the lockdown register is only writable from the TrustZone secure
 *     world, and boot firmware resets and zeroes the array.
 */

#ifndef SENTRY_HW_L2_CACHE_HH
#define SENTRY_HW_L2_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/sim_clock.hh"
#include "common/types.hh"
#include "hw/bus.hh"

namespace sentry::hw
{

class TrustZone;

/** Cache performance and traffic counters. */
struct L2Stats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t uncachedAccesses = 0;
};

/** Timing parameters charged to the SimClock per operation. */
struct L2Timing
{
    Cycles hitCycles = 8;
    Cycles missPenaltyCycles = 60; //!< DRAM line fill on top of the hit
    Cycles writebackCycles = 30;
};

/** Tag-store state of one cache line (read-only outside L2Cache). */
struct L2Line
{
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
};

/**
 * Identity of a resident cache line handed out by L2Cache::probeLine.
 *
 * A fast path holds one of these per line it has pinned and revalidates
 * it with L2Cache::lineResident before every use: the check is a single
 * tag compare, and a stale id simply sends the access back down the
 * regular (bit-exact) path. Ids never dangle — `line` points into the
 * line-state array, which is allocated once in the constructor.
 */
struct L2LineId
{
    const L2Line *line = nullptr;
    std::uint64_t tag = 0;
    std::uint32_t index = 0; //!< set * ways + way
};

/** The shared L2 cache controller. */
class L2Cache
{
  public:
    /**
     * @param clock      simulated clock to charge
     * @param bus        backing memory bus (DRAM side)
     * @param tz         TrustZone gate for the lockdown register
     * @param cacheable_base  start of the cacheable (DRAM) window
     * @param cacheable_size  size of the cacheable window
     * @param size       total capacity in bytes (1 MiB on Tegra 3)
     * @param ways       associativity (8 on Tegra 3)
     * @param timing     per-operation cycle costs
     */
    L2Cache(SimClock &clock, Bus &bus, TrustZone &tz, PhysAddr cacheable_base,
            std::size_t cacheable_size, std::size_t size, unsigned ways,
            L2Timing timing = {});

    /** @return true if @p addr falls in the cacheable window. */
    bool cacheable(PhysAddr addr) const;

    /**
     * CPU read through the cache. [addr, addr+len) must not cross a
     * cache-line boundary.
     */
    void read(PhysAddr addr, std::uint8_t *buf, std::size_t len);

    /** CPU write through the cache (write-back, write-allocate). */
    void write(PhysAddr addr, const std::uint8_t *buf, std::size_t len);

    /**
     * Program the lockdown register: bit i set means way i is locked
     * (excluded from allocation and eviction).
     *
     * @return false when the caller is not in the TrustZone secure world
     *         — the co-processor access is simply ignored, as on the
     *         locked-firmware Nexus 4.
     */
    bool writeLockdownReg(std::uint32_t mask);

    /** @return current lockdown register value. */
    std::uint32_t lockdownReg() const { return lockdownMask_; }

    /**
     * Fault-model backdoor: clear @p clear_mask's bits of the lockdown
     * register as a hardware upset would — NOT gated by TrustZone,
     * because a particle strike or voltage glitch does not ask the
     * secure monitor for permission. Only the fault injector calls this.
     * @return the new register value.
     */
    std::uint32_t glitchLockdownBits(std::uint32_t clear_mask)
    {
        lockdownMask_ &= ~clear_mask;
        return lockdownMask_;
    }

    /**
     * OS-maintained flush-way mask: bit i set means flush operations
     * skip way i. This models the paper's Linux cache-flush change; the
     * register itself is not security-gated (it is an OS convention).
     */
    void setFlushWayMask(std::uint32_t mask) { flushWayMask_ = mask; }

    /** @return current flush-way mask. */
    std::uint32_t flushWayMask() const { return flushWayMask_; }

    /**
     * Clean (write back) and invalidate all ways *except* those in the
     * flush-way mask — the patched-OS flush path.
     */
    void flushAllMasked();

    /** Clean (write back) dirty lines in unmasked ways; keep them valid. */
    void cleanAllMasked();

    /**
     * The stock hardware full flush: cleans and invalidates every way,
     * including locked ones, and clears the lockdown register. This is
     * the dangerous operation the paper discovered; Sentry's OS change
     * exists to make sure it is never executed while ways are locked.
     */
    void rawFlushAll();

    /** Clean (write back) any cached lines overlapping [addr, addr+len),
     *  honouring the flush-way mask. Used before DMA-out. */
    void cleanRange(PhysAddr addr, std::size_t len);

    /** Invalidate (discard) lines overlapping the range, honouring the
     *  flush-way mask. Used after DMA-in. */
    void invalidateRange(PhysAddr addr, std::size_t len);

    /**
     * Boot-firmware reset: invalidate everything without writeback, zero
     * the data array, clear lockdown and the flush mask.
     */
    void resetAndZero();

    /** @return total capacity in bytes. */
    std::size_t size() const { return ways_ * waySizeBytes(); }

    /** @return bytes per way. */
    std::size_t waySizeBytes() const { return sets_ * CACHE_LINE_SIZE; }

    /** @return associativity. */
    unsigned ways() const { return ways_; }

    /** @return number of sets. */
    std::size_t numSets() const { return sets_; }

    /** @return the cycle costs this cache was configured with (used by
     * timing side-channel attacks to calibrate hit/miss thresholds). */
    const L2Timing &timing() const { return timing_; }

    /** @return performance counters. */
    const L2Stats &stats() const { return stats_; }

    /** Zero the performance counters. */
    void clearStats() { stats_ = L2Stats{}; }

    /**
     * Simulation-level lookup: if @p addr is cached, return a pointer to
     * its byte inside the line store and (optionally) the way it lives
     * in. Not charged; used by tests and attack analysis.
     */
    const std::uint8_t *peek(PhysAddr addr, unsigned *way_out = nullptr) const;

    /**
     * Fast-path probe: if @p addr's line is resident, fill @p id with
     * its identity and return a pointer to the line payload. Charges
     * nothing — the caller accounts for its accesses with chargeHits().
     * @return nullptr when the line is not resident (or not cacheable);
     *         the caller must then use the regular read()/write() path.
     */
    const std::uint8_t *probeLine(PhysAddr addr, L2LineId &id) const;

    /** @return true while @p id still names a valid line with its tag. */
    bool
    lineResident(const L2LineId &id) const
    {
        return id.line->valid && id.line->tag == id.tag;
    }

    /** @return payload pointer for a resident line id. */
    const std::uint8_t *
    linePayload(const L2LineId &id) const
    {
        return data_.data() + std::size_t{id.index} * CACHE_LINE_SIZE;
    }

    /**
     * Payload pointer for a fast-path *write* to a resident line: marks
     * the line dirty, exactly as a write() hit would.
     */
    std::uint8_t *
    linePayloadForWrite(const L2LineId &id)
    {
        lines_[id.index].dirty = true;
        return data_.data() + std::size_t{id.index} * CACHE_LINE_SIZE;
    }

    /**
     * Account @p n fast-path hits in one batch: bumps the hit counter
     * and charges n * hitCycles, identical in sum to n read()/write()
     * hits. Fast paths accumulate counts and flush them here at
     * transaction boundaries (end of an AES block, before any slow-path
     * access, before an irq-guard exit reads the clock).
     */
    void
    chargeHits(std::uint64_t n)
    {
        stats_.hits += n;
        clock_.advance(n * timing_.hitCycles);
    }

    /** @return true if any line of way @p way is valid and dirty. */
    bool wayHasDirtyLines(unsigned way) const;

    /** Wire (or with nullptr unwire) the owning Soc's trace engine. */
    void setTraceEngine(probe::TraceEngine *trace) { trace_ = trace; }

    /** Complete mutable controller state for snapshot/fork. */
    struct ForkState
    {
        std::vector<L2Line> lines;
        std::vector<std::uint8_t> data;
        std::vector<std::uint32_t> rr;
        std::vector<std::uint8_t> mru;
        std::uint32_t lockdownMask = 0;
        std::uint32_t flushWayMask = 0;
        L2Stats stats;
    };

    /** Capture tag store, payloads, replacement and mask state. */
    ForkState forkState() const;

    /**
     * Overwrite this controller's state in place (geometry must match;
     * fatal otherwise). Storage is reused, so L2LineId handles never
     * dangle — stale ids simply fail lineResident() revalidation.
     */
    void restoreForkState(const ForkState &fs);

  private:
    using Line = L2Line;

    std::size_t lineIndex(std::size_t set, unsigned way) const
    {
        return set * ways_ + way;
    }

    std::uint8_t *lineData(std::size_t set, unsigned way)
    {
        return data_.data() + lineIndex(set, way) * CACHE_LINE_SIZE;
    }

    const std::uint8_t *lineData(std::size_t set, unsigned way) const
    {
        return data_.data() + lineIndex(set, way) * CACHE_LINE_SIZE;
    }

    std::size_t setOf(PhysAddr addr) const
    {
        return (addr / CACHE_LINE_SIZE) % sets_;
    }

    std::uint64_t tagOf(PhysAddr addr) const
    {
        return addr / CACHE_LINE_SIZE / sets_;
    }

    PhysAddr lineAddr(std::size_t set, const Line &line) const
    {
        return (line.tag * sets_ + set) * CACHE_LINE_SIZE;
    }

    /** @return hit way index or -1. */
    int findWay(std::size_t set, std::uint64_t tag) const;

    /** Pick an allocatable victim way in @p set, or -1 if all locked. */
    int pickVictim(std::size_t set);

    void writebackLine(std::size_t set, unsigned way);

    /** Common read/write path. */
    void access(PhysAddr addr, std::uint8_t *rbuf, const std::uint8_t *wbuf,
                std::size_t len);

    SimClock &clock_;
    Bus &bus_;
    TrustZone &tz_;
    PhysAddr cacheableBase_;
    std::size_t cacheableSize_;
    std::size_t sets_;
    unsigned ways_;
    L2Timing timing_;

    std::vector<Line> lines_;       // sets_ * ways_
    std::vector<std::uint8_t> data_; // line payloads
    std::vector<std::uint32_t> rr_;  // per-set round-robin pointer
    // Per-set most-recently-hit way: checked before the way scan so the
    // pinned-AES-state access pattern (same handful of lines, millions
    // of times) short-circuits in one compare. Pure lookup acceleration
    // — never changes which way findWay() reports.
    mutable std::vector<std::uint8_t> mru_;
    std::uint32_t lockdownMask_ = 0;
    std::uint32_t flushWayMask_ = 0;
    probe::TraceEngine *trace_ = nullptr;

    L2Stats stats_;
};

} // namespace sentry::hw

#endif // SENTRY_HW_L2_CACHE_HH
