/**
 * @file
 * DMA-capable peripherals used in the paper's PL310 validation hunt
 * (section 4.2):
 *
 *   - UartDevice exposes the high-speed serial controller's *debug
 *     loopback port*: data DMA-ed to the port can be read back over the
 *     serial interface. This was the one device the authors found that
 *     lets software observe exactly what a DMA read returned — and is
 *     how we (and they) verify that locked cache lines never appear in
 *     DRAM.
 *   - NicDevice models the network controller whose transmit FIFO is
 *     write-only: data can be DMA-ed *to* it but never read back, which
 *     is why it was useless for the validation experiment.
 */

#ifndef SENTRY_HW_DEVICES_HH
#define SENTRY_HW_DEVICES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "hw/dma.hh"

namespace sentry::hw
{

/** MMIO window assignments inside the peripheral space. */
constexpr PhysAddr UART_DEBUG_PORT = MMIO_BASE + 0x1000;
constexpr std::size_t UART_DEBUG_PORT_SIZE = 64 * KiB;

constexpr PhysAddr NIC_TX_FIFO = MMIO_BASE + 0x2000'0;
constexpr std::size_t NIC_TX_FIFO_SIZE = 64 * KiB;

constexpr PhysAddr NIC_RX_FIFO = MMIO_BASE + 0x3000'0;
constexpr std::size_t NIC_RX_FIFO_SIZE = 64 * KiB;

/** High-speed serial controller with a loopback debug port. */
class UartDevice : public DmaDevice
{
  public:
    DmaStatus dmaWrite(PhysAddr offset, const std::uint8_t *buf,
                       std::size_t len) override;
    DmaStatus dmaRead(PhysAddr offset, std::uint8_t *buf,
                      std::size_t len) override;

    /**
     * Read back everything the debug port has looped around, draining
     * the buffer — the CPU-side serial read in the validation recipe.
     */
    std::vector<std::uint8_t> drainLoopback();

    /** FIFO contents for snapshot/fork. */
    struct ForkState
    {
        std::vector<std::uint8_t> loopback;
    };

    ForkState forkState() const { return ForkState{loopback_}; }
    void restoreForkState(const ForkState &fs) { loopback_ = fs.loopback; }

  private:
    std::vector<std::uint8_t> loopback_;
};

/** Network controller: write-only TX FIFO, fillable RX FIFO. */
class NicDevice : public DmaDevice
{
  public:
    DmaStatus dmaWrite(PhysAddr offset, const std::uint8_t *buf,
                       std::size_t len) override;
    DmaStatus dmaRead(PhysAddr offset, std::uint8_t *buf,
                      std::size_t len) override;

    /** Simulation hook: place an incoming frame into the RX FIFO. */
    void receiveFrame(std::vector<std::uint8_t> frame);

    /** @return bytes transmitted so far (the data itself is gone). */
    std::uint64_t bytesTransmitted() const { return bytesTransmitted_; }

    /** FIFO contents and accounting for snapshot/fork. */
    struct ForkState
    {
        std::vector<std::uint8_t> rxFifo;
        std::uint64_t bytesTransmitted = 0;
    };

    ForkState forkState() const
    {
        return ForkState{rxFifo_, bytesTransmitted_};
    }
    void restoreForkState(const ForkState &fs)
    {
        rxFifo_ = fs.rxFifo;
        bytesTransmitted_ = fs.bytesTransmitted;
    }

  private:
    std::vector<std::uint8_t> rxFifo_;
    std::uint64_t bytesTransmitted_ = 0;
};

} // namespace sentry::hw

#endif // SENTRY_HW_DEVICES_HH
