#include "hw/dram.hh"

#include "common/logging.hh"

namespace sentry::hw
{

namespace
{

/** Fire one probe::MemAccess for a DRAM cell-array access. */
inline void
traceDramOp(probe::TraceEngine *trace, bool is_write, PhysAddr offset,
            std::size_t len)
{
    if (trace == nullptr || !trace->enabled(probe::TraceKind::MemAccess))
        return;
    probe::MemAccess event{probe::MemAccess::Device::Dram, is_write, offset,
                           len};
    trace->emit(event);
}

} // namespace

Dram::Dram(std::size_t size) : data_(size), remanence_(MemoryTech::Dram)
{
    if (size == 0 || size % PAGE_SIZE != 0)
        fatal("DRAM size must be a non-zero multiple of the page size");
}

void
Dram::busRead(PhysAddr offset, std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM read out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    traceDramOp(trace_, false, offset, len);
    data_.read(offset, buf, len);
}

void
Dram::busWrite(PhysAddr offset, const std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM write out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    data_.write(offset, buf, len);
    traceDramOp(trace_, true, offset, len);
}

void
Dram::powerLoss(double off_seconds, double celsius, Rng &rng)
{
    remanence_.decay(data_.contiguous(), off_seconds, celsius, rng);
}

} // namespace sentry::hw
