#include "hw/dram.hh"

#include <cstring>

#include "common/logging.hh"
#include "fault/hooks.hh"

namespace sentry::hw
{

Dram::Dram(std::size_t size)
    : data_(size, 0), remanence_(MemoryTech::Dram)
{
    if (size == 0 || size % PAGE_SIZE != 0)
        fatal("DRAM size must be a non-zero multiple of the page size");
}

void
Dram::busRead(PhysAddr offset, std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM read out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    if (faultHooks_ != nullptr)
        faultHooks_->onDramOp(false, offset, len);
    std::memcpy(buf, data_.data() + offset, len);
}

void
Dram::busWrite(PhysAddr offset, const std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM write out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    std::memcpy(data_.data() + offset, buf, len);
    if (faultHooks_ != nullptr)
        faultHooks_->onDramOp(true, offset, len);
}

void
Dram::powerLoss(double off_seconds, double celsius, Rng &rng)
{
    remanence_.decay(data_, off_seconds, celsius, rng);
}

} // namespace sentry::hw
