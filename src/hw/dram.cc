#include "hw/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentry::hw
{

namespace
{

/** Fire one probe::MemAccess for a DRAM cell-array access. */
inline void
traceDramOp(probe::TraceEngine *trace, bool is_write, PhysAddr offset,
            std::size_t len)
{
    if (trace == nullptr || !trace->enabled(probe::TraceKind::MemAccess))
        return;
    probe::MemAccess event{probe::MemAccess::Device::Dram, is_write, offset,
                           len};
    trace->emit(event);
}

} // namespace

Dram::Dram(std::size_t size) : data_(size), remanence_(MemoryTech::Dram)
{
    if (size == 0 || size % PAGE_SIZE != 0)
        fatal("DRAM size must be a non-zero multiple of the page size");
}

void
Dram::busRead(PhysAddr offset, std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM read out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    traceDramOp(trace_, false, offset, len);
    data_.read(offset, buf, len);
}

void
Dram::busWrite(PhysAddr offset, const std::uint8_t *buf, std::size_t len)
{
    if (offset + len > data_.size())
        panic("DRAM write out of range: 0x%llx (+%zu)",
              static_cast<unsigned long long>(offset), len);
    data_.write(offset, buf, len);
    traceDramOp(trace_, true, offset, len);
}

void
Dram::powerLoss(double off_seconds, double celsius, Rng &rng)
{
    remanence_.decay(data_.contiguous(), off_seconds, celsius, rng);
    // Power loss drains every cell: any accumulated activation stress
    // is gone along with the charge.
    activations_.clear();
}

void
Dram::recordActivations(PhysAddr offset, std::uint32_t n)
{
    if (offset >= data_.size())
        panic("DRAM activation out of range: 0x%llx",
              static_cast<unsigned long long>(offset));
    const std::size_t row = geometry_.globalRow(offset);
    if (activations_.size() <= row)
        activations_.resize(geometry_.rowCount(data_.size()), 0);
    const std::uint64_t sum =
        static_cast<std::uint64_t>(activations_[row]) + n;
    activations_[row] = sum > UINT32_MAX ? UINT32_MAX
                                         : static_cast<std::uint32_t>(sum);
}

std::uint32_t
Dram::activationCount(std::size_t global_row) const
{
    return global_row < activations_.size() ? activations_[global_row] : 0;
}

void
Dram::refreshRows()
{
    activations_.clear();
}

std::vector<FlippedBit>
Dram::disturbAdjacentRows(PhysAddr aggressor_offset, Rng &rng,
                          const DisturbParams &params)
{
    std::vector<FlippedBit> flips;
    if (aggressor_offset >= data_.size())
        return flips;
    const std::size_t row = geometry_.globalRow(aggressor_offset);
    const std::uint32_t count = activationCount(row);
    if (count <= params.activationThreshold ||
        params.activationThreshold == 0)
        return flips;

    // Linear ramp from 0 at the threshold to flipChance at 2x it.
    const double overdrive =
        static_cast<double>(count - params.activationThreshold) /
        static_cast<double>(params.activationThreshold);
    const double chance =
        params.flipChance * (overdrive < 1.0 ? overdrive : 1.0);

    // Physically adjacent rows in the same bank are +-banks global
    // rows away (see DramGeometry).
    const std::size_t stride = geometry_.banks;
    const std::size_t row_count = geometry_.rowCount(data_.size());
    const std::size_t neighbours[2] = {row >= stride ? row - stride
                                                     : row_count,
                                       row + stride};
    for (const std::size_t victim : neighbours) {
        if (victim >= row_count)
            continue;
        const PhysAddr base = victim * geometry_.rowBytes;
        const PhysAddr end =
            std::min<PhysAddr>(base + geometry_.rowBytes, data_.size());
        for (PhysAddr site = base; site < end;
             site += params.siteStride) {
            if (!rng.chance(chance))
                continue;
            const unsigned bit =
                static_cast<unsigned>(rng.below(8));
            std::uint8_t byte = 0;
            data_.read(site, &byte, 1);
            byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
            data_.write(site, &byte, 1);
            flips.push_back(FlippedBit{site, bit});
        }
    }
    return flips;
}

} // namespace sentry::hw
