/**
 * @file
 * SentryFleet scenario DSL.
 *
 * A scenario is a line-oriented script driving one simulated device
 * through a day in its life: spawning (possibly sensitive) apps,
 * locking and unlocking the screen, sleeping, suspending, running
 * filebench I/O through dm-crypt, and mounting the paper's memory
 * attacks against the locked device. The fleet engine (fleet.hh) runs
 * N independent devices through the same scenario concurrently.
 *
 * Grammar (one statement per line; '#' starts a comment):
 *
 *   devices N                      # default fleet size (1..1048576)
 *   platform tegra3|nexus4         # default platform
 *   jitter PCT                     # per-device size/duration spread
 *                                  # (0..90; default 0 = homogeneous)
 *   shards N                       # default shard count for the
 *                                  # worker/dispatcher engine (1..4096;
 *                                  # 0/absent = engine picks)
 *   audits every_step|transitions  # security-audit cadence: after every
 *                                  # step (default) or only after
 *                                  # lock/unlock/suspend/attack steps
 *   defense sentry|amnesia|memshield
 *                                  # defense backend the devices run
 *                                  # (default sentry; at most once)
 *   spawn NAME [sensitive] [background] [heap SIZE] [dma SIZE]
 *   lock
 *   unlock PIN
 *   sleep DURATION                 # idle simulated time (250ms, 2s, ...)
 *   suspend DURATION               # S3 suspend-to-RAM (locks first)
 *   wake                           # wake from suspend (still locked)
 *   touch NAME [SIZE]              # touch app memory through paging
 *   filebench SIZE [seqread|randread|randrw] [direct]
 *   attack cold_boot|os_reboot|2s_reset|dma|bus_monitor|code_injection
 *          |prime_probe|evict_reload|rowhammer|tz_side_channel [frozen]
 *          # frozen only with the power-loss (cold-boot family) kinds
 *   zero_freed                     # run the freed-page zeroing kthread
 *
 * SIZE is an integer with an optional B/KiB/MiB/GiB suffix; DURATION is
 * a number with a mandatory us/ms/s suffix. All parse and validation
 * failures raise ScenarioError carrying the 1-based line number —
 * malformed input must never crash the engine.
 */

#ifndef SENTRY_FLEET_SCENARIO_HH
#define SENTRY_FLEET_SCENARIO_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/defense_backend.hh"
#include "os/filebench.hh"

namespace sentry::fleet
{

/** Upper bound on the fleet size a scenario or CLI may request. */
constexpr unsigned MAX_DEVICES = 1u << 20;

/** Upper bound on the shard count of the worker/dispatcher engine. */
constexpr unsigned MAX_SHARDS = 4096;

/** Parse/validation failure; carries the offending 1-based line. */
class ScenarioError : public std::runtime_error
{
  public:
    ScenarioError(unsigned line, const std::string &what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what),
          line_(line)
    {}

    /** @return 1-based line number of the offending statement. */
    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/** Simulated platform a scenario runs on. */
enum class FleetPlatform
{
    Tegra3,
    Nexus4,
};

/** Statement opcodes. */
enum class Op
{
    Spawn,
    Lock,
    Unlock,
    Sleep,
    Suspend,
    Wake,
    Touch,
    Filebench,
    Attack,
    ZeroFreed,
};

/** Attack selector for `attack` statements. */
enum class AttackKind
{
    ColdBootReflash, //!< `cold_boot`: ~7 ms power tap + flashing tool
    OsReboot,        //!< `os_reboot`: warm reboot, no power loss
    TwoSecondReset,  //!< `2s_reset`: 2 s without power
    Dma,             //!< `dma`: live peripheral dump, non-destructive
    BusMonitor,      //!< `bus_monitor`: DDR probe capturing live traffic
    CodeInjection,   //!< `code_injection`: DMA write + firmware replace
    PrimeProbe,      //!< `prime_probe`: cross-core L2 Prime+Probe
    EvictReload,     //!< `evict_reload`: shared-line Evict+Reload
    Rowhammer,       //!< `rowhammer`: DRAM disturbance campaign
    TzSideChannel,   //!< `tz_side_channel`: secure-world mailbox probe
};

/** @return the DSL spelling of @p kind. */
const char *attackKindName(AttackKind kind);

/** One parsed statement. */
struct Step
{
    Op op = Op::Lock;
    unsigned line = 0;      //!< 1-based source line (for diagnostics)
    std::string name;       //!< spawn/touch target process
    std::string pin;        //!< unlock argument
    bool sensitive = false; //!< spawn: protect with Sentry
    bool background = false; //!< spawn: keep running while locked
    bool frozen = false;     //!< attack: -18 °C freezer variant
    bool directIo = false;   //!< filebench: bypass the buffer cache
    std::size_t bytes = 0;   //!< heap/touch/filebench size
    std::size_t dmaBytes = 0; //!< spawn: DMA-region VMA (0 = none)
    double seconds = 0.0;    //!< sleep/suspend duration
    os::FilebenchWorkload workload = os::FilebenchWorkload::RandRead;
    AttackKind attack = AttackKind::Dma;
};

/** A parsed scenario. */
struct Scenario
{
    std::string name;
    std::vector<Step> steps;
    /** `devices` directive value; 0 when the scenario didn't say. */
    unsigned defaultDevices = 0;
    /** `platform` directive; engine default applies when unset. */
    bool hasPlatform = false;
    FleetPlatform platform = FleetPlatform::Tegra3;
    /**
     * `jitter` directive: fraction (0..0.9) by which each device
     * deterministically scales its sizes and durations, so a fleet
     * models a heterogeneous population instead of N clones and the
     * latency percentiles spread out. 0 = all devices identical.
     */
    double jitter = 0.0;
    /** `shards` directive; 0 when the scenario didn't say (the engine
     * derives a device-count-only default — see planShards). */
    unsigned defaultShards = 0;
    /** `audits` directive present? (engine default applies when not) */
    bool hasAuditMode = false;
    /** `audits` directive: true = every_step, false = transitions. */
    bool auditEveryStep = true;
    /** `defense` directive present? (engine default applies when not) */
    bool hasDefense = false;
    /** `defense` directive: which backend the devices run. */
    core::DefenseKind defense = core::DefenseKind::Sentry;

    /** @return true when any spawn asks for background execution. */
    bool needsBackground() const;
};

/**
 * Parse scenario @p text.
 * @param name label recorded in reports
 * @throws ScenarioError on any malformed or out-of-range statement
 */
Scenario parseScenario(const std::string &text, const std::string &name);

/**
 * Load and parse a `.scn` file.
 * @throws std::runtime_error when the file cannot be read
 * @throws ScenarioError on parse failure
 */
Scenario loadScenarioFile(const std::string &path);

/** @return names of the built-in presets. */
std::vector<std::string> builtinScenarioNames();

/** @return true when @p name is a built-in preset. */
bool isBuiltinScenario(const std::string &name);

/**
 * @return a built-in preset (interactive-day, background-mail,
 *         attack-campaign, fleet-smoke, fleet-scale).
 * @throws std::runtime_error for unknown names
 */
Scenario builtinScenario(const std::string &name);

/**
 * Serialize @p step back to one DSL line (no trailing newline).
 * Sizes are emitted in raw bytes and durations in whole microseconds,
 * both of which parseScenario round-trips exactly.
 */
std::string formatStep(const Step &step);

/**
 * Serialize @p scenario (directives + steps) so parseScenario yields an
 * equivalent scenario. Used by the fuzzer to write reproducers.
 */
std::string formatScenario(const Scenario &scenario);

/**
 * Parse a size token ("4MiB", "512KiB", "4096").
 * @throws ScenarioError (with @p line) when malformed or zero
 */
std::size_t parseSize(const std::string &token, unsigned line);

/**
 * Parse a duration token ("250ms", "2s", "100us").
 * @throws ScenarioError (with @p line) when malformed or non-positive
 */
double parseDuration(const std::string &token, unsigned line);

} // namespace sentry::fleet

#endif // SENTRY_FLEET_SCENARIO_HH
