#include "fleet/shard.hh"

#include <algorithm>
#include <cstdio>

namespace sentry::fleet
{

namespace
{

/** Default shard granularity when the caller does not pin a count:
 * enough shards that chunked stealing can rebalance skewed scenarios,
 * few enough that per-shard accumulator memory stays negligible. */
constexpr unsigned DEFAULT_SHARDS = 256;

constexpr std::uint64_t pack(std::uint64_t begin, std::uint64_t end)
{
    return (begin << 32) | end;
}

constexpr std::uint32_t spanBegin(std::uint64_t span)
{
    return static_cast<std::uint32_t>(span >> 32);
}

constexpr std::uint32_t spanEnd(std::uint64_t span)
{
    return static_cast<std::uint32_t>(span);
}

} // namespace

ShardPlan
planShards(unsigned devices, unsigned requestedShards)
{
    ShardPlan plan;
    plan.devices = devices;
    if (devices == 0) {
        plan.shardCount = 0;
        plan.shardSize = 1;
        return plan;
    }
    const unsigned count = requestedShards != 0
                               ? std::min(requestedShards, devices)
                               : std::min(devices, DEFAULT_SHARDS);
    plan.shardSize = (devices + count - 1) / count;
    // Ceil-sized shards can leave trailing shards empty; shrink the
    // count so every shard holds at least one device.
    plan.shardCount = (devices + plan.shardSize - 1) / plan.shardSize;
    return plan;
}

WorkQueue::WorkQueue(unsigned shardCount, unsigned workers)
    : ranges_(workers == 0 ? 1 : workers)
{
    // Contiguous spans, remainder spread over the first workers — the
    // initial split is deterministic; only steals depend on timing.
    const unsigned n = static_cast<unsigned>(ranges_.size());
    const unsigned per = shardCount / n;
    const unsigned extra = shardCount % n;
    unsigned begin = 0;
    for (unsigned w = 0; w < n; ++w) {
        const unsigned len = per + (w < extra ? 1 : 0);
        ranges_[w].span.store(pack(begin, begin + len),
                              std::memory_order_relaxed);
        begin += len;
    }
}

bool
WorkQueue::tryPop(Range &range, unsigned &shard)
{
    std::uint64_t span = range.span.load();
    for (;;) {
        const std::uint32_t b = spanBegin(span);
        const std::uint32_t e = spanEnd(span);
        if (b >= e)
            return false;
        if (range.span.compare_exchange_weak(span, pack(b + 1, e))) {
            shard = b;
            return true;
        }
    }
}

bool
WorkQueue::next(unsigned worker, unsigned &shard)
{
    if (tryPop(ranges_[worker], shard))
        return true;
    for (;;) {
        // Steal from the victim with the most remaining shards. A span
        // holding a single shard is not stealable: its owner will run
        // it, which is what guarantees every shard executes exactly
        // once and the loop below terminates.
        unsigned victim = 0;
        std::uint64_t victimSpan = 0;
        std::uint32_t victimRemaining = 1;
        for (unsigned w = 0; w < ranges_.size(); ++w) {
            if (w == worker)
                continue;
            const std::uint64_t span = ranges_[w].span.load();
            const std::uint32_t b = spanBegin(span);
            const std::uint32_t e = spanEnd(span);
            if (e > b && e - b > victimRemaining) {
                victim = w;
                victimSpan = span;
                victimRemaining = e - b;
            }
        }
        if (victimRemaining < 2)
            return false;
        const std::uint32_t b = spanBegin(victimSpan);
        const std::uint32_t e = spanEnd(victimSpan);
        // Take the back half [mid, e); the victim keeps [b, mid). The
        // CAS publishes the split atomically, so each shard index stays
        // owned by exactly one span at all times.
        const std::uint32_t mid = b + (e - b + 1) / 2;
        if (!ranges_[victim].span.compare_exchange_strong(victimSpan,
                                                          pack(b, mid)))
            continue; // victim moved on — rescan
        steals_.fetch_add(1, std::memory_order_relaxed);
        // Our own span is empty (nobody else refills it), so a plain
        // store cannot race a concurrent pop or steal.
        shard = mid;
        ranges_[worker].span.store(pack(mid + 1, e));
        return true;
    }
}

void
ShardAccumulator::fold(const DeviceResult &result)
{
    ++devices;
    unlock.merge(result.unlock);
    lock.merge(result.lock);
    filebench.merge(result.filebench);
    steps += result.stepsExecuted;
    audits += result.auditsRun;
    auditFailures += result.auditFailures;
    attacks += result.attacksRun;
    sensitiveProbes += result.sensitiveSecretsProbed;
    sensitiveLeaks += result.sensitiveSecretsLeaked;
    nonSensitiveLeaks += result.nonSensitiveLeaks;
    failedUnlocks += result.failedUnlocks;
    faultsServiced += result.faultsServiced;
    bytesEncryptedOnLock += result.bytesEncryptedOnLock;
    bytesDecryptedOnDemand += result.bytesDecryptedOnDemand;
    bytesDecryptedEager += result.bytesDecryptedEager;
    cyclesTotal += result.simCycles;
    cyclesMax = std::max<std::uint64_t>(cyclesMax, result.simCycles);
    l2Hits += result.l2Hits;
    l2Misses += result.l2Misses;
    busReads += result.busReads;
    busWrites += result.busWrites;
    faultFirings += result.faultFirings;
    faultBitFlips += result.faultBitFlips;
    defenseClaimBreaches += result.defenseClaimBreaches;
    defenseVulnerableHits += result.defenseVulnerableHits;
    defenseRekeys += result.defenseRekeys;
    defenseEvictions += result.defenseEvictions;
    defenseExtraSeconds += result.defenseExtraSeconds;
    defenseExtraJoules += result.defenseExtraJoules;
    seedHash ^= result.seed * 0x2545f4914f6cdd1dULL;
    trace += result.trace;
    if (!result.ok) {
        ++failedDevices;
        // Devices fold in index order, so pushing keeps `failures`
        // sorted and the cap keeps the K lowest indices of this shard.
        if (failures.size() < MAX_FAILURE_DETAIL)
            failures.push_back(result);
    }
}

void
ShardAccumulator::merge(const ShardAccumulator &other)
{
    devices += other.devices;
    unlock.merge(other.unlock);
    lock.merge(other.lock);
    filebench.merge(other.filebench);
    steps += other.steps;
    audits += other.audits;
    auditFailures += other.auditFailures;
    failedDevices += other.failedDevices;
    attacks += other.attacks;
    sensitiveProbes += other.sensitiveProbes;
    sensitiveLeaks += other.sensitiveLeaks;
    nonSensitiveLeaks += other.nonSensitiveLeaks;
    failedUnlocks += other.failedUnlocks;
    faultsServiced += other.faultsServiced;
    bytesEncryptedOnLock += other.bytesEncryptedOnLock;
    bytesDecryptedOnDemand += other.bytesDecryptedOnDemand;
    bytesDecryptedEager += other.bytesDecryptedEager;
    cyclesTotal += other.cyclesTotal;
    cyclesMax = std::max(cyclesMax, other.cyclesMax);
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    busReads += other.busReads;
    busWrites += other.busWrites;
    faultFirings += other.faultFirings;
    faultBitFlips += other.faultBitFlips;
    defenseClaimBreaches += other.defenseClaimBreaches;
    defenseVulnerableHits += other.defenseVulnerableHits;
    defenseRekeys += other.defenseRekeys;
    defenseEvictions += other.defenseEvictions;
    defenseExtraSeconds += other.defenseExtraSeconds;
    defenseExtraJoules += other.defenseExtraJoules;
    seedHash ^= other.seedHash;
    trace += other.trace;
    // Index-merge two sorted failure lists and keep the K lowest
    // indices: bottom-K of a union equals bottom-K of the parts'
    // bottom-K sets, so failure detail is merge-order independent too.
    std::vector<DeviceResult> combined;
    combined.reserve(failures.size() + other.failures.size());
    std::merge(failures.begin(), failures.end(), other.failures.begin(),
               other.failures.end(), std::back_inserter(combined),
               [](const DeviceResult &a, const DeviceResult &b) {
                   return a.index < b.index;
               });
    if (combined.size() > MAX_FAILURE_DETAIL)
        combined.resize(MAX_FAILURE_DETAIL);
    failures = std::move(combined);
}

namespace
{

void
digestAppend(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += '=';
    out += value;
    out += ';';
}

void
digestAppendU64(std::string &out, const char *key, std::uint64_t value)
{
    digestAppend(out, key, std::to_string(value));
}

void
digestAppendF(std::string &out, const char *key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    digestAppend(out, key, buf);
}

void
digestAppendStat(std::string &out, const char *key, const MergeStat &stat)
{
    out += key;
    out += "={n=";
    out += std::to_string(stat.count());
    for (double value : stat.sortedValues()) {
        char buf[64];
        std::snprintf(buf, sizeof buf, ",%.17g", value);
        out += buf;
    }
    out += "};";
}

} // namespace

std::string
deviceDigest(const DeviceResult &result)
{
    std::string text;
    text.reserve(1024);
    digestAppendU64(text, "index", result.index);
    digestAppendU64(text, "seed", result.seed);
    digestAppendU64(text, "ok", result.ok ? 1 : 0);
    digestAppend(text, "error", result.error);
    digestAppendU64(text, "steps", result.stepsExecuted);
    digestAppendU64(text, "audits", result.auditsRun);
    digestAppendU64(text, "audit_failures", result.auditFailures);
    digestAppendStat(text, "unlock_s", result.unlock);
    digestAppendStat(text, "lock_s", result.lock);
    digestAppendStat(text, "filebench_mbps", result.filebench);
    digestAppendU64(text, "failed_unlocks", result.failedUnlocks);
    digestAppendU64(text, "attacks", result.attacksRun);
    digestAppendU64(text, "probes", result.sensitiveSecretsProbed);
    digestAppendU64(text, "leaks", result.sensitiveSecretsLeaked);
    digestAppendU64(text, "nonsens_leaks", result.nonSensitiveLeaks);
    digestAppendU64(text, "faults", result.faultsServiced);
    digestAppendU64(text, "bytes_enc", result.bytesEncryptedOnLock);
    digestAppendU64(text, "bytes_ondemand", result.bytesDecryptedOnDemand);
    digestAppendU64(text, "bytes_eager", result.bytesDecryptedEager);
    digestAppendU64(text, "cycles", result.simCycles);
    digestAppendU64(text, "l2_hits", result.l2Hits);
    digestAppendU64(text, "l2_misses", result.l2Misses);
    digestAppendU64(text, "bus_reads", result.busReads);
    digestAppendU64(text, "bus_writes", result.busWrites);
    digestAppend(text, "trace", result.trace.summary());
    digestAppendF(text, "joules", result.trace.joules);
    digestAppendF(text, "kcryptd_stall_s", result.trace.kcryptdStallSeconds);
    digestAppendU64(text, "fault_firings", result.faultFirings);
    digestAppendU64(text, "fault_bit_flips", result.faultBitFlips);
    digestAppendU64(text, "power_glitched", result.powerGlitched ? 1 : 0);
    digestAppend(text, "fault_digest", result.faultDigest);

    std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a 64
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace sentry::fleet
