#include "fleet/fleet.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "common/stats.hh"

namespace sentry::fleet
{

namespace
{

constexpr unsigned MAX_THREADS = 256;

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/** Convert simulated seconds to microseconds for readable metrics. */
double
toUs(double seconds)
{
    return seconds * 1e6;
}

void
addPercentiles(std::vector<FleetMetric> &metrics, const std::string &what,
               const std::vector<double> &seconds)
{
    for (const auto &[tag, p] :
         {std::pair{"p50", 50.0}, {"p95", 95.0}, {"p99", 99.0}}) {
        metrics.push_back(FleetMetric::ofDouble(
            "sim_" + what + "_" + tag + "_us",
            toUs(percentile(seconds, p))));
    }
}

} // namespace

FleetMetric
FleetMetric::ofInt(std::string name, std::uint64_t value)
{
    FleetMetric metric;
    metric.name = std::move(name);
    metric.isInt = true;
    metric.u = value;
    return metric;
}

FleetMetric
FleetMetric::ofDouble(std::string name, double value)
{
    FleetMetric metric;
    metric.name = std::move(name);
    metric.isInt = false;
    metric.d = value;
    return metric;
}

std::string
FleetMetric::jsonValue() const
{
    return isInt ? std::to_string(u) : formatDouble(d);
}

const FleetMetric *
FleetReport::find(const std::string &name) const
{
    for (const FleetMetric &metric : metrics) {
        if (metric.name == name)
            return &metric;
    }
    return nullptr;
}

double
percentile(std::vector<double> samples, double p)
{
    RunningStat stat;
    for (double sample : samples)
        stat.add(sample);
    return stat.percentile(p);
}

std::string
FleetReport::summary() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "fleet: %u device(s) x scenario '%s', %u thread(s), "
                  "seed 0x%llx\n",
                  devices, scenario.c_str(), threads,
                  static_cast<unsigned long long>(seed));
    out += line;
    unsigned failed = 0;
    for (const DeviceResult &result : results) {
        if (!result.ok) {
            ++failed;
            if (failed <= 8) {
                std::snprintf(line, sizeof line, "  device %u FAILED: %s\n",
                              result.index, result.error.c_str());
                out += line;
            }
        }
    }
    if (failed > 8) {
        std::snprintf(line, sizeof line, "  ... and %u more failure(s)\n",
                      failed - 8);
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "  invariants: %s (%u/%u devices green)\n",
                  allOk ? "all green" : "VIOLATED", devices - failed,
                  devices);
    out += line;
    for (const FleetMetric &metric : metrics) {
        std::snprintf(line, sizeof line, "  %-36s %s\n",
                      metric.name.c_str(), metric.jsonValue().c_str());
        out += line;
    }
    std::snprintf(line, sizeof line, "  host: %.3f s, %.1f devices/s\n",
                  hostSeconds,
                  hostSeconds > 0 ? devices / hostSeconds : 0.0);
    out += line;
    return out;
}

bool
FleetReport::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\n  \"bench\": \"fleet\",\n");
    std::fprintf(f, "  \"scenario\": \"%s\",\n", scenario.c_str());
    std::fprintf(f, "  \"host_wall_seconds\": %.6f,\n", hostSeconds);
    std::fprintf(f, "  \"metrics\": {");
    bool first = true;
    const auto emit = [&](const std::string &key,
                          const std::string &value) {
        std::fprintf(f, "%s\n    \"%s\": %s", first ? "" : ",",
                     key.c_str(), value.c_str());
        first = false;
    };
    for (const FleetMetric &metric : metrics)
        emit(metric.name, metric.jsonValue());
    emit("threads", std::to_string(threads));
    emit("host_devices_per_sec",
         formatDouble(hostSeconds > 0 ? devices / hostSeconds : 0.0));
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
}

FleetReport
runFleet(const Scenario &scenario, const FleetOptions &options)
{
    if (options.devices < 1 || options.devices > MAX_DEVICES)
        throw std::invalid_argument(
            "fleet device count " + std::to_string(options.devices) +
            " out of range (1.." + std::to_string(MAX_DEVICES) + ")");
    if (options.threads < 1 || options.threads > MAX_THREADS)
        throw std::invalid_argument(
            "fleet thread count " + std::to_string(options.threads) +
            " out of range (1.." + std::to_string(MAX_THREADS) + ")");
    if (options.dramBytes < 4 * MiB || options.dramBytes > 1 * GiB)
        throw std::invalid_argument(
            "per-device DRAM out of range (4MiB..1GiB)");

    FleetOptions effective = options;
    if (scenario.hasPlatform)
        effective.platform = scenario.platform;
    if (effective.spawnMode == SpawnMode::Snapshot &&
        !effective.templateSnapshot)
        effective.templateSnapshot =
            makeFleetTemplate(scenario, effective);

    const auto t0 = std::chrono::steady_clock::now();

    std::vector<DeviceResult> results(effective.devices);
    if (effective.threads == 1) {
        for (unsigned i = 0; i < effective.devices; ++i)
            results[i] = runDevice(scenario, effective, i);
    } else {
        std::atomic<unsigned> next{0};
        const unsigned workers =
            std::min(effective.threads, effective.devices);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    const unsigned i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= effective.devices)
                        return;
                    results[i] = runDevice(scenario, effective, i);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    FleetReport report;
    report.scenario = scenario.name;
    report.devices = effective.devices;
    report.threads = effective.threads;
    report.seed = effective.seed;
    report.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    report.results = std::move(results);

    // ---- aggregation (index order: thread-count independent) ----------
    std::vector<double> unlocks, locks, mbps;
    std::uint64_t steps = 0, audits = 0, auditFailures = 0, devicesFailed = 0;
    std::uint64_t attacks = 0, probes = 0, leaks = 0, nonSensLeaks = 0;
    std::uint64_t failedUnlocks = 0, faults = 0;
    std::uint64_t bytesEncrypted = 0, bytesOnDemand = 0, bytesEager = 0;
    std::uint64_t cyclesTotal = 0, cyclesMax = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0, busReads = 0, busWrites = 0;
    std::uint64_t traceMemOps = 0, traceBusOps = 0, traceBusBytes = 0;
    std::uint64_t traceWritebacks = 0, traceKcryptdBlocks = 0;
    std::uint64_t traceDmaBytes = 0, tracePowerEvents = 0;
    std::uint64_t seedHash = 0;
    for (const DeviceResult &r : report.results) {
        unlocks.insert(unlocks.end(), r.unlockSeconds.begin(),
                       r.unlockSeconds.end());
        locks.insert(locks.end(), r.lockSeconds.begin(),
                     r.lockSeconds.end());
        mbps.insert(mbps.end(), r.filebenchMbps.begin(),
                    r.filebenchMbps.end());
        steps += r.stepsExecuted;
        audits += r.auditsRun;
        auditFailures += r.auditFailures;
        devicesFailed += r.ok ? 0 : 1;
        attacks += r.attacksRun;
        probes += r.sensitiveSecretsProbed;
        leaks += r.sensitiveSecretsLeaked;
        nonSensLeaks += r.nonSensitiveLeaks;
        failedUnlocks += r.failedUnlocks;
        faults += r.faultsServiced;
        bytesEncrypted += r.bytesEncryptedOnLock;
        bytesOnDemand += r.bytesDecryptedOnDemand;
        bytesEager += r.bytesDecryptedEager;
        cyclesTotal += r.simCycles;
        cyclesMax = std::max<std::uint64_t>(cyclesMax, r.simCycles);
        l2Hits += r.l2Hits;
        l2Misses += r.l2Misses;
        busReads += r.busReads;
        busWrites += r.busWrites;
        traceMemOps += r.trace.memOps();
        traceBusOps += r.trace.busOps();
        traceBusBytes += r.trace.busReadBytes + r.trace.busWriteBytes;
        traceWritebacks += r.trace.cacheWritebacks;
        traceKcryptdBlocks += r.trace.kcryptdBlocks;
        traceDmaBytes += r.trace.dmaBytes;
        tracePowerEvents += r.trace.powerEvents;
        seedHash ^= r.seed * 0x2545f4914f6cdd1dULL;
    }
    report.allOk = devicesFailed == 0;

    auto &m = report.metrics;
    m.push_back(FleetMetric::ofInt("sim_devices", report.devices));
    m.push_back(FleetMetric::ofInt("sim_steps_total", steps));
    m.push_back(FleetMetric::ofInt("sim_audits_total", audits));
    m.push_back(FleetMetric::ofInt("sim_audit_failures", auditFailures));
    m.push_back(FleetMetric::ofInt("sim_devices_failed", devicesFailed));
    m.push_back(
        FleetMetric::ofInt("sim_unlocks_total", unlocks.size()));
    m.push_back(
        FleetMetric::ofInt("sim_failed_unlocks", failedUnlocks));
    addPercentiles(m, "unlock", unlocks);
    addPercentiles(m, "lock", locks);
    m.push_back(FleetMetric::ofInt("sim_attacks_total", attacks));
    m.push_back(FleetMetric::ofInt("sim_sensitive_probes", probes));
    m.push_back(FleetMetric::ofInt("sim_sensitive_leaks", leaks));
    m.push_back(
        FleetMetric::ofInt("sim_nonsensitive_leaks", nonSensLeaks));
    m.push_back(
        FleetMetric::ofInt("sim_filebench_runs", mbps.size()));
    double mbpsSum = 0.0;
    for (double sample : mbps)
        mbpsSum += sample;
    m.push_back(FleetMetric::ofDouble(
        "sim_filebench_mbps_mean",
        mbps.empty() ? 0.0 : mbpsSum / static_cast<double>(mbps.size())));
    m.push_back(FleetMetric::ofInt("sim_faults_total", faults));
    m.push_back(FleetMetric::ofInt("sim_bytes_encrypted_on_lock",
                                   bytesEncrypted));
    m.push_back(FleetMetric::ofInt("sim_bytes_decrypted_on_demand",
                                   bytesOnDemand));
    m.push_back(
        FleetMetric::ofInt("sim_bytes_decrypted_eager", bytesEager));
    m.push_back(FleetMetric::ofInt("sim_cycles_total", cyclesTotal));
    m.push_back(FleetMetric::ofInt("sim_cycles_max", cyclesMax));
    m.push_back(FleetMetric::ofInt("sim_l2_hits_total", l2Hits));
    m.push_back(FleetMetric::ofInt("sim_l2_misses_total", l2Misses));
    m.push_back(FleetMetric::ofInt("sim_bus_reads_total", busReads));
    m.push_back(FleetMetric::ofInt("sim_bus_writes_total", busWrites));
    m.push_back(FleetMetric::ofInt("sim_trace_mem_ops_total", traceMemOps));
    m.push_back(FleetMetric::ofInt("sim_trace_bus_ops_total", traceBusOps));
    m.push_back(
        FleetMetric::ofInt("sim_trace_bus_bytes_total", traceBusBytes));
    m.push_back(
        FleetMetric::ofInt("sim_trace_writebacks_total", traceWritebacks));
    m.push_back(FleetMetric::ofInt("sim_trace_kcryptd_blocks_total",
                                   traceKcryptdBlocks));
    m.push_back(
        FleetMetric::ofInt("sim_trace_dma_bytes_total", traceDmaBytes));
    m.push_back(FleetMetric::ofInt("sim_trace_power_events_total",
                                   tracePowerEvents));
    m.push_back(FleetMetric::ofInt("sim_device_seed_hash", seedHash));
    return report;
}

} // namespace sentry::fleet
