#include "fleet/fleet.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/stats.hh"

namespace sentry::fleet
{

namespace
{

constexpr unsigned MAX_THREADS = 256;

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/** Convert simulated seconds to microseconds for readable metrics. */
double
toUs(double seconds)
{
    return seconds * 1e6;
}

void
addPercentiles(std::vector<FleetMetric> &metrics, const std::string &what,
               const MergeStat &seconds)
{
    for (const auto &[tag, p] :
         {std::pair{"p50", 50.0}, {"p95", 95.0}, {"p99", 99.0}}) {
        metrics.push_back(
            FleetMetric::ofDouble("sim_" + what + "_" + tag + "_us",
                                  toUs(seconds.percentile(p))));
    }
}

/**
 * Build the fixed-order metric list from the merged accumulator. The
 * names and order match what the per-device aggregation loop used to
 * emit; the `sim_shard_*` keys document the (deterministic) streaming
 * layout and are appended at the end.
 */
std::vector<FleetMetric>
buildMetrics(const ShardAccumulator &total, const ShardPlan &plan,
             core::DefenseKind defense)
{
    std::vector<FleetMetric> m;
    m.push_back(FleetMetric::ofInt("sim_devices", total.devices));
    m.push_back(FleetMetric::ofInt("sim_steps_total", total.steps));
    m.push_back(FleetMetric::ofInt("sim_audits_total", total.audits));
    m.push_back(
        FleetMetric::ofInt("sim_audit_failures", total.auditFailures));
    m.push_back(
        FleetMetric::ofInt("sim_devices_failed", total.failedDevices));
    m.push_back(
        FleetMetric::ofInt("sim_unlocks_total", total.unlock.count()));
    m.push_back(
        FleetMetric::ofInt("sim_failed_unlocks", total.failedUnlocks));
    addPercentiles(m, "unlock", total.unlock);
    addPercentiles(m, "lock", total.lock);
    m.push_back(FleetMetric::ofInt("sim_attacks_total", total.attacks));
    m.push_back(
        FleetMetric::ofInt("sim_sensitive_probes", total.sensitiveProbes));
    m.push_back(
        FleetMetric::ofInt("sim_sensitive_leaks", total.sensitiveLeaks));
    m.push_back(FleetMetric::ofInt("sim_nonsensitive_leaks",
                                   total.nonSensitiveLeaks));
    m.push_back(
        FleetMetric::ofInt("sim_filebench_runs", total.filebench.count()));
    m.push_back(FleetMetric::ofDouble("sim_filebench_mbps_mean",
                                      total.filebench.mean()));
    m.push_back(
        FleetMetric::ofInt("sim_faults_total", total.faultsServiced));
    m.push_back(FleetMetric::ofInt("sim_bytes_encrypted_on_lock",
                                   total.bytesEncryptedOnLock));
    m.push_back(FleetMetric::ofInt("sim_bytes_decrypted_on_demand",
                                   total.bytesDecryptedOnDemand));
    m.push_back(FleetMetric::ofInt("sim_bytes_decrypted_eager",
                                   total.bytesDecryptedEager));
    m.push_back(FleetMetric::ofInt("sim_cycles_total", total.cyclesTotal));
    m.push_back(FleetMetric::ofInt("sim_cycles_max", total.cyclesMax));
    m.push_back(FleetMetric::ofInt("sim_l2_hits_total", total.l2Hits));
    m.push_back(FleetMetric::ofInt("sim_l2_misses_total", total.l2Misses));
    m.push_back(FleetMetric::ofInt("sim_bus_reads_total", total.busReads));
    m.push_back(
        FleetMetric::ofInt("sim_bus_writes_total", total.busWrites));
    m.push_back(
        FleetMetric::ofInt("sim_trace_mem_ops_total", total.trace.memOps()));
    m.push_back(
        FleetMetric::ofInt("sim_trace_bus_ops_total", total.trace.busOps()));
    m.push_back(FleetMetric::ofInt(
        "sim_trace_bus_bytes_total",
        total.trace.busReadBytes + total.trace.busWriteBytes));
    m.push_back(FleetMetric::ofInt("sim_trace_writebacks_total",
                                   total.trace.cacheWritebacks));
    m.push_back(FleetMetric::ofInt("sim_trace_kcryptd_blocks_total",
                                   total.trace.kcryptdBlocks));
    m.push_back(FleetMetric::ofInt("sim_trace_dma_bytes_total",
                                   total.trace.dmaBytes));
    m.push_back(FleetMetric::ofInt("sim_trace_power_events_total",
                                   total.trace.powerEvents));
    m.push_back(FleetMetric::ofInt("sim_device_seed_hash", total.seedHash));
    // Streaming-engine layout: all deterministic (retained counts are
    // pure functions of the sample multiset — see MergeStat).
    m.push_back(FleetMetric::ofInt("sim_shard_count", plan.shardCount));
    m.push_back(FleetMetric::ofInt("sim_shard_size", plan.shardSize));
    m.push_back(
        FleetMetric::ofInt("sim_shard_sample_cap", MergeStat::DEFAULT_CAP));
    m.push_back(FleetMetric::ofInt("sim_shard_samples_retained",
                                   total.unlock.retained() +
                                       total.lock.retained() +
                                       total.filebench.retained()));
    // Defense-backend differentials (defense_backend.hh): which design
    // the fleet ran, its claim-vs-observation verdict counters, and the
    // simulated latency/energy it cost beyond baseline Sentry.
    m.push_back(FleetMetric::ofInt("sim_defense_kind",
                                   static_cast<unsigned>(defense)));
    m.push_back(FleetMetric::ofInt("sim_defense_claim_breaches",
                                   total.defenseClaimBreaches));
    m.push_back(FleetMetric::ofInt("sim_defense_vulnerable_hits",
                                   total.defenseVulnerableHits));
    m.push_back(
        FleetMetric::ofInt("sim_defense_rekeys", total.defenseRekeys));
    m.push_back(FleetMetric::ofInt("sim_defense_evictions",
                                   total.defenseEvictions));
    m.push_back(FleetMetric::ofDouble("sim_defense_extra_seconds",
                                      total.defenseExtraSeconds));
    m.push_back(FleetMetric::ofDouble("sim_defense_extra_joules",
                                      total.defenseExtraJoules));
    return m;
}

void
validateOptions(const FleetOptions &options)
{
    if (options.devices < 1 || options.devices > MAX_DEVICES)
        throw std::invalid_argument(
            "fleet device count " + std::to_string(options.devices) +
            " out of range (1.." + std::to_string(MAX_DEVICES) + ")");
    if (options.threads < 1 || options.threads > MAX_THREADS)
        throw std::invalid_argument(
            "fleet thread count " + std::to_string(options.threads) +
            " out of range (1.." + std::to_string(MAX_THREADS) + ")");
    if (options.shards > MAX_SHARDS)
        throw std::invalid_argument(
            "fleet shard count " + std::to_string(options.shards) +
            " out of range (0.." + std::to_string(MAX_SHARDS) + ")");
    if (options.dramBytes < 4 * MiB || options.dramBytes > 1 * GiB)
        throw std::invalid_argument(
            "per-device DRAM out of range (4MiB..1GiB)");
}

} // namespace

FleetMetric
FleetMetric::ofInt(std::string name, std::uint64_t value)
{
    FleetMetric metric;
    metric.name = std::move(name);
    metric.isInt = true;
    metric.u = value;
    return metric;
}

FleetMetric
FleetMetric::ofDouble(std::string name, double value)
{
    FleetMetric metric;
    metric.name = std::move(name);
    metric.isInt = false;
    metric.d = value;
    return metric;
}

std::string
FleetMetric::jsonValue() const
{
    return isInt ? std::to_string(u) : formatDouble(d);
}

const FleetMetric *
FleetReport::find(const std::string &name) const
{
    for (const FleetMetric &metric : metrics) {
        if (metric.name == name)
            return &metric;
    }
    return nullptr;
}

double
percentile(std::vector<double> samples, double p)
{
    RunningStat stat;
    for (double sample : samples)
        stat.add(sample);
    return stat.percentile(p);
}

std::string
FleetReport::summary() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "fleet: %u device(s) x scenario '%s', %u thread(s), "
                  "%u shard(s), seed 0x%llx\n",
                  devices, scenario.c_str(), threads, shards,
                  static_cast<unsigned long long>(seed));
    out += line;
    for (const DeviceResult &result : failures) {
        std::snprintf(line, sizeof line, "  device %u FAILED: %s\n",
                      result.index, result.error.c_str());
        out += line;
    }
    if (failedDevices > failures.size()) {
        std::snprintf(
            line, sizeof line, "  ... and %llu more failure(s)\n",
            static_cast<unsigned long long>(failedDevices -
                                            failures.size()));
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "  invariants: %s (%llu/%u devices green)\n",
                  allOk ? "all green" : "VIOLATED",
                  static_cast<unsigned long long>(devices - failedDevices),
                  devices);
    out += line;
    for (const FleetMetric &metric : metrics) {
        std::snprintf(line, sizeof line, "  %-36s %s\n",
                      metric.name.c_str(), metric.jsonValue().c_str());
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "  host: %.3f s, %.1f devices/s, %llu steal(s)\n",
                  hostSeconds,
                  hostSeconds > 0 ? devices / hostSeconds : 0.0,
                  static_cast<unsigned long long>(steals));
    out += line;
    return out;
}

bool
FleetReport::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\n  \"bench\": \"fleet\",\n");
    std::fprintf(f, "  \"scenario\": \"%s\",\n", scenario.c_str());
    std::fprintf(f, "  \"host_wall_seconds\": %.6f,\n", hostSeconds);
    std::fprintf(f, "  \"metrics\": {");
    bool first = true;
    const auto emit = [&](const std::string &key,
                          const std::string &value) {
        std::fprintf(f, "%s\n    \"%s\": %s", first ? "" : ",",
                     key.c_str(), value.c_str());
        first = false;
    };
    for (const FleetMetric &metric : metrics)
        emit(metric.name, metric.jsonValue());
    emit("threads", std::to_string(threads));
    emit("host_steals", std::to_string(steals));
    emit("host_devices_per_sec",
         formatDouble(hostSeconds > 0 ? devices / hostSeconds : 0.0));
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
}

FleetOptions
resolveFleetOptions(const Scenario &scenario, const FleetOptions &options)
{
    validateOptions(options);
    FleetOptions effective = options;
    if (scenario.hasPlatform)
        effective.platform = scenario.platform;
    if (scenario.hasAuditMode)
        effective.auditEveryStep = scenario.auditEveryStep;
    if (scenario.hasDefense)
        effective.defense = scenario.defense;
    if (effective.shards == 0)
        effective.shards = scenario.defaultShards;
    if (effective.spawnMode == SpawnMode::Snapshot &&
        !effective.templateSnapshot)
        effective.templateSnapshot =
            makeFleetTemplate(scenario, effective);
    return effective;
}

FleetReport
runFleet(const Scenario &scenario, const FleetOptions &options)
{
    const FleetOptions effective = resolveFleetOptions(scenario, options);
    const ShardPlan plan =
        planShards(effective.devices, effective.shards);

    const auto t0 = std::chrono::steady_clock::now();

    // Per-shard accumulators, each written by exactly one worker (the
    // one that claimed the shard), merged below in shard-index order.
    std::vector<ShardAccumulator> accumulators(plan.shardCount);
    std::vector<DeviceResult> results(
        effective.retainResults ? effective.devices : 0);

    const unsigned workers =
        std::min(effective.threads, plan.shardCount);
    WorkQueue queue(plan.shardCount, workers);
    const auto runShards = [&](unsigned worker) {
        DevicePool pool;
        unsigned shard = 0;
        while (queue.next(worker, shard)) {
            ShardAccumulator &acc = accumulators[shard];
            for (unsigned i = plan.begin(shard); i < plan.end(shard);
                 ++i) {
                DeviceResult result =
                    runDevice(scenario, effective, i, &pool);
                acc.fold(result);
                if (effective.retainResults)
                    results[i] = std::move(result);
            }
        }
    };
    if (workers <= 1) {
        runShards(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(runShards, w);
        for (std::thread &t : pool)
            t.join();
    }

    // Canonical merge: shard-index order, independent of which worker
    // ran what when.
    ShardAccumulator total;
    for (const ShardAccumulator &acc : accumulators)
        total.merge(acc);

    FleetReport report;
    report.scenario = scenario.name;
    report.devices = effective.devices;
    report.threads = effective.threads;
    report.shards = plan.shardCount;
    report.seed = effective.seed;
    report.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    report.steals = queue.steals();
    report.allOk = total.failedDevices == 0;
    report.failedDevices = total.failedDevices;
    report.failures = std::move(total.failures);
    report.results = std::move(results);
    report.metrics = buildMetrics(total, plan, effective.defense);
    return report;
}

DeviceResult
replayFleetDevice(const Scenario &scenario, const FleetOptions &options,
                  unsigned index)
{
    if (index >= options.devices)
        throw std::invalid_argument(
            "replay device index " + std::to_string(index) +
            " out of range (fleet has " + std::to_string(options.devices) +
            " devices)");
    const FleetOptions effective = resolveFleetOptions(scenario, options);
    return runDevice(scenario, effective, index);
}

} // namespace sentry::fleet
