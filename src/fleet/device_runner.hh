/**
 * @file
 * One fleet device: a fully independent hw::Soc + os::Kernel +
 * core::Sentry stack driven step-by-step through a parsed Scenario.
 *
 * The runner is share-nothing: it owns every simulated object it
 * touches and holds no references to other devices, so any number of
 * runners may execute concurrently on different threads (see fleet.hh).
 * Per-device randomness derives from a seed the engine computes from
 * the fleet seed and the device index, making every run bit-replayable.
 *
 * After every step the runner asserts Sentry's invariants with
 * core::SecurityAudit (volatile key on-SoC only, no decrypted sensitive
 * page in DRAM while locked, flush-way mask covers locked ways, no
 * plaintext markers in DRAM, freed pages scrubbed). Attack steps assert
 * the paper's Table 3 result instead: a locked device must not leak a
 * sensitive process's secret to the attacker.
 */

#ifndef SENTRY_FLEET_DEVICE_RUNNER_HH
#define SENTRY_FLEET_DEVICE_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/trace_engine.hh"
#include "common/types.hh"
#include "fleet/scenario.hh"

namespace sentry::fault
{
struct FaultSchedule;
}

namespace sentry::core
{
class Device;
struct DeviceSnapshot;
}

namespace sentry::fleet
{

/** How each fleet device comes to life. */
enum class SpawnMode
{
    ColdBoot, //!< construct and boot every device from scratch
    /** Boot one warmed template, checkpoint it, and fork every device
     * from the shared copy-on-write snapshot (much cheaper per device;
     * all devices share the template's boot-time state). */
    Snapshot,
};

/** Engine knobs shared by every device of a fleet run. */
struct FleetOptions
{
    unsigned devices = 1;               //!< fleet size
    unsigned threads = 1;               //!< worker threads
    /** Shard count for the worker/dispatcher engine; 0 derives a
     * default from the device count alone (see planShards). */
    unsigned shards = 0;
    /**
     * Keep every DeviceResult in FleetReport::results. The default
     * preserves the legacy API; population-scale runs switch it off so
     * fleet memory is O(shards), not O(devices) — aggregates, failure
     * detail, and `--replay-device` cover what the vector was for.
     */
    bool retainResults = true;
    std::uint64_t seed = 0x5e47ee1dULL; //!< fleet seed
    FleetPlatform platform = FleetPlatform::Tegra3;
    /** Defense backend every device runs (see core::DefenseKind); the
     * default routes bit-identically through the legacy Sentry path. */
    core::DefenseKind defense = core::DefenseKind::Sentry;
    /** Per-device DRAM; small keeps audits and attacks fast. */
    std::size_t dramBytes = 16 * MiB;
    /** Run the full security audit after every step (vs attacks only). */
    bool auditEveryStep = true;
    /**
     * FaultSim schedule armed on every device (nullptr/empty = no
     * injection). Each device seeds its injector from its device seed,
     * so a fleet run with faults stays bit-replayable.
     */
    const fault::FaultSchedule *faultSchedule = nullptr;
    /**
     * When non-empty, device 0 records its full trace-point timeline
     * and writes it here as chrome://tracing JSON (one device only:
     * timelines of concurrent devices would interleave meaninglessly).
     */
    std::string traceOutPath;
    /** Spawn path for every device (see SpawnMode). */
    SpawnMode spawnMode = SpawnMode::ColdBoot;
    /**
     * Warmed image every device forks from when spawnMode is Snapshot.
     * runFleet() builds one via makeFleetTemplate() when left null;
     * callers may supply their own (e.g. one template reused across
     * many fleet runs). Immutable — safe to share between threads.
     */
    std::shared_ptr<const core::DeviceSnapshot> templateSnapshot;
};

/**
 * Retained-sample bound of each per-device statistic. Scenarios are
 * short scripts (a handful of locks/unlocks/filebench steps), so in
 * practice every sample is retained and per-device percentiles stay
 * exact; a pathological scenario looping thousands of unlocks is
 * bounded here instead of growing a vector per device.
 */
constexpr std::size_t DEVICE_SAMPLE_CAP = 128;

/** Deterministic per-device results (everything simulated). */
struct DeviceResult
{
    unsigned index = 0;
    std::uint64_t seed = 0;

    bool ok = true;     //!< all invariants held, no semantic errors
    std::string error;  //!< first failure (empty when ok)
    unsigned stepsExecuted = 0;
    unsigned auditsRun = 0;
    unsigned auditFailures = 0;

    /** Per successful unlock / per lock / per filebench step. Bounded
     * MergeStats (count() is the true event count; samples carry
     * samplePriority() weights so shard merges stay order-free). */
    MergeStat unlock{DEVICE_SAMPLE_CAP};
    MergeStat lock{DEVICE_SAMPLE_CAP};
    MergeStat filebench{DEVICE_SAMPLE_CAP};
    unsigned failedUnlocks = 0;

    unsigned attacksRun = 0;
    unsigned sensitiveSecretsProbed = 0; //!< sensitive greps attempted
    unsigned sensitiveSecretsLeaked = 0; //!< ...that succeeded (bad)
    unsigned nonSensitiveLeaks = 0;      //!< unprotected greps that hit

    std::uint64_t faultsServiced = 0;
    std::uint64_t bytesEncryptedOnLock = 0;
    std::uint64_t bytesDecryptedOnDemand = 0;
    std::uint64_t bytesDecryptedEager = 0;
    Cycles simCycles = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busWrites = 0;

    /** Trace-point totals from the device's CounterSink (all kinds). */
    probe::TraceCounters trace;

    // FaultSim (all zero/empty when no schedule was armed)
    std::uint64_t faultFirings = 0;  //!< scheduled faults that fired
    std::uint64_t faultBitFlips = 0; //!< memory bits corrupted
    bool powerGlitched = false;      //!< a power_glitch ended the run
    std::string faultDigest;         //!< injector replay fingerprint

    // Adversary suite v2 (all zero/empty when no v2 attack steps ran).
    // Deliberately NOT merged into shard/fleet aggregates — they feed
    // per-device replay digests, not population metrics.
    unsigned v2AttacksRun = 0;
    std::uint64_t v2LockedWaybacks = 0; //!< locked-way evictions (== 0)
    std::uint64_t v2RowhammerFlips = 0; //!< total disturbance flips
    std::uint64_t v2VictimRowFlips = 0; //!< ...that hit victim frames
    std::uint64_t v2RecoveredNibbles = 0; //!< TZ channel leakage
    std::string attackDigest; //!< " || "-joined AttackOutcome digests

    // Defense-backend differential results (core/defense_backend.hh).
    // Like the v2 counters these stay out of deviceDigest, so legacy
    // Sentry digests are untouched; the schedule digest is the parity
    // object the differential tests byte-compare across backends.
    unsigned defenseKind = 0; //!< core::DefenseKind the device ran
    /** Breaches of threats the backend claimed to defeat (fail). */
    std::uint64_t defenseClaimBreaches = 0;
    /** Breaches of threats the backend is openly vulnerable to
     * (expected; the run continues). */
    std::uint64_t defenseVulnerableHits = 0;
    std::uint64_t defenseRekeys = 0;    //!< working-key rekey events
    std::uint64_t defenseEvictions = 0; //!< working-set re-encrypts
    double defenseExtraSeconds = 0.0;   //!< backend latency overhead
    double defenseExtraJoules = 0.0;    //!< backend energy overhead
    /**
     * Backend-independent attack schedule fingerprint: one
     * `verb@line:priority` entry per attack step, derived purely from
     * the device seed and the step sequence — never from backend
     * behaviour — so the same scenario yields byte-identical digests
     * under every backend (only verdicts and costs may differ).
     */
    std::string scheduleDigest;
};

/**
 * Derive device @p index's seed from @p fleet_seed (SplitMix64 step —
 * consecutive indices give statistically independent streams).
 */
std::uint64_t fleetDeviceSeed(std::uint64_t fleet_seed, unsigned index);

/**
 * Deterministic reservoir priority for sample number @p ordinal of the
 * metric tagged @p salt on the device seeded @p device_seed. A pure
 * hash of its arguments: priorities — and therefore MergeStat retained
 * sets — depend only on which samples exist, never on aggregation
 * order, threads, or host state.
 */
std::uint64_t samplePriority(std::uint64_t device_seed, std::uint64_t salt,
                             std::uint64_t ordinal);

/**
 * One worker's recycled device. In Snapshot spawn mode runDevice
 * rebinds the resident Device to the template via forkFrom() instead
 * of constructing and destructing a full stack per device — the fork
 * rewrites all simulated state, so a recycled device is bit-identical
 * to a freshly constructed one (the determinism tests cover this).
 * Cold-boot mode ignores the pool: construction *is* the boot being
 * measured there.
 */
struct DevicePool
{
    DevicePool();
    ~DevicePool();
    DevicePool(DevicePool &&) noexcept;
    DevicePool &operator=(DevicePool &&) noexcept;

    std::unique_ptr<core::Device> device;
};

/**
 * Boot one device the way Runner::boot does (platform from the
 * scenario/options, Sentry options from the scenario, crypto providers
 * registered) with the fleet seed, and checkpoint it. The result is
 * the Snapshot spawn mode's shared template.
 */
std::shared_ptr<const core::DeviceSnapshot>
makeFleetTemplate(const Scenario &scenario, const FleetOptions &options);

/**
 * Run one device through @p scenario. Never throws: failures are
 * reported via DeviceResult::ok / error. @p pool, when given, recycles
 * the worker's resident device across calls (Snapshot mode only).
 */
DeviceResult runDevice(const Scenario &scenario,
                       const FleetOptions &options, unsigned index,
                       DevicePool *pool = nullptr);

} // namespace sentry::fleet

#endif // SENTRY_FLEET_DEVICE_RUNNER_HH
