/**
 * @file
 * SentryFleet engine: run N independent simulated devices through one
 * scenario on a worker pool and aggregate their deterministic metrics.
 *
 * Concurrency model: every device is a share-nothing hw::Soc +
 * os::Kernel + core::Sentry stack built and driven entirely on one
 * worker thread (see device_runner.hh); workers pull device indices
 * from an atomic counter, and results land in a pre-sized vector slot
 * per device. Aggregation walks devices in index order, so fleet
 * metrics are byte-identical for any thread count — the determinism
 * tests assert exactly that.
 *
 * Metric naming follows bench_util.hh: `sim_` prefixed values are
 * deterministic simulation quantities (drift-checked against committed
 * references by bench/run_benches.sh); host-side quantities carry no
 * prefix.
 */

#ifndef SENTRY_FLEET_FLEET_HH
#define SENTRY_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_runner.hh"
#include "fleet/scenario.hh"

namespace sentry::fleet
{

/** One aggregated metric (integer or floating point). */
struct FleetMetric
{
    std::string name;
    bool isInt = false;
    std::uint64_t u = 0;
    double d = 0.0;

    static FleetMetric ofInt(std::string name, std::uint64_t value);
    static FleetMetric ofDouble(std::string name, double value);

    /** @return the JSON literal for this metric's value. */
    std::string jsonValue() const;
};

/** Aggregated outcome of one fleet run. */
struct FleetReport
{
    std::string scenario;
    unsigned devices = 0;
    unsigned threads = 0;
    std::uint64_t seed = 0;
    double hostSeconds = 0.0;

    /** True when every device finished with all invariants green. */
    bool allOk = false;

    std::vector<DeviceResult> results; //!< per device, index order
    std::vector<FleetMetric> metrics;  //!< aggregates, fixed order

    /** @return the metric named @p name, or nullptr. */
    const FleetMetric *find(const std::string &name) const;

    /** @return a printable multi-line run summary. */
    std::string summary() const;

    /**
     * Write the BENCH_fleet.json-style record.
     * @return false when the file cannot be written
     */
    bool writeJson(const std::string &path) const;
};

/**
 * Nearest-rank percentile of @p samples (p in [0,100]); 0 when empty.
 * Sorts a copy; deterministic for any sample order.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Run @p scenario on a fleet.
 * @throws std::invalid_argument on out-of-range options (device count,
 *         thread count, DRAM size)
 */
FleetReport runFleet(const Scenario &scenario, const FleetOptions &options);

} // namespace sentry::fleet

#endif // SENTRY_FLEET_FLEET_HH
