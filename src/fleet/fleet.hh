/**
 * @file
 * SentryFleet engine: run N independent simulated devices through one
 * scenario on a worker/dispatcher pool and aggregate their
 * deterministic metrics in streaming fashion.
 *
 * Concurrency model (see shard.hh): the dispatcher — runFleet's
 * calling thread — parses nothing and simulates nothing; it plans
 * device-index shards, seeds a work-stealing queue, and starts N
 * workers. Every device is a share-nothing hw::Soc + os::Kernel +
 * core::Sentry stack built and driven entirely on one worker thread
 * (see device_runner.hh); a worker claims whole shards (stealing half
 * a loaded victim's remaining span when it runs dry), folds each
 * finished device into the shard's ShardAccumulator, and recycles one
 * resident Device across all its snapshot-mode runs. The dispatcher
 * merges the per-shard accumulators in shard-index order after the
 * join, so fleet memory is O(shards), not O(devices), and metrics are
 * byte-identical for any thread count or steal schedule — the
 * determinism tests assert exactly that.
 *
 * Metric naming follows bench_util.hh: `sim_` prefixed values are
 * deterministic simulation quantities (drift-checked against committed
 * references by bench/run_benches.sh); host-side quantities carry no
 * prefix.
 */

#ifndef SENTRY_FLEET_FLEET_HH
#define SENTRY_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_runner.hh"
#include "fleet/scenario.hh"
#include "fleet/shard.hh"

namespace sentry::fleet
{

/** One aggregated metric (integer or floating point). */
struct FleetMetric
{
    std::string name;
    bool isInt = false;
    std::uint64_t u = 0;
    double d = 0.0;

    static FleetMetric ofInt(std::string name, std::uint64_t value);
    static FleetMetric ofDouble(std::string name, double value);

    /** @return the JSON literal for this metric's value. */
    std::string jsonValue() const;
};

/** Aggregated outcome of one fleet run. */
struct FleetReport
{
    std::string scenario;
    unsigned devices = 0;
    unsigned threads = 0;
    unsigned shards = 0; //!< shard count the engine planned
    std::uint64_t seed = 0;
    double hostSeconds = 0.0;
    /** Successful work steals (host scheduling artifact — never part
     * of the drift-checked `sim_` metrics). */
    std::uint64_t steals = 0;

    /** True when every device finished with all invariants green. */
    bool allOk = false;
    /** Devices whose run ended not-ok (failure count is exact even
     * when per-device detail is bounded). */
    std::uint64_t failedDevices = 0;
    /** The MAX_FAILURE_DETAIL lowest-index failures, full detail. */
    std::vector<DeviceResult> failures;

    /** Per device, index order — populated only when
     * FleetOptions::retainResults (the default); empty in streaming
     * population-scale runs. Aggregates never read this vector. */
    std::vector<DeviceResult> results;
    std::vector<FleetMetric> metrics; //!< aggregates, fixed order

    /** @return the metric named @p name, or nullptr. */
    const FleetMetric *find(const std::string &name) const;

    /** @return a printable multi-line run summary. */
    std::string summary() const;

    /**
     * Write the BENCH_fleet.json-style record.
     * @return false when the file cannot be written
     */
    bool writeJson(const std::string &path) const;
};

/**
 * Nearest-rank percentile of @p samples (p in [0,100]); 0 when empty.
 * Sorts a copy; deterministic for any sample order.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Resolve the options a fleet run actually executes with: scenario
 * directives (platform, shards, audits) applied over @p options, and a
 * template snapshot built when Snapshot mode has none. runFleet and
 * replayFleetDevice resolve identically — that is what makes a replay
 * bit-identical to the device's in-fleet run.
 * @throws std::invalid_argument on out-of-range options
 */
FleetOptions resolveFleetOptions(const Scenario &scenario,
                                 const FleetOptions &options);

/**
 * Run @p scenario on a fleet.
 * @throws std::invalid_argument on out-of-range options (device count,
 *         thread count, shard count, DRAM size)
 */
FleetReport runFleet(const Scenario &scenario, const FleetOptions &options);

/**
 * Re-run the single device @p index exactly as a full fleet run would
 * have (same resolved options, same derived seed) — deviceDigest() of
 * the result matches the digest of that device in the fleet. The
 * `--replay-device` path: reproduce any one device of a 100k run
 * without re-running the other 99999.
 * @throws std::invalid_argument when @p index or options are out of
 *         range
 */
DeviceResult replayFleetDevice(const Scenario &scenario,
                               const FleetOptions &options, unsigned index);

} // namespace sentry::fleet

#endif // SENTRY_FLEET_FLEET_HH
