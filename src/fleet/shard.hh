/**
 * @file
 * Sharding primitives of the SentryFleet worker/dispatcher engine.
 *
 * The dispatcher (runFleet's main thread) splits the device index
 * space into shards — contiguous ranges whose boundaries are a pure
 * function of the device count (never the thread count) — and hands
 * each worker a contiguous span of shard indices. Workers pop shards
 * from the front of their own span; a worker that runs dry steals the
 * back *half* of the most-loaded victim's remaining span (chunked
 * stealing, never single indices), so skewed scenarios rebalance in
 * O(log shards) steals instead of contending on one global counter.
 *
 * Determinism by construction: each shard is executed start-to-finish
 * by exactly one worker (devices in index order), results fold into
 * that shard's ShardAccumulator, and the dispatcher merges the
 * accumulators in shard-index order once all workers join. The merge
 * tree therefore depends only on (devices, shard count) — identical
 * for any thread count and any steal schedule — and every merged
 * quantity is either associative (integer sums, max, xor) or computed
 * from an order-independent retained set (MergeStat), so `sim_*`
 * metrics replay bit-identically.
 */

#ifndef SENTRY_FLEET_SHARD_HH
#define SENTRY_FLEET_SHARD_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_runner.hh"

namespace sentry::fleet
{

/** Failed devices per shard retained with full DeviceResult detail. */
constexpr unsigned MAX_FAILURE_DETAIL = 8;

/** Deterministic partition of device indices into contiguous shards. */
struct ShardPlan
{
    unsigned devices = 0;
    unsigned shardCount = 1;
    unsigned shardSize = 1; //!< devices per shard (last may be short)

    /** @return first device index of @p shard. */
    unsigned
    begin(unsigned shard) const
    {
        return shard * shardSize;
    }

    /** @return one-past-last device index of @p shard. */
    unsigned
    end(unsigned shard) const
    {
        const unsigned hi = (shard + 1) * shardSize;
        return hi < devices ? hi : devices;
    }
};

/**
 * Plan shards for @p devices. @p requestedShards pins the count
 * (clamped to the device count); 0 derives a default from the device
 * count ALONE — thread counts must never leak into shard boundaries,
 * or the per-shard merge tree (and with it floating-point `sim_*`
 * metrics past the reservoir cap) would vary across machines.
 */
ShardPlan planShards(unsigned devices, unsigned requestedShards);

/**
 * Work-stealing shard queue: one contiguous [begin,end) span of shard
 * indices per worker, packed into a single atomic word so both the
 * owner's front-pop and a thief's back-half split are lock-free CAS
 * updates. Safe for concurrent next() calls from all workers.
 */
class WorkQueue
{
  public:
    WorkQueue(unsigned shardCount, unsigned workers);

    /**
     * Claim the next shard for @p worker: pop the front of its own
     * span, else steal the back half of the most-loaded victim and pop
     * from that. @return false when no shard anywhere is claimable
     * (spans with one remaining shard belong to their owner).
     */
    bool next(unsigned worker, unsigned &shard);

    /** @return number of successful steals (host-side diagnostics). */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    unsigned workers() const
    {
        return static_cast<unsigned>(ranges_.size());
    }

  private:
    /** One worker's remaining span, packed begin<<32 | end. */
    struct alignas(64) Range
    {
        std::atomic<std::uint64_t> span{0};
    };

    bool tryPop(Range &range, unsigned &shard);

    std::vector<Range> ranges_;
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * Streaming fleet aggregation for one shard: fixed-size regardless of
 * how many devices fold into it. Sample stats are bounded MergeStat
 * reservoirs, counters are integer sums, and only the first
 * MAX_FAILURE_DETAIL failed devices (lowest indices) keep their full
 * DeviceResult. merge() is written so that folding devices in index
 * order within shards and merging shards in index order reproduces
 * the legacy whole-fleet aggregation bit for bit.
 */
struct ShardAccumulator
{
    std::uint64_t devices = 0;

    MergeStat unlock{MergeStat::DEFAULT_CAP};
    MergeStat lock{MergeStat::DEFAULT_CAP};
    MergeStat filebench{MergeStat::DEFAULT_CAP};

    std::uint64_t steps = 0;
    std::uint64_t audits = 0;
    std::uint64_t auditFailures = 0;
    std::uint64_t failedDevices = 0;
    std::uint64_t attacks = 0;
    std::uint64_t sensitiveProbes = 0;
    std::uint64_t sensitiveLeaks = 0;
    std::uint64_t nonSensitiveLeaks = 0;
    std::uint64_t failedUnlocks = 0;
    std::uint64_t faultsServiced = 0;
    std::uint64_t bytesEncryptedOnLock = 0;
    std::uint64_t bytesDecryptedOnDemand = 0;
    std::uint64_t bytesDecryptedEager = 0;
    std::uint64_t cyclesTotal = 0;
    std::uint64_t cyclesMax = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busWrites = 0;
    std::uint64_t faultFirings = 0;
    std::uint64_t faultBitFlips = 0;
    // Defense-backend differential sums (all zero under the default
    // Sentry backend on a passing fleet).
    std::uint64_t defenseClaimBreaches = 0;
    std::uint64_t defenseVulnerableHits = 0;
    std::uint64_t defenseRekeys = 0;
    std::uint64_t defenseEvictions = 0;
    double defenseExtraSeconds = 0.0;
    double defenseExtraJoules = 0.0;
    std::uint64_t seedHash = 0; //!< xor-fold of per-device seed mixes
    probe::TraceCounters trace;

    /** First-K failed devices by index, full detail. */
    std::vector<DeviceResult> failures;

    /** Fold one finished device (call in index order within a shard). */
    void fold(const DeviceResult &result);

    /** Merge @p other (covering higher device indices) into this. */
    void merge(const ShardAccumulator &other);
};

/**
 * Canonical fingerprint of one device's deterministic results: every
 * simulated field rendered into a stable string and FNV-1a hashed.
 * `--replay-device N` re-runs one index and must reproduce the digest
 * the full-fleet run computed for that device.
 */
std::string deviceDigest(const DeviceResult &result);

} // namespace sentry::fleet

#endif // SENTRY_FLEET_SHARD_HH
