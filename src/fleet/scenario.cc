#include "fleet/scenario.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace sentry::fleet
{

namespace
{

/** Heap/touch/filebench sizes above this are almost certainly typos. */
constexpr std::size_t MAX_STEP_BYTES = 256 * MiB;

/** Sleep/suspend durations above this would stall a fleet run. */
constexpr double MAX_STEP_SECONDS = 3600.0;

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

bool
validProcessName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-')
            return false;
    }
    return true;
}

/** Split "250ms" into its numeric prefix and unit suffix. */
void
splitNumberSuffix(const std::string &token, std::string &number,
                  std::string &suffix)
{
    std::size_t i = 0;
    while (i < token.size() &&
           (std::isdigit(static_cast<unsigned char>(token[i])) ||
            token[i] == '.'))
        ++i;
    number = token.substr(0, i);
    suffix = token.substr(i);
}

} // namespace

const char *
attackKindName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::ColdBootReflash:
        return "cold_boot";
      case AttackKind::OsReboot:
        return "os_reboot";
      case AttackKind::TwoSecondReset:
        return "2s_reset";
      case AttackKind::Dma:
        return "dma";
      case AttackKind::BusMonitor:
        return "bus_monitor";
      case AttackKind::CodeInjection:
        return "code_injection";
      case AttackKind::PrimeProbe:
        return "prime_probe";
      case AttackKind::EvictReload:
        return "evict_reload";
      case AttackKind::Rowhammer:
        return "rowhammer";
      case AttackKind::TzSideChannel:
        return "tz_side_channel";
    }
    return "?";
}

bool
Scenario::needsBackground() const
{
    for (const Step &step : steps) {
        if (step.op == Op::Spawn && step.background)
            return true;
    }
    return false;
}

std::size_t
parseSize(const std::string &token, unsigned line)
{
    std::string number, suffix;
    splitNumberSuffix(token, number, suffix);
    if (number.empty() || number.find('.') != std::string::npos)
        throw ScenarioError(line, "malformed size '" + token +
                                      "' (want e.g. 4MiB, 512KiB, 4096)");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(number.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        throw ScenarioError(line, "malformed size '" + token + "'");
    std::size_t unit = 1;
    if (suffix == "B" || suffix.empty())
        unit = 1;
    else if (suffix == "KiB")
        unit = KiB;
    else if (suffix == "MiB")
        unit = MiB;
    else if (suffix == "GiB")
        unit = GiB;
    else
        throw ScenarioError(line, "unknown size suffix '" + suffix +
                                      "' in '" + token +
                                      "' (use B, KiB, MiB, or GiB)");
    if (value == 0)
        throw ScenarioError(line, "size must be non-zero: '" + token + "'");
    const std::size_t bytes = static_cast<std::size_t>(value) * unit;
    if (bytes / unit != value || bytes > MAX_STEP_BYTES)
        throw ScenarioError(line, "size out of range: '" + token +
                                      "' (max 256MiB)");
    return bytes;
}

double
parseDuration(const std::string &token, unsigned line)
{
    std::string number, suffix;
    splitNumberSuffix(token, number, suffix);
    if (number.empty())
        throw ScenarioError(line, "malformed duration '" + token +
                                      "' (want e.g. 250ms, 2s, 100us)");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(number.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0')
        throw ScenarioError(line, "malformed duration '" + token + "'");
    double usPerUnit = 0.0;
    if (suffix == "us")
        usPerUnit = 1.0;
    else if (suffix == "ms")
        usPerUnit = 1e3;
    else if (suffix == "s")
        usPerUnit = 1e6;
    else
        throw ScenarioError(line, "duration '" + token +
                                      "' needs a us/ms/s suffix");
    // Normalize through microseconds so equal durations parse to the
    // same double regardless of spelling: 100ms, 100000us, and 0.1s
    // must drive bit-identical simulations (value * 1e-3 and
    // value * 1e-6 round differently by one ULP for some inputs).
    const double seconds = value * usPerUnit / 1e6;
    if (seconds <= 0.0)
        throw ScenarioError(line,
                            "duration must be positive: '" + token + "'");
    if (seconds > MAX_STEP_SECONDS)
        throw ScenarioError(line, "duration out of range: '" + token +
                                      "' (max 3600s)");
    return seconds;
}

Scenario
parseScenario(const std::string &text, const std::string &name)
{
    Scenario scenario;
    scenario.name = name;

    std::set<std::string> spawned;
    std::istringstream stream(text);
    std::string raw;
    unsigned lineNo = 0;
    while (std::getline(stream, raw)) {
        ++lineNo;
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        const std::vector<std::string> tokens = tokenize(raw);
        if (tokens.empty())
            continue;
        const std::string &opcode = tokens[0];
        const std::size_t argc = tokens.size() - 1;

        Step step;
        step.line = lineNo;

        if (opcode == "devices") {
            if (argc != 1)
                throw ScenarioError(lineNo, "devices takes one count");
            errno = 0;
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(tokens[1].c_str(), &end, 10);
            if (errno != 0 || end == nullptr || *end != '\0')
                throw ScenarioError(lineNo, "malformed device count '" +
                                                tokens[1] + "'");
            if (n < 1 || n > MAX_DEVICES)
                throw ScenarioError(
                    lineNo, "device count " + tokens[1] +
                                " out of range (1.." +
                                std::to_string(MAX_DEVICES) + ")");
            scenario.defaultDevices = static_cast<unsigned>(n);
            continue;
        }
        if (opcode == "shards") {
            if (argc != 1)
                throw ScenarioError(lineNo, "shards takes one count");
            errno = 0;
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(tokens[1].c_str(), &end, 10);
            if (errno != 0 || end == nullptr || *end != '\0')
                throw ScenarioError(lineNo, "malformed shard count '" +
                                                tokens[1] + "'");
            if (n < 1 || n > MAX_SHARDS)
                throw ScenarioError(
                    lineNo, "shard count " + tokens[1] +
                                " out of range (1.." +
                                std::to_string(MAX_SHARDS) + ")");
            scenario.defaultShards = static_cast<unsigned>(n);
            continue;
        }
        if (opcode == "audits") {
            if (argc != 1)
                throw ScenarioError(lineNo, "audits takes one mode");
            if (tokens[1] == "every_step")
                scenario.auditEveryStep = true;
            else if (tokens[1] == "transitions")
                scenario.auditEveryStep = false;
            else
                throw ScenarioError(lineNo,
                                    "unknown audit mode '" + tokens[1] +
                                        "' (every_step or transitions)");
            scenario.hasAuditMode = true;
            continue;
        }
        if (opcode == "defense") {
            if (argc != 1)
                throw ScenarioError(lineNo, "defense takes one backend");
            if (scenario.hasDefense)
                throw ScenarioError(lineNo,
                                    "duplicate defense directive");
            const auto kind = core::parseDefenseKind(tokens[1]);
            if (!kind.has_value())
                throw ScenarioError(
                    lineNo, "unknown defense backend '" + tokens[1] +
                                "' (sentry, amnesia, or memshield)");
            scenario.defense = *kind;
            scenario.hasDefense = true;
            continue;
        }
        if (opcode == "jitter") {
            if (argc != 1)
                throw ScenarioError(lineNo, "jitter takes one percentage");
            errno = 0;
            char *end = nullptr;
            const double pct = std::strtod(tokens[1].c_str(), &end);
            if (errno != 0 || end == nullptr || *end != '\0')
                throw ScenarioError(lineNo, "malformed jitter '" +
                                                tokens[1] + "'");
            if (pct < 0.0 || pct > 90.0)
                throw ScenarioError(lineNo, "jitter " + tokens[1] +
                                                " out of range (0..90)");
            scenario.jitter = pct / 100.0;
            continue;
        }
        if (opcode == "platform") {
            if (argc != 1)
                throw ScenarioError(lineNo, "platform takes one name");
            if (tokens[1] == "tegra3")
                scenario.platform = FleetPlatform::Tegra3;
            else if (tokens[1] == "nexus4")
                scenario.platform = FleetPlatform::Nexus4;
            else
                throw ScenarioError(lineNo, "unknown platform '" +
                                                tokens[1] +
                                                "' (tegra3 or nexus4)");
            scenario.hasPlatform = true;
            continue;
        }
        if (opcode == "spawn") {
            if (argc < 1)
                throw ScenarioError(lineNo, "spawn needs a process name");
            step.op = Op::Spawn;
            step.name = tokens[1];
            if (!validProcessName(step.name))
                throw ScenarioError(lineNo, "invalid process name '" +
                                                step.name + "'");
            if (spawned.contains(step.name))
                throw ScenarioError(lineNo, "process '" + step.name +
                                                "' spawned twice");
            step.bytes = 256 * KiB;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i] == "sensitive") {
                    step.sensitive = true;
                } else if (tokens[i] == "background") {
                    step.background = true;
                } else if (tokens[i] == "heap") {
                    if (i + 1 >= tokens.size())
                        throw ScenarioError(lineNo, "heap needs a size");
                    step.bytes = parseSize(tokens[++i], lineNo);
                } else if (tokens[i] == "dma") {
                    if (i + 1 >= tokens.size())
                        throw ScenarioError(lineNo, "dma needs a size");
                    step.dmaBytes = parseSize(tokens[++i], lineNo);
                } else {
                    throw ScenarioError(lineNo, "unknown spawn flag '" +
                                                    tokens[i] + "'");
                }
            }
            if (step.background && !step.sensitive)
                throw ScenarioError(
                    lineNo, "background processes must be sensitive "
                            "(Sentry pages only protected processes)");
            spawned.insert(step.name);
        } else if (opcode == "lock") {
            if (argc != 0)
                throw ScenarioError(lineNo, "lock takes no arguments");
            step.op = Op::Lock;
        } else if (opcode == "unlock") {
            if (argc != 1)
                throw ScenarioError(lineNo, "unlock takes one PIN");
            step.op = Op::Unlock;
            step.pin = tokens[1];
        } else if (opcode == "sleep" || opcode == "suspend") {
            if (argc != 1)
                throw ScenarioError(lineNo,
                                    opcode + " takes one duration");
            step.op = opcode == "sleep" ? Op::Sleep : Op::Suspend;
            step.seconds = parseDuration(tokens[1], lineNo);
        } else if (opcode == "wake") {
            if (argc != 0)
                throw ScenarioError(lineNo, "wake takes no arguments");
            step.op = Op::Wake;
        } else if (opcode == "touch") {
            if (argc < 1 || argc > 2)
                throw ScenarioError(lineNo,
                                    "touch takes a name and optional size");
            step.op = Op::Touch;
            step.name = tokens[1];
            if (!spawned.contains(step.name))
                throw ScenarioError(lineNo, "touch of unknown process '" +
                                                step.name + "'");
            step.bytes =
                argc == 2 ? parseSize(tokens[2], lineNo) : 64 * KiB;
        } else if (opcode == "filebench") {
            if (argc < 1)
                throw ScenarioError(lineNo, "filebench needs an I/O size");
            step.op = Op::Filebench;
            step.bytes = parseSize(tokens[1], lineNo);
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i] == "seqread")
                    step.workload = os::FilebenchWorkload::SeqRead;
                else if (tokens[i] == "randread")
                    step.workload = os::FilebenchWorkload::RandRead;
                else if (tokens[i] == "randrw")
                    step.workload = os::FilebenchWorkload::RandRW;
                else if (tokens[i] == "direct")
                    step.directIo = true;
                else
                    throw ScenarioError(lineNo,
                                        "unknown filebench flag '" +
                                            tokens[i] + "'");
            }
        } else if (opcode == "attack") {
            if (argc < 1)
                throw ScenarioError(lineNo, "attack needs a kind");
            step.op = Op::Attack;
            if (tokens[1] == "cold_boot")
                step.attack = AttackKind::ColdBootReflash;
            else if (tokens[1] == "os_reboot")
                step.attack = AttackKind::OsReboot;
            else if (tokens[1] == "2s_reset")
                step.attack = AttackKind::TwoSecondReset;
            else if (tokens[1] == "dma")
                step.attack = AttackKind::Dma;
            else if (tokens[1] == "bus_monitor")
                step.attack = AttackKind::BusMonitor;
            else if (tokens[1] == "code_injection")
                step.attack = AttackKind::CodeInjection;
            else if (tokens[1] == "prime_probe")
                step.attack = AttackKind::PrimeProbe;
            else if (tokens[1] == "evict_reload")
                step.attack = AttackKind::EvictReload;
            else if (tokens[1] == "rowhammer")
                step.attack = AttackKind::Rowhammer;
            else if (tokens[1] == "tz_side_channel")
                step.attack = AttackKind::TzSideChannel;
            else
                throw ScenarioError(
                    lineNo, "unknown attack '" + tokens[1] +
                                "' (cold_boot, os_reboot, 2s_reset, dma, "
                                "bus_monitor, code_injection, prime_probe, "
                                "evict_reload, rowhammer, tz_side_channel)");
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i] == "frozen") {
                    if (step.attack != AttackKind::ColdBootReflash &&
                        step.attack != AttackKind::OsReboot &&
                        step.attack != AttackKind::TwoSecondReset)
                        throw ScenarioError(
                            lineNo, "frozen only applies to cold-boot "
                                    "attacks");
                    step.frozen = true;
                } else {
                    throw ScenarioError(lineNo, "unknown attack flag '" +
                                                    tokens[i] + "'");
                }
            }
        } else if (opcode == "zero_freed") {
            if (argc != 0)
                throw ScenarioError(lineNo,
                                    "zero_freed takes no arguments");
            step.op = Op::ZeroFreed;
        } else {
            throw ScenarioError(lineNo, "unknown opcode '" + opcode + "'");
        }
        scenario.steps.push_back(step);
    }

    if (scenario.steps.empty())
        throw ScenarioError(lineNo == 0 ? 1 : lineNo,
                            "scenario has no statements");
    return scenario;
}

namespace
{

/** Emit @p seconds as a whole-microsecond duration token. */
std::string
formatDuration(double seconds)
{
    long long us = static_cast<long long>(seconds * 1e6 + 0.5);
    if (us < 1)
        us = 1; // parseDuration rejects non-positive durations
    return std::to_string(us) + "us";
}

const char *
workloadName(os::FilebenchWorkload workload)
{
    switch (workload) {
      case os::FilebenchWorkload::SeqRead:
        return "seqread";
      case os::FilebenchWorkload::RandRead:
        return "randread";
      case os::FilebenchWorkload::RandRW:
        return "randrw";
    }
    return "?";
}

} // namespace

std::string
formatStep(const Step &step)
{
    std::ostringstream out;
    switch (step.op) {
      case Op::Spawn:
        out << "spawn " << step.name;
        if (step.sensitive)
            out << " sensitive";
        if (step.background)
            out << " background";
        out << " heap " << step.bytes;
        if (step.dmaBytes != 0)
            out << " dma " << step.dmaBytes;
        break;
      case Op::Lock:
        out << "lock";
        break;
      case Op::Unlock:
        out << "unlock " << step.pin;
        break;
      case Op::Sleep:
        out << "sleep " << formatDuration(step.seconds);
        break;
      case Op::Suspend:
        out << "suspend " << formatDuration(step.seconds);
        break;
      case Op::Wake:
        out << "wake";
        break;
      case Op::Touch:
        out << "touch " << step.name << ' ' << step.bytes;
        break;
      case Op::Filebench:
        out << "filebench " << step.bytes << ' '
            << workloadName(step.workload);
        if (step.directIo)
            out << " direct";
        break;
      case Op::Attack:
        out << "attack " << attackKindName(step.attack);
        if (step.frozen)
            out << " frozen";
        break;
      case Op::ZeroFreed:
        out << "zero_freed";
        break;
    }
    return out.str();
}

std::string
formatScenario(const Scenario &scenario)
{
    std::ostringstream out;
    if (scenario.defaultDevices != 0)
        out << "devices " << scenario.defaultDevices << '\n';
    if (scenario.hasPlatform) {
        out << "platform "
            << (scenario.platform == FleetPlatform::Tegra3 ? "tegra3"
                                                           : "nexus4")
            << '\n';
    }
    if (scenario.jitter > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", scenario.jitter * 100.0);
        out << "jitter " << buf << '\n';
    }
    if (scenario.defaultShards != 0)
        out << "shards " << scenario.defaultShards << '\n';
    if (scenario.hasAuditMode) {
        out << "audits "
            << (scenario.auditEveryStep ? "every_step" : "transitions")
            << '\n';
    }
    if (scenario.hasDefense)
        out << "defense " << core::defenseKindName(scenario.defense)
            << '\n';
    for (const Step &step : scenario.steps)
        out << formatStep(step) << '\n';
    return out.str();
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("cannot read scenario file: " + path);
    std::ostringstream text;
    text << file.rdbuf();
    std::string name = path;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);
    return parseScenario(text.str(), name);
}

namespace
{

/**
 * A day of interactive use: a sensitive mail client and a non-sensitive
 * game, several lock/unlock cycles, a mid-day DMA probe against the
 * locked device, filebench I/O through dm-crypt, and a suspend nap.
 */
const char INTERACTIVE_DAY[] = R"(
devices 8
jitter 30
spawn mail sensitive heap 512KiB dma 64KiB
spawn game heap 256KiB
touch mail 128KiB
lock
sleep 2s
unlock 0000
touch mail 64KiB
touch game 64KiB
lock
sleep 500ms
attack dma
unlock 0000
filebench 2MiB randread
lock
suspend 5s
wake
unlock 0000
touch mail 256KiB
lock
sleep 250ms
unlock 0000
zero_freed
)";

/**
 * The paper's introduction scenario: mail keeps syncing while the
 * device sits locked, paged through locked cache ways; a DMA attacker
 * probes the locked device and finds nothing.
 */
const char BACKGROUND_MAIL[] = R"(
devices 4
platform tegra3
spawn mail sensitive background heap 256KiB
touch mail 64KiB
lock
touch mail 32KiB
sleep 1s
touch mail 32KiB
attack dma
sleep 500ms
unlock 0000
touch mail 64KiB
)";

/**
 * The full Table 3 gauntlet against one locked device: live DMA dump,
 * then the three cold-boot variants (the last one frozen at -18 °C).
 */
const char ATTACK_CAMPAIGN[] = R"(
devices 8
spawn wallet sensitive heap 128KiB
spawn leaky heap 64KiB
touch wallet 32KiB
lock
sleep 100ms
attack dma
attack cold_boot
attack os_reboot
attack 2s_reset frozen
)";

/** Minimal per-device work for scaling benches and TSAN smoke runs. */
const char FLEET_SMOKE[] = R"(
devices 4
spawn mail sensitive heap 128KiB dma 16KiB
lock
sleep 250ms
attack dma
unlock 0000
touch mail 32KiB
lock
unlock 0000
)";

/**
 * Population-scale engine workload: the smallest per-device unit of
 * work that still pages real memory, sized so 10⁵ devices finish in
 * bench time. Audits run at transitions only (this scenario has none:
 * it measures the worker/dispatcher engine, not the audit scanner) and
 * the shard count is pinned so the per-shard merge tree — and with it
 * every `sim_shard_*` metric — is identical on every machine.
 */
const char FLEET_SCALE[] = R"(
devices 4096
shards 256
audits transitions
jitter 20
spawn app sensitive heap 16KiB
touch app 16KiB
sleep 5ms
touch app 8KiB
)";

struct Preset
{
    const char *name;
    const char *text;
};

const Preset PRESETS[] = {
    {"interactive-day", INTERACTIVE_DAY},
    {"background-mail", BACKGROUND_MAIL},
    {"attack-campaign", ATTACK_CAMPAIGN},
    {"fleet-smoke", FLEET_SMOKE},
    {"fleet-scale", FLEET_SCALE},
};

} // namespace

std::vector<std::string>
builtinScenarioNames()
{
    std::vector<std::string> names;
    for (const Preset &preset : PRESETS)
        names.emplace_back(preset.name);
    return names;
}

bool
isBuiltinScenario(const std::string &name)
{
    for (const Preset &preset : PRESETS) {
        if (name == preset.name)
            return true;
    }
    return false;
}

Scenario
builtinScenario(const std::string &name)
{
    for (const Preset &preset : PRESETS) {
        if (name == preset.name)
            return parseScenario(preset.text, preset.name);
    }
    throw std::runtime_error("unknown built-in scenario: " + name);
}

} // namespace sentry::fleet
