#include "fleet/device_runner.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "attacks/bus_monitor_attack.hh"
#include "attacks/code_injection.hh"
#include "attacks/cold_boot.hh"
#include "attacks/dma_attack.hh"
#include "attacks/v2/cache_attack.hh"
#include "attacks/v2/rowhammer.hh"
#include "attacks/v2/tz_side_channel.hh"
#include "common/bytes.hh"
#include "common/logging.hh"
#include "core/device.hh"
#include "core/invariant_checker.hh"
#include "fault/fault.hh"
#include "fault/fault_injector.hh"
#include "os/block_device.hh"
#include "os/buffer_cache.hh"
#include "os/dm_crypt.hh"
#include "os/filebench.hh"

namespace sentry::fleet
{

namespace
{

/** Per-spawned-process bookkeeping. */
struct ProcInfo
{
    os::Process *process = nullptr;
    VirtAddr heapBase = 0;
    std::size_t heapBytes = 0;
    bool sensitive = false;
    bool background = false;
    std::vector<std::uint8_t> secret; //!< plaintext marker in its heap
};

/** kcryptd workers per filebench step (bounds thread fan-out per
 *  device; simulated results are worker-count independent). */
constexpr unsigned FILEBENCH_WORKERS = 2;

/** Metric tags feeding samplePriority (arbitrary distinct constants). */
constexpr std::uint64_t SALT_UNLOCK = 0x756e6c6f636b5f73ULL;
constexpr std::uint64_t SALT_LOCK = 0x6c6f636b5f5f5f73ULL;
constexpr std::uint64_t SALT_FILEBENCH = 0x66696c6562656e63ULL;
constexpr std::uint64_t SALT_V2ATTACK = 0x76325f61747461b1ULL;
constexpr std::uint64_t SALT_SCHEDULE = 0x7363686564756c65ULL;
constexpr std::uint64_t SALT_BUSKEY = 0x6275736b65795f73ULL;

/** The Threat a given attack verb exercises; nullopt for verbs outside
 * the seven-threat matrix (code_injection stays a platform test every
 * backend must pass). */
std::optional<core::Threat>
attackThreat(AttackKind kind)
{
    switch (kind) {
      case AttackKind::ColdBootReflash:
      case AttackKind::OsReboot:
      case AttackKind::TwoSecondReset:
        return core::Threat::ColdBoot;
      case AttackKind::Dma:
        return core::Threat::Dma;
      case AttackKind::BusMonitor:
        return core::Threat::BusMonitor;
      case AttackKind::PrimeProbe:
        return core::Threat::PrimeProbe;
      case AttackKind::EvictReload:
        return core::Threat::EvictReload;
      case AttackKind::Rowhammer:
        return core::Threat::Rowhammer;
      case AttackKind::TzSideChannel:
        return core::Threat::TzSideChannel;
      default:
        return std::nullopt;
    }
}

std::string
hex64(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Platform + Sentry configuration shared by Runner::boot() and the
 * snapshot template (the fork target must match the template's
 * geometry and options exactly). */
std::pair<hw::PlatformConfig, core::SentryOptions>
deviceConfig(const Scenario &scenario, const FleetOptions &options,
             std::uint64_t seed)
{
    hw::PlatformConfig config =
        options.platform == FleetPlatform::Tegra3
            ? hw::PlatformConfig::tegra3(options.dramBytes)
            : hw::PlatformConfig::nexus4(options.dramBytes);
    config.seed = seed;

    core::SentryOptions sentryOptions;
    sentryOptions.placement = core::AesPlacement::LockedL2;
    sentryOptions.backgroundMode = scenario.needsBackground();
    sentryOptions.pagerWays = 2;
    sentryOptions.defense = options.defense;
    return {config, sentryOptions};
}

class Runner
{
  public:
    Runner(const Scenario &scenario, const FleetOptions &options,
           unsigned index, DevicePool *pool)
        : scenario_(scenario), options_(options), index_(index),
          seed_(fleetDeviceSeed(options.seed, index)),
          workloadRng_(seed_ ^ 0xf1ee7a5c0ffee000ULL), pool_(pool)
    {}

    DeviceResult
    run()
    {
        DeviceResult result;
        result.index = index_;
        result.seed = seed_;
        try {
            boot();
            for (const Step &step : scenario_.steps) {
                if (injector_) {
                    injector_->beginStep();
                    if (handlePowerGlitches(result))
                        break;
                }
                executeStep(step, result);
                ++result.stepsExecuted;
                checkInvariants(step, result);
            }
        } catch (const std::exception &e) {
            result.ok = false;
            if (result.error.empty())
                result.error = e.what();
        }
        if (device_)
            snapshot(result);
        // Park the device for the next index this worker runs: the
        // next boot() forkFrom() rewrites all simulated state, so
        // recycling cannot leak state between devices.
        if (pool_ && device_ && options_.spawnMode == SpawnMode::Snapshot)
            pool_->device = std::move(device_);
        return result;
    }

  private:
    void
    boot()
    {
        const auto [config, sentryOptions] =
            deviceConfig(scenario_, options_, seed_);
        if (options_.spawnMode == SpawnMode::Snapshot) {
            if (!options_.templateSnapshot)
                throw std::runtime_error(
                    "snapshot spawn mode without a template snapshot "
                    "(see makeFleetTemplate)");
            // Reuse the worker's parked device when one is available
            // (forkFrom rewrites all simulated state, so the
            // construction-time config of the recycled stack is
            // irrelevant); construct one only on the first run.
            if (pool_ != nullptr && pool_->device)
                device_ = std::move(pool_->device);
            else
                device_ =
                    std::make_unique<core::Device>(config, sentryOptions);
            // Fork the warmed image instead of re-booting. forkFrom
            // re-registers the crypto providers on this fresh target.
            device_->forkFrom(*options_.templateSnapshot);
            // The fork inherited the template's RNG stream; re-seed so
            // each device keeps its own deterministic randomness.
            device_->soc().rng().reseed(seed_);
        } else {
            device_ = std::make_unique<core::Device>(config, sentryOptions);
            device_->sentry().registerCryptoProviders();
        }
        enableRowPartition();
        checker_ = std::make_unique<core::InvariantChecker>(
            device_->kernel(), device_->sentry());
        if (options_.faultSchedule != nullptr &&
            !options_.faultSchedule->empty()) {
            injector_ = std::make_unique<fault::FaultInjector>(
                *options_.faultSchedule, seed_ ^ 0xfa017a5e5ca1ab1eULL);
            injector_->arm(device_->soc());
        }
        // Attach after the injector so fault effects land before the
        // counters record each transaction (subscription order is
        // callback order).
        counters_.attach(device_->soc().trace());
        if (index_ == 0 && !options_.traceOutPath.empty()) {
            chromeSink_ = std::make_unique<probe::ChromeTraceSink>();
            chromeSink_->attach(device_->soc().trace());
            // A run that dies on an invariant panic (or simply never
            // reaches the explicit writeJson) still dumps its timeline.
            chromeSink_->setAutoDump(options_.traceOutPath);
        }
    }

    /**
     * Install the CATT-style row partition on devices whose scenario
     * hammers DRAM. Gated on the rowhammer verb so scenarios without
     * one keep today's frame-allocation order bit for bit (the
     * partition is only observable through disturbance anyway). Runs
     * on both boot paths, after forkFrom() rewrote the allocator, so
     * cold-booted and snapshot-forked devices agree.
     */
    void
    enableRowPartition()
    {
        const bool hammers = std::any_of(
            scenario_.steps.begin(), scenario_.steps.end(),
            [](const Step &step) {
                return step.op == Op::Attack &&
                       step.attack == AttackKind::Rowhammer;
            });
        if (!hammers)
            return;
        // The CATT partition is part of Sentry's bundle, not the
        // hardware: a backend that doesn't claim Rowhammer doesn't
        // deploy it (that's precisely the exposure the differential
        // harness measures).
        if (!defense().defeats(core::Threat::Rowhammer))
            return;
        hw::Dram &dram = device_->soc().dram();
        const hw::DramGeometry &geom = dram.geometry();
        const std::size_t rowsPerBank = geom.rowsPerBank(dram.size());
        if (rowsPerBank < 8)
            return; // too small to carve an attacker region out of
        os::RowPartition plan;
        plan.rowBytes = geom.rowBytes;
        plan.banks = geom.banks;
        plan.victimRowLimit = rowsPerBank * 3 / 4;
        plan.guardRows = 1;
        plan.geomBase = DRAM_BASE;
        device_->kernel().allocator().partitionRows(plan);
    }

    /**
     * Apply any power_glitch faults due at the step that just began.
     * @return true when a glitch fired — the run stops there (the whole
     * software stack below us was just power-cycled).
     */
    bool
    handlePowerGlitches(DeviceResult &result)
    {
        const std::vector<fault::FaultSpec> due =
            injector_->dueStepFaults();
        if (due.empty())
            return false;
        const bool wasLocked = deviceLocked();
        hw::Soc &soc = device_->soc();
        for (const fault::FaultSpec &spec : due)
            soc.powerCycle(spec.seconds);
        coldBooted_ = true;
        result.powerGlitched = true;

        const core::CheckOutcome iramCheck =
            checker_->checkIramZeroed(soc);
        if (!iramCheck.ok) {
            result.ok = false;
            if (result.error.empty())
                result.error = "power glitch: " + iramCheck.detail;
        }
        // Remanent DRAM is only required to be secret-free while the
        // device was locked; an awake device legitimately holds
        // decrypted pages (the paper's threat model).
        if (wasLocked) {
            const core::DumpLeaks leaks =
                checker_->checkDumps(soc.dramRaw(), soc.iramRaw());
            result.sensitiveSecretsProbed += leaks.sensitiveProbed;
            result.sensitiveSecretsLeaked += leaks.sensitiveLeaked;
            result.nonSensitiveLeaks += leaks.nonSensitiveLeaks;
            if (leaks.sensitiveLeaked != 0) {
                result.ok = false;
                if (result.error.empty())
                    result.error =
                        "power glitch left the secret of sensitive "
                        "process '" +
                        leaks.firstLeakedOwner + "' in remanent memory";
            }
        }
        return true;
    }

    /** Per-device heterogeneity: scale by [1-j, 1+j] (see `jitter`). */
    double
    jitterFactor()
    {
        if (scenario_.jitter <= 0.0)
            return 1.0;
        return 1.0 - scenario_.jitter +
               2.0 * scenario_.jitter * workloadRng_.uniform();
    }

    std::size_t
    jitterBytes(std::size_t bytes, std::size_t quantum)
    {
        const auto scaled = static_cast<std::size_t>(
            static_cast<double>(bytes) * jitterFactor());
        return std::max(quantum, alignUp(scaled, quantum));
    }

    double
    jitterSeconds(double seconds)
    {
        return seconds * jitterFactor();
    }

    [[noreturn]] void
    stepError(const Step &step, const std::string &what) const
    {
        throw std::runtime_error("line " + std::to_string(step.line) +
                                 ": " + what);
    }

    bool
    deviceLocked() const
    {
        const os::PowerState state = device_->kernel().powerState();
        return state != os::PowerState::Awake;
    }

    core::DefenseBackend &
    defense()
    {
        return device_->sentry().defense();
    }

    /**
     * Score one observed breach against the backend's claimed threat
     * matrix. A breach of a claimed-defeated threat fails the device —
     * the caller applies its legacy error path, so the default Sentry
     * backend (which claims everything) behaves byte-identically. A
     * breach of a claimed-vulnerable threat is tallied and the run
     * continues: that asymmetry is what the differential harness
     * measures.
     * @return true when the caller should apply its failure path.
     */
    bool
    scoreBreach(DeviceResult &result, AttackKind kind)
    {
        const std::optional<core::Threat> threat = attackThreat(kind);
        if (threat.has_value() && !defense().defeats(*threat)) {
            ++result.defenseVulnerableHits;
            return false;
        }
        ++result.defenseClaimBreaches;
        return true;
    }

    void
    executeStep(const Step &step, DeviceResult &result)
    {
        if (coldBooted_ && step.op != Op::Attack && step.op != Op::Sleep)
            stepError(step, "device was cold-booted; only attack/sleep "
                            "steps may follow");

        os::Kernel &kernel = device_->kernel();
        switch (step.op) {
          case Op::Spawn:
            doSpawn(step);
            break;
          case Op::Lock:
            kernel.lockScreen();
            result.lock.add(
                device_->sentry().stats().lastLockSeconds,
                samplePriority(seed_, SALT_LOCK, result.lock.count()));
            break;
          case Op::Unlock:
            if (kernel.unlockScreen(step.pin)) {
                result.unlock.add(
                    device_->sentry().stats().lastUnlockSeconds,
                    samplePriority(seed_, SALT_UNLOCK,
                                   result.unlock.count()));
            } else {
                ++result.failedUnlocks;
            }
            break;
          case Op::Sleep:
            device_->soc().clock().advanceSeconds(
                jitterSeconds(step.seconds));
            break;
          case Op::Suspend:
            kernel.suspendToRam(jitterSeconds(step.seconds));
            break;
          case Op::Wake:
            kernel.wakeUp(os::WakeReason::UserInteraction);
            break;
          case Op::Touch:
            doTouch(step);
            break;
          case Op::Filebench:
            doFilebench(step, result);
            break;
          case Op::Attack:
            doAttack(step, result);
            break;
          case Op::ZeroFreed:
            kernel.zeroFreedPages();
            break;
        }
    }

    void
    doSpawn(const Step &step)
    {
        os::Kernel &kernel = device_->kernel();
        os::Process &process = kernel.createProcess(step.name);
        const os::Vma &heap =
            kernel.addVma(process, "heap", os::VmaType::Heap,
                          jitterBytes(step.bytes, PAGE_SIZE));

        ProcInfo info;
        info.process = &process;
        info.heapBase = heap.base;
        info.heapBytes = heap.size;
        info.sensitive = step.sensitive;
        info.background = step.background;
        info.secret.resize(16);
        for (auto &byte : info.secret)
            byte = static_cast<std::uint8_t>(workloadRng_.next64());
        // Plant the secret at the top of every heap page: the audits
        // and attack greps look for exactly these bytes.
        for (std::size_t off = 0; off < heap.size; off += PAGE_SIZE)
            kernel.writeVirt(process, heap.base + off, info.secret.data(),
                             info.secret.size());

        // A DMA-region VMA makes unlock pay the paper's eager-decrypt
        // cost (physically-addressed buffers cannot fault).
        if (step.dmaBytes != 0) {
            const os::Vma &dma = kernel.addVma(
                process, "dma", os::VmaType::DmaRegion,
                jitterBytes(step.dmaBytes, PAGE_SIZE));
            for (std::size_t off = 0; off < dma.size; off += PAGE_SIZE)
                kernel.writeVirt(process, dma.base + off,
                                 info.secret.data(), info.secret.size());
        }

        if (step.sensitive)
            device_->sentry().markSensitive(process);
        if (step.background)
            device_->sentry().markBackground(process);
        checker_->addMarker({step.name, info.secret, step.sensitive});
        procs_.emplace(step.name, info);
    }

    void
    doTouch(const Step &step)
    {
        const ProcInfo &info = procs_.at(step.name);
        if (deviceLocked() && info.sensitive && !info.background)
            stepError(step, "touch of parked sensitive process '" +
                                step.name +
                                "' while locked would decrypt pages "
                                "into DRAM (mark it background)");
        const std::size_t len = std::min(
            jitterBytes(step.bytes, PAGE_SIZE), info.heapBytes);
        device_->kernel().touchRange(*info.process, info.heapBase, len);
    }

    void
    doFilebench(const Step &step, DeviceResult &result)
    {
        hw::Soc &soc = device_->soc();
        const std::size_t ioBytes = jitterBytes(step.bytes, 4 * KiB);
        const std::size_t partition =
            std::max<std::size_t>(4 * MiB, 2 * ioBytes);

        std::vector<std::uint8_t> key(16);
        for (auto &byte : key)
            byte = static_cast<std::uint8_t>(workloadRng_.next64());

        os::RamBlockDevice disk(soc.clock(), partition);
        os::DmCrypt dm(disk,
                       device_->kernel().cryptoApi().allocCipher("aes",
                                                                 key),
                       FILEBENCH_WORKERS);
        os::BufferCache cache(soc.clock(), dm, partition / 2);
        os::Filebench bench(soc.clock(), cache, partition / 2);
        Rng ioRng(workloadRng_.next64());
        const os::FilebenchResult fb =
            bench.run(step.workload, ioBytes, step.directIo, ioRng);
        result.filebench.add(fb.mbPerSec(),
                             samplePriority(seed_, SALT_FILEBENCH,
                                            result.filebench.count()));
    }

    void
    doAttack(const Step &step, DeviceResult &result)
    {
        if (!deviceLocked())
            stepError(step, "attack against an awake device is outside "
                            "the paper's threat model (lock first)");
        hw::Soc &soc = device_->soc();
        ++result.attacksRun;

        // Backend-independent schedule fingerprint: hashed from the
        // device seed and the attack ordinal alone, never from backend
        // state, so every backend replays a byte-identical schedule
        // (the differential tests compare these across backends).
        if (!result.scheduleDigest.empty())
            result.scheduleDigest += " || ";
        result.scheduleDigest +=
            std::string(attackKindName(step.attack)) + "@" +
            std::to_string(step.line) + ":" +
            hex64(samplePriority(seed_, SALT_SCHEDULE,
                                 result.attacksRun - 1));

        if (step.attack == AttackKind::PrimeProbe ||
            step.attack == AttackKind::EvictReload) {
            doCacheAttack(step, result);
            return;
        }
        if (step.attack == AttackKind::Rowhammer) {
            doRowhammer(step, result);
            return;
        }
        if (step.attack == AttackKind::TzSideChannel) {
            doTzSideChannel(step, result);
            return;
        }

        std::vector<std::uint8_t> dramDump, iramDump;
        bool haveDumps = false;
        if (step.attack == AttackKind::Dma) {
            attacks::DmaAttack dma;
            dramDump = dma.dumpRange(soc, DRAM_BASE, soc.dramRaw().size());
            iramDump = dma.dumpRange(soc, IRAM_BASE, soc.iramRaw().size());
            haveDumps = true;
        } else if (step.attack == AttackKind::BusMonitor) {
            // A DDR probe watches while the system generates traffic:
            // a cache clean (which honours the flush mask) plus a full
            // DMA dump — everything that crosses the bus is captured.
            attacks::BusMonitorAttack probe(soc);
            probe.startCapture();
            soc.l2().cleanAllMasked();
            attacks::DmaAttack dma;
            dramDump = dma.dumpRange(soc, DRAM_BASE, soc.dramRaw().size());
            iramDump = dma.dumpRange(soc, IRAM_BASE, soc.iramRaw().size());
            haveDumps = true;
            for (const core::SecretMarker &marker : checker_->markers()) {
                if (!marker.sensitive)
                    continue;
                const attacks::AttackResult captured =
                    probe.analyzeForSecret(marker.bytes, marker.owner);
                if (captured.secretRecovered &&
                    scoreBreach(result, step.attack)) {
                    result.ok = false;
                    if (result.error.empty())
                        result.error =
                            "line " + std::to_string(step.line) +
                            ": bus probe captured the secret of "
                            "sensitive process '" +
                            marker.owner + "'";
                }
            }
            // A backend whose cipher state sits in DRAM gives the probe
            // a second channel: the table-access pattern of the cipher
            // itself (Tromer/Osvik/Shamir). Sentry and MemShield keep
            // all cipher state on the SoC, so this phase never runs for
            // them and their bus traffic stays untouched.
            crypto::SimAesEngine *dramEngine = defense().dramStateEngine();
            if (dramEngine != nullptr) {
                Rng sideRng(samplePriority(seed_, SALT_BUSKEY,
                                           result.attacksRun - 1));
                const attacks::SideChannelResult side =
                    probe.recoverAesKeyBits(*dramEngine,
                                            /*num_blocks=*/48, sideRng);
                if (side.recoveredBytes() != 0 &&
                    scoreBreach(result, step.attack)) {
                    result.ok = false;
                    if (result.error.empty())
                        result.error =
                            "line " + std::to_string(step.line) +
                            ": bus probe recovered AES key bits from "
                            "the DRAM-resident cipher state";
                }
            }
        } else if (step.attack == AttackKind::CodeInjection) {
            attacks::CodeInjectionAttack inject;
            const std::vector<std::uint8_t> payload(64, 0xCC);
            const attacks::AttackResult dmaWrite = inject.injectViaDma(
                soc, IRAM_BASE + IRAM_FIRMWARE_RESERVED, payload,
                "on-SoC crypto state");
            // With a secure world, TrustZone must deny peripheral
            // writes into iRAM; without one (locked-firmware Nexus 4)
            // the landed write is the platform's documented weakness,
            // not a Sentry regression.
            if (dmaWrite.secretRecovered &&
                soc.config().secureWorldAvailable) {
                result.ok = false;
                if (result.error.empty())
                    result.error =
                        "line " + std::to_string(step.line) +
                        ": DMA code injection into iRAM landed despite "
                        "TrustZone protection";
            }
            const std::vector<std::uint8_t> evilImage(256, 0x90);
            const attacks::AttackResult fw =
                inject.replaceFirmware(soc, evilImage);
            if (fw.secretRecovered) {
                result.ok = false;
                if (result.error.empty())
                    result.error =
                        "line " + std::to_string(step.line) +
                        ": unsigned firmware image was accepted";
            }
        } else {
            attacks::ColdBootVariant variant =
                attacks::ColdBootVariant::DeviceReflash;
            if (step.attack == AttackKind::OsReboot)
                variant = attacks::ColdBootVariant::OsReboot;
            else if (step.attack == AttackKind::TwoSecondReset)
                variant = attacks::ColdBootVariant::TwoSecondReset;
            const attacks::ColdBootAttack attack(
                variant, step.frozen ? -18.0 : 22.0);
            attack.performReset(soc);
            coldBooted_ = true;
            const auto dram = soc.dramRaw();
            const auto iram = soc.iramRaw();
            dramDump.assign(dram.begin(), dram.end());
            iramDump.assign(iram.begin(), iram.end());
            haveDumps = true;
        }

        if (!haveDumps)
            return;
        const core::DumpLeaks leaks =
            checker_->checkDumps(dramDump, iramDump);
        result.sensitiveSecretsProbed += leaks.sensitiveProbed;
        result.sensitiveSecretsLeaked += leaks.sensitiveLeaked;
        result.nonSensitiveLeaks += leaks.nonSensitiveLeaks;
        if (leaks.sensitiveLeaked != 0 &&
            scoreBreach(result, step.attack)) {
            result.ok = false;
            if (result.error.empty())
                result.error = "line " + std::to_string(step.line) +
                               ": attack " + attackKindName(step.attack) +
                               " recovered the secret of sensitive "
                               "process '" +
                               leaks.firstLeakedOwner + "'";
        }
    }

    /** Record a v2 outcome into the replay digest (" || "-joined). */
    static void
    appendAttackDigest(DeviceResult &result,
                       const attacks::v2::AttackOutcome &outcome)
    {
        if (!result.attackDigest.empty())
            result.attackDigest += " || ";
        result.attackDigest += outcome.digest();
    }

    /** Per-attack seed: a pure hash, so the stream a given attack
     * ordinal draws never depends on host or thread state. */
    std::uint64_t
    v2AttackSeed(const DeviceResult &result) const
    {
        return samplePriority(seed_, SALT_V2ATTACK, result.v2AttacksRun);
    }

    void
    doCacheAttack(const Step &step, DeviceResult &result)
    {
        hw::Soc &soc = device_->soc();
        ++result.v2AttacksRun;
        const std::uint64_t atkSeed = v2AttackSeed(result);

        // The monitored line: Sentry's locked-way key/pager window when
        // lockdown is active (tegra3), else the iRAM key residence
        // (nexus4) — i.e. wherever this device keeps what the paper
        // protects. Both are expected to carry no timing signal.
        core::LockedWayManager &ways = device_->sentry().wayManager();
        const std::uint32_t lockedMask = ways.lockedMask();
        // A backend with DRAM-resident cipher state hands the attacker
        // a better line to monitor: its own table region, cacheable and
        // touched on every encryption. Sentry and MemShield keep that
        // state on the SoC, so their victim stays the locked-way/iRAM
        // window (expected to carry no signal).
        crypto::SimAesEngine *dramEngine = defense().dramStateEngine();
        const PhysAddr victim =
            dramEngine != nullptr
                ? dramEngine->stateBase()
                : (lockedMask != 0
                       ? ways.wayWindowBase(static_cast<unsigned>(
                             std::countr_zero(lockedMask)))
                       : IRAM_BASE + IRAM_FIRMWARE_RESERVED + 4 * KiB);

        attacks::v2::CacheAttackConfig config;
        config.victimAddr = victim;
        const std::size_t span =
            (soc.l2().ways() + 1) * soc.l2().waySizeBytes();
        // Top of DRAM: far from the kernel's low-address allocations,
        // and the attacker only ever reads it.
        config.attackerBase = soc.dramEnd() - span;
        config.attackerSpan = span;
        const attacks::v2::VictimFn victimFn = [victim](hw::Soc &s) {
            std::uint8_t buf[4];
            s.memory().read(victim, buf, sizeof buf);
        };

        attacks::v2::AttackOutcome outcome;
        if (step.attack == AttackKind::PrimeProbe) {
            attacks::v2::PrimeProbeAttack attack(config, victimFn,
                                                 atkSeed);
            outcome = attack.run(soc);
        } else {
            attacks::v2::EvictReloadAttack attack(config, victimFn,
                                                  atkSeed);
            outcome = attack.run(soc);
        }
        result.v2LockedWaybacks += outcome.counter("locked_writebacks");
        appendAttackDigest(result, outcome);
        if ((outcome.secretRecovered ||
             outcome.counter("locked_writebacks") != 0) &&
            scoreBreach(result, step.attack)) {
            result.ok = false;
            if (result.error.empty())
                result.error =
                    "line " + std::to_string(step.line) + ": attack " +
                    attackKindName(step.attack) +
                    " recovered the secret storage location of the "
                    "sentry keys via cache timing";
        }
    }

    void
    doRowhammer(const Step &step, DeviceResult &result)
    {
        hw::Soc &soc = device_->soc();
        ++result.v2AttacksRun;
        const std::uint64_t atkSeed = v2AttackSeed(result);
        os::PhysAllocator &alloc = device_->kernel().allocator();

        const bool claimed =
            defense().defeats(core::Threat::Rowhammer);
        attacks::v2::RowhammerConfig config;
        std::vector<PhysAddr> aggressorFrames;
        if (alloc.rowPartition().enabled()) {
            for (unsigned i = 0; i < 4; ++i) {
                const PhysAddr frame =
                    alloc.tryAllocFrame(os::MemDomain::Attacker);
                if (frame == 0)
                    break;
                aggressorFrames.push_back(frame);
            }
        } else if (!claimed) {
            // No CATT partition deployed: the attacker's pages come out
            // of the common pool, row-adjacent to everyone else's.
            for (unsigned i = 0; i < 4; ++i) {
                const PhysAddr frame =
                    alloc.tryAllocFrame(os::MemDomain::Default);
                if (frame == 0)
                    break;
                aggressorFrames.push_back(frame);
            }
        }
        config.aggressors = aggressorFrames;

        attacks::v2::RowhammerAttack attack(std::move(config), atkSeed);
        attacks::v2::AttackOutcome outcome = attack.run(soc);
        if (aggressorFrames.empty())
            outcome.notes.push_back(
                "row partition disabled or attacker region exhausted");

        // Which frames hold sensitive-process pages right now?
        std::set<PhysAddr> victimFrames;
        for (const auto &[name, info] : procs_) {
            if (!info.sensitive)
                continue;
            info.process->pageTable().forEach(
                [&](VirtAddr, os::Pte &pte) {
                    if (pte.frame != 0)
                        victimFrames.insert(pte.frame);
                });
        }
        std::uint64_t victimFlips = 0;
        for (const hw::FlippedBit &flip : attack.flips()) {
            const PhysAddr page =
                alignDown(DRAM_BASE + flip.offset, PAGE_SIZE);
            if (victimFrames.contains(page))
                ++victimFlips;
        }
        outcome.count("victim_row_flips", victimFlips);
        // The attack itself reports any flip as integrity loss; at the
        // device level the defense goal is narrower — "recovered" in
        // the replay digest means a flip reached sensitive memory.
        outcome.secretRecovered = victimFlips != 0;
        result.v2RowhammerFlips += outcome.counter("bit_flips");
        result.v2VictimRowFlips += victimFlips;
        appendAttackDigest(result, outcome);
        // A defending backend (CATT partition) is breached only when a
        // flip reaches sensitive memory; a non-defending one counts any
        // disturbance flip at all — without the partition the attacker
        // can steer aggressors next to whatever it likes eventually.
        const bool breached = claimed
                                  ? victimFlips != 0
                                  : outcome.counter("bit_flips") != 0;
        if (breached && scoreBreach(result, step.attack)) {
            result.ok = false;
            if (result.error.empty())
                result.error =
                    "line " + std::to_string(step.line) +
                    ": rowhammer disturbance flipped " +
                    std::to_string(victimFlips) +
                    " bit(s) in sensitive process memory despite the "
                    "row partition";
        }
        for (const PhysAddr frame : aggressorFrames)
            alloc.freeFrame(frame);
    }

    void
    doTzSideChannel(const Step &step, DeviceResult &result)
    {
        hw::Soc &soc = device_->soc();
        ++result.v2AttacksRun;
        const std::uint64_t atkSeed = v2AttackSeed(result);
        os::PhysAllocator &alloc = device_->kernel().allocator();

        // One frame of cacheable DRAM as the world-shared mailbox. A
        // backend that claims this threat deploys the hardened
        // (constant-touch) service; the others ship the naive variant
        // the attack was published against.
        const bool hardened =
            defense().defeats(core::Threat::TzSideChannel);
        const PhysAddr mailbox =
            alloc.tryAllocFrame(os::MemDomain::Default);
        if (mailbox == 0) {
            result.attackDigest += result.attackDigest.empty()
                                       ? "attack=tz_side_channel;oom=1"
                                       : " || attack=tz_side_channel;"
                                         "oom=1";
            return;
        }
        attacks::v2::TzSecretService service(soc, mailbox, hardened);
        attacks::v2::TzSideChannelConfig config;
        const std::size_t span =
            (soc.l2().ways() + 1) * soc.l2().waySizeBytes();
        config.attackerBase = soc.dramEnd() - span;
        config.attackerSpan = span;
        attacks::v2::TzSideChannelAttack attack(config, service, atkSeed);
        const attacks::v2::AttackOutcome outcome = attack.run(soc);
        result.v2RecoveredNibbles += outcome.counter("recovered_nibbles");
        appendAttackDigest(result, outcome);
        if (outcome.secretRecovered && scoreBreach(result, step.attack)) {
            result.ok = false;
            if (result.error.empty())
                result.error =
                    "line " + std::to_string(step.line) +
                    ": tz_side_channel recovered the secret of the "
                    "secure-world fuse through the shared mailbox";
        }
        alloc.freeFrame(mailbox);
    }

    void
    checkInvariants(const Step &step, DeviceResult &result)
    {
        // After a cold boot the stack below the kernel was reset: key
        // residency and page states are no longer meaningful. The
        // attack step itself asserted the leak invariant.
        if (coldBooted_)
            return;
        if (!options_.auditEveryStep && step.op != Op::Attack &&
            step.op != Op::Lock && step.op != Op::Unlock &&
            step.op != Op::Suspend)
            return;

        const core::CheckOutcome outcome = checker_->checkLive();
        ++result.auditsRun;
        if (!outcome.ok) {
            ++result.auditFailures;
            result.ok = false;
            if (result.error.empty())
                result.error = "line " + std::to_string(step.line) +
                               ": audit failed after step: " +
                               outcome.detail;
        }
    }

    void
    snapshot(DeviceResult &result)
    {
        const core::SentryStats &stats = device_->sentry().stats();
        result.faultsServiced = stats.faultsServiced;
        result.bytesEncryptedOnLock = stats.bytesEncryptedOnLock;
        result.bytesDecryptedOnDemand = stats.bytesDecryptedOnDemand;
        result.bytesDecryptedEager = stats.bytesDecryptedEager;
        hw::Soc &soc = device_->soc();
        result.simCycles = soc.clock().now();
        const hw::L2Stats &l2 = soc.l2().stats();
        result.l2Hits = l2.hits;
        result.l2Misses = l2.misses;
        const hw::BusStats &bus = soc.bus().stats();
        result.busReads = bus.reads;
        result.busWrites = bus.writes;
        if (injector_) {
            result.faultFirings = injector_->stats().firings;
            result.faultBitFlips = injector_->stats().bitFlips;
            result.faultDigest = injector_->replayDigest();
        }
        const core::DefenseBackend &backend = device_->sentry().defense();
        result.defenseKind = static_cast<unsigned>(backend.kind());
        const core::DefenseCosts &costs = backend.costs();
        result.defenseRekeys = costs.rekeys;
        result.defenseEvictions = costs.evictions;
        result.defenseExtraSeconds = costs.extraSeconds;
        result.defenseExtraJoules = costs.extraJoules;
        result.trace = counters_.counters();
        if (chromeSink_ && !chromeSink_->writeJson(options_.traceOutPath))
            warn("could not write trace to %s",
                 options_.traceOutPath.c_str());
    }

    const Scenario &scenario_;
    const FleetOptions &options_;
    unsigned index_;
    std::uint64_t seed_;
    Rng workloadRng_;

    std::unique_ptr<core::Device> device_;
    std::unique_ptr<core::InvariantChecker> checker_;
    // Declared after device_ so they are destroyed (and unsubscribe
    // from its trace engine) before the Soc they observe.
    std::unique_ptr<fault::FaultInjector> injector_;
    probe::CounterSink counters_;
    std::unique_ptr<probe::ChromeTraceSink> chromeSink_;
    std::map<std::string, ProcInfo> procs_;
    bool coldBooted_ = false;
    DevicePool *pool_ = nullptr;
};

} // namespace

std::uint64_t
fleetDeviceSeed(std::uint64_t fleet_seed, unsigned index)
{
    std::uint64_t state =
        fleet_seed + 0xa5a5a5a5'00000000ULL + index;
    std::uint64_t mixed = splitmix64(state);
    // Never hand out 0: some seed consumers treat it as "default".
    return mixed != 0 ? mixed : 0x5e47ee1dULL;
}

std::uint64_t
samplePriority(std::uint64_t device_seed, std::uint64_t salt,
               std::uint64_t ordinal)
{
    std::uint64_t state =
        (device_seed ^ salt) + ordinal * 0x9e3779b97f4a7c15ULL;
    return splitmix64(state);
}

DevicePool::DevicePool() = default;
DevicePool::~DevicePool() = default;
DevicePool::DevicePool(DevicePool &&) noexcept = default;
DevicePool &DevicePool::operator=(DevicePool &&) noexcept = default;

std::shared_ptr<const core::DeviceSnapshot>
makeFleetTemplate(const Scenario &scenario, const FleetOptions &options)
{
    const auto [config, sentryOptions] =
        deviceConfig(scenario, options, options.seed);
    core::Device device(config, sentryOptions);
    device.sentry().registerCryptoProviders();
    return device.snapshot();
}

DeviceResult
runDevice(const Scenario &scenario, const FleetOptions &options,
          unsigned index, DevicePool *pool)
{
    return Runner(scenario, options, index, pool).run();
}

} // namespace sentry::fleet
