/**
 * @file
 * The locked-cache pager: Sentry's background-execution mode (paper
 * sections 2, 5; Figure 1).
 *
 * While the device is screen-locked, a background app's pages stay
 * encrypted in DRAM. The pager services young-bit faults:
 *
 *   page-in:  copy the encrypted page from its DRAM home into a free
 *             locked-cache frame, decrypt it in place with AES On SoC,
 *             repoint the PTE at the on-SoC copy and set young;
 *   eviction: when the locked frames are full, the same sequence runs
 *             in reverse on the LRU resident page — encrypt in place,
 *             copy back to the DRAM home, repoint the PTE, clear young.
 *
 * Cleartext therefore exists only inside locked cache ways; DRAM holds
 * ciphertext at all times.
 */

#ifndef SENTRY_CORE_LOCKED_CACHE_PAGER_HH
#define SENTRY_CORE_LOCKED_CACHE_PAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "core/onsoc_allocator.hh"
#include "crypto/aes_on_soc.hh"
#include "os/kernel.hh"

namespace sentry::core
{

/** Pager statistics. */
struct PagerStats
{
    std::uint64_t pageIns = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytesDecrypted = 0;
    std::uint64_t bytesEncrypted = 0;
};

/** Pages sensitive background processes through locked-cache frames. */
class LockedCachePager
{
  public:
    /**
     * @param kernel  the OS
     * @param engine  AES On SoC engine used for page crypto
     * @param iv_fn   per-page IV (must match Sentry's lock-time IVs)
     */
    LockedCachePager(
        os::Kernel &kernel, crypto::SimAesEngine &engine,
        std::function<crypto::Iv(const os::Process &, VirtAddr)> iv_fn);

    /** Contribute a locked-way region as pager frames. */
    void addFrames(const OnSocRegion &region);

    /** @return number of 4 KiB on-SoC frames (free + resident). */
    std::size_t totalFrames() const;

    /**
     * Service a fault on an encrypted page of a background process.
     * On return the PTE points at a decrypted on-SoC frame.
     */
    void pageIn(os::Process &process, VirtAddr va, os::Pte &pte);

    /**
     * Page every resident page back out (encrypt + copy to DRAM home).
     * Used when background mode ends with the device still locked.
     */
    void evictAll();

    /**
     * Unlock-time drain: copy resident plaintext back to the DRAM homes
     * (the device is unlocked, DRAM plaintext is allowed again).
     */
    void drainOnUnlock();

    /** @return counters. */
    const PagerStats &stats() const { return stats_; }

    /** Pager state for snapshot/fork; residents are recorded by pid so
     * they can be re-threaded onto a forked kernel's processes. */
    struct ForkState
    {
        struct ResidentImage
        {
            int pid = 0;
            VirtAddr va = 0;
            PhysAddr frame = 0;
        };
        std::vector<PhysAddr> freeFrames;
        std::vector<ResidentImage> residents;
        PagerStats stats;
    };

    ForkState forkState() const;

    /** Restore, resolving pids against the (already forked) kernel;
     * fatal when a resident names an unknown pid. */
    void restoreForkState(const ForkState &fs);

  private:
    struct Resident
    {
        os::Process *process;
        VirtAddr va;
        PhysAddr frame;
    };

    void evictOne();

    os::Kernel &kernel_;
    crypto::SimAesEngine &engine_;
    std::function<crypto::Iv(const os::Process &, VirtAddr)> ivFn_;

    std::vector<PhysAddr> freeFrames_;
    std::deque<Resident> residents_; // front = oldest (FIFO eviction)
    PagerStats stats_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_LOCKED_CACHE_PAGER_HH
