#include "core/pinned_memory.hh"

#include "common/logging.hh"

namespace sentry::core
{

const char *
pinBackingName(PinBacking backing)
{
    switch (backing) {
      case PinBacking::Iram:
        return "iram";
      case PinBacking::LockedL2:
        return "locked-l2";
      default:
        return "?";
    }
}

std::unique_ptr<PinnedMemory>
PinnedMemory::create(hw::Soc &soc, std::size_t pool_bytes,
                     PinBacking prefer)
{
    if (prefer == PinBacking::LockedL2) {
        // A dedicated window below Sentry's (which uses the top of
        // DRAM). Note the PL310 lockdown register is shared hardware:
        // use LockedL2 pools only when no other component manages
        // lockdown on this device.
        const std::size_t waySize = soc.l2().waySizeBytes();
        const PhysAddr top = DRAM_BASE + soc.dramRaw().size();
        const PhysAddr window =
            alignDown(top - 2 * soc.l2().size(), waySize);
        auto ways = std::make_unique<LockedWayManager>(soc, window);
        if (!ways->available())
            return nullptr;

        OnSocRegion pool{};
        std::unique_ptr<OnSocAllocator> alloc;
        std::size_t locked = 0;
        while (locked < pool_bytes) {
            const auto region = ways->lockWay();
            if (!region)
                fatal("not enough lockable ways for a %zu-byte pool",
                      pool_bytes);
            if (!alloc) {
                pool = *region;
                alloc = std::make_unique<OnSocAllocator>(region->base,
                                                         region->size);
            } else {
                panic("multi-way pinned pools are not implemented; "
                      "ask for <= %zu bytes", ways->waySize());
            }
            locked += region->size;
        }

        auto pinned = std::unique_ptr<PinnedMemory>(
            new PinnedMemory(soc, PinBacking::LockedL2, pool,
                             /*dma_protected=*/true, std::move(ways)));
        pinned->alloc_ = std::move(alloc);
        return pinned;
    }

    // iRAM backing: carve from the TOP of iRAM (Sentry's own
    // allocations grow upward from the firmware-reserved boundary).
    if (pool_bytes > soc.iram().size() - IRAM_FIRMWARE_RESERVED)
        fatal("pinned pool larger than usable iRAM");
    const PhysAddr base = IRAM_BASE + soc.iram().size() - pool_bytes;

    bool protectedFromDma = false;
    {
        hw::SecureWorldGuard secure(soc.trustzone());
        if (secure.entered()) {
            protectedFromDma =
                soc.trustzone().protectRegionFromDma(base, pool_bytes);
        }
    }
    if (!protectedFromDma) {
        warn("pinned iRAM pool is NOT DMA-protected (no TrustZone "
             "access on this device)");
    }

    auto pinned = std::unique_ptr<PinnedMemory>(
        new PinnedMemory(soc, PinBacking::Iram, {base, pool_bytes},
                         protectedFromDma, nullptr));
    pinned->alloc_ = std::make_unique<OnSocAllocator>(base, pool_bytes);
    return pinned;
}

PinnedMemory::PinnedMemory(hw::Soc &soc, PinBacking backing,
                           OnSocRegion pool, bool dma_protected,
                           std::unique_ptr<LockedWayManager> way_manager)
    : soc_(soc), backing_(backing), pool_(pool),
      dmaProtected_(dma_protected), wayManager_(std::move(way_manager))
{}

PinnedMemory::~PinnedMemory()
{
    // Scrub the whole pool on teardown.
    soc_.memory().fill(pool_.base, 0, pool_.size);
    if (backing_ == PinBacking::Iram && dmaProtected_) {
        hw::SecureWorldGuard secure(soc_.trustzone());
        if (secure.entered()) {
            soc_.trustzone().unprotectRegionFromDma(pool_.base,
                                                    pool_.size);
        }
    }
    if (wayManager_ != nullptr)
        wayManager_->unlockWay(pool_);
}

OnSocRegion
PinnedMemory::alloc(std::size_t bytes)
{
    return alloc_->tryAlloc(bytes);
}

void
PinnedMemory::free(const OnSocRegion &region)
{
    if (!region.valid())
        return;
    soc_.memory().fill(region.base, 0, region.size);
    alloc_->free(region);
}

void
PinnedMemory::write(const OnSocRegion &region, std::size_t offset,
                    std::span<const std::uint8_t> data)
{
    if (offset + data.size() > region.size)
        panic("pinned write out of region bounds");
    soc_.memory().write(region.base + offset, data.data(), data.size());
}

void
PinnedMemory::read(const OnSocRegion &region, std::size_t offset,
                   std::span<std::uint8_t> out)
{
    if (offset + out.size() > region.size)
        panic("pinned read out of region bounds");
    soc_.memory().read(region.base + offset, out.data(), out.size());
}

} // namespace sentry::core
