/**
 * @file
 * Allocator for on-SoC storage regions.
 *
 * Manages the usable portion of iRAM (the first 64 KB belong to the
 * platform firmware — overwriting them crashes the tablet, paper
 * section 4.5) and any locked-L2 page pools handed to it, and carves
 * them into regions for AES state, key storage, and pager frames.
 */

#ifndef SENTRY_CORE_ONSOC_ALLOCATOR_HH
#define SENTRY_CORE_ONSOC_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sentry::core
{

/** A carved-out region of on-SoC storage. */
struct OnSocRegion
{
    PhysAddr base = 0;
    std::size_t size = 0;

    bool valid() const { return size > 0; }
};

/** First-fit allocator over one contiguous on-SoC window. */
class OnSocAllocator
{
  public:
    /** Manage [base, base+size). */
    OnSocAllocator(PhysAddr base, std::size_t size);

    /**
     * Build the standard iRAM allocator: the device's iRAM window minus
     * the firmware-reserved prefix.
     */
    static OnSocAllocator forIram(std::size_t iram_size);

    /** Allocate @p size bytes (16-byte aligned); fatal on exhaustion. */
    OnSocRegion alloc(std::size_t size);

    /** Allocate, returning an invalid region instead of dying. */
    OnSocRegion tryAlloc(std::size_t size);

    /** Release a region previously returned by alloc(). */
    void free(const OnSocRegion &region);

    /** @return bytes currently free. */
    std::size_t freeBytes() const;

    /** @return total managed bytes. */
    std::size_t capacity() const { return size_; }

  private:
    struct Chunk
    {
        PhysAddr base;
        std::size_t size;
    };

    PhysAddr base_;
    std::size_t size_;
    std::vector<Chunk> freeList_; // sorted by base, coalesced
};

} // namespace sentry::core

#endif // SENTRY_CORE_ONSOC_ALLOCATOR_HH
