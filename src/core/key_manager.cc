#include "core/key_manager.hh"

#include "common/logging.hh"
#include "crypto/kdf.hh"

namespace sentry::core
{

KeyManager::KeyManager(hw::Soc &soc, OnSocRegion key_store)
    : soc_(soc), store_(key_store)
{
    if (store_.size < 32)
        fatal("key store region must hold two 16-byte keys");
    if (soc_.memory().isIram(store_.base) !=
        soc_.memory().isIram(store_.base + store_.size - 1))
        panic("key store region straddles memory types");
}

void
KeyManager::generateVolatileKey()
{
    RootKey key;
    for (std::size_t i = 0; i < key.size(); i += 8) {
        const std::uint64_t word = soc_.rng().next64();
        for (std::size_t j = 0; j < 8; ++j)
            key[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
    soc_.memory().write(store_.base, key.data(), key.size());
}

RootKey
KeyManager::volatileKey() const
{
    RootKey key;
    soc_.memory().read(store_.base, key.data(), key.size());
    return key;
}

bool
KeyManager::derivePersistentKey(const std::string &password)
{
    std::array<std::uint8_t, 32> fuse;
    {
        hw::SecureWorldGuard secure(soc_.trustzone());
        if (!secure.entered())
            return false;
        if (!soc_.trustzone().readFuse(fuse))
            return false;
    }

    const std::vector<std::uint8_t> derived =
        crypto::derivePersistentKey(password, fuse);
    soc_.memory().write(store_.base + 16, derived.data(), 16);
    hasPersistent_ = true;
    return true;
}

RootKey
KeyManager::persistentKey() const
{
    if (!hasPersistent_)
        panic("persistent key requested before derivation");
    RootKey key;
    soc_.memory().read(store_.base + 16, key.data(), key.size());
    return key;
}

void
KeyManager::scrub()
{
    soc_.memory().fill(store_.base, 0, store_.size);
    hasPersistent_ = false;
}

} // namespace sentry::core
