#include "core/defense_backend.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "core/pinned_memory.hh"
#include "crypto/kdf.hh"
#include "hw/soc.hh"
#include "os/kernel.hh"

namespace sentry::core
{

const char *
defenseKindName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::Sentry:
        return "sentry";
      case DefenseKind::Amnesia:
        return "amnesia";
      case DefenseKind::MemShield:
        return "memshield";
      default:
        return "?";
    }
}

std::optional<DefenseKind>
parseDefenseKind(std::string_view name)
{
    if (name == "sentry")
        return DefenseKind::Sentry;
    if (name == "amnesia")
        return DefenseKind::Amnesia;
    if (name == "memshield")
        return DefenseKind::MemShield;
    return std::nullopt;
}

const char *
threatName(Threat threat)
{
    switch (threat) {
      case Threat::ColdBoot:
        return "cold_boot";
      case Threat::BusMonitor:
        return "bus_monitor";
      case Threat::Dma:
        return "dma";
      case Threat::PrimeProbe:
        return "prime_probe";
      case Threat::EvictReload:
        return "evict_reload";
      case Threat::Rowhammer:
        return "rowhammer";
      case Threat::TzSideChannel:
        return "tz_side_channel";
      default:
        return "?";
    }
}

std::array<std::uint8_t, 16>
defenseWorkingKey(const RootKey &master, std::string_view label)
{
    const auto *salt =
        reinterpret_cast<const std::uint8_t *>(label.data());
    const std::vector<std::uint8_t> derived = crypto::pbkdf2Sha256(
        std::span<const std::uint8_t>(master.data(), master.size()),
        std::span<const std::uint8_t>(salt, label.size()),
        /*iterations=*/1000, /*dkLen=*/16);
    std::array<std::uint8_t, 16> key{};
    std::memcpy(key.data(), derived.data(), key.size());
    return key;
}

std::array<std::uint8_t, 16>
amnesiaWorkingKey(const RootKey &master)
{
    return defenseWorkingKey(master, "amnesia-working-key");
}

DefenseForkState
DefenseBackend::forkState() const
{
    DefenseForkState fs;
    fs.costs = costs_;
    return fs;
}

void
DefenseBackend::restoreForkState(const DefenseForkState &fs)
{
    costs_ = fs.costs;
}

namespace
{

/** Allocate DRAM frames to back an engine state region. */
PhysAddr
allocDramState(os::Kernel &kernel, std::size_t bytes)
{
    const std::size_t frames = alignUp(bytes, PAGE_SIZE) / PAGE_SIZE;
    return kernel.allocator().allocContiguous(frames);
}

/** The paper's design, wrapping Sentry's own AES-On-SoC engine. */
class SentryBackend final : public DefenseBackend
{
  public:
    explicit SentryBackend(crypto::SimAesEngine &engine) : engine_(engine)
    {}

    DefenseKind kind() const override { return DefenseKind::Sentry; }

    bool
    defeats(Threat) const override
    {
        // Sentry ships the full bundle: on-SoC key state (cold boot, bus
        // monitor, DMA), lockdown-by-way (cache attacks), the CATT row
        // partition (Rowhammer), and the hardened TZ service.
        return true;
    }

    void
    encryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        engine_.cbcEncryptPhys(frame, PAGE_SIZE, iv);
    }

    void
    decryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        engine_.cbcDecryptPhys(frame, PAGE_SIZE, iv);
    }

    crypto::SimAesEngine &pagerCipher() override { return engine_; }

  private:
    crypto::SimAesEngine &engine_;
};

/**
 * "Security Through Amnesia": the master key never leaves the SoC and
 * is rekeyed into a working key pinned in iRAM; the cipher runs
 * register-only, so DRAM holds lookup tables but never a key schedule.
 */
class AmnesiaBackend final : public DefenseBackend
{
  public:
    /** Simulated cost of one PBKDF2 rekey of the working key. */
    static constexpr double REKEY_SECONDS = 2e-3;
    static constexpr double REKEY_JOULES = 1.5e-3;

    AmnesiaBackend(os::Kernel &kernel, const RootKey &master)
        : kernel_(kernel), master_(master)
    {
        hw::Soc &soc = kernel_.soc();
        pinned_ = PinnedMemory::create(soc, /*pool_bytes=*/64);
        if (pinned_ == nullptr)
            fatal("amnesia backend needs pin-on-SoC storage");
        keySlot_ = pinned_->alloc(16);

        const std::array<std::uint8_t, 16> wk = amnesiaWorkingKey(master_);
        pinned_->write(keySlot_, 0, wk);

        const auto layout = crypto::AesStateLayout::forKeyBytes(16);
        engine_ = std::make_unique<crypto::SimAesEngine>(
            soc, allocDramState(kernel_, layout.totalBytes()),
            std::span<const std::uint8_t>(wk), crypto::StatePlacement::Dram,
            /*kernel_path=*/true, crypto::SecretResidency::RegistersOnly);
    }

    DefenseKind kind() const override { return DefenseKind::Amnesia; }

    bool
    defeats(Threat threat) const override
    {
        // No key material in DRAM defeats image-capture attacks, but the
        // DRAM-resident tables leak the access pattern (bus monitor,
        // cache timing), and nothing addresses Rowhammer or the TZ
        // mailbox.
        return threat == Threat::ColdBoot || threat == Threat::Dma;
    }

    void
    encryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        engine_->cbcEncryptPhys(frame, PAGE_SIZE, iv);
    }

    void
    decryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        engine_->cbcDecryptPhys(frame, PAGE_SIZE, iv);
    }

    crypto::SimAesEngine &pagerCipher() override { return *engine_; }

    crypto::SimAesEngine *dramStateEngine() override
    {
        return engine_.get();
    }

    void
    onLockEpoch(std::uint32_t) override
    {
        // Re-derive the working key from the master and rewrite the
        // pinned slot. The derivation is deterministic, so the key VALUE
        // is stable across epochs (pages encrypted before this lock stay
        // decryptable); what the rekey buys is that the schedule is
        // rebuilt from the master instead of persisting anywhere.
        const std::array<std::uint8_t, 16> wk = amnesiaWorkingKey(master_);
        pinned_->write(keySlot_, 0, wk);
        hw::Soc &soc = kernel_.soc();
        soc.clock().advanceSeconds(REKEY_SECONDS);
        soc.energy().charge(hw::EnergyCategory::CpuAes, REKEY_JOULES);
        ++costs_.rekeys;
        costs_.extraSeconds += REKEY_SECONDS;
        costs_.extraJoules += REKEY_JOULES;
    }

    void
    scrubSecrets() override
    {
        engine_->scrub();
        const std::array<std::uint8_t, 16> zero{};
        pinned_->write(keySlot_, 0, zero);
    }

    DefenseForkState
    forkState() const override
    {
        DefenseForkState fs = DefenseBackend::forkState();
        fs.engine = engine_->forkState();
        return fs;
    }

    void
    restoreForkState(const DefenseForkState &fs) override
    {
        DefenseBackend::restoreForkState(fs);
        if (!fs.engine.has_value())
            fatal("amnesia fork state lacks engine state");
        engine_->restoreForkState(*fs.engine);
    }

  private:
    os::Kernel &kernel_;
    RootKey master_;
    std::unique_ptr<PinnedMemory> pinned_;
    OnSocRegion keySlot_;
    std::unique_ptr<crypto::SimAesEngine> engine_;
};

/**
 * MemShield: pages cross the memory system in ciphertext; the GPU-like
 * MemCryptoEngine does the crypto with its key schedule in engine
 * registers. Plaintext exists only in the bounded working set that
 * core::Sentry maintains via plaintextWorkingSetCap().
 */
class MemShieldBackend final : public DefenseBackend
{
  public:
    /** Plaintext pages resident at once while unlocked. */
    static constexpr std::size_t WORKING_SET_PAGES = 8;

    MemShieldBackend(os::Kernel &kernel, const RootKey &master,
                     OnSocAllocator &iram_alloc)
        : kernel_(kernel)
    {
        hw::Soc &soc = kernel_.soc();
        const std::array<std::uint8_t, 16> wk =
            defenseWorkingKey(master, "memshield-working-key");
        soc.memCrypto().setKey(wk);

        // Background paging needs a CPU-side cipher over the same key;
        // its state lives in iRAM so nothing secret reaches DRAM.
        const auto layout = crypto::AesStateLayout::forKeyBytes(16);
        pagerEngine_ = std::make_unique<crypto::SimAesEngine>(
            soc, iram_alloc.alloc(layout.totalBytes()).base,
            std::span<const std::uint8_t>(wk), crypto::StatePlacement::Iram,
            /*kernel_path=*/true);
    }

    DefenseKind kind() const override { return DefenseKind::MemShield; }

    bool
    defeats(Threat threat) const override
    {
        // Ciphertext-at-rest with engine-resident keys closes every
        // memory-content and access-pattern channel, but MemShield
        // integrity-checks nothing (Rowhammer) and leaves the TZ
        // mailbox service untouched.
        return threat != Threat::Rowhammer &&
               threat != Threat::TzSideChannel;
    }

    void
    encryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        cryptPage(frame, iv, /*encrypt=*/true);
    }

    void
    decryptPage(PhysAddr frame, const crypto::Iv &iv) override
    {
        cryptPage(frame, iv, /*encrypt=*/false);
    }

    crypto::SimAesEngine &pagerCipher() override { return *pagerEngine_; }

    std::size_t
    plaintextWorkingSetCap() const override
    {
        return WORKING_SET_PAGES;
    }

    void
    scrubSecrets() override
    {
        kernel_.soc().memCrypto().clearKey();
        pagerEngine_->scrub();
    }

    DefenseForkState
    forkState() const override
    {
        DefenseForkState fs = DefenseBackend::forkState();
        fs.engine = pagerEngine_->forkState();
        return fs;
    }

    void
    restoreForkState(const DefenseForkState &fs) override
    {
        DefenseBackend::restoreForkState(fs);
        if (!fs.engine.has_value())
            fatal("memshield fork state lacks pager-engine state");
        pagerEngine_->restoreForkState(*fs.engine);
    }

  private:
    void
    cryptPage(PhysAddr frame, const crypto::Iv &iv, bool encrypt)
    {
        hw::Soc &soc = kernel_.soc();
        std::array<std::uint8_t, PAGE_SIZE> buf;
        soc.memory().read(frame, buf.data(), buf.size());
        const hw::MemCryptoStats &st = soc.memCrypto().stats();
        const double s0 = st.secondsCharged;
        const double j0 = st.joulesCharged;
        if (encrypt)
            soc.memCrypto().cbcEncrypt(iv, buf);
        else
            soc.memCrypto().cbcDecrypt(iv, buf);
        costs_.extraSeconds += st.secondsCharged - s0;
        costs_.extraJoules += st.joulesCharged - j0;
        soc.memory().write(frame, buf.data(), buf.size());
    }

    os::Kernel &kernel_;
    std::unique_ptr<crypto::SimAesEngine> pagerEngine_;
};

} // namespace

std::unique_ptr<DefenseBackend>
makeDefenseBackend(DefenseKind kind, os::Kernel &kernel,
                   crypto::SimAesEngine &sentry_engine,
                   const RootKey &master, OnSocAllocator &iram_alloc)
{
    switch (kind) {
      case DefenseKind::Sentry:
        return std::make_unique<SentryBackend>(sentry_engine);
      case DefenseKind::Amnesia:
        return std::make_unique<AmnesiaBackend>(kernel, master);
      case DefenseKind::MemShield:
        return std::make_unique<MemShieldBackend>(kernel, master,
                                                  iram_alloc);
    }
    panic("bad defense kind");
}

} // namespace sentry::core
