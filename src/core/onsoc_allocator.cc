#include "core/onsoc_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentry::core
{

OnSocAllocator::OnSocAllocator(PhysAddr base, std::size_t size)
    : base_(base), size_(size)
{
    if (size == 0)
        fatal("OnSocAllocator needs a non-empty window");
    freeList_.push_back({base, size});
}

OnSocAllocator
OnSocAllocator::forIram(std::size_t iram_size)
{
    if (iram_size <= IRAM_FIRMWARE_RESERVED)
        fatal("iRAM too small for any usable region");
    return OnSocAllocator(IRAM_BASE + IRAM_FIRMWARE_RESERVED,
                          iram_size - IRAM_FIRMWARE_RESERVED);
}

OnSocRegion
OnSocAllocator::tryAlloc(std::size_t size)
{
    size = alignUp(size, 16);
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (it->size < size)
            continue;
        OnSocRegion region{it->base, size};
        it->base += size;
        it->size -= size;
        if (it->size == 0)
            freeList_.erase(it);
        return region;
    }
    return {};
}

OnSocRegion
OnSocAllocator::alloc(std::size_t size)
{
    OnSocRegion region = tryAlloc(size);
    if (!region.valid())
        fatal("on-SoC storage exhausted (wanted %zu, free %zu)", size,
              freeBytes());
    return region;
}

void
OnSocAllocator::free(const OnSocRegion &region)
{
    if (!region.valid())
        return;
    if (region.base < base_ || region.base + region.size > base_ + size_)
        panic("freeing a region outside the on-SoC window");

    auto it = std::lower_bound(
        freeList_.begin(), freeList_.end(), region.base,
        [](const Chunk &c, PhysAddr addr) { return c.base < addr; });
    it = freeList_.insert(it, {region.base, region.size});

    // Coalesce with the successor, then the predecessor.
    if (auto next = std::next(it);
        next != freeList_.end() && it->base + it->size == next->base) {
        it->size += next->size;
        freeList_.erase(next);
    }
    if (it != freeList_.begin()) {
        auto prev = std::prev(it);
        if (prev->base + prev->size == it->base) {
            prev->size += it->size;
            freeList_.erase(it);
        }
    }
}

std::size_t
OnSocAllocator::freeBytes() const
{
    std::size_t total = 0;
    for (const auto &chunk : freeList_)
        total += chunk.size;
    return total;
}

} // namespace sentry::core
