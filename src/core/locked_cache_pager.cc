#include "core/locked_cache_pager.hh"

#include "common/logging.hh"

namespace sentry::core
{

LockedCachePager::LockedCachePager(
    os::Kernel &kernel, crypto::SimAesEngine &engine,
    std::function<crypto::Iv(const os::Process &, VirtAddr)> iv_fn)
    : kernel_(kernel), engine_(engine), ivFn_(std::move(iv_fn))
{}

void
LockedCachePager::addFrames(const OnSocRegion &region)
{
    if (region.base % PAGE_SIZE != 0 || region.size % PAGE_SIZE != 0)
        fatal("pager frames must be page aligned");
    for (std::size_t off = 0; off < region.size; off += PAGE_SIZE)
        freeFrames_.push_back(region.base + off);
}

std::size_t
LockedCachePager::totalFrames() const
{
    return freeFrames_.size() + residents_.size();
}

void
LockedCachePager::evictOne()
{
    if (residents_.empty())
        panic("pager eviction with no resident pages");
    Resident victim = residents_.front();
    residents_.pop_front();

    os::Pte *pte = victim.process->pageTable().find(victim.va);
    if (pte == nullptr || !pte->onSoc)
        panic("pager resident list out of sync at VA 0x%llx",
              static_cast<unsigned long long>(victim.va));

    hw::Soc &soc = kernel_.soc();
    // Encrypt in place (still inside the locked way), then copy the
    // ciphertext back to the page's DRAM home.
    engine_.cbcEncryptPhys(victim.frame, PAGE_SIZE,
                           ivFn_(*victim.process, victim.va));
    soc.memory().copy(pte->dramHome, victim.frame, PAGE_SIZE);
    // Software-managed coherence: push the ciphertext out to DRAM so
    // the cached copy is not the only one.
    soc.l2().cleanRange(pte->dramHome, PAGE_SIZE);

    pte->frame = pte->dramHome;
    pte->dramHome = 0;
    pte->onSoc = false;
    pte->encrypted = true;
    pte->young = false; // trap again on the next access

    stats_.bytesEncrypted += PAGE_SIZE;
    ++stats_.evictions;
    soc.energy().charge(hw::EnergyCategory::MemCopy,
                        soc.energy().params().memCopyPerByte * PAGE_SIZE);
    freeFrames_.push_back(victim.frame);
}

void
LockedCachePager::pageIn(os::Process &process, VirtAddr va, os::Pte &pte)
{
    if (!pte.encrypted || pte.onSoc)
        panic("pageIn on a page that is not encrypted-in-DRAM");
    if (freeFrames_.empty() && residents_.empty())
        fatal("locked-cache pager has no frames configured");

    if (freeFrames_.empty())
        evictOne();

    const PhysAddr frame = freeFrames_.back();
    freeFrames_.pop_back();

    hw::Soc &soc = kernel_.soc();
    const VirtAddr page = os::PageTable::pageOf(va);

    // Step 1 (Figure 1): copy the encrypted page into the locked way.
    soc.memory().copy(frame, pte.frame, PAGE_SIZE);
    soc.energy().charge(hw::EnergyCategory::MemCopy,
                        soc.energy().params().memCopyPerByte * PAGE_SIZE);

    // Step 2: decrypt in place (cleartext never leaves the way).
    engine_.cbcDecryptPhys(frame, PAGE_SIZE, ivFn_(process, page));

    // Step 3: repoint the PTE and set the young bit.
    pte.dramHome = pte.frame;
    pte.frame = frame;
    pte.onSoc = true;
    pte.encrypted = false;
    pte.young = true;

    residents_.push_back({&process, page, frame});
    stats_.bytesDecrypted += PAGE_SIZE;
    ++stats_.pageIns;
}

void
LockedCachePager::evictAll()
{
    while (!residents_.empty())
        evictOne();
}

void
LockedCachePager::drainOnUnlock()
{
    hw::Soc &soc = kernel_.soc();
    while (!residents_.empty()) {
        Resident resident = residents_.front();
        residents_.pop_front();
        os::Pte *pte = resident.process->pageTable().find(resident.va);
        if (pte == nullptr || !pte->onSoc)
            panic("pager drain out of sync");
        // Unlocked device: plaintext may return to DRAM.
        soc.memory().copy(pte->dramHome, resident.frame, PAGE_SIZE);
        soc.energy().charge(hw::EnergyCategory::MemCopy,
                            soc.energy().params().memCopyPerByte *
                                PAGE_SIZE);
        pte->frame = pte->dramHome;
        pte->dramHome = 0;
        pte->onSoc = false;
        pte->encrypted = false;
        pte->young = true;
        freeFrames_.push_back(resident.frame);
    }
}

LockedCachePager::ForkState
LockedCachePager::forkState() const
{
    ForkState fs;
    fs.freeFrames = freeFrames_;
    for (const Resident &resident : residents_)
        fs.residents.push_back(ForkState::ResidentImage{
            resident.process->pid(), resident.va, resident.frame});
    fs.stats = stats_;
    return fs;
}

void
LockedCachePager::restoreForkState(const ForkState &fs)
{
    freeFrames_ = fs.freeFrames;
    residents_.clear();
    for (const ForkState::ResidentImage &image : fs.residents) {
        os::Process *found = nullptr;
        for (const auto &process : kernel_.processes()) {
            if (process->pid() == image.pid) {
                found = process.get();
                break;
            }
        }
        if (found == nullptr)
            panic("LockedCachePager::restoreForkState: unknown pid %d",
                  image.pid);
        residents_.push_back(Resident{found, image.va, image.frame});
    }
    stats_ = fs.stats;
}

} // namespace sentry::core
