#include "core/locked_way_manager.hh"

#include <bit>

#include "common/logging.hh"

namespace sentry::core
{

LockedWayManager::LockedWayManager(hw::Soc &soc, PhysAddr window_base)
    : soc_(soc), windowBase_(window_base)
{
    if (window_base % waySize() != 0)
        fatal("locked-way window must be way-size aligned");
}

std::size_t
LockedWayManager::waySize() const
{
    return soc_.l2().waySizeBytes();
}

bool
LockedWayManager::available() const
{
    return soc_.trustzone().secureWorldAvailable();
}

unsigned
LockedWayManager::lockedWays() const
{
    return static_cast<unsigned>(std::popcount(lockedMask_));
}

PhysAddr
LockedWayManager::wayWindowBase(unsigned way) const
{
    return windowBase_ + static_cast<PhysAddr>(way) * waySize();
}

std::optional<OnSocRegion>
LockedWayManager::lockWay()
{
    hw::L2Cache &l2 = soc_.l2();
    const unsigned ways = l2.ways();
    const std::uint32_t allWays = (1u << ways) - 1;

    // Find the lowest unlocked way, keeping at least one allocatable.
    unsigned target = ways;
    for (unsigned way = 0; way < ways; ++way) {
        if (!(lockedMask_ & (1u << way))) {
            target = way;
            break;
        }
    }
    if (target == ways || lockedWays() + 1 >= ways)
        return std::nullopt;

    hw::SecureWorldGuard secure(soc_.trustzone());
    if (!secure.entered())
        return std::nullopt; // locked firmware: no lockdown access

    // Step 1: flush the entire cache (the masked flush — previously
    // locked ways are protected by the flush-way mask).
    l2.flushAllMasked();

    // Step 2: "enable 1-way" — every way except the target is excluded
    // from allocation.
    if (!l2.writeLockdownReg(allWays & ~(1u << target)))
        panic("lockdown write rejected despite secure world");

    // Step 3: warm the way with 0xFF over its pinned physical window.
    // Each line of the window allocates into the target way.
    soc_.memory().fill(wayWindowBase(target), 0xff, waySize());

    // Step 4: "enable last N-1 ways" — lock the target, free the rest.
    lockedMask_ |= (1u << target);
    if (!l2.writeLockdownReg(lockedMask_))
        panic("lockdown write rejected despite secure world");

    // OS change: flush operations must skip the locked way from now on.
    l2.setFlushWayMask(lockedMask_);

    return OnSocRegion{wayWindowBase(target), waySize()};
}

void
LockedWayManager::unlockWay(const OnSocRegion &region)
{
    if ((region.base - windowBase_) % waySize() != 0 ||
        region.size != waySize())
        panic("unlockWay: region is not a locked-way window");
    const auto way =
        static_cast<unsigned>((region.base - windowBase_) / waySize());
    if (!(lockedMask_ & (1u << way)))
        panic("unlockWay: way %u is not locked", way);

    // Scrub: write 0xFF over all sensitive data while still locked.
    soc_.memory().fill(region.base, 0xff, region.size);

    hw::SecureWorldGuard secure(soc_.trustzone());
    if (!secure.entered())
        panic("cannot unlock a way without the secure world");

    lockedMask_ &= ~(1u << way);
    soc_.l2().setFlushWayMask(lockedMask_);
    if (!soc_.l2().writeLockdownReg(lockedMask_))
        panic("lockdown write rejected despite secure world");

    // Drop the (scrubbed) lines so nothing stale lingers.
    soc_.l2().invalidateRange(region.base, region.size);
}

} // namespace sentry::core
