#include "core/security_audit.hh"

#include <bit>

#include "common/bytes.hh"
#include "core/dram_scanner.hh"

namespace sentry::core
{

bool
AuditReport::allPassed() const
{
    for (const auto &finding : findings) {
        if (!finding.passed)
            return false;
    }
    return true;
}

std::string
AuditReport::summary() const
{
    std::string out;
    for (const auto &finding : findings) {
        out += finding.passed ? "[PASS] " : "[FAIL] ";
        out += finding.check;
        if (!finding.detail.empty()) {
            out += " — ";
            out += finding.detail;
        }
        out += "\n";
    }
    return out;
}

bool
SecurityAudit::deviceLocked() const
{
    const os::PowerState state = kernel_.powerState();
    return state == os::PowerState::Locked ||
           state == os::PowerState::Suspended ||
           state == os::PowerState::DeepLock;
}

void
SecurityAudit::checkKeyResidency(AuditReport &report)
{
    if (sentry_.keysDestroyed()) {
        report.findings.push_back(
            {"key-residency", true, "keys scrubbed after deep lock"});
        return;
    }
    const RootKey key = sentry_.keys().volatileKey();
    DramScanner scanner(kernel_.soc());
    const bool inDram = scanner.dramContains({key.data(), key.size()});
    const bool onSoc = scanner.iramContains({key.data(), key.size()});
    report.findings.push_back(
        {"key-residency", onSoc && !inDram,
         inDram   ? "volatile key found in DRAM"
         : !onSoc ? "volatile key missing from on-SoC storage"
                  : ""});
}

void
SecurityAudit::checkPageStates(AuditReport &report)
{
    if (!deviceLocked()) {
        report.findings.push_back(
            {"page-states", true, "device awake: not applicable"});
        return;
    }

    std::size_t violations = 0;
    for (const auto &process : kernel_.processes()) {
        if (!process->sensitive())
            continue;
        for (const os::Vma &vma : process->addressSpace().vmas()) {
            if (vma.share == os::SharePolicy::SharedWithNonSensitive)
                continue;
            for (std::size_t page = 0; page < vma.pages(); ++page) {
                const os::Pte *pte =
                    process->pageTable().find(vma.base +
                                              page * PAGE_SIZE);
                if (pte == nullptr || !pte->present)
                    continue;
                // A page is compliant if it is ciphertext in DRAM or
                // cleartext pinned on the SoC.
                if (!pte->encrypted && !pte->onSoc)
                    ++violations;
            }
        }
    }
    report.findings.push_back(
        {"page-states", violations == 0,
         violations == 0 ? ""
                         : std::to_string(violations) +
                               " decrypted DRAM-resident page(s) while "
                               "locked"});
}

void
SecurityAudit::checkFlushMask(AuditReport &report)
{
    const std::uint32_t lockdown = kernel_.soc().l2().lockdownReg();
    const std::uint32_t mask = kernel_.soc().l2().flushWayMask();
    const bool covered = (lockdown & ~mask) == 0;
    report.findings.push_back(
        {"flush-mask", covered,
         covered ? ""
                 : "locked ways not covered by the flush mask: a kernel "
                   "cache flush would leak them"});
}

void
SecurityAudit::checkMarkers(
    AuditReport &report,
    std::span<const std::vector<std::uint8_t>> plaintext_markers)
{
    if (!deviceLocked() || plaintext_markers.empty()) {
        report.findings.push_back({"plaintext-markers", true,
                                   plaintext_markers.empty()
                                       ? "no markers supplied"
                                       : "device awake: not applicable"});
        return;
    }
    DramScanner scanner(kernel_.soc());
    std::size_t hits = 0;
    for (const auto &marker : plaintext_markers)
        hits += scanner.dramContains(marker) ? 1 : 0;
    report.findings.push_back(
        {"plaintext-markers", hits == 0,
         hits == 0 ? "" : std::to_string(hits) + " marker(s) in DRAM"});
}

void
SecurityAudit::checkFreedPages(AuditReport &report)
{
    const bool clean =
        !deviceLocked() || kernel_.freedPendingBytes() == 0;
    report.findings.push_back(
        {"freed-pages", clean,
         clean ? ""
               : std::to_string(kernel_.freedPendingBytes()) +
                     " unscrubbed freed bytes while locked"});
}

AuditReport
SecurityAudit::run(
    std::span<const std::vector<std::uint8_t>> plaintext_markers)
{
    // Make DRAM reflect reality before scanning: push dirty lines out
    // of the unlocked ways (locked ways are exempt by design).
    kernel_.soc().l2().cleanAllMasked();

    AuditReport report;
    checkKeyResidency(report);
    checkPageStates(report);
    checkFlushMask(report);
    checkMarkers(report, plaintext_markers);
    checkFreedPages(report);
    return report;
}

} // namespace sentry::core
