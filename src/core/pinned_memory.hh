/**
 * @file
 * The "pin-on-SoC" abstraction the paper's section 10 recommends CPU
 * vendors provide natively:
 *
 *   "modern CPUs could offer a small amount of memory on the SoC
 *    together with a pin-on-SoC abstraction. Operating systems can make
 *    use of this abstraction to store cryptographic keys used to
 *    bootstrap additional system security... This memory should be
 *    inaccessible to DMA controllers."
 *
 * PinnedMemory synthesises that abstraction out of what today's parts
 * already have: it allocates from iRAM when available (and shields the
 * region from DMA through TrustZone), falls back to a locked L2 way on
 * parts with lockdown access, and refuses cleanly when neither exists.
 * Everything stored through it is, by construction:
 *   - absent from DRAM (cold-boot safe: the backing store is zeroed by
 *     boot firmware / vanishes with the cache),
 *   - invisible on the external memory bus,
 *   - unreachable by DMA masters.
 */

#ifndef SENTRY_CORE_PINNED_MEMORY_HH
#define SENTRY_CORE_PINNED_MEMORY_HH

#include <cstdint>
#include <memory>
#include <span>

#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "hw/soc.hh"

namespace sentry::core
{

/** Which substrate backs a PinnedMemory pool. */
enum class PinBacking
{
    Iram,
    LockedL2,
};

/** @return printable backing name. */
const char *pinBackingName(PinBacking backing);

/** A pool of on-SoC memory with malloc/free semantics. */
class PinnedMemory
{
  public:
    /**
     * Create a pool, choosing the best available backing:
     * iRAM with TrustZone DMA protection when the secure world is
     * reachable; iRAM *without* DMA protection otherwise (with a
     * warning — the section 4.4 caveat); LockedL2 only on request.
     *
     * @param soc         the device
     * @param pool_bytes  capacity to reserve
     * @param prefer      preferred backing
     * @return the pool, or nullptr when the preferred backing is
     *         LockedL2 and lockdown is unavailable
     */
    static std::unique_ptr<PinnedMemory>
    create(hw::Soc &soc, std::size_t pool_bytes,
           PinBacking prefer = PinBacking::Iram);

    ~PinnedMemory();

    PinnedMemory(const PinnedMemory &) = delete;
    PinnedMemory &operator=(const PinnedMemory &) = delete;

    /** @return the backing substrate in use. */
    PinBacking backing() const { return backing_; }

    /** @return true if DMA masters are locked out of the pool. */
    bool dmaProtected() const { return dmaProtected_; }

    /** Allocate @p bytes of pinned memory (invalid region when full). */
    OnSocRegion alloc(std::size_t bytes);

    /** Zero and release a region. */
    void free(const OnSocRegion &region);

    /** Store @p data into a pinned region. */
    void write(const OnSocRegion &region, std::size_t offset,
               std::span<const std::uint8_t> data);

    /** Load from a pinned region. */
    void read(const OnSocRegion &region, std::size_t offset,
              std::span<std::uint8_t> out);

    /** @return free bytes remaining in the pool. */
    std::size_t freeBytes() const { return alloc_->freeBytes(); }

  private:
    PinnedMemory(hw::Soc &soc, PinBacking backing, OnSocRegion pool,
                 bool dma_protected,
                 std::unique_ptr<LockedWayManager> way_manager);

    hw::Soc &soc_;
    PinBacking backing_;
    OnSocRegion pool_;
    bool dmaProtected_;
    std::unique_ptr<LockedWayManager> wayManager_; //!< LockedL2 only
    std::unique_ptr<OnSocAllocator> alloc_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_PINNED_MEMORY_HH
