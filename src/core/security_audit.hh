/**
 * @file
 * Programmatic security audit: the invariants Sentry promises, checked
 * on a live device. Integrators run this in tests/CI after wiring
 * Sentry into their platform; our own test suite and examples use it
 * too.
 *
 * Checks (each returns a finding rather than asserting):
 *   - root keys present on the SoC and absent from DRAM;
 *   - while locked/suspended: no sensitive process has a decrypted,
 *     DRAM-resident page (on-SoC pager residents are fine);
 *   - the PL310 flush-way mask covers every locked way (the section
 *     4.5 OS change is actually in force);
 *   - caller-supplied plaintext markers do not appear in DRAM while
 *     locked;
 *   - freed pages are scrubbed when the device is locked.
 */

#ifndef SENTRY_CORE_SECURITY_AUDIT_HH
#define SENTRY_CORE_SECURITY_AUDIT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/sentry.hh"
#include "os/kernel.hh"

namespace sentry::core
{

/** One audit finding. */
struct AuditFinding
{
    std::string check;
    bool passed;
    std::string detail;
};

/** Aggregate result. */
struct AuditReport
{
    std::vector<AuditFinding> findings;

    /** @return true when every check passed. */
    bool allPassed() const;

    /** @return a printable multi-line summary. */
    std::string summary() const;
};

/** The auditor. */
class SecurityAudit
{
  public:
    SecurityAudit(os::Kernel &kernel, Sentry &sentry)
        : kernel_(kernel), sentry_(sentry)
    {}

    /**
     * Run all checks.
     * @param plaintext_markers byte strings that must not be in DRAM
     *        while the device is locked (e.g. known app secrets)
     */
    AuditReport
    run(std::span<const std::vector<std::uint8_t>> plaintext_markers = {});

  private:
    void checkKeyResidency(AuditReport &report);
    void checkPageStates(AuditReport &report);
    void checkFlushMask(AuditReport &report);
    void checkMarkers(
        AuditReport &report,
        std::span<const std::vector<std::uint8_t>> plaintext_markers);
    void checkFreedPages(AuditReport &report);

    bool deviceLocked() const;

    os::Kernel &kernel_;
    Sentry &sentry_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_SECURITY_AUDIT_HH
