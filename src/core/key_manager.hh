/**
 * @file
 * Sentry's two root keys (paper section 7, "Bootstrapping"):
 *
 *   - the volatile root key encrypts sensitive applications' memory
 *     pages; it is generated fresh on every boot and lives ONLY in
 *     on-SoC storage (an iRAM region here);
 *   - the persistent root key encrypts on-disk state (dm-crypt); it is
 *     derived from a boot-time password and the secret in the device's
 *     secure hardware fuse, readable only from the TrustZone secure
 *     world.
 */

#ifndef SENTRY_CORE_KEY_MANAGER_HH
#define SENTRY_CORE_KEY_MANAGER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/onsoc_allocator.hh"
#include "hw/soc.hh"

namespace sentry::core
{

/** 128-bit AES root key. */
using RootKey = std::array<std::uint8_t, 16>;

/** Generates, stores, and hands out the root keys. */
class KeyManager
{
  public:
    /**
     * @param soc        the device
     * @param key_store  on-SoC region of at least 32 bytes where the
     *                   keys are materialised
     */
    KeyManager(hw::Soc &soc, OnSocRegion key_store);

    /** Generate a fresh volatile root key (called at boot). */
    void generateVolatileKey();

    /** @return the volatile key, read back from on-SoC storage. */
    RootKey volatileKey() const;

    /**
     * Derive the persistent root key from @p password and the fuse
     * secret (requires the TrustZone secure world).
     * @return false on devices whose secure world is unreachable.
     */
    bool derivePersistentKey(const std::string &password);

    /** @return true once derivePersistentKey succeeded. */
    bool hasPersistentKey() const { return hasPersistent_; }

    /** @return the persistent key, read back from on-SoC storage. */
    RootKey persistentKey() const;

    /** Scrub both keys from on-SoC storage. */
    void scrub();

    /** Snapshot/fork restore: the key *bytes* live in the simulated
     * on-SoC store (carried by the COW iRAM image); only this host-side
     * flag needs restoring. */
    void restorePersistentFlag(bool has_persistent)
    {
        hasPersistent_ = has_persistent;
    }

  private:
    hw::Soc &soc_;
    OnSocRegion store_;
    bool hasPersistent_ = false;
};

} // namespace sentry::core

#endif // SENTRY_CORE_KEY_MANAGER_HH
