/**
 * @file
 * Sentry: the paper's primary contribution.
 *
 * Sentry protects the memory of sensitive applications and OS
 * subsystems against cold-boot, bus-monitoring, and DMA attacks by
 * keeping cleartext off DRAM whenever the device is screen-locked:
 *
 *   - encrypt-on-lock: when the screen locks, every page of every
 *     sensitive process is encrypted in place with the volatile root
 *     key (which lives only on the SoC); encrypted processes are parked
 *     on the unschedulable queue;
 *   - decrypt-on-unlock: pages are decrypted lazily, on the young-bit
 *     page fault of first touch, except DMA regions (GPU/I-O buffers
 *     are accessed by physical address and cannot fault), which are
 *     decrypted eagerly;
 *   - background mode: processes marked as background keep running
 *     while locked; the LockedCachePager pages them between encrypted
 *     DRAM and decrypted locked-cache frames;
 *   - dm-crypt integration: AES On SoC registers with the kernel
 *     CryptoApi at a higher priority than the generic AES, so block-
 *     level file-system encryption stops leaking crypto state to DRAM.
 *
 * Typical use:
 * @code
 *   hw::Soc soc(hw::PlatformConfig::tegra3());
 *   os::Kernel kernel(soc);
 *   core::Sentry sentry(kernel, core::SentryOptions{});
 *   auto &app = kernel.createProcess("mail");
 *   kernel.addVma(app, "heap", os::VmaType::Heap, 4 * MiB);
 *   sentry.markSensitive(app);
 *   kernel.lockScreen();       // pages encrypted, app parked
 *   kernel.unlockScreen("0000"); // decrypt-on-demand resumes the app
 * @endcode
 */

#ifndef SENTRY_CORE_SENTRY_HH
#define SENTRY_CORE_SENTRY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/defense_backend.hh"
#include "core/key_manager.hh"
#include "core/locked_cache_pager.hh"
#include "core/locked_way_manager.hh"
#include "core/onsoc_allocator.hh"
#include "crypto/aes_on_soc.hh"
#include "os/kernel.hh"

namespace sentry::core
{

/** Where Sentry's page-crypto AES state lives. */
enum class AesPlacement
{
    KernelGeneric, //!< generic kernel AES, state in DRAM (insecure base)
    Iram,          //!< AES On SoC, iRAM variant
    LockedL2,      //!< AES On SoC, locked-cache variant (needs firmware)
};

/** @return printable placement name. */
const char *aesPlacementName(AesPlacement placement);

/** Configuration knobs (defaults follow the paper's Tegra prototype). */
struct SentryOptions
{
    AesPlacement placement = AesPlacement::Iram;
    /** Which defense backend does the page crypto / key handling. The
     *  default routes everything through Sentry's own engine
     *  bit-identically to the pre-backend code. */
    DefenseKind defense = DefenseKind::Sentry;
    /** Enable background execution (requires cache locking). */
    bool backgroundMode = false;
    /** Locked ways dedicated to pager frames when backgroundMode. */
    unsigned pagerWays = 2;
    /** Decrypt DMA regions eagerly at unlock (paper default: yes). */
    bool eagerDmaDecrypt = true;
    /** Wait for the freed-page zero thread before locking. */
    bool waitForZeroThread = true;
    /** Clean the L2 after encrypt-on-lock so ciphertext reaches DRAM.
     *  Disabling this is an ablation that leaks plaintext. */
    bool cleanCacheAfterLock = true;
    /**
     * When five bad PINs push the device into deep lock, scrub the
     * volatile root key and the AES state from the SoC: the encrypted
     * pages become permanently undecryptable (remote-wipe semantics;
     * the data is re-fetchable from the cloud after re-provisioning).
     */
    bool scrubKeysOnDeepLock = true;
};

/** Operation counters and last-operation timings. */
struct SentryStats
{
    std::uint64_t lockCount = 0;
    std::uint64_t bytesEncryptedOnLock = 0;
    std::uint64_t bytesDecryptedEager = 0;
    std::uint64_t bytesDecryptedOnDemand = 0;
    std::uint64_t faultsServiced = 0;
    /** Pages zero-filled after a deep-lock key scrub (data loss). */
    std::uint64_t bytesWipedAfterDeepLock = 0;
    double lastLockSeconds = 0.0;
    double lastUnlockSeconds = 0.0;
};

/**
 * Checkpoint of Sentry's mutable state, produced by Sentry::snapshot().
 *
 * Everything here is host-side bookkeeping: key bytes, AES state
 * regions and encrypted pages travel inside the SocSnapshot's COW
 * memory images. Hooks installed into the kernel, and the crypto
 * provider factories, are wiring — forkFrom() re-registers providers
 * on a fresh target instead of copying them.
 */
struct SentrySnapshot
{
    AesPlacement placement;
    bool backgroundMode;
    OnSocAllocator iramAlloc;
    std::uint32_t lockedWayMask;
    std::optional<OnSocRegion> engineWay;
    std::optional<OnSocAllocator> engineWayAlloc;
    bool hasPersistentKey;
    std::optional<crypto::SimAesEngine::ForkState> engine;
    std::optional<LockedCachePager::ForkState> pager;
    std::set<int> backgroundPids;
    std::uint32_t lockEpoch;
    bool keysDestroyed;
    SentryStats stats;
    bool providersRegistered;
    DefenseKind defenseKind;
    DefenseForkState defense;
    /** MemShield plaintext residents as (pid, page VA). */
    std::vector<std::pair<int, std::uint64_t>> plaintextWorkingSet;
};

/** The Sentry manager. */
class Sentry
{
  public:
    /**
     * Wire Sentry into @p kernel: installs the page-fault handler and
     * the screen-lock hooks, carves on-SoC storage, generates the
     * volatile root key, and (optionally) sets up background paging.
     *
     * When the requested placement is LockedL2 but the device's secure
     * world is unreachable (Nexus 4), Sentry degrades to Iram placement
     * and records that in placement().
     */
    Sentry(os::Kernel &kernel, SentryOptions options = {});

    /** Mark @p process for protection ("the settings menu"). */
    void markSensitive(os::Process &process);

    /** Allow @p process to run while locked (must be sensitive). */
    void markBackground(os::Process &process);

    /** @return active placement after availability degradation. */
    AesPlacement placement() const { return placement_; }

    /** @return the key manager. */
    KeyManager &keys() { return *keys_; }

    /** @return the locked-way manager. */
    LockedWayManager &wayManager() { return wayManager_; }

    /** @return the pager, or nullptr when background mode is off. */
    LockedCachePager *pager() { return pager_.get(); }

    /** @return Sentry's page-crypto engine. */
    crypto::SimAesEngine &engine() { return *engine_; }

    /** @return the active defense backend. */
    DefenseBackend &defense() { return *backend_; }
    const DefenseBackend &defense() const { return *backend_; }

    /** @return which defense design is plugged in. */
    DefenseKind defenseKind() const { return options_.defense; }

    /** @return counters. */
    const SentryStats &stats() const { return stats_; }

    /** Zero the counters. */
    void resetStats() { stats_ = SentryStats{}; }

    /**
     * Register "aes-generic" (priority 100) and the AES On SoC
     * implementation (priority 300) with the kernel CryptoApi, so
     * dm-crypt and other consumers pick up the protected cipher.
     */
    void registerCryptoProviders();

    /** Deterministic per-page IV (pid, VA, lock epoch). */
    crypto::Iv pageIv(const os::Process &process, VirtAddr va) const;

    /**
     * The strawman the paper rejects: encrypt ALL of DRAM at lock time
     * using every core plus the accelerator.
     * @return simulated seconds taken (energy is charged to the model).
     */
    double encryptAllMemoryStrawman();

    /** @return true after a deep-lock key scrub destroyed the keys. */
    bool keysDestroyed() const { return keysDestroyed_; }

    // Exposed for tests and benches; normally invoked via kernel hooks.
    void onLock();
    void onUnlock();
    void onDeepLock();
    bool handleFault(os::Process &process, VirtAddr va, os::Pte &pte);

    // ---- snapshot / fork -----------------------------------------------

    /** Capture Sentry's host-side state (see SentrySnapshot). */
    SentrySnapshot snapshot() const;

    /**
     * Restore from @p snap. The target must have been constructed with
     * the same effective placement and background mode (fatal
     * otherwise). Call after Soc/Kernel forkFrom so pager residents can
     * resolve against the forked process list. Re-registers crypto
     * providers when the snapshot had them and this device does not.
     */
    void forkFrom(const SentrySnapshot &snap);

  private:
    void encryptProcess(os::Process &process);
    bool pageIsSkipped(const os::Vma &vma) const;
    void noteWorkingSetPage(os::Process &process, VirtAddr page);
    void evictWorkingSetPage();

    os::Kernel &kernel_;
    SentryOptions options_;
    AesPlacement placement_;

    OnSocAllocator iramAlloc_;
    LockedWayManager wayManager_;
    std::optional<OnSocRegion> engineWay_; //!< way backing LockedL2 state
    /** Suballocator over engineWay_ (engine + crypto-API ciphers). */
    std::unique_ptr<OnSocAllocator> engineWayAlloc_;
    std::unique_ptr<KeyManager> keys_;
    std::unique_ptr<crypto::SimAesEngine> engine_;
    std::unique_ptr<DefenseBackend> backend_;
    std::unique_ptr<LockedCachePager> pager_;
    /** MemShield plaintext residents, oldest first (pid, page VA). */
    std::deque<std::pair<int, VirtAddr>> workingSet_;

    std::set<int> backgroundPids_;
    std::uint32_t lockEpoch_ = 0;
    bool keysDestroyed_ = false;
    SentryStats stats_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_SENTRY_HH
