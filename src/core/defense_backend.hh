/**
 * @file
 * Pluggable defense backends: the Sentry design vs. its two published
 * competitors, run against identical attack schedules by the fleet.
 *
 * A DefenseBackend owns the page-crypto mechanism and the key-handling
 * policy of one memory-protection design:
 *
 *   - sentry    — the paper's design: AES On SoC with the volatile root
 *                 key, state in iRAM or a locked L2 way. The default;
 *                 all existing Sentry behaviour routes through it
 *                 bit-identically.
 *   - amnesia   — "Security Through Amnesia": the master key is rekeyed
 *                 into a working key pinned on the SoC (iRAM via
 *                 PinnedMemory) and the cipher runs register-only, so no
 *                 long-lived key schedule ever sits in DRAM. Its lookup
 *                 tables do live in DRAM, which is exactly the access-
 *                 pattern surface the bus monitor and the cache attacks
 *                 exploit.
 *   - memshield — accelerator-assisted full-page encryption: guest
 *                 pages are ciphertext-at-rest in DRAM, decrypted by
 *                 the GPU-like hw::MemCryptoEngine into a small
 *                 plaintext working set. The key schedule lives in
 *                 engine registers. No row partition and no hardened
 *                 TrustZone service ride along, so Rowhammer and the
 *                 TZ mailbox side channel remain open.
 *
 * Each backend also states its *claimed* threat matrix (defeats()); the
 * fleet runner compares the claim against the observed attack outcome:
 * a breach of a claimed-defeated threat fails the device, a breach of a
 * claimed-vulnerable threat is recorded as an expected hit.
 */

#ifndef SENTRY_CORE_DEFENSE_BACKEND_HH
#define SENTRY_CORE_DEFENSE_BACKEND_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/key_manager.hh"
#include "core/onsoc_allocator.hh"
#include "crypto/aes_on_soc.hh"

namespace sentry::os
{
class Kernel;
}

namespace sentry::core
{

/** The selectable defense designs. */
enum class DefenseKind
{
    Sentry,    //!< the paper's AES-On-SoC design (default)
    Amnesia,   //!< register-only cipher, working key pinned on SoC
    MemShield, //!< GPU-engine full-page encryption, working-set decrypt
};

/** Number of DefenseKind values (for iteration and fuzz drawing). */
inline constexpr unsigned DEFENSE_KIND_COUNT = 3;

/** @return printable backend name ("sentry" / "amnesia" / "memshield"). */
const char *defenseKindName(DefenseKind kind);

/** Parse a backend name; nullopt when unknown. */
std::optional<DefenseKind> parseDefenseKind(std::string_view name);

/** The seven attack verbs a backend is scored against. */
enum class Threat
{
    ColdBoot, //!< the cold-boot family (reflash / os_reboot / 2s_reset)
    BusMonitor,
    Dma,
    PrimeProbe,
    EvictReload,
    Rowhammer,
    TzSideChannel,
};

/** Number of Threat values (matrix dimension). */
inline constexpr unsigned THREAT_COUNT = 7;

/** @return printable threat name (matches the scenario attack verbs). */
const char *threatName(Threat threat);

/** Simulated cost ledger a backend accrues beyond baseline Sentry. */
struct DefenseCosts
{
    std::uint64_t rekeys = 0;    //!< Amnesia lock-epoch rekey events
    std::uint64_t evictions = 0; //!< MemShield working-set re-encrypts
    double extraSeconds = 0.0;   //!< simulated time charged by the backend
    double extraJoules = 0.0;    //!< simulated energy charged by the backend
};

/**
 * Derive a backend working key from the master volatile root key.
 * Pure function (PBKDF2-HMAC-SHA256 over the master with the backend
 * label as salt) so the KAT tests can pin it.
 */
std::array<std::uint8_t, 16> defenseWorkingKey(const RootKey &master,
                                               std::string_view label);

/** The Amnesia working-key derivation (label "amnesia-working-key"). */
std::array<std::uint8_t, 16> amnesiaWorkingKey(const RootKey &master);

/** Backend state for snapshot/fork (rides inside SentrySnapshot). */
struct DefenseForkState
{
    /** Backend-owned engine state; absent for the Sentry backend (its
     * engine forks through SentrySnapshot::engine). */
    std::optional<crypto::SimAesEngine::ForkState> engine;
    DefenseCosts costs;
};

/** One memory-protection design, pluggable under core::Sentry. */
class DefenseBackend
{
  public:
    virtual ~DefenseBackend() = default;

    /** @return which design this is. */
    virtual DefenseKind kind() const = 0;

    /** @return the design's claimed verdict for @p threat. */
    virtual bool defeats(Threat threat) const = 0;

    /** Encrypt one page in place in simulated physical memory. */
    virtual void encryptPage(PhysAddr frame, const crypto::Iv &iv) = 0;

    /** Decrypt one page in place in simulated physical memory. */
    virtual void decryptPage(PhysAddr frame, const crypto::Iv &iv) = 0;

    /** Engine the LockedCachePager uses for background paging; always
     * interoperable with encryptPage()/decryptPage(). */
    virtual crypto::SimAesEngine &pagerCipher() = 0;

    /**
     * The engine whose AES state sits in DRAM and therefore leaks its
     * access pattern to the bus monitor and the cache attacks; nullptr
     * when the design keeps all cipher state on the SoC.
     */
    virtual crypto::SimAesEngine *dramStateEngine() { return nullptr; }

    /** Max plaintext pages resident while unlocked; 0 = unbounded
     * (only MemShield bounds its working set). */
    virtual std::size_t plaintextWorkingSetCap() const { return 0; }

    /** Lock-epoch hook (Amnesia rekeys its working key here). */
    virtual void onLockEpoch(std::uint32_t epoch) { (void)epoch; }

    /** Deep-lock hook: destroy backend-held key material. */
    virtual void scrubSecrets() {}

    /** @return the accrued cost ledger. */
    DefenseCosts &costs() { return costs_; }
    const DefenseCosts &costs() const { return costs_; }

    virtual DefenseForkState forkState() const;
    virtual void restoreForkState(const DefenseForkState &fs);

  protected:
    DefenseCosts costs_;
};

/**
 * Construct the backend for @p kind.
 *
 * @param kind          which design
 * @param kernel        the OS (DRAM frames, crypto registry, Soc)
 * @param sentry_engine Sentry's own AES-On-SoC engine (the Sentry
 *                      backend wraps it; others ignore it)
 * @param master        the volatile root key working keys derive from
 * @param iram_alloc    Sentry's iRAM allocator (for on-SoC state)
 */
std::unique_ptr<DefenseBackend>
makeDefenseBackend(DefenseKind kind, os::Kernel &kernel,
                   crypto::SimAesEngine &sentry_engine,
                   const RootKey &master, OnSocAllocator &iram_alloc);

} // namespace sentry::core

#endif // SENTRY_CORE_DEFENSE_BACKEND_HH
