#include "core/sentry.hh"

#include "common/logging.hh"

namespace sentry::core
{

const char *
aesPlacementName(AesPlacement placement)
{
    switch (placement) {
      case AesPlacement::KernelGeneric:
        return "kernel-generic";
      case AesPlacement::Iram:
        return "iram";
      case AesPlacement::LockedL2:
        return "locked-l2";
      default:
        return "?";
    }
}

namespace
{

/** The locked-way window sits at the top of DRAM, way-aligned. */
PhysAddr
lockedWindowBase(const hw::Soc &soc, std::size_t way_size,
                 std::size_t l2_size)
{
    const PhysAddr top = DRAM_BASE + soc.dramRaw().size();
    return alignDown(top - l2_size, way_size);
}

crypto::StatePlacement
toStatePlacement(AesPlacement placement)
{
    switch (placement) {
      case AesPlacement::KernelGeneric:
        return crypto::StatePlacement::Dram;
      case AesPlacement::Iram:
        return crypto::StatePlacement::Iram;
      case AesPlacement::LockedL2:
        return crypto::StatePlacement::LockedL2;
    }
    panic("bad placement");
}

} // namespace

Sentry::Sentry(os::Kernel &kernel, SentryOptions options)
    : kernel_(kernel), options_(options), placement_(options.placement),
      iramAlloc_(OnSocAllocator::forIram(kernel.soc().iram().size())),
      wayManager_(kernel.soc(),
                  lockedWindowBase(kernel.soc(),
                                   kernel.soc().l2().waySizeBytes(),
                                   kernel.soc().l2().size()))
{
    hw::Soc &soc = kernel_.soc();

    // Keep the OS away from the locked-way window.
    kernel_.allocator().reserveRange(
        lockedWindowBase(soc, soc.l2().waySizeBytes(), soc.l2().size()),
        soc.l2().size());

    // Degrade gracefully on locked-firmware devices.
    const bool wantLocking =
        placement_ == AesPlacement::LockedL2 || options_.backgroundMode;
    if (wantLocking && !wayManager_.available()) {
        warn("cache locking unavailable on %s; using iRAM placement",
             soc.config().name.c_str());
        if (placement_ == AesPlacement::LockedL2)
            placement_ = AesPlacement::Iram;
        options_.backgroundMode = false;
    }

    // Root keys live in iRAM in every configuration.
    keys_ = std::make_unique<KeyManager>(soc, iramAlloc_.alloc(32));
    keys_->generateVolatileKey();

    // Sentry protects iRAM from DMA whenever TrustZone permits.
    {
        hw::SecureWorldGuard secure(soc.trustzone());
        if (secure.entered()) {
            soc.trustzone().protectRegionFromDma(IRAM_BASE,
                                                 soc.iram().size());
        }
    }

    // Carve the AES state region according to placement.
    const auto layout = crypto::AesStateLayout::forKeyBytes(16);
    PhysAddr stateBase = 0;
    switch (placement_) {
      case AesPlacement::Iram:
        stateBase = iramAlloc_.alloc(layout.totalBytes()).base;
        break;
      case AesPlacement::LockedL2: {
        engineWay_ = wayManager_.lockWay();
        if (!engineWay_)
            fatal("failed to lock a cache way for AES state");
        engineWayAlloc_ = std::make_unique<OnSocAllocator>(
            engineWay_->base, engineWay_->size);
        stateBase = engineWayAlloc_->alloc(layout.totalBytes()).base;
        break;
      }
      case AesPlacement::KernelGeneric: {
        const std::size_t frames =
            alignUp(layout.totalBytes(), PAGE_SIZE) / PAGE_SIZE;
        stateBase = kernel_.allocator().allocContiguous(frames);
        break;
      }
    }

    const RootKey volatileKey = keys_->volatileKey();
    engine_ = std::make_unique<crypto::SimAesEngine>(
        soc, stateBase, std::span<const std::uint8_t>(volatileKey),
        toStatePlacement(placement_), /*kernel_path=*/true);

    // Plug in the defense backend. The Sentry backend wraps engine_ and
    // reproduces the pre-backend behaviour bit for bit; Amnesia and
    // MemShield build their own key/engine machinery on top.
    backend_ = makeDefenseBackend(options_.defense, kernel_, *engine_,
                                  volatileKey, iramAlloc_);

    // Background paging: lock pagerWays ways as frame pool.
    if (options_.backgroundMode) {
        pager_ = std::make_unique<LockedCachePager>(
            kernel_, backend_->pagerCipher(),
            [this](const os::Process &p, VirtAddr va) {
                return pageIv(p, va);
            });
        for (unsigned i = 0; i < options_.pagerWays; ++i) {
            const auto region = wayManager_.lockWay();
            if (!region)
                fatal("could not lock %u pager ways", options_.pagerWays);
            pager_->addFrames(*region);
        }
    }

    kernel_.setFaultHandler(
        [this](os::Process &p, VirtAddr va, os::Pte &pte) {
            return handleFault(p, va, pte);
        });
    kernel_.setLockHooks([this] { onLock(); }, [this] { onUnlock(); });
    kernel_.setDeepLockHook([this] { onDeepLock(); });
}

void
Sentry::markSensitive(os::Process &process)
{
    process.setSensitive(true);
}

void
Sentry::markBackground(os::Process &process)
{
    if (!process.sensitive())
        fatal("background protection requires markSensitive first");
    if (!options_.backgroundMode)
        fatal("background mode is not enabled in this configuration");
    backgroundPids_.insert(process.pid());
}

crypto::Iv
Sentry::pageIv(const os::Process &process, VirtAddr va) const
{
    crypto::Iv iv{};
    const auto pid = static_cast<std::uint32_t>(process.pid());
    const VirtAddr page = os::PageTable::pageOf(va);
    for (int i = 0; i < 4; ++i)
        iv[i] = static_cast<std::uint8_t>(pid >> (8 * i));
    for (int i = 0; i < 8; ++i)
        iv[4 + i] = static_cast<std::uint8_t>(page >> (8 * i));
    for (int i = 0; i < 4; ++i)
        iv[12 + i] = static_cast<std::uint8_t>(lockEpoch_ >> (8 * i));
    return iv;
}

bool
Sentry::pageIsSkipped(const os::Vma &vma) const
{
    // Pages shared with non-sensitive processes are assumed non-secret
    // and skipped (paper section 7).
    return vma.share == os::SharePolicy::SharedWithNonSensitive;
}

void
Sentry::encryptProcess(os::Process &process)
{
    for (const os::Vma &vma : process.addressSpace().vmas()) {
        if (pageIsSkipped(vma))
            continue;
        for (std::size_t page = 0; page < vma.pages(); ++page) {
            const VirtAddr va = vma.base + page * PAGE_SIZE;
            os::Pte *pte = process.pageTable().find(va);
            if (pte == nullptr || !pte->present || pte->encrypted ||
                pte->onSoc) {
                continue;
            }
            backend_->encryptPage(pte->frame, pageIv(process, va));
            pte->encrypted = true;
            pte->young = false;
            stats_.bytesEncryptedOnLock += PAGE_SIZE;
        }
    }
}

void
Sentry::onLock()
{
    os::Kernel::KernelTimer timer(kernel_);
    SimStopwatch watch(kernel_.soc().clock());

    // Freed pages of sensitive apps may still hold cleartext; make the
    // zero thread finish before the device is considered locked.
    if (options_.waitForZeroThread)
        kernel_.zeroFreedPages();

    ++lockEpoch_;
    backend_->onLockEpoch(lockEpoch_);
    for (const auto &process : kernel_.processes()) {
        if (!process->sensitive())
            continue;
        encryptProcess(*process);
        if (!backgroundPids_.contains(process->pid()))
            kernel_.scheduler().makeUnschedulable(process.get());
    }

    // Push ciphertext out of the (unlocked part of the) cache so DRAM
    // holds no stale plaintext lines.
    if (options_.cleanCacheAfterLock)
        kernel_.soc().l2().cleanAllMasked();

    // The encrypt sweep re-encrypted every working-set resident.
    workingSet_.clear();

    ++stats_.lockCount;
    stats_.lastLockSeconds = watch.elapsedSeconds();
}

void
Sentry::onUnlock()
{
    os::Kernel::KernelTimer timer(kernel_);
    SimStopwatch watch(kernel_.soc().clock());

    if (pager_)
        pager_->drainOnUnlock();

    for (const auto &process : kernel_.processes()) {
        if (!process->sensitive())
            continue;
        if (!process->schedulable())
            kernel_.scheduler().makeSchedulable(process.get());

        if (!options_.eagerDmaDecrypt)
            continue;
        // DMA regions never fault (devices use physical addresses), so
        // they must be whole before the device resumes.
        for (const os::Vma &vma : process->addressSpace().vmas()) {
            if (vma.type != os::VmaType::DmaRegion)
                continue;
            for (std::size_t page = 0; page < vma.pages(); ++page) {
                const VirtAddr va = vma.base + page * PAGE_SIZE;
                os::Pte *pte = process->pageTable().find(va);
                if (pte == nullptr || !pte->encrypted)
                    continue;
                backend_->decryptPage(pte->frame, pageIv(*process, va));
                pte->encrypted = false;
                pte->young = true;
                stats_.bytesDecryptedEager += PAGE_SIZE;
            }
        }
    }

    stats_.lastUnlockSeconds = watch.elapsedSeconds();
}

void
Sentry::onDeepLock()
{
    if (!options_.scrubKeysOnDeepLock || keysDestroyed_)
        return;
    // Brute-force response: destroy the volatile root key and every
    // trace of the AES state. The encrypted pages in DRAM are now
    // noise; nothing on or off the SoC can decrypt them.
    engine_->scrub();
    keys_->scrub();
    backend_->scrubSecrets();
    keysDestroyed_ = true;
}

bool
Sentry::handleFault(os::Process &process, VirtAddr va, os::Pte &pte)
{
    if (!pte.encrypted)
        return false; // plain young-bit maintenance

    ++stats_.faultsServiced;

    if (keysDestroyed_) {
        // Deep lock destroyed the keys: the page content is gone for
        // good. Hand back a zeroed page (remote-wipe semantics).
        kernel_.soc().memory().fill(pte.frame, 0, PAGE_SIZE);
        pte.encrypted = false;
        pte.young = true;
        stats_.bytesWipedAfterDeepLock += PAGE_SIZE;
        return true;
    }

    const bool deviceLocked =
        kernel_.powerState() == os::PowerState::Locked ||
        kernel_.powerState() == os::PowerState::Suspended;
    const bool lockedBackground =
        deviceLocked && pager_ && backgroundPids_.contains(process.pid());
    if (lockedBackground) {
        pager_->pageIn(process, va, pte);
        return true;
    }

    // Decrypt-on-demand (device unlocked, or a non-pager access).
    const VirtAddr page = os::PageTable::pageOf(va);
    backend_->decryptPage(pte.frame, pageIv(process, page));
    pte.encrypted = false;
    pte.young = true;
    stats_.bytesDecryptedOnDemand += PAGE_SIZE;
    noteWorkingSetPage(process, page);
    return true;
}

void
Sentry::noteWorkingSetPage(os::Process &process, VirtAddr page)
{
    const std::size_t cap = backend_->plaintextWorkingSetCap();
    if (cap == 0)
        return; // unbounded plaintext (Sentry/Amnesia while unlocked)
    workingSet_.emplace_back(process.pid(), page);
    while (workingSet_.size() > cap)
        evictWorkingSetPage();
}

void
Sentry::evictWorkingSetPage()
{
    const auto [pid, va] = workingSet_.front();
    workingSet_.pop_front();
    for (const auto &process : kernel_.processes()) {
        if (process->pid() != pid)
            continue;
        os::Pte *pte = process->pageTable().find(va);
        if (pte == nullptr || !pte->present || pte->encrypted ||
            pte->onSoc) {
            return;
        }
        backend_->encryptPage(pte->frame, pageIv(*process, va));
        pte->encrypted = true;
        pte->young = false;
        ++backend_->costs().evictions;
        return;
    }
}

void
Sentry::registerCryptoProviders()
{
    hw::Soc &soc = kernel_.soc();

    kernel_.cryptoApi().registerImplementation(
        {"aes", "aes-generic", 100,
         [this, &soc](std::span<const std::uint8_t> key) {
             const auto layout =
                 crypto::AesStateLayout::forKeyBytes(
                     static_cast<unsigned>(key.size()));
             const std::size_t frames =
                 alignUp(layout.totalBytes(), PAGE_SIZE) / PAGE_SIZE;
             const PhysAddr base =
                 kernel_.allocator().allocContiguous(frames);
             return std::make_unique<crypto::SimAesEngine>(
                 soc, base, key, crypto::StatePlacement::Dram,
                 /*kernel_path=*/true);
         }});

    if (placement_ == AesPlacement::KernelGeneric)
        return; // nothing better to offer

    const std::string name =
        std::string("aes-onsoc-") + aesPlacementName(placement_);
    kernel_.cryptoApi().registerImplementation(
        {"aes", name, 300,
         [this, &soc](std::span<const std::uint8_t> key) {
             const auto layout =
                 crypto::AesStateLayout::forKeyBytes(
                     static_cast<unsigned>(key.size()));
             PhysAddr base = 0;
             crypto::StatePlacement statePlacement =
                 crypto::StatePlacement::Iram;
             if (placement_ == AesPlacement::LockedL2 &&
                 engineWayAlloc_ != nullptr) {
                 // Each cipher gets its own slice of the locked way;
                 // overflow to iRAM when the way fills up.
                 const OnSocRegion region =
                     engineWayAlloc_->tryAlloc(layout.totalBytes());
                 if (region.valid()) {
                     base = region.base;
                     statePlacement = crypto::StatePlacement::LockedL2;
                 } else {
                     base = iramAlloc_.alloc(layout.totalBytes()).base;
                 }
             } else {
                 base = iramAlloc_.alloc(layout.totalBytes()).base;
             }
             return std::make_unique<crypto::SimAesEngine>(
                 soc, base, key, statePlacement, /*kernel_path=*/true);
         }});

    // Amnesia's dm-crypt path: register-only ciphers (no key schedule
    // in memory, tables in DRAM) outrank even AES On SoC, so block
    // crypto follows the same no-keys-in-DRAM policy as page crypto.
    // MemShield keeps the AES-On-SoC provider: its engine speaks whole
    // pages, not the Crypto API's block interface.
    if (options_.defense == DefenseKind::Amnesia) {
        kernel_.cryptoApi().registerImplementation(
            {"aes", "aes-amnesia", 400,
             [this, &soc](std::span<const std::uint8_t> key) {
                 const auto layout =
                     crypto::AesStateLayout::forKeyBytes(
                         static_cast<unsigned>(key.size()));
                 const std::size_t frames =
                     alignUp(layout.totalBytes(), PAGE_SIZE) / PAGE_SIZE;
                 const PhysAddr base =
                     kernel_.allocator().allocContiguous(frames);
                 return std::make_unique<crypto::SimAesEngine>(
                     soc, base, key, crypto::StatePlacement::Dram,
                     /*kernel_path=*/true,
                     crypto::SecretResidency::RegistersOnly);
             }});
    }
}

SentrySnapshot
Sentry::snapshot() const
{
    return SentrySnapshot{
        placement_,
        options_.backgroundMode,
        iramAlloc_,
        wayManager_.lockedMask(),
        engineWay_,
        engineWayAlloc_ != nullptr
            ? std::optional<OnSocAllocator>(*engineWayAlloc_)
            : std::nullopt,
        keys_->hasPersistentKey(),
        engine_->forkState(),
        pager_ != nullptr
            ? std::optional<LockedCachePager::ForkState>(
                  pager_->forkState())
            : std::nullopt,
        backgroundPids_,
        lockEpoch_,
        keysDestroyed_,
        stats_,
        !kernel_.cryptoApi().implementations().empty(),
        options_.defense,
        backend_->forkState(),
        {workingSet_.begin(), workingSet_.end()}};
}

void
Sentry::forkFrom(const SentrySnapshot &snap)
{
    if (snap.placement != placement_)
        fatal("Sentry::forkFrom: snapshot placement %s does not match "
              "target placement %s",
              aesPlacementName(snap.placement),
              aesPlacementName(placement_));
    if (snap.backgroundMode != options_.backgroundMode)
        fatal("Sentry::forkFrom: background-mode mismatch");
    if (!snap.engine.has_value())
        fatal("Sentry::forkFrom: snapshot lacks engine state");
    if ((pager_ != nullptr) != snap.pager.has_value())
        fatal("Sentry::forkFrom: pager presence mismatch");
    if (snap.defenseKind != options_.defense)
        fatal("Sentry::forkFrom: snapshot defense backend %s does not "
              "match target backend %s",
              defenseKindName(snap.defenseKind),
              defenseKindName(options_.defense));

    iramAlloc_ = snap.iramAlloc;
    wayManager_.restoreLockedMask(snap.lockedWayMask);
    engineWay_ = snap.engineWay;
    engineWayAlloc_ =
        snap.engineWayAlloc.has_value()
            ? std::make_unique<OnSocAllocator>(*snap.engineWayAlloc)
            : nullptr;
    keys_->restorePersistentFlag(snap.hasPersistentKey);
    engine_->restoreForkState(*snap.engine);
    if (pager_ != nullptr)
        pager_->restoreForkState(*snap.pager);
    backgroundPids_ = snap.backgroundPids;
    lockEpoch_ = snap.lockEpoch;
    keysDestroyed_ = snap.keysDestroyed;
    stats_ = snap.stats;
    backend_->restoreForkState(snap.defense);
    workingSet_.assign(snap.plaintextWorkingSet.begin(),
                       snap.plaintextWorkingSet.end());

    // A fresh fork target has an empty crypto registry; give it the
    // same providers the snapshotted device had. (Re-forking the same
    // target keeps its existing registrations — the factories already
    // capture this Sentry and this Soc.)
    if (snap.providersRegistered &&
        kernel_.cryptoApi().implementations().empty())
        registerCryptoProviders();
}

double
Sentry::encryptAllMemoryStrawman()
{
    hw::Soc &soc = kernel_.soc();
    const auto bytes = static_cast<double>(soc.dramRaw().size());
    const double seconds =
        bytes / soc.config().cost.fullMemEncryptBytesPerSec;
    soc.clock().advanceSeconds(seconds);
    soc.energy().charge(
        hw::EnergyCategory::CpuAes,
        soc.config().cost.fullMemEncryptJoulesPerByte * bytes);
    return seconds;
}

} // namespace sentry::core
