#include "core/invariant_checker.hh"

#include <cstdio>

#include "common/bytes.hh"
#include "hw/soc.hh"

namespace sentry::core
{

void
InvariantChecker::addMarker(SecretMarker marker)
{
    markers_.push_back(std::move(marker));
}

CheckOutcome
InvariantChecker::checkLive()
{
    std::vector<std::vector<std::uint8_t>> plaintextMarkers;
    for (const SecretMarker &marker : markers_) {
        if (marker.sensitive)
            plaintextMarkers.push_back(marker.bytes);
    }
    SecurityAudit audit(kernel_, sentry_);
    const AuditReport report = audit.run(plaintextMarkers);
    CheckOutcome outcome;
    if (!report.allPassed()) {
        outcome.ok = false;
        for (const AuditFinding &finding : report.findings) {
            if (!finding.passed) {
                outcome.detail = finding.check + " — " + finding.detail;
                break;
            }
        }
    }
    return outcome;
}

DumpLeaks
InvariantChecker::checkDumps(std::span<const std::uint8_t> dram_dump,
                             std::span<const std::uint8_t> iram_dump) const
{
    DumpLeaks leaks;
    for (const SecretMarker &marker : markers_) {
        const bool found = containsBytes(dram_dump, marker.bytes) ||
                           containsBytes(iram_dump, marker.bytes);
        if (marker.sensitive) {
            ++leaks.sensitiveProbed;
            if (found) {
                ++leaks.sensitiveLeaked;
                if (leaks.firstLeakedOwner.empty())
                    leaks.firstLeakedOwner = marker.owner;
            }
        } else if (found) {
            ++leaks.nonSensitiveLeaks;
        }
    }
    return leaks;
}

CheckOutcome
InvariantChecker::checkIramZeroed(const hw::Soc &soc) const
{
    const auto iram = soc.iramRaw();
    if (allZero(iram))
        return CheckOutcome{};
    // Failure path only: locate the first offending byte for the report.
    std::size_t i = 0;
    while (i < iram.size() && iram[i] == 0)
        ++i;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "iRAM byte 0x%zx non-zero after power event "
                  "(firmware must zero iRAM)",
                  i);
    return CheckOutcome{false, buf};
}

} // namespace sentry::core
