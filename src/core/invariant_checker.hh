/**
 * @file
 * The one shared statement of Sentry's security invariants.
 *
 * Both the fleet scenario engine and the FaultSim fuzzer assert the
 * same properties after every step; this class is that single
 * implementation so the two can never drift apart:
 *
 *   - live-device invariants (checkLive): everything SecurityAudit
 *     verifies — key residency, page states, flush-mask coverage,
 *     absence of the registered plaintext markers from DRAM, freed-page
 *     scrubbing — using the markers registered with addMarker();
 *   - attacker's-view invariants (checkDumps): a memory image obtained
 *     by an attack (DMA dump, cold-boot readout) must not contain any
 *     sensitive marker;
 *   - power-event invariant (checkIramZeroed): after any power loss the
 *     boot firmware must have left iRAM all-zero (Table 2's "0%
 *     recovered" row).
 *
 * The checker owns the marker list (one entry per planted app secret);
 * callers register markers at spawn time and the same list feeds every
 * check.
 */

#ifndef SENTRY_CORE_INVARIANT_CHECKER_HH
#define SENTRY_CORE_INVARIANT_CHECKER_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/security_audit.hh"

namespace sentry::hw
{
class Soc;
}

namespace sentry::core
{

/** One planted secret the invariants are checked against. */
struct SecretMarker
{
    std::string owner;               //!< process/app that holds it
    std::vector<std::uint8_t> bytes; //!< the plaintext pattern
    bool sensitive = true;           //!< Sentry-protected owner?
};

/** Outcome of one invariant check. */
struct CheckOutcome
{
    bool ok = true;
    std::string detail; //!< first violated invariant (empty when ok)
};

/** What an attacker's memory image yielded. */
struct DumpLeaks
{
    unsigned sensitiveProbed = 0; //!< sensitive markers searched for
    unsigned sensitiveLeaked = 0; //!< ...found in the dump (violation)
    unsigned nonSensitiveLeaks = 0; //!< unprotected markers found (ok)
    std::string firstLeakedOwner; //!< owner of the first violation
};

/** The shared invariant set. */
class InvariantChecker
{
  public:
    InvariantChecker(os::Kernel &kernel, Sentry &sentry)
        : kernel_(kernel), sentry_(sentry)
    {}

    /** Register a planted secret; feeds all subsequent checks. */
    void addMarker(SecretMarker marker);

    /** Drop all registered markers. */
    void clearMarkers() { markers_.clear(); }

    /** @return the registered markers. */
    const std::vector<SecretMarker> &markers() const { return markers_; }

    /**
     * Run the full live-device invariant set (SecurityAudit with the
     * sensitive markers). @return the first violation, if any.
     */
    CheckOutcome checkLive();

    /**
     * Grep an attacker-obtained memory image for every marker.
     * Sensitive hits are violations; non-sensitive hits are recorded
     * for context (an unprotected app leaking is expected).
     */
    DumpLeaks checkDumps(std::span<const std::uint8_t> dram_dump,
                         std::span<const std::uint8_t> iram_dump) const;

    /** Assert the post-power-event firmware invariant: iRAM all-zero. */
    CheckOutcome checkIramZeroed(const hw::Soc &soc) const;

  private:
    os::Kernel &kernel_;
    Sentry &sentry_;
    std::vector<SecretMarker> markers_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_INVARIANT_CHECKER_HH
