/**
 * @file
 * Convenience bundle wiring a complete simulated device: the SoC, the
 * kernel, and Sentry. Most examples, tests, and benchmarks start here.
 *
 * Concurrency: a Device is share-nothing. It owns its entire simulated
 * stack and references no cross-device state, so any number of Device
 * instances may run concurrently on different threads (the fleet engine
 * in fleet/ does exactly that). A single Device is not internally
 * synchronised: drive it from one thread at a time. The only
 * process-global mutable state in the library is the atomic quiet flag
 * in common/logging.cc; immutable lazily-initialised singletons (the
 * canonical AES tables, the app profile list) use thread-safe magic
 * statics.
 */

#ifndef SENTRY_CORE_DEVICE_HH
#define SENTRY_CORE_DEVICE_HH

#include <memory>

#include "core/sentry.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"
#include "os/kernel.hh"

namespace sentry::core
{

/**
 * Immutable whole-device checkpoint: Soc + kernel + Sentry state.
 * Produced by Device::snapshot(), held by shared_ptr so one warmed
 * image can fan out to any number of forked devices (including from
 * multiple threads — the snapshot is never mutated after creation).
 */
struct DeviceSnapshot
{
    hw::SocSnapshot soc;
    os::KernelSnapshot kernel;
    SentrySnapshot sentry;
};

/** A booted device with Sentry installed. */
class Device
{
  public:
    /**
     * @param config  platform description (tegra3() / nexus4())
     * @param options Sentry configuration
     */
    explicit Device(const hw::PlatformConfig &config,
                    SentryOptions options = {})
        : soc_(config), kernel_(soc_), sentry_(kernel_, options)
    {}

    hw::Soc &soc() { return soc_; }
    os::Kernel &kernel() { return kernel_; }
    Sentry &sentry() { return sentry_; }

    /** Checkpoint the whole device. Cheap: cell arrays freeze
     * copy-on-write; only small state is deep-copied. */
    std::shared_ptr<const DeviceSnapshot>
    snapshot() const
    {
        return std::make_shared<const DeviceSnapshot>(DeviceSnapshot{
            soc_.snapshot(), kernel_.snapshot(), sentry_.snapshot()});
    }

    /**
     * Overwrite this device's entire simulated state with @p snap. The
     * target must be constructed from the same platform config and
     * Sentry options as the snapshotted device (fatal on mismatch).
     * Re-forking the same target any number of times is supported —
     * that is the boot-once / fan-out pattern. Invalidates raw() spans
     * of this device's memories.
     */
    void
    forkFrom(const DeviceSnapshot &snap)
    {
        soc_.forkFrom(snap.soc);
        kernel_.forkFrom(snap.kernel);
        sentry_.forkFrom(snap.sentry);
    }

  private:
    hw::Soc soc_;
    os::Kernel kernel_;
    Sentry sentry_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_DEVICE_HH
