/**
 * @file
 * Memory-forensics helper: searches simulated storage for secrets, the
 * way an attacker greps a memory dump (and the way our invariant tests
 * assert that Sentry never leaks plaintext to DRAM).
 */

#ifndef SENTRY_CORE_DRAM_SCANNER_HH
#define SENTRY_CORE_DRAM_SCANNER_HH

#include <cstdint>
#include <span>

#include "hw/soc.hh"

namespace sentry::core
{

/** Read-only scans over the device's storage arrays. */
class DramScanner
{
  public:
    explicit DramScanner(const hw::Soc &soc) : soc_(soc) {}

    /** @return true if @p needle appears anywhere in DRAM cells. */
    bool dramContains(std::span<const std::uint8_t> needle) const;

    /** @return true if @p needle appears anywhere in iRAM cells. */
    bool iramContains(std::span<const std::uint8_t> needle) const;

    /** Count aligned occurrences of @p pattern in DRAM (Table 2 grep). */
    std::size_t dramPatternCount(std::span<const std::uint8_t> pattern) const;

    /** Count aligned occurrences of @p pattern in iRAM. */
    std::size_t iramPatternCount(std::span<const std::uint8_t> pattern) const;

  private:
    const hw::Soc &soc_;
};

} // namespace sentry::core

#endif // SENTRY_CORE_DRAM_SCANNER_HH
