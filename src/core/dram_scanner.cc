#include "core/dram_scanner.hh"

#include "common/bytes.hh"

namespace sentry::core
{

bool
DramScanner::dramContains(std::span<const std::uint8_t> needle) const
{
    return containsBytes(soc_.dramRaw(), needle);
}

bool
DramScanner::iramContains(std::span<const std::uint8_t> needle) const
{
    return containsBytes(soc_.iramRaw(), needle);
}

std::size_t
DramScanner::dramPatternCount(std::span<const std::uint8_t> pattern) const
{
    return countPattern(soc_.dramRaw(), pattern);
}

std::size_t
DramScanner::iramPatternCount(std::span<const std::uint8_t> pattern) const
{
    return countPattern(soc_.iramRaw(), pattern);
}

} // namespace sentry::core
