/**
 * @file
 * Locked-L2-cache-way management: the paper's section 4.5 protocol.
 *
 * Locking a way (pseudocode from the paper):
 *   1. flush entire cache            (masked flush: locked ways survive)
 *   2. enable 1 way                  (lockdown register: all other ways
 *                                     are excluded from allocation)
 *   3. write 0xFF in all sensitive data   (warming the way: every line
 *                                     of the way's physical window is
 *                                     allocated into the target way)
 *   4. enable last 7 ways            (the target way is now "disabled" —
 *                                     it still hits, but nothing in it
 *                                     is ever evicted)
 * plus the OS-level change: the target way is added to the flush-way
 * mask so every kernel cache-flush skips it.
 *
 * Each locked way pins a way-aligned 128 KB physical window whose lines
 * then live permanently on the SoC; the stale DRAM beneath them keeps
 * whatever it held before the lock (never the on-SoC data), which is
 * all a DMA read or cold-boot dump can see.
 *
 * Programming the lockdown register requires the TrustZone secure
 * world; on locked-firmware devices (Nexus 4) lockWay() fails.
 */

#ifndef SENTRY_CORE_LOCKED_WAY_MANAGER_HH
#define SENTRY_CORE_LOCKED_WAY_MANAGER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "core/onsoc_allocator.hh"
#include "hw/soc.hh"

namespace sentry::core
{

/** Manages lockdown state and the pinned physical windows. */
class LockedWayManager
{
  public:
    /**
     * @param soc          the device
     * @param window_base  way-aligned physical base of the reserved DRAM
     *                     window backing locked ways (way k pins
     *                     [window_base + k*waySize, +waySize))
     */
    LockedWayManager(hw::Soc &soc, PhysAddr window_base);

    /** @return bytes pinned per way (128 KB on the Tegra 3 config). */
    std::size_t waySize() const;

    /** @return true when cache locking can be used on this device. */
    bool available() const;

    /**
     * Lock the next free way and return its pinned region.
     * @return nullopt when unavailable (no secure world) or when only
     *         one unlocked way would remain (the hardware needs at
     *         least one allocatable way).
     */
    std::optional<OnSocRegion> lockWay();

    /** Unlock a previously locked way, scrubbing its contents first. */
    void unlockWay(const OnSocRegion &region);

    /** @return number of currently locked ways. */
    unsigned lockedWays() const;

    /** @return the physical window base for way @p way. */
    PhysAddr wayWindowBase(unsigned way) const;

    /** @return the locked-way bitmask (for snapshot/fork). */
    std::uint32_t lockedMask() const { return lockedMask_; }

    /** Snapshot/fork restore: overwrite the locked-way bitmask. The
     * lockdown register itself is restored by the L2 fork state. */
    void restoreLockedMask(std::uint32_t mask) { lockedMask_ = mask; }

  private:
    hw::Soc &soc_;
    PhysAddr windowBase_;
    std::uint32_t lockedMask_ = 0;
};

} // namespace sentry::core

#endif // SENTRY_CORE_LOCKED_WAY_MANAGER_HH
