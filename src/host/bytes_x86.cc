/**
 * @file
 * AVX2 byte-scan kernel tier for x86-64.
 *
 * The fleet audits dump and grep every device's whole DRAM after every
 * scenario step, and the Table 2 remanence methodology counts aligned
 * 8-byte pattern strides over full memory images — these scans dominate
 * bench_fleet's host wall once AES is hardware-accelerated.
 */

#include "host/kernels_detail.hh"

#if defined(__x86_64__)

#include <immintrin.h>

namespace sentry::host::detail
{

namespace
{

/** Portable stride loop shared with odd pattern sizes and tails. */
std::size_t
scalarCountPattern(const std::uint8_t *buf, std::size_t len,
                   const std::uint8_t *pattern, std::size_t patternLen,
                   std::size_t startOffset)
{
    std::size_t hits = 0;
    for (std::size_t off = startOffset; off + patternLen <= len;
         off += patternLen) {
        if (std::memcmp(buf + off, pattern, patternLen) == 0)
            ++hits;
    }
    return hits;
}

/** Aligned-stride counting: the 8-byte pattern case compares four
 *  strides per 256-bit lane (the strides tile the buffer exactly). */
__attribute__((target("avx2"))) std::size_t
avx2CountPattern(const std::uint8_t *buf, std::size_t len,
                 const std::uint8_t *pattern, std::size_t patternLen)
{
    if (patternLen != 8)
        return scalarCountPattern(buf, len, pattern, patternLen, 0);
    std::uint64_t pat;
    std::memcpy(&pat, pattern, 8);
    const __m256i vpat =
        _mm256_set1_epi64x(static_cast<long long>(pat));
    std::size_t hits = 0;
    std::size_t off = 0;
    for (; off + 32 <= len; off += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(buf + off));
        const __m256i eq = _mm256_cmpeq_epi64(v, vpat);
        hits += static_cast<unsigned>(__builtin_popcount(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq))));
    }
    return hits + scalarCountPattern(buf, len, pattern, 8, off);
}

/** First+last byte SIMD filter, memcmp on the survivors. */
__attribute__((target("avx2"))) bool
avx2ContainsBytes(const std::uint8_t *haystack, std::size_t hayLen,
                  const std::uint8_t *needle, std::size_t needleLen)
{
    if (needleLen == 0 || needleLen > hayLen)
        return false;
    if (needleLen == 1) {
        return std::memchr(haystack, needle[0], hayLen) != nullptr;
    }
    const __m256i first = _mm256_set1_epi8(
        static_cast<char>(needle[0]));
    const __m256i last = _mm256_set1_epi8(
        static_cast<char>(needle[needleLen - 1]));
    const std::size_t span = hayLen - needleLen + 1;
    std::size_t i = 0;
    for (; i + 32 <= span; i += 32) {
        const __m256i head = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(haystack + i));
        const __m256i tail = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(haystack + i +
                                              needleLen - 1));
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_and_si256(
                _mm256_cmpeq_epi8(head, first),
                _mm256_cmpeq_epi8(tail, last))));
        while (mask != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctz(mask));
            mask &= mask - 1;
            if (std::memcmp(haystack + i + bit + 1, needle + 1,
                            needleLen - 2) == 0)
                return true;
        }
    }
    for (; i < span; ++i) {
        if (haystack[i] == needle[0] &&
            std::memcmp(haystack + i, needle, needleLen) == 0)
            return true;
    }
    return false;
}

__attribute__((target("avx2"))) bool
avx2AllZero(const std::uint8_t *buf, std::size_t len)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 128 <= len; i += 128) {
        auto *p = reinterpret_cast<const __m256i *>(buf + i);
        const __m256i a = _mm256_or_si256(_mm256_loadu_si256(p),
                                          _mm256_loadu_si256(p + 1));
        const __m256i b = _mm256_or_si256(_mm256_loadu_si256(p + 2),
                                          _mm256_loadu_si256(p + 3));
        acc = _mm256_or_si256(acc, _mm256_or_si256(a, b));
    }
    for (; i + 32 <= len; i += 32) {
        acc = _mm256_or_si256(acc,
                              _mm256_loadu_si256(reinterpret_cast<
                                                 const __m256i *>(buf + i)));
    }
    if (!_mm256_testz_si256(acc, acc))
        return false;
    std::uint8_t tail = 0;
    for (; i < len; ++i)
        tail |= buf[i];
    return tail == 0;
}

} // namespace

bool
x86BytesKernel(BytesKernel &out, const CpuFeatures &features)
{
    if (!features.avx2)
        return false;
    out = BytesKernel{"avx2", avx2CountPattern, avx2ContainsBytes,
                      avx2AllZero};
    return true;
}

} // namespace sentry::host::detail

#else // !__x86_64__

namespace sentry::host::detail
{

bool
x86BytesKernel(BytesKernel &out, const CpuFeatures &features)
{
    (void)out;
    (void)features;
    return false;
}

} // namespace sentry::host::detail

#endif
