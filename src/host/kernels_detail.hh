/**
 * @file
 * Internal seams between the registry (host/kernels.cc) and the
 * per-architecture kernel implementations. Each probe fills @p out and
 * returns true when this build *and* this machine can run the tier;
 * content verification happens in the registry, not here.
 */

#ifndef SENTRY_HOST_KERNELS_DETAIL_HH
#define SENTRY_HOST_KERNELS_DETAIL_HH

#include "host/kernels.hh"

namespace sentry::host::detail
{

/** AES-NI (+ VAES when available) tier; x86-64 builds only. */
bool x86AesKernel(AesKernel &out, const CpuFeatures &features);

/** ARMv8 cryptographic-extension tier; aarch64 builds only. */
bool armAesKernel(AesKernel &out, const CpuFeatures &features);

/** AVX2 byte-scan tier; x86-64 builds only. */
bool x86BytesKernel(BytesKernel &out, const CpuFeatures &features);

} // namespace sentry::host::detail

#endif // SENTRY_HOST_KERNELS_DETAIL_HH
