/**
 * @file
 * AES-NI (and VAES) kernel tier for x86-64.
 *
 * Every function carries its own `target` attribute, so this file
 * compiles into any x86-64 binary and the registry only calls the
 * accelerated entry points after cpuid says the machine has them.
 *
 * Round-key format: AesKeySchedule stores round keys as big-endian
 * packed 32-bit words (the T-table convention), so an AES-NI round-key
 * register is simply the four words of a round serialised big-endian.
 * The decryption schedule is already in equivalent-inverse-cipher form
 * (reversed order, InvMixColumns on the middle rounds) — exactly the
 * key layout `aesdec`/`aesdeclast` expect.
 */

#include "host/kernels_detail.hh"

#if defined(__x86_64__)

#include <immintrin.h>

#include "crypto/aes_round.hh"

namespace sentry::host::detail
{

namespace
{

/** Serialised round keys for one direction (rounds() + 1 registers). */
struct RoundKeys
{
    __m128i rk[15];
    unsigned nr;
};

RoundKeys
loadRoundKeys(const crypto::AesKeySchedule &schedule, bool encrypt)
{
    RoundKeys keys;
    keys.nr = schedule.rounds();
    const auto words = encrypt ? schedule.encWords() : schedule.decWords();
    alignas(16) std::uint8_t bytes[16];
    for (unsigned r = 0; r <= keys.nr; ++r) {
        for (unsigned w = 0; w < 4; ++w)
            crypto::storeBe32(bytes + 4 * w, words[4 * r + w]);
        keys.rk[r] =
            _mm_load_si128(reinterpret_cast<const __m128i *>(bytes));
    }
    return keys;
}

__attribute__((target("aes"))) inline __m128i
encryptOne(const RoundKeys &keys, __m128i x)
{
    x = _mm_xor_si128(x, keys.rk[0]);
    for (unsigned r = 1; r < keys.nr; ++r)
        x = _mm_aesenc_si128(x, keys.rk[r]);
    return _mm_aesenclast_si128(x, keys.rk[keys.nr]);
}

__attribute__((target("aes"))) inline __m128i
decryptOne(const RoundKeys &keys, __m128i x)
{
    x = _mm_xor_si128(x, keys.rk[0]);
    for (unsigned r = 1; r < keys.nr; ++r)
        x = _mm_aesdec_si128(x, keys.rk[r]);
    return _mm_aesdeclast_si128(x, keys.rk[keys.nr]);
}

__attribute__((target("aes"))) void
aesniEncryptBlock(const crypto::AesKeySchedule &schedule,
                  const std::uint8_t in[16], std::uint8_t out[16])
{
    const RoundKeys keys = loadRoundKeys(schedule, true);
    const __m128i x = encryptOne(
        keys, _mm_loadu_si128(reinterpret_cast<const __m128i *>(in)));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), x);
}

__attribute__((target("aes"))) void
aesniDecryptBlock(const crypto::AesKeySchedule &schedule,
                  const std::uint8_t in[16], std::uint8_t out[16])
{
    const RoundKeys keys = loadRoundKeys(schedule, false);
    const __m128i x = decryptOne(
        keys, _mm_loadu_si128(reinterpret_cast<const __m128i *>(in)));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), x);
}

__attribute__((target("aes"))) void
aesniCbcEncrypt(const crypto::AesKeySchedule &schedule,
                const std::uint8_t iv[16], std::uint8_t *data,
                std::size_t len)
{
    const RoundKeys keys = loadRoundKeys(schedule, true);
    __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i *>(iv));
    for (std::size_t off = 0; off < len; off += 16) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + off));
        chain = encryptOne(keys, _mm_xor_si128(x, chain));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(data + off), chain);
    }
}

/** 4-wide pipelined CBC decrypt (the blocks are independent until the
 *  final chaining XOR, so four decrypt streams hide the aesdec latency). */
__attribute__((target("aes"))) void
aesniCbcDecrypt(const crypto::AesKeySchedule &schedule,
                const std::uint8_t iv[16], std::uint8_t *data,
                std::size_t len)
{
    const RoundKeys keys = loadRoundKeys(schedule, false);
    __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i *>(iv));
    std::size_t off = 0;
    while (len - off >= 64) {
        auto *p = reinterpret_cast<const __m128i *>(data + off);
        const __m128i c0 = _mm_loadu_si128(p);
        const __m128i c1 = _mm_loadu_si128(p + 1);
        const __m128i c2 = _mm_loadu_si128(p + 2);
        const __m128i c3 = _mm_loadu_si128(p + 3);
        __m128i x0 = _mm_xor_si128(c0, keys.rk[0]);
        __m128i x1 = _mm_xor_si128(c1, keys.rk[0]);
        __m128i x2 = _mm_xor_si128(c2, keys.rk[0]);
        __m128i x3 = _mm_xor_si128(c3, keys.rk[0]);
        for (unsigned r = 1; r < keys.nr; ++r) {
            x0 = _mm_aesdec_si128(x0, keys.rk[r]);
            x1 = _mm_aesdec_si128(x1, keys.rk[r]);
            x2 = _mm_aesdec_si128(x2, keys.rk[r]);
            x3 = _mm_aesdec_si128(x3, keys.rk[r]);
        }
        x0 = _mm_aesdeclast_si128(x0, keys.rk[keys.nr]);
        x1 = _mm_aesdeclast_si128(x1, keys.rk[keys.nr]);
        x2 = _mm_aesdeclast_si128(x2, keys.rk[keys.nr]);
        x3 = _mm_aesdeclast_si128(x3, keys.rk[keys.nr]);
        auto *q = reinterpret_cast<__m128i *>(data + off);
        _mm_storeu_si128(q, _mm_xor_si128(x0, chain));
        _mm_storeu_si128(q + 1, _mm_xor_si128(x1, c0));
        _mm_storeu_si128(q + 2, _mm_xor_si128(x2, c1));
        _mm_storeu_si128(q + 3, _mm_xor_si128(x3, c2));
        chain = c3;
        off += 64;
    }
    while (off < len) {
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + off));
        const __m128i x = _mm_xor_si128(decryptOne(keys, c), chain);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(data + off), x);
        chain = c;
        off += 16;
    }
}

#if defined(__GNUC__) && (__GNUC__ >= 10 || defined(__clang__))
#define SENTRY_HAVE_VAES 1
#endif

#ifdef SENTRY_HAVE_VAES
/** 8-wide CBC decrypt on 256-bit lanes. The chaining vectors
 *  (c_{i-1}, c_i) are built from registers — never re-read from the
 *  buffer, which is being overwritten with plaintext in place. */
__attribute__((target("aes,avx2,vaes"))) void
vaesCbcDecrypt(const crypto::AesKeySchedule &schedule,
               const std::uint8_t iv[16], std::uint8_t *data,
               std::size_t len)
{
    const RoundKeys keys = loadRoundKeys(schedule, false);
    __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i *>(iv));
    std::size_t off = 0;

    if (len >= 128) {
        __m256i rk[15];
        for (unsigned r = 0; r <= keys.nr; ++r)
            rk[r] = _mm256_broadcastsi128_si256(keys.rk[r]);
        while (len - off >= 128) {
            auto *p = reinterpret_cast<const __m256i *>(data + off);
            const __m256i c01 = _mm256_loadu_si256(p);
            const __m256i c23 = _mm256_loadu_si256(p + 1);
            const __m256i c45 = _mm256_loadu_si256(p + 2);
            const __m256i c67 = _mm256_loadu_si256(p + 3);
            // prevNM = (c_{N-1}, c_N): lane-shift the ciphertext stream
            // by one block, seeding the low lane with the running chain.
            const __m256i prev01 = _mm256_inserti128_si256(
                _mm256_castsi128_si256(chain),
                _mm256_castsi256_si128(c01), 1);
            const __m256i prev23 = _mm256_permute2x128_si256(c01, c23, 0x21);
            const __m256i prev45 = _mm256_permute2x128_si256(c23, c45, 0x21);
            const __m256i prev67 = _mm256_permute2x128_si256(c45, c67, 0x21);
            __m256i x0 = _mm256_xor_si256(c01, rk[0]);
            __m256i x1 = _mm256_xor_si256(c23, rk[0]);
            __m256i x2 = _mm256_xor_si256(c45, rk[0]);
            __m256i x3 = _mm256_xor_si256(c67, rk[0]);
            for (unsigned r = 1; r < keys.nr; ++r) {
                x0 = _mm256_aesdec_epi128(x0, rk[r]);
                x1 = _mm256_aesdec_epi128(x1, rk[r]);
                x2 = _mm256_aesdec_epi128(x2, rk[r]);
                x3 = _mm256_aesdec_epi128(x3, rk[r]);
            }
            x0 = _mm256_aesdeclast_epi128(x0, rk[keys.nr]);
            x1 = _mm256_aesdeclast_epi128(x1, rk[keys.nr]);
            x2 = _mm256_aesdeclast_epi128(x2, rk[keys.nr]);
            x3 = _mm256_aesdeclast_epi128(x3, rk[keys.nr]);
            chain = _mm256_extracti128_si256(c67, 1);
            auto *q = reinterpret_cast<__m256i *>(data + off);
            _mm256_storeu_si256(q, _mm256_xor_si256(x0, prev01));
            _mm256_storeu_si256(q + 1, _mm256_xor_si256(x1, prev23));
            _mm256_storeu_si256(q + 2, _mm256_xor_si256(x2, prev45));
            _mm256_storeu_si256(q + 3, _mm256_xor_si256(x3, prev67));
            off += 128;
        }
    }
    while (off < len) {
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + off));
        const __m128i x = _mm_xor_si128(decryptOne(keys, c), chain);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(data + off), x);
        chain = c;
        off += 16;
    }
}
#endif // SENTRY_HAVE_VAES

} // namespace

bool
x86AesKernel(AesKernel &out, const CpuFeatures &features)
{
    if (!features.aesni)
        return false;
    out = AesKernel{"aes-ni", aesniEncryptBlock, aesniDecryptBlock,
                    aesniCbcEncrypt, aesniCbcDecrypt};
#ifdef SENTRY_HAVE_VAES
    if (features.vaes) {
        out.tier = "aes-ni+vaes";
        out.cbcDecrypt = vaesCbcDecrypt;
    }
#endif
    return true;
}

} // namespace sentry::host::detail

#else // !__x86_64__

namespace sentry::host::detail
{

bool
x86AesKernel(AesKernel &out, const CpuFeatures &features)
{
    (void)out;
    (void)features;
    return false;
}

} // namespace sentry::host::detail

#endif
