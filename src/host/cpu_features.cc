#include "host/cpu_features.hh"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif
#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace sentry::host
{

namespace
{

#if defined(__x86_64__) || defined(__i386__)

CpuFeatures
detect()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        f.aesni = (ecx & bit_AES) != 0;
        f.pclmul = (ecx & bit_PCLMUL) != 0;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.avx2 = (ebx & bit_AVX2) != 0;
        f.vaes = (ecx & bit_VAES) != 0;
    }
    // VAES without AVX2 is not a configuration we generate code for.
    f.vaes = f.vaes && f.avx2;
    return f;
}

#elif defined(__aarch64__)

CpuFeatures
detect()
{
    CpuFeatures f;
#if defined(__linux__)
    const unsigned long hwcap = getauxval(AT_HWCAP);
    f.armAes = (hwcap & (1ul << 3)) != 0;  // HWCAP_AES
    f.armNeon = (hwcap & (1ul << 1)) != 0; // HWCAP_ASIMD
#elif defined(__ARM_FEATURE_CRYPTO) || defined(__ARM_FEATURE_AES)
    // No runtime probe available (e.g. macOS): trust the compile target.
    f.armAes = true;
    f.armNeon = true;
#endif
    return f;
}

#else

CpuFeatures
detect()
{
    return CpuFeatures{};
}

#endif

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = detect();
    return features;
}

bool
forcedPortable()
{
    static const bool forced = [] {
        const char *env = std::getenv("SENTRY_FORCE_PORTABLE");
        return env != nullptr && env[0] != '\0' &&
               !(env[0] == '0' && env[1] == '\0');
    }();
    return forced;
}

std::string
CpuFeatures::summary() const
{
#if defined(__x86_64__) || defined(__i386__)
    std::string out = "x86-64";
    if (aesni)
        out += " aes-ni";
    if (pclmul)
        out += " pclmul";
    if (avx2)
        out += " avx2";
    if (vaes)
        out += " vaes";
#elif defined(__aarch64__)
    std::string out = "aarch64";
    if (armNeon)
        out += " asimd";
    if (armAes)
        out += " aes";
#else
    std::string out = "generic";
#endif
    return out;
}

} // namespace sentry::host
