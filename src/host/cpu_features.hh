/**
 * @file
 * Host CPU feature detection for the kernel registry (host/kernels.hh).
 *
 * Detection runs once per process and answers one question: which
 * accelerated kernel tiers is this machine *capable* of running? The
 * registry separately decides which tier actually runs (content
 * verification against the portable tier, SENTRY_FORCE_PORTABLE).
 */

#ifndef SENTRY_HOST_CPU_FEATURES_HH
#define SENTRY_HOST_CPU_FEATURES_HH

#include <string>

namespace sentry::host
{

/** Capability bits of the host CPU relevant to sentry's fast paths. */
struct CpuFeatures
{
    // x86-64
    bool aesni = false;  //!< AES-NI block instructions
    bool pclmul = false; //!< carry-less multiply
    bool avx2 = false;   //!< 256-bit integer SIMD
    bool vaes = false;   //!< vector AES (256-bit lanes)
    // aarch64
    bool armAes = false;  //!< ARMv8 cryptographic extension (AESE/AESD)
    bool armNeon = false; //!< AdvSIMD

    /** @return "x86-64 aes-ni avx2 vaes"-style one-liner (stable order). */
    std::string summary() const;
};

/** @return the host's capabilities (detected once, then cached). */
const CpuFeatures &cpuFeatures();

/**
 * @return true when SENTRY_FORCE_PORTABLE was set (to anything but "" or
 * "0") in the environment when the registry first initialised. Pins every
 * hot path to the portable tier — the triage switch for drift suspicion.
 */
bool forcedPortable();

} // namespace sentry::host

#endif // SENTRY_HOST_CPU_FEATURES_HH
