/**
 * @file
 * ARMv8 cryptographic-extension kernel tier for aarch64.
 *
 * AESE performs AddRoundKey *before* SubBytes/ShiftRows (unlike x86's
 * aesenc, which adds the key after), so the encrypt loop feeds the
 * plain encryption schedule and folds the final AddRoundKey into an
 * explicit XOR. Decryption uses the same equivalent-inverse-cipher
 * schedule the T-table and AES-NI tiers use: AESD XORs the key first,
 * and the inter-round AESIMC keeps state and keys in the same
 * InvMixColumns domain.
 *
 * This tier cannot be exercised on an x86 CI machine; the registry's
 * verification-on-first-use KAT gates it at runtime on real ARM hosts,
 * so a miscompiled or miswritten kernel degrades to portable instead of
 * corrupting ciphertext.
 */

#include "host/kernels_detail.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "crypto/aes_round.hh"

namespace sentry::host::detail
{

namespace
{

struct RoundKeys
{
    uint8x16_t rk[15];
    unsigned nr;
};

RoundKeys
loadRoundKeys(const crypto::AesKeySchedule &schedule, bool encrypt)
{
    RoundKeys keys;
    keys.nr = schedule.rounds();
    const auto words = encrypt ? schedule.encWords() : schedule.decWords();
    std::uint8_t bytes[16];
    for (unsigned r = 0; r <= keys.nr; ++r) {
        for (unsigned w = 0; w < 4; ++w)
            crypto::storeBe32(bytes + 4 * w, words[4 * r + w]);
        keys.rk[r] = vld1q_u8(bytes);
    }
    return keys;
}

__attribute__((target("+crypto"))) inline uint8x16_t
encryptOne(const RoundKeys &keys, uint8x16_t x)
{
    for (unsigned r = 0; r + 1 < keys.nr; ++r)
        x = vaesmcq_u8(vaeseq_u8(x, keys.rk[r]));
    x = vaeseq_u8(x, keys.rk[keys.nr - 1]);
    return veorq_u8(x, keys.rk[keys.nr]);
}

__attribute__((target("+crypto"))) inline uint8x16_t
decryptOne(const RoundKeys &keys, uint8x16_t x)
{
    for (unsigned r = 0; r + 1 < keys.nr; ++r)
        x = vaesimcq_u8(vaesdq_u8(x, keys.rk[r]));
    x = vaesdq_u8(x, keys.rk[keys.nr - 1]);
    return veorq_u8(x, keys.rk[keys.nr]);
}

__attribute__((target("+crypto"))) void
armEncryptBlock(const crypto::AesKeySchedule &schedule,
                const std::uint8_t in[16], std::uint8_t out[16])
{
    const RoundKeys keys = loadRoundKeys(schedule, true);
    vst1q_u8(out, encryptOne(keys, vld1q_u8(in)));
}

__attribute__((target("+crypto"))) void
armDecryptBlock(const crypto::AesKeySchedule &schedule,
                const std::uint8_t in[16], std::uint8_t out[16])
{
    const RoundKeys keys = loadRoundKeys(schedule, false);
    vst1q_u8(out, decryptOne(keys, vld1q_u8(in)));
}

__attribute__((target("+crypto"))) void
armCbcEncrypt(const crypto::AesKeySchedule &schedule,
              const std::uint8_t iv[16], std::uint8_t *data,
              std::size_t len)
{
    const RoundKeys keys = loadRoundKeys(schedule, true);
    uint8x16_t chain = vld1q_u8(iv);
    for (std::size_t off = 0; off < len; off += 16) {
        chain = encryptOne(keys, veorq_u8(vld1q_u8(data + off), chain));
        vst1q_u8(data + off, chain);
    }
}

/** 4-wide pipelined CBC decrypt (independent until the chaining XOR). */
__attribute__((target("+crypto"))) void
armCbcDecrypt(const crypto::AesKeySchedule &schedule,
              const std::uint8_t iv[16], std::uint8_t *data,
              std::size_t len)
{
    const RoundKeys keys = loadRoundKeys(schedule, false);
    uint8x16_t chain = vld1q_u8(iv);
    std::size_t off = 0;
    while (len - off >= 64) {
        const uint8x16_t c0 = vld1q_u8(data + off);
        const uint8x16_t c1 = vld1q_u8(data + off + 16);
        const uint8x16_t c2 = vld1q_u8(data + off + 32);
        const uint8x16_t c3 = vld1q_u8(data + off + 48);
        uint8x16_t x0 = c0, x1 = c1, x2 = c2, x3 = c3;
        for (unsigned r = 0; r + 1 < keys.nr; ++r) {
            x0 = vaesimcq_u8(vaesdq_u8(x0, keys.rk[r]));
            x1 = vaesimcq_u8(vaesdq_u8(x1, keys.rk[r]));
            x2 = vaesimcq_u8(vaesdq_u8(x2, keys.rk[r]));
            x3 = vaesimcq_u8(vaesdq_u8(x3, keys.rk[r]));
        }
        x0 = veorq_u8(vaesdq_u8(x0, keys.rk[keys.nr - 1]), keys.rk[keys.nr]);
        x1 = veorq_u8(vaesdq_u8(x1, keys.rk[keys.nr - 1]), keys.rk[keys.nr]);
        x2 = veorq_u8(vaesdq_u8(x2, keys.rk[keys.nr - 1]), keys.rk[keys.nr]);
        x3 = veorq_u8(vaesdq_u8(x3, keys.rk[keys.nr - 1]), keys.rk[keys.nr]);
        vst1q_u8(data + off, veorq_u8(x0, chain));
        vst1q_u8(data + off + 16, veorq_u8(x1, c0));
        vst1q_u8(data + off + 32, veorq_u8(x2, c1));
        vst1q_u8(data + off + 48, veorq_u8(x3, c2));
        chain = c3;
        off += 64;
    }
    while (off < len) {
        const uint8x16_t c = vld1q_u8(data + off);
        vst1q_u8(data + off, veorq_u8(decryptOne(keys, c), chain));
        chain = c;
        off += 16;
    }
}

} // namespace

bool
armAesKernel(AesKernel &out, const CpuFeatures &features)
{
    if (!features.armAes)
        return false;
    out = AesKernel{"armv8-ce", armEncryptBlock, armDecryptBlock,
                    armCbcEncrypt, armCbcDecrypt};
    return true;
}

} // namespace sentry::host::detail

#else // !__aarch64__

namespace sentry::host::detail
{

bool
armAesKernel(AesKernel &out, const CpuFeatures &features)
{
    (void)out;
    (void)features;
    return false;
}

} // namespace sentry::host::detail

#endif
