#include "host/kernels.hh"

#include <atomic>
#include <cstring>
#include <vector>

#include "common/types.hh"
#include "crypto/aes_round.hh"
#include "host/kernels_detail.hh"

namespace sentry::host
{

namespace
{

// ---------------------------------------------------------------------
// Portable tier: exactly the code the scattered fast paths ran before
// the registry existed (T-table AES via the native round engine, the
// stride/memchr scan loops). It is both the fallback and the reference
// every accelerated tier is verified against.
// ---------------------------------------------------------------------

void
portableEncryptBlock(const crypto::AesKeySchedule &schedule,
                     const std::uint8_t in[16], std::uint8_t out[16])
{
    crypto::NativeAesEnv env(schedule);
    crypto::aesEncryptBlock(env, in, out);
}

void
portableDecryptBlock(const crypto::AesKeySchedule &schedule,
                     const std::uint8_t in[16], std::uint8_t out[16])
{
    crypto::NativeAesEnv env(schedule);
    crypto::aesDecryptBlock(env, in, out);
}

void
portableCbcEncrypt(const crypto::AesKeySchedule &schedule,
                   const std::uint8_t iv[16], std::uint8_t *data,
                   std::size_t len)
{
    crypto::NativeAesEnv env(schedule);
    std::uint8_t chain[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
        xorBlock16(data + off, chain);
        crypto::aesEncryptBlock(env, data + off, data + off);
        std::memcpy(chain, data + off, 16);
    }
}

void
portableCbcDecrypt(const crypto::AesKeySchedule &schedule,
                   const std::uint8_t iv[16], std::uint8_t *data,
                   std::size_t len)
{
    crypto::NativeAesEnv env(schedule);
    std::uint8_t chain[16];
    std::uint8_t next[16];
    std::memcpy(chain, iv, 16);
    for (std::size_t off = 0; off < len; off += 16) {
        std::memcpy(next, data + off, 16);
        crypto::aesDecryptBlock(env, data + off, data + off);
        xorBlock16(data + off, chain);
        std::memcpy(chain, next, 16);
    }
}

std::size_t
portableCountPattern(const std::uint8_t *buf, std::size_t len,
                     const std::uint8_t *pattern, std::size_t patternLen)
{
    std::size_t hits = 0;
    for (std::size_t off = 0; off + patternLen <= len; off += patternLen) {
        if (std::memcmp(buf + off, pattern, patternLen) == 0)
            ++hits;
    }
    return hits;
}

bool
portableContainsBytes(const std::uint8_t *haystack, std::size_t hayLen,
                      const std::uint8_t *needle, std::size_t needleLen)
{
    if (needleLen == 0 || needleLen > hayLen)
        return false;
    const std::uint8_t *p = haystack;
    const std::uint8_t *end = haystack + hayLen - needleLen + 1;
    while (p < end) {
        const auto *hit = static_cast<const std::uint8_t *>(std::memchr(
            p, needle[0], static_cast<std::size_t>(end - p)));
        if (hit == nullptr)
            return false;
        if (std::memcmp(hit, needle, needleLen) == 0)
            return true;
        p = hit + 1;
    }
    return false;
}

bool
portableAllZero(const std::uint8_t *buf, std::size_t len)
{
    std::uint64_t acc = 0;
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, buf + i, 8);
        acc |= w;
    }
    for (; i < len; ++i)
        acc |= buf[i];
    return acc == 0;
}

constexpr AesKernel PORTABLE_AES = {
    "portable",        portableEncryptBlock, portableDecryptBlock,
    portableCbcEncrypt, portableCbcDecrypt,
};

constexpr BytesKernel PORTABLE_BYTES = {
    "portable",
    portableCountPattern,
    portableContainsBytes,
    portableAllZero,
};

// ---------------------------------------------------------------------
// Verification on first use: an accelerated tier is adopted only after
// it reproduces the portable tier bit for bit. Mismatch means a broken
// kernel (or a miswired CPU probe) and silently costs speed, never
// correctness.
// ---------------------------------------------------------------------

/** Deterministic filler (split-mix style) for verification buffers. */
void
fillDeterministic(std::uint8_t *buf, std::size_t len, std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < len; ++i) {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        buf[i] = static_cast<std::uint8_t>(z ^ (z >> 31));
    }
}

bool
verifyAesKernel(const AesKernel &candidate)
{
    // FIPS-197 appendix C known answers, one per key size.
    static const struct
    {
        std::size_t keyBytes;
        const char *cipher;
    } KATS[] = {
        {16, "69c4e0d86a7b0430d8cdb78070b4c55a"},
        {24, "dda97ca4864cdfe06eaf70a0ec0d7191"},
        {32, "8ea2b7ca516745bfeafc49904b496089"},
    };
    const std::uint8_t plain[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                    0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                    0xcc, 0xdd, 0xee, 0xff};

    for (const auto &kat : KATS) {
        std::uint8_t key[32];
        for (std::size_t i = 0; i < kat.keyBytes; ++i)
            key[i] = static_cast<std::uint8_t>(i);
        const crypto::AesKeySchedule schedule({key, kat.keyBytes});

        std::uint8_t want[16], got[16];
        for (std::size_t i = 0; i < 16; ++i) {
            const char hi = kat.cipher[2 * i];
            const char lo = kat.cipher[2 * i + 1];
            auto nib = [](char c) {
                return c <= '9' ? c - '0' : c - 'a' + 10;
            };
            want[i] = static_cast<std::uint8_t>((nib(hi) << 4) | nib(lo));
        }
        candidate.encryptBlock(schedule, plain, got);
        if (std::memcmp(got, want, 16) != 0)
            return false;
        candidate.decryptBlock(schedule, want, got);
        if (std::memcmp(got, plain, 16) != 0)
            return false;

        // CBC round trips at lengths that exercise the wide lanes, the
        // scalar tails, and single-block calls, cross-checked against
        // the portable tier on pseudorandom data.
        for (const std::size_t len : {std::size_t{16}, std::size_t{80},
                                      std::size_t{512}, std::size_t{2048}}) {
            std::vector<std::uint8_t> a(len), b(len);
            std::uint8_t iv[16];
            fillDeterministic(a.data(), len, 0xc0ffee00 + len);
            fillDeterministic(iv, 16, len);
            b = a;
            PORTABLE_AES.cbcEncrypt(schedule, iv, a.data(), len);
            candidate.cbcEncrypt(schedule, iv, b.data(), len);
            if (a != b)
                return false;
            b = a;
            PORTABLE_AES.cbcDecrypt(schedule, iv, a.data(), len);
            candidate.cbcDecrypt(schedule, iv, b.data(), len);
            if (a != b)
                return false;
        }
    }
    return true;
}

bool
verifyBytesKernel(const BytesKernel &candidate)
{
    std::vector<std::uint8_t> hay(4096 + 13);
    fillDeterministic(hay.data(), hay.size(), 0x5ca1ab1e);

    const std::uint8_t pat8[8] = {0xde, 0xc0, 0xde, 0xd0, 0x0d, 0x1e, 0xe7, 0x5e};
    // Plant stride-aligned copies, including one straddling the last
    // full stride, plus an unaligned copy countPattern must NOT count.
    std::memcpy(hay.data() + 8 * 3, pat8, 8);
    std::memcpy(hay.data() + 8 * 200, pat8, 8);
    std::memcpy(hay.data() + 8 * 511, pat8, 8);
    std::memcpy(hay.data() + 8 * 100 + 3, pat8, 8);

    for (std::size_t len : {hay.size(), std::size_t{64}, std::size_t{7},
                            std::size_t{0}}) {
        if (candidate.countPattern(hay.data(), len, pat8, 8) !=
            PORTABLE_BYTES.countPattern(hay.data(), len, pat8, 8))
            return false;
    }
    const std::uint8_t pat3[3] = {0xaa, 0xbb, 0xcc};
    if (candidate.countPattern(hay.data(), hay.size(), pat3, 3) !=
        PORTABLE_BYTES.countPattern(hay.data(), hay.size(), pat3, 3))
        return false;

    // containsBytes: present (middle, head, tail), absent, and
    // single-byte needles.
    std::uint8_t needle[21];
    std::memcpy(needle, hay.data() + 1234, sizeof(needle));
    const std::uint8_t absent[5] = {0x00, 0x01, 0x02, 0x03, 0x04};
    struct
    {
        const std::uint8_t *n;
        std::size_t len;
    } probes[] = {
        {needle, sizeof(needle)}, {hay.data(), 16},
        {hay.data() + hay.size() - 9, 9}, {absent, sizeof(absent)},
        {needle, 1},              {needle, 2},
    };
    for (const auto &probe : probes) {
        if (candidate.containsBytes(hay.data(), hay.size(), probe.n,
                                    probe.len) !=
            PORTABLE_BYTES.containsBytes(hay.data(), hay.size(), probe.n,
                                         probe.len))
            return false;
    }

    std::vector<std::uint8_t> zeros(3000, 0);
    if (!candidate.allZero(zeros.data(), zeros.size()))
        return false;
    for (const std::size_t flip : {std::size_t{0}, std::size_t{1234},
                                   zeros.size() - 1}) {
        zeros[flip] = 1;
        if (candidate.allZero(zeros.data(), zeros.size()))
            return false;
        zeros[flip] = 0;
    }
    return true;
}

// ---------------------------------------------------------------------
// Registry assembly.
// ---------------------------------------------------------------------

Kernels
buildKernels()
{
    Kernels k{PORTABLE_AES, PORTABLE_BYTES};
    if (forcedPortable())
        return k;

    const CpuFeatures &features = cpuFeatures();
    AesKernel aes;
    if ((detail::x86AesKernel(aes, features) ||
         detail::armAesKernel(aes, features)) &&
        verifyAesKernel(aes)) {
        k.aes = aes;
    }
    BytesKernel bytes;
    if (detail::x86BytesKernel(bytes, features) &&
        verifyBytesKernel(bytes)) {
        k.bytes = bytes;
    }
    return k;
}

const Kernels &
defaultKernels()
{
    static const Kernels k = buildKernels();
    return k;
}

std::atomic<const Kernels *> testOverride{nullptr};

} // namespace

const Kernels &
kernels()
{
    const Kernels *override = testOverride.load(std::memory_order_acquire);
    return override != nullptr ? *override : defaultKernels();
}

const Kernels &
portableKernels()
{
    static const Kernels k{PORTABLE_AES, PORTABLE_BYTES};
    return k;
}

void
setActiveKernelsForTest(const Kernels *kernels)
{
    testOverride.store(kernels, std::memory_order_release);
}

std::string
hostInfoString()
{
    const Kernels &k = kernels();
    std::string out = "host cpu:       " + cpuFeatures().summary();
    if (forcedPortable())
        out += " (SENTRY_FORCE_PORTABLE)";
    out += "\naes kernel:     ";
    out += k.aes.tier;
    out += "  (block + CBC: kcryptd workers, MemShield engine, native "
           "audited tier)";
    out += "\nbytes kernel:   ";
    out += k.bytes.tier;
    out += "  (fleet audit scans, remanence pattern counts)";
    out += "\ntrace emission: batched per bus burst (sync subscribers "
           "dispatch inline)";
    out += "\n";
    return out;
}

std::string
hostFeaturesKey()
{
    const Kernels &k = kernels();
    std::string out = cpuFeatures().summary();
    if (forcedPortable())
        out += " forced-portable";
    out += " / aes=";
    out += k.aes.tier;
    out += " bytes=";
    out += k.bytes.tier;
    return out;
}

} // namespace sentry::host
