/**
 * @file
 * The host kernel registry: one dispatch point for every host-side hot
 * path (DESIGN.md section 14).
 *
 * The simulator burns host CPU in three places that have nothing to do
 * with simulated semantics: bulk AES over host buffers (kcryptd
 * workers, the MemShield engine, the native tier of the audited fast
 * path), whole-memory scans (fleet audits grep every device's DRAM
 * after every scenario step), and cache-line copies in the L2 replay
 * loops. Each of those calls through a `Kernels` entry selected once at
 * startup:
 *
 *   - feature detection (host/cpu_features.hh) picks the best candidate
 *     tier the machine supports (AES-NI/VAES on x86-64, the ARMv8
 *     crypto extension on aarch64, AVX2 for the byte scans);
 *   - the candidate is *content-verified on first use*: it must
 *     reproduce the portable tier bit for bit on known-answer vectors
 *     and pseudorandom buffers, or the registry silently falls back to
 *     portable — an accelerated tier can be slower, never different;
 *   - `SENTRY_FORCE_PORTABLE=1` in the environment pins the portable
 *     tier regardless, which is the first switch to flip when triaging
 *     cross-machine drift in bench output.
 *
 * Every kernel is a plain function pointer over plain buffers: tiers
 * differ in host instruction selection only, never in results, so every
 * `sim_*` metric, ciphertext, and replay digest is identical across
 * tiers by construction (and enforced by tests/test_host_kernels.cc).
 */

#ifndef SENTRY_HOST_KERNELS_HH
#define SENTRY_HOST_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "crypto/aes.hh"
#include "host/cpu_features.hh"

namespace sentry::host
{

/**
 * AES over host memory, parameterised by an expanded key schedule.
 * CBC entry points work in place; @p iv is 16 bytes; lengths are
 * multiples of 16 (checked by the callers' front doors).
 */
struct AesKernel
{
    const char *tier; //!< "portable", "aes-ni", "aes-ni+vaes", "armv8-ce"

    void (*encryptBlock)(const crypto::AesKeySchedule &schedule,
                         const std::uint8_t in[16], std::uint8_t out[16]);
    void (*decryptBlock)(const crypto::AesKeySchedule &schedule,
                         const std::uint8_t in[16], std::uint8_t out[16]);
    void (*cbcEncrypt)(const crypto::AesKeySchedule &schedule,
                       const std::uint8_t iv[16], std::uint8_t *data,
                       std::size_t len);
    void (*cbcDecrypt)(const crypto::AesKeySchedule &schedule,
                       const std::uint8_t iv[16], std::uint8_t *data,
                       std::size_t len);
};

/** Byte-buffer scan kernels behind common/bytes.hh and the auditors. */
struct BytesKernel
{
    const char *tier; //!< "portable", "avx2"

    /** Count non-overlapping pattern-stride-aligned occurrences. */
    std::size_t (*countPattern)(const std::uint8_t *buf, std::size_t len,
                                const std::uint8_t *pattern,
                                std::size_t patternLen);
    /** Byte-granular substring search. */
    bool (*containsBytes)(const std::uint8_t *haystack, std::size_t hayLen,
                          const std::uint8_t *needle, std::size_t needleLen);
    /** @return true when every byte of @p buf is zero. */
    bool (*allZero)(const std::uint8_t *buf, std::size_t len);
};

/** The full registry: one entry per host hot path family. */
struct Kernels
{
    AesKernel aes;
    BytesKernel bytes;
};

/**
 * @return the active registry. First call detects features, verifies
 * the accelerated candidates against the portable tier, and caches the
 * result; later calls are one atomic pointer load.
 */
const Kernels &kernels();

/** @return the always-available portable reference tier. */
const Kernels &portableKernels();

/**
 * Test hook: swap the active registry (nullptr restores the default).
 * Lets tier-parity tests compare accelerated vs portable inside one
 * process without re-execing under SENTRY_FORCE_PORTABLE.
 */
void setActiveKernelsForTest(const Kernels *kernels);

/**
 * @return a short multi-line report of the detected CPU features and
 * the tier each hot path dispatches to (the `--host-info` payload).
 */
std::string hostInfoString();

/** @return "<features> / aes=<tier> bytes=<tier>" one-liner for bench
 *  records (the `host_cpu_features` key). */
std::string hostFeaturesKey();

/**
 * Copy one (possibly partial) 32-byte cache line. The L2 replay loops
 * call this with len == CACHE_LINE_SIZE almost always; pinning that
 * case to a fixed-size copy lets the compiler emit two vector moves
 * instead of a variable-length memcpy dispatch.
 */
inline void
copyLine(std::uint8_t *dst, const std::uint8_t *src, std::size_t len)
{
    if (len == 32) {
        std::memcpy(dst, src, 32);
        return;
    }
    std::memcpy(dst, src, len);
}

/** XOR one 16-byte AES block word-wise (CBC chaining helper). */
inline void
xorBlock16(std::uint8_t *dst, const std::uint8_t *src)
{
    std::uint64_t a, b, c, d;
    std::memcpy(&a, dst, 8);
    std::memcpy(&b, dst + 8, 8);
    std::memcpy(&c, src, 8);
    std::memcpy(&d, src + 8, 8);
    a ^= c;
    b ^= d;
    std::memcpy(dst, &a, 8);
    std::memcpy(dst + 8, &b, 8);
}

} // namespace sentry::host

#endif // SENTRY_HOST_KERNELS_HH
