/**
 * @file
 * Deterministic fault injector.
 *
 * A FaultInjector owns a FaultSchedule and fires each spec when its
 * site's operation counter reaches the trigger. All randomness (which
 * bit flips, which lockdown bit clears, where a DMA burst lands) comes
 * from a per-spec SplitMix64 stream seeded from the injector seed and
 * the spec's index, so a run is bit-replayable from (schedule, seed):
 * identical workloads produce identical operation counts, identical
 * firing points, and identical corruption.
 *
 * The injector is a probe::Subscriber on the Soc's TraceEngine: the
 * hardware models fire generic trace points and know nothing about the
 * fault model. Effects are applied through the armed Soc (raw cell
 * arrays, the PL310 lockdown backdoor, the sim clock, the DMA engine),
 * never through the emitting device. While an effect is being applied,
 * nested trace points (a DMA burst's own bus reads, a duplicate write's
 * DRAM op) still advance the site counters but cannot trigger further
 * firings — fault effects do not cascade.
 */

#ifndef SENTRY_FAULT_FAULT_INJECTOR_HH
#define SENTRY_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace_engine.hh"
#include "fault/fault.hh"

namespace sentry::hw
{
class Soc;
}

namespace sentry::fault
{

/** Always-on operation and effect counters (all deterministic). */
struct InjectorStats
{
    std::uint64_t dramOps = 0;
    std::uint64_t iramOps = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busWrites = 0;
    std::uint64_t l2Writebacks = 0;
    std::uint64_t kcryptdBlocks = 0;
    std::uint64_t steps = 0;

    std::uint64_t firings = 0;
    std::uint64_t bitFlips = 0;
    std::uint64_t busDuplicates = 0;
    std::uint64_t delayCycles = 0;
    double stallSeconds = 0.0;
    std::uint64_t dmaBurstBytes = 0;
    std::uint32_t lockdownBitsCleared = 0;
};

/** One firing of one scheduled fault. */
struct FiringRecord
{
    unsigned specIndex = 0;       //!< index into the schedule
    FaultKind kind = FaultKind::DramBitFlip;
    std::uint64_t siteOrdinal = 0; //!< 1-based op count that triggered
};

/** Fires a FaultSchedule deterministically against one Soc. */
class FaultInjector : public probe::Subscriber
{
  public:
    /**
     * @param schedule faults to fire (copied)
     * @param seed     base seed for the per-spec SplitMix64 streams
     */
    FaultInjector(FaultSchedule schedule, std::uint64_t seed);

    ~FaultInjector() override;

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Subscribe this injector to @p soc's trace engine (memory, bus,
     * cache, and kcryptd trace points). The Soc must outlive the
     * injector or disarm() must be called before the Soc is destroyed.
     */
    void arm(hw::Soc &soc);

    /** Unsubscribe; the injector stops counting and firing. */
    void disarm();

    /**
     * Advance the harness step counter (the power_glitch site). Call
     * once per scenario/fuzz step, then handle dueStepFaults().
     */
    void beginStep();

    /**
     * @return specs of power_glitch faults due at the current step, in
     *         schedule order. The caller applies the power loss (it
     *         owns the surrounding device state) and each returned spec
     *         is recorded as fired.
     */
    std::vector<FaultSpec> dueStepFaults();

    /** @return operation/effect counters. */
    const InjectorStats &stats() const { return stats_; }

    /** @return every firing so far, in order. */
    const std::vector<FiringRecord> &firings() const { return firings_; }

    /** @return the armed schedule. */
    const FaultSchedule &schedule() const { return schedule_; }

    /**
     * @return a compact deterministic fingerprint of this run: site
     *         counters plus every firing. Two bit-identical runs yield
     *         equal digests; any divergence (extra op, shifted firing)
     *         changes it.
     */
    std::string replayDigest() const;

    // probe::Subscriber
    void onMemAccess(probe::MemAccess &event) override;
    void onBusTransfer(probe::BusTransfer &event) override;
    void onCacheEvent(probe::CacheEvent &event) override;
    void onKcryptdOp(probe::KcryptdOp &event) override;

  private:
    /** @return true when @p spec fires at 1-based op count @p ordinal. */
    static bool due(const FaultSpec &spec, std::uint64_t ordinal);

    /** Next 64 bits of spec @p index's deterministic stream. */
    std::uint64_t draw(unsigned index);

    void record(unsigned index, std::uint64_t ordinal);

    void fireDramBitFlip(const FaultSpec &spec, unsigned index);
    void fireIramBitFlip(const FaultSpec &spec, unsigned index);
    void fireLockdownGlitch(const FaultSpec &spec, unsigned index);
    void fireDmaBurst(const FaultSpec &spec, unsigned index);

    FaultSchedule schedule_;
    std::vector<std::uint64_t> streams_; //!< per-spec SplitMix64 state
    hw::Soc *soc_ = nullptr;
    InjectorStats stats_;
    std::vector<FiringRecord> firings_;
    bool firing_ = false; //!< reentrancy guard: effects don't cascade
};

} // namespace sentry::fault

#endif // SENTRY_FAULT_FAULT_INJECTOR_HH
