/**
 * @file
 * FaultSim schedule model.
 *
 * A FaultSchedule is an ordered list of FaultSpecs, each naming a fault
 * kind, a trigger ("after N operations at the kind's site, then every
 * M"), and kind-specific magnitude parameters. Schedules are
 * human-readable and round-trip through parseFaultSchedule /
 * formatFaultSchedule, so a failing fuzz trial can be written to disk
 * and replayed bit-for-bit.
 *
 * Grammar (one fault per line; '#' starts a comment):
 *
 *   fault dram_bit_flip    after N [every M] [count K]
 *   fault iram_bit_flip    after N [every M] [count K]
 *   fault bus_dup_write    after N [every M] [count K]
 *   fault bus_delay        after N [every M] [cycles C]
 *   fault lockdown_glitch  after N [every M] [count K]
 *   fault kcryptd_stall    after N [every M] [seconds S]
 *   fault power_glitch     after N [seconds S]
 *   fault dma_burst        after N [every M] [bytes B]
 *
 * Each kind has a fixed trigger site:
 *
 *   dram_bit_flip    N-th DRAM cell-array access (flip K random bits)
 *   iram_bit_flip    N-th iRAM access            (flip K random bits)
 *   bus_dup_write    N-th bus write              (replay it K times)
 *   bus_delay        N-th bus transaction        (stall C bus cycles)
 *   lockdown_glitch  N-th L2 writeback           (clear K lockdown bits)
 *   kcryptd_stall    N-th kcryptd block          (stall S seconds)
 *   power_glitch     N-th harness step           (power loss, S s off)
 *   dma_burst        N-th L2 writeback           (DMA-read B bytes
 *                                                 mid-flush)
 *
 * `after` counts from 1 (the first matching operation can fire).
 * Omitting `every` makes the fault one-shot.
 */

#ifndef SENTRY_FAULT_FAULT_HH
#define SENTRY_FAULT_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sentry::fault
{

/** Fault kinds the injector can fire. */
enum class FaultKind
{
    DramBitFlip,     //!< flip bits in the retained DRAM array
    IramBitFlip,     //!< flip bits in on-SoC SRAM
    BusDuplicateWrite, //!< replay a bus write transaction
    BusDelay,        //!< stall the interconnect for extra cycles
    LockdownGlitch,  //!< clear bits of the PL310 lockdown register
    KcryptdStall,    //!< deschedule a kcryptd worker mid-request
    PowerGlitch,     //!< brief power loss between harness steps
    DmaBurst,        //!< peripheral DMA burst racing an L2 flush
};

/** Number of FaultKind enumerators (for iteration/streams). */
constexpr unsigned FAULT_KIND_COUNT = 8;

/** @return the schedule-DSL spelling of @p kind. */
const char *faultKindName(FaultKind kind);

/** Parse/validation failure; carries the offending 1-based line. */
class FaultParseError : public std::runtime_error
{
  public:
    FaultParseError(unsigned line, const std::string &what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what),
          line_(line)
    {}

    /** @return 1-based line number of the offending statement. */
    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DramBitFlip;
    /** Fire on the after-th matching operation (1-based). */
    std::uint64_t after = 1;
    /** Refire period after the first firing; 0 = one-shot. */
    std::uint64_t every = 0;
    /** Bits to flip / duplicates to issue / lockdown bits to clear. */
    unsigned count = 1;
    /** bus_delay: cycles to stall. */
    std::uint64_t cycles = 64;
    /** kcryptd_stall / power_glitch: stall or power-off seconds. */
    double seconds = 0.001;
    /** dma_burst: bytes to DMA-read mid-flush. */
    std::size_t bytes = 4096;
    /** 1-based source line (0 for programmatic specs). */
    unsigned line = 0;
};

/** An ordered, replayable set of faults. */
struct FaultSchedule
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
};

/**
 * Parse schedule @p text (see grammar above).
 * @throws FaultParseError on any malformed or out-of-range statement
 */
FaultSchedule parseFaultSchedule(const std::string &text);

/** Serialize @p spec as one schedule line (no trailing newline). */
std::string formatFaultSpec(const FaultSpec &spec);

/**
 * Serialize @p schedule so parseFaultSchedule round-trips it to an
 * equivalent schedule (same kinds, triggers, and magnitudes).
 */
std::string formatFaultSchedule(const FaultSchedule &schedule);

} // namespace sentry::fault

#endif // SENTRY_FAULT_FAULT_HH
