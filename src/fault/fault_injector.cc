#include "fault/fault_injector.hh"

#include <cstdio>
#include <sstream>

#include "hw/soc.hh"

namespace sentry::fault
{

namespace
{

/** SplitMix64 step: advances @p state and returns the next output. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule))
{
    streams_.reserve(schedule_.faults.size());
    for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
        // Decorrelate the per-spec streams: identical specs at
        // different schedule positions corrupt different bits.
        std::uint64_t state =
            seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) + 1));
        // Burn one output so the stored state is already mixed.
        splitmix64(state);
        streams_.push_back(state);
    }
}

FaultInjector::~FaultInjector()
{
    disarm();
}

void
FaultInjector::arm(hw::Soc &soc)
{
    soc_ = &soc;
    soc.trace().subscribe(this,
                          probe::maskOf(probe::TraceKind::MemAccess) |
                              probe::maskOf(probe::TraceKind::BusTransfer) |
                              probe::maskOf(probe::TraceKind::CacheEvent) |
                              probe::maskOf(probe::TraceKind::KcryptdOp));
}

void
FaultInjector::disarm()
{
    if (soc_ != nullptr) {
        soc_->trace().unsubscribe(this);
        soc_ = nullptr;
    }
}

bool
FaultInjector::due(const FaultSpec &spec, std::uint64_t ordinal)
{
    if (ordinal == spec.after)
        return true;
    return spec.every != 0 && ordinal > spec.after &&
           (ordinal - spec.after) % spec.every == 0;
}

std::uint64_t
FaultInjector::draw(unsigned index)
{
    return splitmix64(streams_[index]);
}

void
FaultInjector::record(unsigned index, std::uint64_t ordinal)
{
    ++stats_.firings;
    firings_.push_back({index, schedule_.faults[index].kind, ordinal});
}

void
FaultInjector::fireDramBitFlip(const FaultSpec &spec, unsigned index)
{
    auto raw = soc_->dram().raw();
    for (unsigned i = 0; i < spec.count; ++i) {
        const std::uint64_t r = draw(index);
        raw[r % raw.size()] ^= static_cast<std::uint8_t>(1u << ((r >> 56) & 7));
        ++stats_.bitFlips;
    }
}

void
FaultInjector::fireIramBitFlip(const FaultSpec &spec, unsigned index)
{
    auto raw = soc_->iram().raw();
    for (unsigned i = 0; i < spec.count; ++i) {
        const std::uint64_t r = draw(index);
        raw[r % raw.size()] ^= static_cast<std::uint8_t>(1u << ((r >> 56) & 7));
        ++stats_.bitFlips;
    }
}

void
FaultInjector::fireLockdownGlitch(const FaultSpec &spec, unsigned index)
{
    // Clear up to `count` of the currently-set lockdown bits, chosen
    // from the spec's stream. An SEU flips physical register cells; it
    // does not consult TrustZone.
    std::uint32_t mask = soc_->l2().lockdownReg();
    std::uint32_t clear = 0;
    for (unsigned i = 0; i < spec.count && mask != 0; ++i) {
        std::vector<unsigned> setBits;
        for (unsigned bit = 0; bit < 32; ++bit) {
            if (mask & (1u << bit))
                setBits.push_back(bit);
        }
        const unsigned victim =
            setBits[draw(index) % setBits.size()];
        clear |= 1u << victim;
        mask &= ~(1u << victim);
        ++stats_.lockdownBitsCleared;
    }
    if (clear != 0)
        soc_->l2().glitchLockdownBits(clear);
}

void
FaultInjector::fireDmaBurst(const FaultSpec &spec, unsigned index)
{
    // A peripheral bus master reads a burst of DRAM while the cache is
    // mid-flush. The read itself goes through the normal DMA path (and
    // so respects TrustZone windows and shows up on the bus).
    const std::size_t dramSize = soc_->dram().size();
    const std::size_t len = spec.bytes < dramSize ? spec.bytes : dramSize;
    const std::uint64_t r = draw(index);
    const PhysAddr offset =
        (dramSize > len) ? (r % (dramSize - len)) & ~PhysAddr{63} : 0;
    std::vector<std::uint8_t> buf(len);
    (void)soc_->dma().readMemory(soc_->dramBase() + offset, buf.data(), len);
    stats_.dmaBurstBytes += len;
}

void
FaultInjector::onMemAccess(probe::MemAccess &event)
{
    if (event.device == probe::MemAccess::Device::Dram) {
        const std::uint64_t ordinal = ++stats_.dramOps;
        if (firing_ || soc_ == nullptr)
            return;
        for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
            const FaultSpec &spec = schedule_.faults[i];
            if (spec.kind != FaultKind::DramBitFlip || !due(spec, ordinal))
                continue;
            firing_ = true;
            record(i, ordinal);
            fireDramBitFlip(spec, i);
            firing_ = false;
        }
    } else {
        const std::uint64_t ordinal = ++stats_.iramOps;
        if (firing_ || soc_ == nullptr)
            return;
        for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
            const FaultSpec &spec = schedule_.faults[i];
            if (spec.kind != FaultKind::IramBitFlip || !due(spec, ordinal))
                continue;
            firing_ = true;
            record(i, ordinal);
            fireIramBitFlip(spec, i);
            firing_ = false;
        }
    }
}

void
FaultInjector::onBusTransfer(probe::BusTransfer &event)
{
    // Duplicate writes are the bus replaying an effect this injector
    // already requested; counting them would shift every later ordinal.
    if (event.duplicate)
        return;
    if (!event.isWrite) {
        ++stats_.busReads;
        const std::uint64_t ordinal = stats_.busReads + stats_.busWrites;
        if (firing_ || soc_ == nullptr)
            return;
        for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
            const FaultSpec &spec = schedule_.faults[i];
            if (spec.kind != FaultKind::BusDelay || !due(spec, ordinal))
                continue;
            firing_ = true;
            record(i, ordinal);
            soc_->clock().advance(spec.cycles);
            stats_.delayCycles += spec.cycles;
            firing_ = false;
        }
        return;
    }
    const std::uint64_t writeOrdinal = ++stats_.busWrites;
    const std::uint64_t anyOrdinal = stats_.busReads + stats_.busWrites;
    if (firing_ || soc_ == nullptr)
        return;
    unsigned duplicates = 0;
    for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
        const FaultSpec &spec = schedule_.faults[i];
        if (spec.kind == FaultKind::BusDuplicateWrite &&
            due(spec, writeOrdinal)) {
            record(i, writeOrdinal);
            duplicates += spec.count;
            stats_.busDuplicates += spec.count;
        } else if (spec.kind == FaultKind::BusDelay &&
                   due(spec, anyOrdinal)) {
            firing_ = true;
            record(i, anyOrdinal);
            soc_->clock().advance(spec.cycles);
            stats_.delayCycles += spec.cycles;
            firing_ = false;
        }
    }
    // The Bus replays the duplicates itself with the duplicate flag
    // set, so requesting extra writes here cannot cascade.
    event.extraWrites += duplicates;
}

void
FaultInjector::onCacheEvent(probe::CacheEvent &event)
{
    (void)event;
    const std::uint64_t ordinal = ++stats_.l2Writebacks;
    if (firing_ || soc_ == nullptr)
        return;
    for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
        const FaultSpec &spec = schedule_.faults[i];
        if (spec.kind == FaultKind::LockdownGlitch && due(spec, ordinal)) {
            firing_ = true;
            record(i, ordinal);
            fireLockdownGlitch(spec, i);
            firing_ = false;
        } else if (spec.kind == FaultKind::DmaBurst && due(spec, ordinal)) {
            firing_ = true;
            record(i, ordinal);
            fireDmaBurst(spec, i);
            firing_ = false;
        }
    }
}

void
FaultInjector::onKcryptdOp(probe::KcryptdOp &event)
{
    const std::uint64_t ordinal = ++stats_.kcryptdBlocks;
    if (firing_ || soc_ == nullptr)
        return;
    double stall = 0.0;
    for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
        const FaultSpec &spec = schedule_.faults[i];
        if (spec.kind != FaultKind::KcryptdStall || !due(spec, ordinal))
            continue;
        record(i, ordinal);
        stall += spec.seconds;
        stats_.stallSeconds += spec.seconds;
    }
    event.stallSeconds += stall;
}

void
FaultInjector::beginStep()
{
    ++stats_.steps;
}

std::vector<FaultSpec>
FaultInjector::dueStepFaults()
{
    std::vector<FaultSpec> dueSpecs;
    if (soc_ == nullptr)
        return dueSpecs;
    for (unsigned i = 0; i < schedule_.faults.size(); ++i) {
        const FaultSpec &spec = schedule_.faults[i];
        if (spec.kind != FaultKind::PowerGlitch || !due(spec, stats_.steps))
            continue;
        record(i, stats_.steps);
        dueSpecs.push_back(spec);
    }
    return dueSpecs;
}

std::string
FaultInjector::replayDigest() const
{
    std::ostringstream out;
    out << "ops dram:" << stats_.dramOps << " iram:" << stats_.iramOps
        << " busR:" << stats_.busReads << " busW:" << stats_.busWrites
        << " wb:" << stats_.l2Writebacks << " kc:" << stats_.kcryptdBlocks
        << " step:" << stats_.steps;
    char stall[32];
    std::snprintf(stall, sizeof(stall), "%.9g", stats_.stallSeconds);
    out << " | fx flips:" << stats_.bitFlips
        << " dup:" << stats_.busDuplicates
        << " delay:" << stats_.delayCycles << " stall:" << stall
        << " burst:" << stats_.dmaBurstBytes
        << " lockclr:" << stats_.lockdownBitsCleared;
    // Cap the listing: a periodic fault can fire thousands of times and
    // the totals above already pin the full sequence.
    constexpr std::size_t MAX_LISTED = 16;
    out << " | fired";
    for (std::size_t i = 0; i < firings_.size() && i < MAX_LISTED; ++i) {
        const FiringRecord &f = firings_[i];
        out << ' ' << faultKindName(f.kind) << '#' << f.specIndex << '@'
            << f.siteOrdinal;
    }
    if (firings_.size() > MAX_LISTED)
        out << " +" << (firings_.size() - MAX_LISTED) << " more";
    return out.str();
}

} // namespace sentry::fault
