/**
 * @file
 * Hook interface the hardware and OS models consult when fault
 * injection is armed.
 *
 * The interface is purely observational from the caller's point of
 * view: a device reports that an operation happened and (for bus
 * writes) asks how many duplicate transactions to issue. All fault
 * *effects* — bit flips, register glitches, clock stalls, DMA bursts —
 * are applied by the FaultInjector through its own reference to the
 * simulated SoC, so the hardware models stay free of fault-model
 * knowledge and pay a single null-pointer check when injection is off.
 *
 * Hooks are only ever invoked on the thread driving the simulated
 * machine (a Device is share-nothing and single-threaded); kcryptd
 * worker threads never call them.
 */

#ifndef SENTRY_FAULT_HOOKS_HH
#define SENTRY_FAULT_HOOKS_HH

#include <cstdint>

#include "common/types.hh"

namespace sentry::fault
{

/** Injection sites a device reports operations from. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /** A DRAM cell-array access (line fill, writeback, or DMA). */
    virtual void onDramOp(bool is_write, PhysAddr offset,
                          std::size_t len) = 0;

    /** An iRAM cell-array access (CPU or DMA side). */
    virtual void onIramOp(bool is_write, PhysAddr offset,
                          std::size_t len) = 0;

    /** An external-bus read transaction completed. */
    virtual void onBusRead(PhysAddr addr, std::size_t len) = 0;

    /**
     * An external-bus write transaction completed.
     * @return how many duplicate transactions the bus should issue
     *         (a glitched bus replays the write; observers see every
     *         copy). 0 in the common case.
     */
    virtual unsigned onBusWrite(PhysAddr addr, std::size_t len) = 0;

    /** The L2 wrote a dirty line back to DRAM. */
    virtual void onL2Writeback(unsigned way, bool way_locked) = 0;

    /**
     * A kcryptd worker picked up one 512-byte block.
     * @return extra stall seconds to charge to the simulated clock
     *         (models a descheduled or glitched worker). 0.0 normally.
     */
    virtual double onKcryptdBlock() = 0;
};

} // namespace sentry::fault

#endif // SENTRY_FAULT_HOOKS_HH
