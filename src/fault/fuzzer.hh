/**
 * @file
 * The FaultSim invariant fuzzer.
 *
 * A fuzz *trial* is a (seed, scenario, fault schedule) triple. The
 * generator derives all three from one trial seed, so `sentry_fuzz
 * --seed S` is bit-replayable: the same seed produces the same
 * scenarios, the same schedules, the same simulated counters, and the
 * same verdicts. Trials run through the fleet engine's device runner
 * (one device, audits after every step), which asserts the shared
 * core::InvariantChecker invariant set.
 *
 * When a trial fails, shrinkTrial() greedily removes fault specs and
 * scenario steps while the failure *category* (audit violation, secret
 * leak, iRAM residue, injection, semantic) is preserved, yielding a
 * minimal reproducer that formatTrialFile() serializes for replay via
 * `sentry_fuzz --schedule FILE`.
 */

#ifndef SENTRY_FAULT_FUZZER_HH
#define SENTRY_FAULT_FUZZER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"
#include "fault/fault.hh"
#include "fleet/scenario.hh"

namespace sentry::fault
{

/** Fuzzer knobs (all deterministic). */
struct FuzzOptions
{
    std::uint64_t seed = 0x5e47f0220000001ULL; //!< campaign seed
    unsigned trials = 8;       //!< trials per campaign
    unsigned steps = 18;       //!< scenario steps per trial (approx.)
    bool shrink = true;        //!< shrink failures to minimal repros
    unsigned shrinkBudget = 96; //!< max extra runs spent shrinking
    fleet::FleetPlatform platform = fleet::FleetPlatform::Tegra3;
    std::size_t dramBytes = 16 * MiB; //!< per-trial simulated DRAM
    /**
     * When non-empty, every trial writes its chrome://tracing timeline
     * here (later trials overwrite earlier ones, so after a campaign
     * the file holds the last run — replay a single reproducer to get
     * the timeline of one specific trial).
     */
    std::string traceOutPath;
    /** Spawn each trial device by forking a warmed snapshot instead of
     * cold-booting it (fuzzes the fork path itself). */
    bool spawnSnapshot = false;
    /**
     * Pin every trial to one defense backend (`--defense`); when unset
     * the generator draws a backend per trial, so a campaign fuzzes all
     * three designs under the same grammar.
     */
    std::optional<core::DefenseKind> defense;
};

/** One generated (or loaded) trial. */
struct FuzzTrialSpec
{
    std::uint64_t seed = 0;   //!< fleet seed the trial runs under
    fleet::Scenario scenario; //!< workload + attack interleaving
    FaultSchedule faults;     //!< scheduled hardware faults
    /** Recorded spawn mode, so a reproducer replays the same path. */
    bool spawnSnapshot = false;
};

/** Deterministic result of one trial run. */
struct TrialOutcome
{
    bool ok = true;
    std::string error;          //!< first violation (empty when ok)
    unsigned stepsExecuted = 0;
    Cycles simCycles = 0;       //!< simulated clock at end of run
    std::string digest;         //!< counters + injector fingerprint
    std::string traceSummary;   //!< CounterSink totals (one line)
};

/** A reproducer file: the trial plus its recorded verdict. */
struct TrialFile
{
    FuzzTrialSpec spec;
    bool hasExpectation = false;
    bool expectFail = false; //!< recorded verdict (valid with above)
};

/**
 * Derive trial @p index's spec from the campaign seed. The generator
 * only emits step sequences the device runner accepts (attacks only
 * against a locked device, no touching parked sensitive processes,
 * destructive attacks only as the final step), so every failure is an
 * invariant violation, not a grammar accident.
 */
FuzzTrialSpec generateTrial(const FuzzOptions &options, unsigned index);

/** Run @p spec on one device; never throws. */
TrialOutcome runTrial(const FuzzTrialSpec &spec,
                      const FuzzOptions &options);

/**
 * Failure category used by the shrinker ("audit", "leak", "iram",
 * "inject", "semantic"; "ok" for successes). Shrinking only accepts a
 * smaller trial when its category matches the original failure.
 */
std::string classifyOutcome(const TrialOutcome &outcome);

/**
 * Greedily minimize a failing @p spec: drop fault specs, then scenario
 * steps (keeping spawn/touch references valid), re-running after each
 * removal and keeping it only when the failure category is preserved.
 * Spends at most @p options.shrinkBudget extra runs.
 */
FuzzTrialSpec shrinkTrial(const FuzzTrialSpec &spec,
                          const FuzzOptions &options);

/** Serialize a trial (and optionally its verdict) to reproducer text. */
std::string formatTrialFile(const FuzzTrialSpec &spec,
                            const TrialOutcome *outcome = nullptr);

/**
 * Parse reproducer text (see formatTrialFile).
 * @throws std::runtime_error / ScenarioError / FaultParseError on
 *         malformed input
 */
TrialFile parseTrialFile(const std::string &text);

} // namespace sentry::fault

#endif // SENTRY_FAULT_FUZZER_HH
