#include "fault/fuzzer.hh"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/rng.hh"
#include "fleet/device_runner.hh"

namespace sentry::fault
{

namespace
{

using fleet::AttackKind;
using fleet::Op;
using fleet::Step;

/** Sizes the generator hands out (multiples keep paging interesting). */
constexpr std::size_t SIZE_QUANTUM = 16 * KiB;

/** Everything the generator needs to know about a spawned process. */
struct GenProc
{
    std::string name;
    bool sensitive = false;
    bool background = false;
};

Step
makeSleep(Rng &rng)
{
    Step step;
    step.op = Op::Sleep;
    step.seconds = 0.001 * static_cast<double>(1 + rng.below(50));
    return step;
}

/** Non-destructive attack kinds usable mid-scenario. */
AttackKind
liveAttackKind(Rng &rng)
{
    switch (rng.below(7)) {
      case 0:
        return AttackKind::Dma;
      case 1:
        return AttackKind::BusMonitor;
      case 2:
        return AttackKind::CodeInjection;
      case 3:
        return AttackKind::PrimeProbe;
      case 4:
        return AttackKind::EvictReload;
      case 5:
        return AttackKind::Rowhammer;
      default:
        return AttackKind::TzSideChannel;
    }
}

/** Destructive (cold-boot family) attack kinds for the final step. */
AttackKind
destructiveAttackKind(Rng &rng)
{
    switch (rng.below(3)) {
      case 0:
        return AttackKind::ColdBootReflash;
      case 1:
        return AttackKind::OsReboot;
      default:
        return AttackKind::TwoSecondReset;
    }
}

FaultSpec
generateFault(Rng &rng, unsigned scenario_steps)
{
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(rng.below(FAULT_KIND_COUNT));
    switch (spec.kind) {
      case FaultKind::DramBitFlip:
      case FaultKind::IramBitFlip:
        spec.after = 1 + rng.below(5000);
        if (rng.chance(0.5))
            spec.every = 1 + rng.below(2000);
        spec.count = static_cast<unsigned>(1 + rng.below(8));
        break;
      case FaultKind::BusDuplicateWrite:
        spec.after = 1 + rng.below(500);
        if (rng.chance(0.5))
            spec.every = 1 + rng.below(500);
        spec.count = static_cast<unsigned>(1 + rng.below(3));
        break;
      case FaultKind::BusDelay:
        spec.after = 1 + rng.below(1000);
        if (rng.chance(0.5))
            spec.every = 1 + rng.below(1000);
        spec.cycles = 16 + rng.below(512);
        break;
      case FaultKind::LockdownGlitch:
        spec.after = 1 + rng.below(50);
        if (rng.chance(0.25))
            spec.every = 1 + rng.below(50);
        spec.count = static_cast<unsigned>(1 + rng.below(8));
        break;
      case FaultKind::KcryptdStall:
        spec.after = 1 + rng.below(64);
        if (rng.chance(0.5))
            spec.every = 1 + rng.below(64);
        spec.seconds = 0.0001 * static_cast<double>(1 + rng.below(50));
        break;
      case FaultKind::PowerGlitch:
        spec.after = 1 + rng.below(scenario_steps);
        spec.seconds = 0.001 * static_cast<double>(1 + rng.below(100));
        break;
      case FaultKind::DmaBurst:
        spec.after = 1 + rng.below(50);
        if (rng.chance(0.5))
            spec.every = 1 + rng.below(50);
        spec.bytes = 4096 * (1 + rng.below(16));
        break;
    }
    return spec;
}

/**
 * Structural validity of a shrunk step list: every touch targets an
 * earlier spawn, spawn names stay unique, and the list is non-empty.
 * Runner-level semantics (lock state, cold-boot ordering) are enforced
 * by the category check instead — a removal that breaks them produces a
 * "semantic" failure and is rejected.
 */
bool
stepsValid(const std::vector<Step> &steps)
{
    if (steps.empty())
        return false;
    std::set<std::string> spawned;
    for (const Step &step : steps) {
        if (step.op == Op::Spawn) {
            if (!spawned.insert(step.name).second)
                return false;
        } else if (step.op == Op::Touch) {
            if (!spawned.contains(step.name))
                return false;
        }
    }
    return true;
}

void
renumberSteps(std::vector<Step> &steps)
{
    for (std::size_t i = 0; i < steps.size(); ++i)
        steps[i].line = static_cast<unsigned>(i + 1);
}

bool
contains(const std::string &haystack, const char *needle)
{
    return haystack.find(needle) != std::string::npos;
}

} // namespace

FuzzTrialSpec
generateTrial(const FuzzOptions &options, unsigned index)
{
    Rng rng(options.seed ^
            (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1)));

    FuzzTrialSpec spec;
    spec.seed = rng.next64();
    if (spec.seed == 0)
        spec.seed = 0x5e47f022ULL;
    spec.spawnSnapshot = options.spawnSnapshot;

    fleet::Scenario &scenario = spec.scenario;
    scenario.name = "fuzz-" + std::to_string(index);
    scenario.defaultDevices = 1;

    std::vector<GenProc> procs;
    auto addStep = [&scenario](Step step) {
        step.line = static_cast<unsigned>(scenario.steps.size() + 1);
        scenario.steps.push_back(step);
    };

    // Spawns first (the device is awake at boot). The first process is
    // always sensitive so every trial has something worth protecting.
    const unsigned nprocs = 1 + static_cast<unsigned>(rng.below(2));
    for (unsigned p = 0; p < nprocs; ++p) {
        Step step;
        step.op = Op::Spawn;
        step.name = "app" + std::to_string(p);
        step.sensitive = p == 0 || rng.chance(0.5);
        step.background = step.sensitive && rng.chance(0.5);
        step.bytes = (1 + rng.below(8)) * SIZE_QUANTUM;
        if (rng.chance(0.25))
            step.dmaBytes = SIZE_QUANTUM;
        procs.push_back({step.name, step.sensitive, step.background});
        addStep(step);
    }

    bool locked = false;
    const unsigned bodySteps =
        options.steps > nprocs + 1 ? options.steps - nprocs - 1 : 1;
    for (unsigned i = 0; i < bodySteps; ++i) {
        const std::uint64_t pick = rng.below(100);
        Step step;
        if (!locked) {
            if (pick < 30) {
                step.op = Op::Lock;
                locked = true;
            } else if (pick < 50) {
                const GenProc &proc = procs[rng.below(procs.size())];
                step.op = Op::Touch;
                step.name = proc.name;
                step.bytes = (1 + rng.below(4)) * SIZE_QUANTUM;
            } else if (pick < 70) {
                step.op = Op::Filebench;
                step.bytes = (1 + rng.below(8)) * SIZE_QUANTUM;
                const std::uint64_t w = rng.below(3);
                step.workload = w == 0 ? os::FilebenchWorkload::SeqRead
                                : w == 1 ? os::FilebenchWorkload::RandRead
                                         : os::FilebenchWorkload::RandRW;
                step.directIo = rng.chance(0.25);
            } else if (pick < 90) {
                step = makeSleep(rng);
            } else {
                step.op = Op::ZeroFreed;
            }
        } else {
            if (pick < 25) {
                step.op = Op::Unlock;
                step.pin = "0000"; // the device runner's default PIN
                locked = false;
            } else if (pick < 55) {
                step.op = Op::Attack;
                step.attack = liveAttackKind(rng);
            } else if (pick < 70) {
                step = makeSleep(rng);
            } else if (pick < 85) {
                // Only background-sensitive or unprotected processes
                // may be touched while locked.
                std::vector<const GenProc *> touchable;
                for (const GenProc &proc : procs) {
                    if (!proc.sensitive || proc.background)
                        touchable.push_back(&proc);
                }
                if (touchable.empty()) {
                    step = makeSleep(rng);
                } else {
                    const GenProc &proc =
                        *touchable[rng.below(touchable.size())];
                    step.op = Op::Touch;
                    step.name = proc.name;
                    step.bytes = (1 + rng.below(4)) * SIZE_QUANTUM;
                }
            } else {
                step.op = Op::ZeroFreed;
            }
        }
        addStep(step);
    }

    // Optional destructive finale: a cold-boot-family attack resets the
    // whole stack, so it can only be the last step.
    if (rng.chance(0.6)) {
        if (!locked) {
            Step lockStep;
            lockStep.op = Op::Lock;
            addStep(lockStep);
        }
        Step step;
        step.op = Op::Attack;
        step.attack = destructiveAttackKind(rng);
        step.frozen = rng.chance(0.3);
        addStep(step);
    }

    const unsigned nfaults = 1 + static_cast<unsigned>(rng.below(3));
    const auto totalSteps =
        static_cast<unsigned>(scenario.steps.size());
    for (unsigned f = 0; f < nfaults; ++f) {
        FaultSpec fault = generateFault(rng, totalSteps);
        fault.line = f + 1;
        spec.faults.faults.push_back(fault);
    }

    // Defense backend: pinned by --defense, else drawn. The draw is
    // appended to the stream, so every earlier decision of a given
    // campaign seed is unchanged from pre-backend campaigns.
    scenario.hasDefense = true;
    scenario.defense = options.defense.has_value()
                           ? *options.defense
                           : static_cast<core::DefenseKind>(
                                 rng.below(core::DEFENSE_KIND_COUNT));
    return spec;
}

TrialOutcome
runTrial(const FuzzTrialSpec &spec, const FuzzOptions &options)
{
    fleet::FleetOptions fleetOptions;
    fleetOptions.devices = 1;
    fleetOptions.threads = 1;
    fleetOptions.seed = spec.seed;
    fleetOptions.platform = options.platform;
    fleetOptions.dramBytes = options.dramBytes;
    fleetOptions.auditEveryStep = true;
    fleetOptions.faultSchedule = &spec.faults;
    fleetOptions.traceOutPath = options.traceOutPath;
    // runDevice bypasses resolveFleetOptions, so the scenario's defense
    // directive must be applied here for reproducers to replay the
    // backend they were fuzzed under.
    if (spec.scenario.hasDefense)
        fleetOptions.defense = spec.scenario.defense;
    if (spec.spawnSnapshot) {
        fleetOptions.spawnMode = fleet::SpawnMode::Snapshot;
        fleetOptions.templateSnapshot =
            fleet::makeFleetTemplate(spec.scenario, fleetOptions);
    }

    const fleet::DeviceResult result =
        fleet::runDevice(spec.scenario, fleetOptions, 0);

    TrialOutcome outcome;
    outcome.ok = result.ok;
    outcome.error = result.error;
    outcome.stepsExecuted = result.stepsExecuted;
    outcome.simCycles = result.simCycles;
    std::ostringstream digest;
    digest << "cycles:" << result.simCycles
           << " steps:" << result.stepsExecuted
           << " ok:" << (result.ok ? 1 : 0)
           << " glitch:" << (result.powerGlitched ? 1 : 0)
           << " defense:" << result.defenseKind
           << " vuln_hits:" << result.defenseVulnerableHits;
    if (!result.faultDigest.empty())
        digest << " | " << result.faultDigest;
    if (!result.attackDigest.empty())
        digest << " | atk:" << result.attackDigest;
    if (!result.scheduleDigest.empty())
        digest << " | sched:" << result.scheduleDigest;
    outcome.digest = digest.str();
    outcome.traceSummary = result.trace.summary();
    return outcome;
}

std::string
classifyOutcome(const TrialOutcome &outcome)
{
    if (outcome.ok)
        return "ok";
    if (contains(outcome.error, "audit failed"))
        return "audit";
    if (contains(outcome.error, "recovered the secret") ||
        contains(outcome.error, "captured the secret") ||
        contains(outcome.error, "remanent memory"))
        return "leak";
    if (contains(outcome.error, "rowhammer"))
        return "hammer";
    if (contains(outcome.error, "iRAM byte"))
        return "iram";
    if (contains(outcome.error, "firmware image") ||
        contains(outcome.error, "code injection"))
        return "inject";
    return "semantic";
}

FuzzTrialSpec
shrinkTrial(const FuzzTrialSpec &spec, const FuzzOptions &options)
{
    const std::string category = classifyOutcome(runTrial(spec, options));
    if (category == "ok")
        return spec;

    FuzzTrialSpec best = spec;
    unsigned budget = options.shrinkBudget;
    bool progress = true;
    while (progress && budget > 0) {
        progress = false;

        // Pass 1: drop fault specs (a failure that survives with fewer
        // injected faults is a strictly better reproducer).
        for (std::size_t i = 0;
             i < best.faults.faults.size() && budget > 0;) {
            FuzzTrialSpec candidate = best;
            candidate.faults.faults.erase(candidate.faults.faults.begin() +
                                          static_cast<long>(i));
            --budget;
            if (classifyOutcome(runTrial(candidate, options)) == category) {
                best = std::move(candidate);
                progress = true;
            } else {
                ++i;
            }
        }

        // Pass 2: drop scenario steps, keeping references valid.
        for (std::size_t i = 0;
             i < best.scenario.steps.size() && budget > 0;) {
            if (best.scenario.steps.size() == 1)
                break;
            FuzzTrialSpec candidate = best;
            candidate.scenario.steps.erase(
                candidate.scenario.steps.begin() + static_cast<long>(i));
            if (!stepsValid(candidate.scenario.steps)) {
                ++i;
                continue;
            }
            renumberSteps(candidate.scenario.steps);
            --budget;
            if (classifyOutcome(runTrial(candidate, options)) == category) {
                best = std::move(candidate);
                progress = true;
            } else {
                ++i;
            }
        }
    }
    return best;
}

std::string
formatTrialFile(const FuzzTrialSpec &spec, const TrialOutcome *outcome)
{
    std::ostringstream out;
    out << "# sentry_fuzz reproducer (replay: sentry_fuzz --schedule "
           "<this file>)\n";
    char seedHex[32];
    std::snprintf(seedHex, sizeof(seedHex), "0x%llx",
                  static_cast<unsigned long long>(spec.seed));
    out << "seed " << seedHex << '\n';
    if (spec.spawnSnapshot)
        out << "spawn snapshot\n";
    if (outcome != nullptr) {
        out << "expect " << (outcome->ok ? "ok" : "fail") << '\n';
        if (!outcome->error.empty())
            out << "# error: " << outcome->error << '\n';
        // Comment (the parser skips it): the per-device CounterSink
        // totals, so a repro records what the machine did, not just
        // whether it failed.
        if (!outcome->traceSummary.empty())
            out << "# trace: " << outcome->traceSummary << '\n';
    }
    out << "[scenario]\n" << fleet::formatScenario(spec.scenario);
    out << "[faults]\n" << formatFaultSchedule(spec.faults);
    return out.str();
}

TrialFile
parseTrialFile(const std::string &text)
{
    TrialFile file;
    bool haveSeed = false;
    std::string scenarioText, faultText;
    enum class Section
    {
        Header,
        Scenario,
        Faults,
    } section = Section::Header;

    std::istringstream stream(text);
    std::string raw;
    while (std::getline(stream, raw)) {
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        std::string trimmed = raw;
        const std::size_t firstNonSpace = trimmed.find_first_not_of(" \t");
        if (firstNonSpace == std::string::npos)
            continue;
        if (trimmed[firstNonSpace] == '#')
            continue;
        if (trimmed == "[scenario]") {
            section = Section::Scenario;
            continue;
        }
        if (trimmed == "[faults]") {
            section = Section::Faults;
            continue;
        }
        switch (section) {
          case Section::Header: {
            std::istringstream line(trimmed);
            std::string key, value;
            line >> key >> value;
            if (key == "seed") {
                char *end = nullptr;
                file.spec.seed = std::strtoull(value.c_str(), &end, 0);
                if (end == nullptr || *end != '\0' || value.empty())
                    throw std::runtime_error("malformed seed '" + value +
                                             "'");
                haveSeed = true;
            } else if (key == "spawn") {
                if (value != "snapshot" && value != "cold-boot")
                    throw std::runtime_error(
                        "spawn wants 'snapshot' or 'cold-boot', got '" +
                        value + "'");
                file.spec.spawnSnapshot = value == "snapshot";
            } else if (key == "expect") {
                if (value != "ok" && value != "fail")
                    throw std::runtime_error(
                        "expect wants 'ok' or 'fail', got '" + value +
                        "'");
                file.hasExpectation = true;
                file.expectFail = value == "fail";
            } else {
                throw std::runtime_error("unknown reproducer key '" +
                                         key + "'");
            }
            break;
          }
          case Section::Scenario:
            scenarioText += raw;
            scenarioText += '\n';
            break;
          case Section::Faults:
            faultText += raw;
            faultText += '\n';
            break;
        }
    }
    if (!haveSeed)
        throw std::runtime_error("reproducer has no 'seed' line");
    file.spec.scenario = fleet::parseScenario(scenarioText, "repro");
    file.spec.faults = parseFaultSchedule(faultText);
    return file;
}

} // namespace sentry::fault
