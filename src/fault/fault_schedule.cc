#include "fault/fault.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/types.hh"

namespace sentry::fault
{

namespace
{

/** Bit flips / duplicates / lockdown bits above this are typos. */
constexpr unsigned MAX_COUNT = 1024;

/** Bus stalls above this would dwarf any real glitch. */
constexpr std::uint64_t MAX_CYCLES = 100'000'000;

/** Stall / power-off durations above this would stall a fuzz run. */
constexpr double MAX_SECONDS = 3600.0;

/** DMA bursts above this are typos (and would dominate runtime). */
constexpr std::size_t MAX_BURST_BYTES = 16 * MiB;

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::uint64_t
parseU64(const std::string &token, unsigned line, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || token.empty() ||
        token[0] == '-')
        throw FaultParseError(line, std::string("malformed ") + what +
                                        " '" + token + "'");
    return value;
}

double
parseSeconds(const std::string &token, unsigned line)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || token.empty())
        throw FaultParseError(line,
                              "malformed seconds '" + token + "'");
    if (value <= 0.0 || value > MAX_SECONDS)
        throw FaultParseError(line, "seconds out of range: '" + token +
                                        "' (0 < s <= 3600)");
    return value;
}

bool
kindFromName(const std::string &name, FaultKind &kind)
{
    for (unsigned i = 0; i < FAULT_KIND_COUNT; ++i) {
        const FaultKind candidate = static_cast<FaultKind>(i);
        if (name == faultKindName(candidate)) {
            kind = candidate;
            return true;
        }
    }
    return false;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DramBitFlip:
        return "dram_bit_flip";
      case FaultKind::IramBitFlip:
        return "iram_bit_flip";
      case FaultKind::BusDuplicateWrite:
        return "bus_dup_write";
      case FaultKind::BusDelay:
        return "bus_delay";
      case FaultKind::LockdownGlitch:
        return "lockdown_glitch";
      case FaultKind::KcryptdStall:
        return "kcryptd_stall";
      case FaultKind::PowerGlitch:
        return "power_glitch";
      case FaultKind::DmaBurst:
        return "dma_burst";
    }
    return "?";
}

FaultSchedule
parseFaultSchedule(const std::string &text)
{
    FaultSchedule schedule;

    std::istringstream stream(text);
    std::string raw;
    unsigned lineNo = 0;
    while (std::getline(stream, raw)) {
        ++lineNo;
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        const std::vector<std::string> tokens = tokenize(raw);
        if (tokens.empty())
            continue;
        if (tokens[0] != "fault")
            throw FaultParseError(lineNo, "unknown opcode '" + tokens[0] +
                                              "' (want 'fault')");
        if (tokens.size() < 4)
            throw FaultParseError(
                lineNo, "fault needs a kind and an 'after N' trigger");

        FaultSpec spec;
        spec.line = lineNo;
        if (!kindFromName(tokens[1], spec.kind))
            throw FaultParseError(lineNo,
                                  "unknown fault kind '" + tokens[1] + "'");
        if (tokens[2] != "after")
            throw FaultParseError(lineNo, "expected 'after', got '" +
                                              tokens[2] + "'");
        spec.after = parseU64(tokens[3], lineNo, "trigger count");
        if (spec.after == 0)
            throw FaultParseError(lineNo,
                                  "'after' counts from 1, got 0");

        for (std::size_t i = 4; i < tokens.size(); i += 2) {
            const std::string &key = tokens[i];
            if (i + 1 >= tokens.size())
                throw FaultParseError(lineNo,
                                      "'" + key + "' needs a value");
            const std::string &value = tokens[i + 1];
            if (key == "every") {
                spec.every = parseU64(value, lineNo, "period");
                if (spec.every == 0)
                    throw FaultParseError(
                        lineNo, "'every' must be >= 1 (omit it for "
                                "a one-shot fault)");
                if (spec.kind == FaultKind::PowerGlitch)
                    throw FaultParseError(
                        lineNo, "power_glitch is one-shot ('every' "
                                "not allowed)");
            } else if (key == "count") {
                const std::uint64_t n = parseU64(value, lineNo, "count");
                if (n == 0 || n > MAX_COUNT)
                    throw FaultParseError(
                        lineNo, "count out of range: '" + value +
                                    "' (1.." + std::to_string(MAX_COUNT) +
                                    ")");
                spec.count = static_cast<unsigned>(n);
            } else if (key == "cycles") {
                spec.cycles = parseU64(value, lineNo, "cycle count");
                if (spec.cycles == 0 || spec.cycles > MAX_CYCLES)
                    throw FaultParseError(
                        lineNo, "cycles out of range: '" + value + "'");
            } else if (key == "seconds") {
                spec.seconds = parseSeconds(value, lineNo);
            } else if (key == "bytes") {
                const std::uint64_t n = parseU64(value, lineNo, "bytes");
                if (n == 0 || n > MAX_BURST_BYTES)
                    throw FaultParseError(
                        lineNo, "bytes out of range: '" + value +
                                    "' (max 16MiB)");
                spec.bytes = static_cast<std::size_t>(n);
            } else {
                throw FaultParseError(lineNo,
                                      "unknown fault parameter '" + key +
                                          "'");
            }
        }
        schedule.faults.push_back(spec);
    }
    return schedule;
}

std::string
formatFaultSpec(const FaultSpec &spec)
{
    std::ostringstream out;
    out << "fault " << faultKindName(spec.kind) << " after " << spec.after;
    if (spec.every != 0)
        out << " every " << spec.every;
    switch (spec.kind) {
      case FaultKind::DramBitFlip:
      case FaultKind::IramBitFlip:
      case FaultKind::BusDuplicateWrite:
      case FaultKind::LockdownGlitch:
        out << " count " << spec.count;
        break;
      case FaultKind::BusDelay:
        out << " cycles " << spec.cycles;
        break;
      case FaultKind::KcryptdStall:
      case FaultKind::PowerGlitch: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", spec.seconds);
        out << " seconds " << buf;
        break;
      }
      case FaultKind::DmaBurst:
        out << " bytes " << spec.bytes;
        break;
    }
    return out.str();
}

std::string
formatFaultSchedule(const FaultSchedule &schedule)
{
    std::ostringstream out;
    for (const FaultSpec &spec : schedule.faults)
        out << formatFaultSpec(spec) << '\n';
    return out.str();
}

} // namespace sentry::fault
