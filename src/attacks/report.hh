/**
 * @file
 * Common result type for the attack harnesses and the Table 3 matrix.
 */

#ifndef SENTRY_ATTACKS_REPORT_HH
#define SENTRY_ATTACKS_REPORT_HH

#include <string>
#include <vector>

namespace sentry::attacks
{

/** Outcome of one attack attempt. */
struct AttackResult
{
    std::string attack;           //!< e.g. "cold-boot/reflash"
    std::string target;           //!< e.g. "volatile key in iRAM"
    bool secretRecovered = false; //!< attacker got the secret bytes
    double fractionRecovered = 0.0; //!< pattern survival (when measured)
    std::vector<std::string> notes;

    /** @return "UNSAFE"/"Safe" as in the paper's Table 3. */
    const char *verdict() const
    {
        return secretRecovered ? "UNSAFE" : "Safe";
    }
};

/** Pretty-print a result line ("attack  target  verdict"). */
std::string formatResult(const AttackResult &result);

} // namespace sentry::attacks

#endif // SENTRY_ATTACKS_REPORT_HH
