/**
 * @file
 * Cold-boot attacks (paper section 3.1, Table 2 methodology).
 *
 * Three variants, matching the paper's board-reset experiments:
 *   - OsReboot:       reboot into an attacker OS with no power loss
 *                     (possible on unlocked bootloaders);
 *   - DeviceReflash:  tap the reset line (~7 ms power loss) and boot a
 *                     flashing tool — the Frost-style attack;
 *   - TwoSecondReset: hold reset for two seconds (module-yank model).
 *
 * After the boot, the attacker dumps all of DRAM and iRAM and greps the
 * dumps — for a known repeating pattern (the remanence measurement) or
 * for specific secret bytes (key recovery).
 */

#ifndef SENTRY_ATTACKS_COLD_BOOT_HH
#define SENTRY_ATTACKS_COLD_BOOT_HH

#include <cstdint>
#include <span>

#include "attacks/report.hh"
#include "hw/soc.hh"

namespace sentry::attacks
{

/** Which reset the attacker performs. */
enum class ColdBootVariant
{
    OsReboot,
    DeviceReflash,
    TwoSecondReset,
};

/** @return the paper's name for a variant. */
const char *coldBootVariantName(ColdBootVariant variant);

/** Remanence fractions measured by one attack (Table 2 cells). */
struct RemanenceMeasurement
{
    double iramFraction = 0.0;
    double dramFraction = 0.0;
};

/** The cold-boot attacker. */
class ColdBootAttack
{
  public:
    /**
     * @param variant  reset type
     * @param celsius  ambient temperature (cooling extends retention —
     *                 the household-freezer trick)
     */
    explicit ColdBootAttack(ColdBootVariant variant, double celsius = 22.0)
        : variant_(variant), celsius_(celsius)
    {}

    /** Perform the reset + attacker boot. Mutates the device. */
    void performReset(hw::Soc &soc) const;

    /**
     * Full attack: reset, dump, grep for @p secret.
     * @param target description for the report
     */
    AttackResult run(hw::Soc &soc, std::span<const std::uint8_t> secret,
                     const std::string &target) const;

    /**
     * Table 2 methodology: count aligned occurrences of @p pattern in
     * iRAM and DRAM before and after the reset; report the surviving
     * fractions.
     */
    RemanenceMeasurement
    measureRemanence(hw::Soc &soc,
                     std::span<const std::uint8_t> pattern) const;

  private:
    ColdBootVariant variant_;
    double celsius_;
};

} // namespace sentry::attacks

#endif // SENTRY_ATTACKS_COLD_BOOT_HH
