/**
 * @file
 * Bus-monitoring attack (paper section 3.1): a probe on the DDR traces
 * records every transaction between the SoC and DRAM.
 *
 * Two capabilities are modelled:
 *
 *   1. payload capture: any secret byte that crosses the bus is
 *      captured directly;
 *   2. the access-pattern side channel: even though AES lookup tables
 *      hold no secrets, *which* table lines are fetched during an
 *      encryption leaks the key (Tromer/Osvik/Shamir). A first-round
 *      known-plaintext analysis recovers the top five bits of every key
 *      byte (cache-line granularity: 32-byte lines, 4-byte entries).
 *
 * Against AES On SoC both capabilities come up empty: the state never
 * crosses the bus.
 */

#ifndef SENTRY_ATTACKS_BUS_MONITOR_ATTACK_HH
#define SENTRY_ATTACKS_BUS_MONITOR_ATTACK_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "attacks/report.hh"
#include "common/rng.hh"
#include "crypto/aes_on_soc.hh"
#include "hw/bus_monitor.hh"
#include "hw/soc.hh"

namespace sentry::attacks
{

/** Result of the AES access-pattern analysis. */
struct SideChannelResult
{
    /** Table-region reads were visible on the bus at all. */
    bool accessPatternsVisible = false;
    /** Per key byte: recovered top-5-bits (value & 0xF8), if pinned
     *  down to a single 8-value class. */
    std::vector<std::optional<std::uint8_t>> keyByteHighBits;

    /** @return number of key bytes whose high bits were recovered. */
    std::size_t recoveredBytes() const;
};

/** The probe-wielding attacker. */
class BusMonitorAttack
{
  public:
    /** Attach the probe to @p soc's memory bus. */
    explicit BusMonitorAttack(hw::Soc &soc);
    ~BusMonitorAttack();

    BusMonitorAttack(const BusMonitorAttack &) = delete;
    BusMonitorAttack &operator=(const BusMonitorAttack &) = delete;

    /** Clear the capture buffer. */
    void startCapture();

    /** @return the raw probe. */
    const hw::BusMonitor &monitor() const { return monitor_; }

    /**
     * Search everything captured since startCapture() for @p secret.
     */
    AttackResult analyzeForSecret(std::span<const std::uint8_t> secret,
                                  const std::string &target) const;

    /**
     * Run the first-round known-plaintext attack against @p engine.
     *
     * For each random plaintext the harness flushes the L2 (modelling
     * the cache pressure a busy system provides for free), encrypts one
     * block, and records which AES round-table lines were fetched over
     * the bus. Key-byte candidates inconsistent with the observed line
     * sets are eliminated.
     *
     * @param engine     the victim cipher (audited block interface)
     * @param num_blocks how many known plaintexts to use
     * @param rng        plaintext source
     */
    SideChannelResult recoverAesKeyBits(crypto::SimAesEngine &engine,
                                        unsigned num_blocks, Rng &rng);

  private:
    hw::Soc &soc_;
    hw::BusMonitor monitor_;
};

} // namespace sentry::attacks

#endif // SENTRY_ATTACKS_BUS_MONITOR_ATTACK_HH
