#include "attacks/cold_boot.hh"

#include "common/bytes.hh"
#include "common/logging.hh"

namespace sentry::attacks
{

const char *
coldBootVariantName(ColdBootVariant variant)
{
    switch (variant) {
      case ColdBootVariant::OsReboot:
        return "os-reboot";
      case ColdBootVariant::DeviceReflash:
        return "device-reflash";
      case ColdBootVariant::TwoSecondReset:
        return "2s-reset";
      default:
        return "?";
    }
}

void
ColdBootAttack::performReset(hw::Soc &soc) const
{
    switch (variant_) {
      case ColdBootVariant::OsReboot:
        // No power disconnect: memory cells keep everything; the
        // attacker OS image overwrites its own footprint.
        soc.warmReboot();
        break;
      case ColdBootVariant::DeviceReflash:
        // Tapping RESET: ~7 ms without power, then the boot ROM runs
        // (zeroing iRAM) and loads the minimal flashing tool.
        soc.powerCycle(0.007, celsius_);
        break;
      case ColdBootVariant::TwoSecondReset:
        soc.powerCycle(2.0, celsius_);
        break;
    }
}

AttackResult
ColdBootAttack::run(hw::Soc &soc, std::span<const std::uint8_t> secret,
                    const std::string &target) const
{
    performReset(soc);

    AttackResult result;
    result.attack = std::string("cold-boot/") + coldBootVariantName(variant_);
    result.target = target;

    // The attacker-controlled boot dumps every physical byte.
    const bool inDram = containsBytes(soc.dramRaw(), secret);
    const bool inIram = containsBytes(soc.iramRaw(), secret);
    result.secretRecovered = inDram || inIram;
    if (inDram)
        result.notes.push_back("secret found in DRAM dump");
    if (inIram)
        result.notes.push_back("secret found in iRAM dump");
    return result;
}

RemanenceMeasurement
ColdBootAttack::measureRemanence(hw::Soc &soc,
                                 std::span<const std::uint8_t> pattern) const
{
    const auto before = [&](std::span<const std::uint8_t> memory) {
        return countPattern(memory, pattern);
    };

    const std::size_t dramBefore = before(soc.dramRaw());
    const std::size_t iramBefore = before(soc.iramRaw());
    if (dramBefore == 0 || iramBefore == 0)
        fatal("remanence measurement requires pre-filled memories");

    performReset(soc);

    RemanenceMeasurement measurement;
    measurement.dramFraction =
        static_cast<double>(countPattern(soc.dramRaw(), pattern)) /
        static_cast<double>(dramBefore);
    measurement.iramFraction =
        static_cast<double>(countPattern(soc.iramRaw(), pattern)) /
        static_cast<double>(iramBefore);
    return measurement;
}

} // namespace sentry::attacks
