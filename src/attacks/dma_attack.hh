/**
 * @file
 * DMA attack (paper section 3.1): a malicious or reprogrammed
 * DMA-capable peripheral reads arbitrary system memory while the device
 * is powered and locked. No CPU or OS cooperation is needed; the only
 * thing that can stop it is TrustZone's region protection (there is no
 * IOMMU), and the L2 cache is invisible to it by construction.
 */

#ifndef SENTRY_ATTACKS_DMA_ATTACK_HH
#define SENTRY_ATTACKS_DMA_ATTACK_HH

#include <cstdint>
#include <span>
#include <vector>

#include "attacks/report.hh"
#include "hw/soc.hh"

namespace sentry::attacks
{

/** The DMA attacker. */
class DmaAttack
{
  public:
    /**
     * Dump [addr, addr+len) via DMA.
     * @param status_out optional: the first non-Ok status encountered
     * @return dumped bytes (empty where access was denied)
     */
    std::vector<std::uint8_t> dumpRange(hw::Soc &soc, PhysAddr addr,
                                        std::size_t len,
                                        hw::DmaStatus *status_out = nullptr);

    /**
     * Full attack: dump all of DRAM and (if permitted) iRAM, grep for
     * @p secret.
     */
    AttackResult run(hw::Soc &soc, std::span<const std::uint8_t> secret,
                     const std::string &target);
};

} // namespace sentry::attacks

#endif // SENTRY_ATTACKS_DMA_ATTACK_HH
