#include "attacks/dma_attack.hh"

#include "common/bytes.hh"

namespace sentry::attacks
{

std::vector<std::uint8_t>
DmaAttack::dumpRange(hw::Soc &soc, PhysAddr addr, std::size_t len,
                     hw::DmaStatus *status_out)
{
    std::vector<std::uint8_t> dump(len, 0);
    hw::DmaStatus worst = hw::DmaStatus::Ok;

    // Real DMA engines move data in bounded bursts; 64 KiB descriptors.
    constexpr std::size_t BURST = 64 * KiB;
    for (std::size_t off = 0; off < len; off += BURST) {
        const std::size_t chunk = std::min(BURST, len - off);
        const hw::DmaStatus status =
            soc.dma().readMemory(addr + off, dump.data() + off, chunk);
        if (status != hw::DmaStatus::Ok && worst == hw::DmaStatus::Ok)
            worst = status;
    }
    if (status_out != nullptr)
        *status_out = worst;
    return dump;
}

AttackResult
DmaAttack::run(hw::Soc &soc, std::span<const std::uint8_t> secret,
               const std::string &target)
{
    AttackResult result;
    result.attack = "dma";
    result.target = target;

    const std::vector<std::uint8_t> dramDump =
        dumpRange(soc, DRAM_BASE, soc.dramRaw().size());
    if (containsBytes(dramDump, secret)) {
        result.secretRecovered = true;
        result.notes.push_back("secret found in DRAM via DMA");
    }

    hw::DmaStatus iramStatus = hw::DmaStatus::Ok;
    const std::vector<std::uint8_t> iramDump =
        dumpRange(soc, IRAM_BASE, soc.iramRaw().size(), &iramStatus);
    if (iramStatus == hw::DmaStatus::DeniedByTrustZone) {
        result.notes.push_back("iRAM DMA denied by TrustZone");
    } else if (containsBytes(iramDump, secret)) {
        result.secretRecovered = true;
        result.notes.push_back("secret found in iRAM via DMA");
    }

    return result;
}

} // namespace sentry::attacks
