#include "attacks/bus_monitor_attack.hh"

#include <array>

#include "common/bytes.hh"
#include "common/types.hh"

namespace sentry::attacks
{

std::size_t
SideChannelResult::recoveredBytes() const
{
    std::size_t count = 0;
    for (const auto &byte : keyByteHighBits)
        count += byte.has_value() ? 1 : 0;
    return count;
}

BusMonitorAttack::BusMonitorAttack(hw::Soc &soc)
    : soc_(soc), monitor_(/*capture_payloads=*/true)
{
    monitor_.attach(soc_.trace());
}

BusMonitorAttack::~BusMonitorAttack()
{
    monitor_.detach();
}

void
BusMonitorAttack::startCapture()
{
    monitor_.clear();
}

AttackResult
BusMonitorAttack::analyzeForSecret(std::span<const std::uint8_t> secret,
                                   const std::string &target) const
{
    AttackResult result;
    result.attack = "bus-monitor";
    result.target = target;

    const std::vector<std::uint8_t> payloads =
        monitor_.concatenatedPayloads();
    if (containsBytes(payloads, secret)) {
        result.secretRecovered = true;
        result.notes.push_back("secret bytes crossed the memory bus");
    }
    return result;
}

SideChannelResult
BusMonitorAttack::recoverAesKeyBits(crypto::SimAesEngine &engine,
                                    unsigned num_blocks, Rng &rng)
{
    // Attack geometry: 4 tables of 256 4-byte entries; a 32-byte cache
    // line covers 8 consecutive entries, so an observed line pins the
    // top 5 bits of the index. In round one the index of key byte i in
    // table (i % 4) is plaintext[i] ^ key[i].
    constexpr unsigned ENTRIES_PER_LINE =
        CACHE_LINE_SIZE / 4; // = 8 entries
    constexpr unsigned LINES_PER_TABLE = 256 / ENTRIES_PER_LINE;

    const PhysAddr teBase =
        engine.stateBase() +
        engine.layout().find("Enc round tables (Te0-3)").offset;

    // Candidate sets: all 256 values per key byte to start with.
    std::array<std::vector<bool>, 16> alive;
    for (auto &v : alive)
        v.assign(256, true);

    bool sawTableTraffic = false;

    for (unsigned block = 0; block < num_blocks; ++block) {
        std::uint8_t plaintext[16];
        for (auto &b : plaintext)
            b = static_cast<std::uint8_t>(rng.below(256));

        // Cache pressure: a busy system keeps evicting the tables.
        soc_.l2().flushAllMasked();
        startCapture();

        std::uint8_t ciphertext[16];
        engine.encryptBlock(plaintext, ciphertext);

        // Which lines of each table crossed the bus?
        std::array<std::array<bool, LINES_PER_TABLE>, 4> seen{};
        for (const auto &txn : monitor_.trace()) {
            if (txn.isWrite || txn.addr < teBase ||
                txn.addr >= teBase + 4 * 256 * 4) {
                continue;
            }
            sawTableTraffic = true;
            // A line fill covers one whole line; mark every table line
            // the transaction overlaps.
            const PhysAddr rel = txn.addr - teBase;
            const unsigned table = static_cast<unsigned>(rel / 1024);
            const unsigned line =
                static_cast<unsigned>((rel % 1024) / CACHE_LINE_SIZE);
            seen[table][line] = true;
        }
        if (!sawTableTraffic)
            continue;

        // Eliminate key candidates whose round-1 line was not fetched.
        for (unsigned i = 0; i < 16; ++i) {
            const unsigned table = i % 4;
            for (unsigned k = 0; k < 256; ++k) {
                if (!alive[i][k])
                    continue;
                const unsigned line =
                    static_cast<unsigned>(plaintext[i] ^ k) /
                    ENTRIES_PER_LINE;
                if (!seen[table][line])
                    alive[i][k] = false;
            }
        }
    }

    SideChannelResult result;
    result.accessPatternsVisible = sawTableTraffic;
    result.keyByteHighBits.assign(16, std::nullopt);
    if (!sawTableTraffic)
        return result;

    for (unsigned i = 0; i < 16; ++i) {
        // Success when every surviving candidate shares one 8-entry
        // line class (the low 3 bits stay unresolvable).
        int cls = -1;
        bool ambiguous = false;
        unsigned survivors = 0;
        for (unsigned k = 0; k < 256; ++k) {
            if (!alive[i][k])
                continue;
            ++survivors;
            const int c = static_cast<int>(k & 0xF8);
            if (cls < 0)
                cls = c;
            else if (cls != c)
                ambiguous = true;
        }
        if (survivors > 0 && !ambiguous)
            result.keyByteHighBits[i] = static_cast<std::uint8_t>(cls);
    }
    return result;
}

} // namespace sentry::attacks
