#include "attacks/code_injection.hh"

#include <vector>

namespace sentry::attacks
{

AttackResult
CodeInjectionAttack::injectViaDma(hw::Soc &soc, PhysAddr addr,
                                  std::span<const std::uint8_t> payload,
                                  const std::string &target)
{
    AttackResult result;
    result.attack = "code-injection/dma";
    result.target = target;

    const hw::DmaStatus status =
        soc.dma().writeMemory(addr, payload.data(), payload.size());
    if (status == hw::DmaStatus::Ok) {
        // Verify the payload actually landed (read back over DMA).
        std::vector<std::uint8_t> check(payload.size());
        if (soc.dma().readMemory(addr, check.data(), check.size()) ==
                hw::DmaStatus::Ok &&
            std::equal(check.begin(), check.end(), payload.begin())) {
            result.secretRecovered = true; // i.e. the injection landed
            result.notes.push_back("payload written via DMA");
        }
    } else if (status == hw::DmaStatus::DeniedByTrustZone) {
        result.notes.push_back("write denied by TrustZone");
    } else {
        result.notes.push_back("write rejected (bad address)");
    }
    return result;
}

AttackResult
CodeInjectionAttack::replaceFirmware(hw::Soc &soc,
                                     std::span<const std::uint8_t> image)
{
    AttackResult result;
    result.attack = "code-injection/firmware";
    result.target = "boot ROM (zeroing logic)";

    // The attacker's image is, by definition, not signed with the
    // manufacturer key.
    const bool accepted =
        soc.firmware().acceptImage(image, /*signed_by_manufacturer=*/false);
    result.secretRecovered = accepted;
    result.notes.push_back(accepted ? "unsigned image accepted (bug!)"
                                    : "unsigned image rejected");
    return result;
}

} // namespace sentry::attacks
