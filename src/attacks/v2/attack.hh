/**
 * @file
 * Adversary suite v2: common infrastructure for the post-paper attack
 * models (ARMageddon cache attacks, Rowhammer, the TrustZone
 * shared-memory side channel).
 *
 * Every v2 attack derives from Attack and gets three things:
 *
 *   1. a private seeded Rng stream, reseeded at the top of every
 *      run(), so the same (attack, seed, device schedule) always
 *      replays to the identical outcome;
 *   2. a TraceEngine subscription scoped exactly to run() — the
 *      attack observes the trace points it declares via observeMask()
 *      and nothing else, and always detaches on exit;
 *   3. a structured AttackOutcome with ordered counters and a
 *      canonical digest() string, so fleet/fuzz reproducers can
 *      compare outcomes byte for byte.
 */

#ifndef SENTRY_ATTACKS_V2_ATTACK_HH
#define SENTRY_ATTACKS_V2_ATTACK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/trace_engine.hh"

namespace sentry::hw
{
class Soc;
}

namespace sentry::attacks::v2
{

/**
 * Structured result of one attack run. Counters keep insertion order
 * so digest() is canonical; notes are human-facing and excluded from
 * the digest.
 */
struct AttackOutcome
{
    std::string attack; //!< attack name (stable identifier)
    std::string target; //!< what was attacked (attack-defined)
    std::uint64_t seed = 0;
    bool secretRecovered = false;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::string> notes;

    /** Append (or add to) counter @p key. */
    void count(const std::string &key, std::uint64_t delta = 1);

    /** @return counter @p key's value (0 when absent). */
    std::uint64_t counter(const std::string &key) const;

    /** @return "recovered" or "defeated". */
    const char *verdict() const
    {
        return secretRecovered ? "recovered" : "defeated";
    }

    /**
     * Canonical one-line digest:
     * `attack=<a>;target=<t>;seed=0x<s>;recovered=<0|1>;k=v;...`
     * Counters appear in insertion order; notes are excluded.
     */
    std::string digest() const;
};

/** Base class of all v2 attacks. */
class Attack : public probe::Subscriber
{
  public:
    Attack(std::string name, std::uint64_t seed)
        : rng_(seed), name_(std::move(name)), seed_(seed)
    {}

    /** @return the attack's stable name. */
    const std::string &name() const { return name_; }

    /** @return the attack's seed. */
    std::uint64_t seed() const { return seed_; }

    /**
     * Run the attack against @p soc. Reseeds the RNG stream, attaches
     * this subscriber for observeMask() around execute(), and always
     * detaches afterwards. Calling run() twice on equivalent device
     * state yields byte-identical outcomes.
     */
    AttackOutcome run(hw::Soc &soc);

  protected:
    /** Trace kinds the attack wants delivered during execute(). */
    virtual probe::TraceMask observeMask() const { return 0; }

    /** The attack body; fill and return an outcome (use
     * makeOutcome() for the common header fields). */
    virtual AttackOutcome execute(hw::Soc &soc) = 0;

    /** @return an outcome pre-filled with name/seed and @p target. */
    AttackOutcome makeOutcome(std::string target) const;

    Rng rng_;

  private:
    std::string name_;
    std::uint64_t seed_;
};

} // namespace sentry::attacks::v2

#endif // SENTRY_ATTACKS_V2_ATTACK_HH
