#include "attacks/v2/tz_side_channel.hh"

#include <vector>

#include "common/logging.hh"
#include "hw/soc.hh"

namespace sentry::attacks::v2
{

TzSecretService::TzSecretService(hw::Soc &soc, PhysAddr shared_base,
                                 bool hardened)
    : soc_(soc), sharedBase_(shared_base), hardened_(hardened)
{
    hw::TrustZone &tz = soc.trustzone();
    if (!tz.enterSecureWorld())
        return;
    if (tz.readFuse(secret_) &&
        tz.bindSharedBuffer(shared_base,
                            TZ_MAILBOX_LINES * CACHE_LINE_SIZE))
        available_ = true;
    tz.exitSecureWorld();
}

unsigned
TzSecretService::nibble(unsigned i) const
{
    const std::uint8_t byte = secret_[(i / 2) % secret_.size()];
    return (i % 2 == 0) ? (byte >> 4) : (byte & 0xf);
}

void
TzSecretService::invoke(unsigned i)
{
    hw::TrustZone &tz = soc_.trustzone();
    if (!available_ || !tz.enterSecureWorld())
        return;
    std::uint8_t buf[4];
    if (hardened_) {
        // Secret-independent access pattern: every line, fixed order.
        for (unsigned line = 0; line < TZ_MAILBOX_LINES; ++line)
            soc_.memory().read(sharedBase_ + line * CACHE_LINE_SIZE, buf,
                               sizeof buf);
    } else {
        soc_.memory().read(sharedBase_ + nibble(i) * CACHE_LINE_SIZE, buf,
                           sizeof buf);
    }
    tz.exitSecureWorld();
}

namespace
{

Cycles
timedRead(hw::Soc &soc, PhysAddr addr)
{
    std::uint8_t buf[4];
    const Cycles before = soc.clock().now();
    soc.memory().read(addr, buf, sizeof buf);
    return soc.clock().now() - before;
}

/** Conflict addresses sharing @p target's L2 set (see cache_attack). */
std::vector<PhysAddr>
conflictSet(hw::Soc &soc, const TzSideChannelConfig &config,
            PhysAddr target)
{
    const std::size_t waySize = soc.l2().waySizeBytes();
    const PhysAddr setOffset = alignDown(target, CACHE_LINE_SIZE) % waySize;
    PhysAddr first = alignDown(config.attackerBase, waySize) + setOffset;
    if (first < config.attackerBase)
        first += waySize;
    std::vector<PhysAddr> lines;
    for (unsigned j = 0; j < soc.l2().ways(); ++j) {
        const PhysAddr addr = first + j * waySize;
        if (addr + CACHE_LINE_SIZE >
            config.attackerBase + config.attackerSpan)
            break;
        lines.push_back(addr);
    }
    return lines;
}

/** Prime @p lines until a timed pass is clean (round-robin converges;
 * see cache_attack.cc) or the pass cap is hit. */
void
evictSet(hw::Soc &soc, const std::vector<PhysAddr> &lines, Cycles threshold)
{
    const unsigned passCap = soc.l2().ways() + 2;
    for (unsigned pass = 0; pass < passCap; ++pass) {
        unsigned misses = 0;
        for (const PhysAddr addr : lines)
            if (timedRead(soc, addr) >= threshold)
                ++misses;
        if (misses == 0)
            return;
    }
}

} // namespace

AttackOutcome
TzSideChannelAttack::execute(hw::Soc &soc)
{
    recovered_.fill(-1);
    AttackOutcome outcome = makeOutcome("tz_shared_mailbox");
    hw::TrustZone &tz = soc.trustzone();
    if (!service_.available() || !tz.hasSharedBuffer()) {
        outcome.notes.push_back(
            "secure world unavailable: no service to attack");
        outcome.count("nibbles", 0);
        outcome.count("recovered_nibbles", 0);
        return outcome;
    }

    const PhysAddr mailbox = tz.sharedBufferBase();
    // Calibrate the attacker's hit latency on a private scratch line.
    const PhysAddr scratch = alignUp(config_.attackerBase, CACHE_LINE_SIZE);
    timedRead(soc, scratch);
    const Cycles hitCost = timedRead(soc, scratch);
    const Cycles threshold =
        hitCost + soc.l2().timing().missPenaltyCycles / 2;

    std::vector<std::vector<PhysAddr>> evictionSets;
    evictionSets.reserve(TZ_MAILBOX_LINES);
    for (unsigned line = 0; line < TZ_MAILBOX_LINES; ++line)
        evictionSets.push_back(conflictSet(
            soc, config_, mailbox + line * CACHE_LINE_SIZE));

    const std::uint64_t smcBefore = tz.smcEntries();
    std::uint64_t recoveredCount = 0;
    std::uint64_t ambiguous = 0;
    for (unsigned i = 0; i < TZ_SECRET_NIBBLES; ++i) {
        for (const std::vector<PhysAddr> &set : evictionSets)
            evictSet(soc, set, threshold);
        service_.invoke(i);
        int hot = -1;
        unsigned hotCount = 0;
        for (unsigned line = 0; line < TZ_MAILBOX_LINES; ++line) {
            if (timedRead(soc, mailbox + line * CACHE_LINE_SIZE) <
                threshold) {
                hot = static_cast<int>(line);
                ++hotCount;
            }
        }
        if (hotCount == 1) {
            recovered_[i] = hot;
            ++recoveredCount;
        } else {
            ++ambiguous;
        }
    }
    outcome.count("nibbles", TZ_SECRET_NIBBLES);
    outcome.count("recovered_nibbles", recoveredCount);
    outcome.count("ambiguous_probes", ambiguous);
    outcome.count("smc_entries", tz.smcEntries() - smcBefore);
    outcome.secretRecovered = recoveredCount == TZ_SECRET_NIBBLES;
    if (!outcome.secretRecovered)
        outcome.notes.push_back(
            "mailbox touch pattern was secret-independent");
    return outcome;
}

} // namespace sentry::attacks::v2
