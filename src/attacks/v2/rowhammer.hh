/**
 * @file
 * Rowhammer attack model (Kim et al.; defense per "CAn't Touch This",
 * Brasser et al., see PAPERS.md). The attacker owns a handful of DRAM
 * frames and hammers them with tight activate/precharge loops; rows
 * physically adjacent in the same bank accumulate disturbance and may
 * flip bits the attacker never had write access to.
 *
 * The defense is physical, not cryptographic: a CATT-style row
 * partition in the allocator (os::PhysAllocator::partitionRows) keeps
 * attacker-reachable frames at least one guard row away from
 * victim-owned rows, so the disturbance radius (+-1 row in bank) can
 * never reach sensitive data.
 */

#ifndef SENTRY_ATTACKS_V2_ROWHAMMER_HH
#define SENTRY_ATTACKS_V2_ROWHAMMER_HH

#include "attacks/v2/attack.hh"
#include "common/types.hh"
#include "hw/dram.hh"

namespace sentry::attacks::v2
{

/** Configuration of one hammering campaign. */
struct RowhammerConfig
{
    /** Physical (bus) addresses of the aggressor rows the attacker
     * owns; each is hammered independently. */
    std::vector<PhysAddr> aggressors;
    /** Activations charged per aggressor row (one refresh window). */
    std::uint32_t activationsPerRow = 16384;
    /** Disturbance error model knobs. */
    hw::DisturbParams params;
};

/** Deterministic double-sided-style Rowhammer campaign. */
class RowhammerAttack : public Attack
{
  public:
    RowhammerAttack(RowhammerConfig config, std::uint64_t seed)
        : Attack("rowhammer", seed), config_(std::move(config))
    {}

    /** @return all flips applied, as DRAM-relative offsets. */
    const std::vector<hw::FlippedBit> &flips() const { return flips_; }

  protected:
    AttackOutcome execute(hw::Soc &soc) override;

  private:
    RowhammerConfig config_;
    std::vector<hw::FlippedBit> flips_;
};

} // namespace sentry::attacks::v2

#endif // SENTRY_ATTACKS_V2_ROWHAMMER_HH
