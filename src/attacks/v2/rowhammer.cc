#include "attacks/v2/rowhammer.hh"

#include "hw/soc.hh"

namespace sentry::attacks::v2
{

AttackOutcome
RowhammerAttack::execute(hw::Soc &soc)
{
    flips_.clear();
    AttackOutcome outcome = makeOutcome("dram_rows");
    hw::Dram &dram = soc.dram();

    std::uint64_t activations = 0;
    std::uint64_t aggressorRows = 0;
    for (const PhysAddr aggressor : config_.aggressors) {
        if (aggressor < DRAM_BASE || aggressor >= soc.dramEnd())
            continue;
        const PhysAddr offset = aggressor - DRAM_BASE;
        ++aggressorRows;

        // A little real bus traffic so the campaign is visible to bus
        // monitors and trace sinks; the activation counter models the
        // tight uncached activate/precharge loop itself.
        std::uint8_t line[CACHE_LINE_SIZE];
        for (unsigned burst = 0; burst < 4; ++burst)
            soc.bus().read(alignDown(aggressor, CACHE_LINE_SIZE), line,
                           sizeof line, hw::BusInitiator::CpuCache);

        dram.recordActivations(offset, config_.activationsPerRow);
        activations += config_.activationsPerRow;

        const std::vector<hw::FlippedBit> rowFlips =
            dram.disturbAdjacentRows(offset, rng_, config_.params);
        flips_.insert(flips_.end(), rowFlips.begin(), rowFlips.end());

        // End of the refresh window for this aggressor's bank.
        dram.refreshRows();
    }

    // Order-independent checksum of the flip set, so two runs can be
    // compared byte-for-byte through the digest alone.
    std::uint64_t flipDigest = 0;
    for (const hw::FlippedBit &flip : flips_)
        flipDigest ^= (static_cast<std::uint64_t>(flip.offset) << 3) ^
                      flip.bit ^ (flipDigest << 13) ^ (flipDigest >> 7);

    outcome.count("aggressor_rows", aggressorRows);
    outcome.count("activations", activations);
    outcome.count("bit_flips", flips_.size());
    outcome.count("flip_digest", flipDigest);
    // "Recovered" for Rowhammer means integrity loss, not
    // confidentiality: any flip landed outside the attacker's frames.
    outcome.secretRecovered = !flips_.empty();
    if (config_.aggressors.empty())
        outcome.notes.push_back("no aggressor rows allocated");
    return outcome;
}

} // namespace sentry::attacks::v2
