#include "attacks/v2/attack.hh"

#include <sstream>

#include "hw/soc.hh"

namespace sentry::attacks::v2
{

void
AttackOutcome::count(const std::string &key, std::uint64_t delta)
{
    for (auto &[name, value] : counters) {
        if (name == key) {
            value += delta;
            return;
        }
    }
    counters.emplace_back(key, delta);
}

std::uint64_t
AttackOutcome::counter(const std::string &key) const
{
    for (const auto &[name, value] : counters)
        if (name == key)
            return value;
    return 0;
}

std::string
AttackOutcome::digest() const
{
    std::ostringstream out;
    out << "attack=" << attack << ";target=" << target << ";seed=0x"
        << std::hex << seed << std::dec
        << ";recovered=" << (secretRecovered ? 1 : 0);
    for (const auto &[name, value] : counters)
        out << ';' << name << '=' << value;
    return out.str();
}

AttackOutcome
Attack::run(hw::Soc &soc)
{
    // Reseed so back-to-back runs of one Attack object draw identical
    // random streams — replayability does not depend on construction
    // order.
    rng_.reseed(seed_);
    const probe::TraceMask mask = observeMask();
    if (mask != 0)
        soc.trace().subscribe(this, mask);
    AttackOutcome outcome;
    try {
        outcome = execute(soc);
    } catch (...) {
        if (mask != 0)
            soc.trace().unsubscribe(this);
        throw;
    }
    if (mask != 0)
        soc.trace().unsubscribe(this);
    return outcome;
}

AttackOutcome
Attack::makeOutcome(std::string target) const
{
    AttackOutcome outcome;
    outcome.attack = name_;
    outcome.target = std::move(target);
    outcome.seed = seed_;
    return outcome;
}

} // namespace sentry::attacks::v2
