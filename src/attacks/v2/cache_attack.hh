/**
 * @file
 * ARMageddon-style L2 cache attacks (Lipp et al., PAPERS.md): a
 * cross-core attacker who shares the PL310 with the victim measures
 * access latencies to learn whether the victim touched a monitored
 * line.
 *
 *   - Prime+Probe: fill the victim line's set with attacker-owned
 *     conflict lines, let the victim run, and re-time the conflicts.
 *     An evicted conflict means the victim pulled its line into the
 *     set. Needs no shared memory.
 *   - Evict+Reload: evict the (shared, attacker-mappable) victim line,
 *     let the victim run, then time a reload of the victim address
 *     itself. A hit means the victim re-fetched it.
 *
 * Both are defeated by Sentry's lockdown-by-way storage: a line held
 * in a locked way hits without allocating on victim access, so the
 * attacker's conflict set never moves and the reload timing never
 * changes. The attack also subscribes to CacheEvent and counts
 * writebacks of locked ways — a nonzero count would mean lockdown
 * failed to pin the line.
 */

#ifndef SENTRY_ATTACKS_V2_CACHE_ATTACK_HH
#define SENTRY_ATTACKS_V2_CACHE_ATTACK_HH

#include <functional>

#include "attacks/v2/attack.hh"
#include "common/types.hh"

namespace sentry::attacks::v2
{

/** Shared configuration of the two cache attacks. */
struct CacheAttackConfig
{
    /** The line the attacker monitors (the victim's secret-holding
     * line; must be DRAM/cacheable for Prime+Probe to be meaningful). */
    PhysAddr victimAddr = 0;
    /** Base of the attacker-controlled region used to build conflict
     * sets; must be cacheable and span at least
     * (ways+1) * waySizeBytes. */
    PhysAddr attackerBase = 0;
    std::size_t attackerSpan = 0;
    /** Prime/probe (or evict/reload) repetitions. */
    unsigned rounds = 4;
};

/** What the attacker induces the victim to do between measurements. */
using VictimFn = std::function<void(hw::Soc &)>;

/** Cross-core Prime+Probe against one L2 set. */
class PrimeProbeAttack : public Attack
{
  public:
    PrimeProbeAttack(CacheAttackConfig config, VictimFn victim,
                     std::uint64_t seed)
        : Attack("prime_probe", seed), config_(config),
          victim_(std::move(victim))
    {}

  protected:
    probe::TraceMask observeMask() const override
    {
        return probe::maskOf(probe::TraceKind::CacheEvent);
    }

    AttackOutcome execute(hw::Soc &soc) override;

    void onCacheEvent(probe::CacheEvent &event) override
    {
        if (event.wayLocked)
            ++lockedWaybacks_;
    }

  private:
    CacheAttackConfig config_;
    VictimFn victim_;
    std::uint64_t lockedWaybacks_ = 0;
};

/** Evict+Reload against one shared line. */
class EvictReloadAttack : public Attack
{
  public:
    EvictReloadAttack(CacheAttackConfig config, VictimFn victim,
                      std::uint64_t seed)
        : Attack("evict_reload", seed), config_(config),
          victim_(std::move(victim))
    {}

  protected:
    probe::TraceMask observeMask() const override
    {
        return probe::maskOf(probe::TraceKind::CacheEvent);
    }

    AttackOutcome execute(hw::Soc &soc) override;

    void onCacheEvent(probe::CacheEvent &event) override
    {
        if (event.wayLocked)
            ++lockedWaybacks_;
    }

  private:
    CacheAttackConfig config_;
    VictimFn victim_;
    std::uint64_t lockedWaybacks_ = 0;
};

} // namespace sentry::attacks::v2

#endif // SENTRY_ATTACKS_V2_CACHE_ATTACK_HH
