#include "attacks/v2/cache_attack.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hw/soc.hh"

namespace sentry::attacks::v2
{

namespace
{

/** Read 4 bytes at @p addr and return the simulated cycles it took. */
Cycles
timedRead(hw::Soc &soc, PhysAddr addr)
{
    std::uint8_t buf[4];
    const Cycles before = soc.clock().now();
    soc.memory().read(addr, buf, sizeof buf);
    return soc.clock().now() - before;
}

/**
 * Measure the attacker's own L2 hit latency: read a private scratch
 * line twice and take the second (guaranteed-resident) access. Using a
 * measured baseline instead of L2Timing::hitCycles keeps the
 * classifier honest if the memory system ever adds fixed costs.
 */
Cycles
calibrateHitCost(hw::Soc &soc, PhysAddr scratch)
{
    timedRead(soc, scratch);
    return timedRead(soc, scratch);
}

/** Conflict-line addresses mapping to the same L2 set as the victim. */
std::vector<PhysAddr>
buildConflictSet(hw::Soc &soc, const CacheAttackConfig &config)
{
    const std::size_t waySize = soc.l2().waySizeBytes();
    const unsigned ways = soc.l2().ways();
    const PhysAddr setOffset =
        alignDown(config.victimAddr, CACHE_LINE_SIZE) % waySize;
    PhysAddr first = alignDown(config.attackerBase, waySize) + setOffset;
    if (first < config.attackerBase)
        first += waySize;
    std::vector<PhysAddr> conflicts;
    conflicts.reserve(ways);
    for (unsigned i = 0; i < ways; ++i) {
        const PhysAddr addr = first + i * waySize;
        if (addr + CACHE_LINE_SIZE >
            config.attackerBase + config.attackerSpan)
            break;
        conflicts.push_back(addr);
    }
    return conflicts;
}

/** Timed pass over the first @p n lines; @return how many missed. */
unsigned
probeMisses(hw::Soc &soc, const std::vector<PhysAddr> &lines,
            std::size_t n, Cycles threshold)
{
    unsigned misses = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (timedRead(soc, lines[i]) >= threshold)
            ++misses;
    return misses;
}

/**
 * Prime the set with the first @p n lines until a full timed pass
 * sees zero misses. Against the PL310's round-robin allocator a
 * single pass does not guarantee residency (a refill can land on an
 * earlier conflict's way), but every missing pass advances the
 * round-robin pointer, so repetition converges whenever n lines fit
 * the unlocked ways. A clean sweep proves all n conflicts are
 * resident — and hence that every *unlocked* way of the set is
 * attacker-owned when n equals the eviction-set size.
 *
 * @return true once a pass was clean; false if @p n lines can never
 *         co-reside (n exceeds the unlocked ways).
 */
bool
primeUntilClean(hw::Soc &soc, const std::vector<PhysAddr> &lines,
                std::size_t n, Cycles threshold)
{
    const unsigned passCap = soc.l2().ways() + 2;
    for (unsigned pass = 0; pass < passCap; ++pass)
        if (probeMisses(soc, lines, n, threshold) == 0)
            return true;
    return false;
}

/**
 * ARMageddon's eviction-set calibration: the largest prime size that
 * can reach a clean sweep equals the number of allocatable (unlocked)
 * ways in the set. Runs before the measurement rounds, so any state
 * it leaves behind is overwritten by the first real prime.
 */
std::size_t
discoverEvictionSetSize(hw::Soc &soc, const std::vector<PhysAddr> &lines,
                        Cycles threshold)
{
    std::size_t usable = 0;
    for (std::size_t n = 1; n <= lines.size(); ++n) {
        if (!primeUntilClean(soc, lines, n, threshold))
            break;
        usable = n;
    }
    return usable;
}

} // namespace

AttackOutcome
PrimeProbeAttack::execute(hw::Soc &soc)
{
    lockedWaybacks_ = 0;
    AttackOutcome outcome = makeOutcome("l2_set");
    if (config_.victimAddr == 0 || !victim_) {
        outcome.notes.push_back("misconfigured: no victim");
        return outcome;
    }

    const std::vector<PhysAddr> conflicts = buildConflictSet(soc, config_);
    const PhysAddr scratch = alignUp(config_.attackerBase, CACHE_LINE_SIZE);
    const Cycles hitCost = calibrateHitCost(soc, scratch);
    const Cycles threshold =
        hitCost + soc.l2().timing().missPenaltyCycles / 2;
    const std::size_t usable =
        discoverEvictionSetSize(soc, conflicts, threshold);

    outcome.count("eviction_set_size", usable);
    outcome.count("rounds", config_.rounds);
    if (usable == 0) {
        // Every way of the set is locked: nothing the attacker loads
        // sticks, so there is no occupancy state to observe.
        outcome.notes.push_back("set fully locked; no allocatable ways");
        outcome.count("signal_rounds", 0);
        outcome.count("locked_writebacks", lockedWaybacks_);
        return outcome;
    }

    std::vector<PhysAddr> order(conflicts.begin(),
                                conflicts.begin() +
                                    static_cast<std::ptrdiff_t>(usable));
    std::uint64_t signalRounds = 0;
    std::uint64_t postMisses = 0;
    for (unsigned round = 0; round < config_.rounds; ++round) {
        // Per-round probe order comes off the attack's seeded stream
        // (real attackers randomize to dodge prefetchers); the whole
        // run stays a pure function of the seed.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng_.below(i)]);

        primeUntilClean(soc, order, order.size(), threshold);
        victim_(soc);
        const unsigned post =
            probeMisses(soc, order, order.size(), threshold);
        postMisses += post;
        // After a clean prime the attacker owns every unlocked way,
        // so any probe miss means the victim allocated into the set.
        if (post != 0)
            ++signalRounds;
    }
    outcome.count("signal_rounds", signalRounds);
    outcome.count("probe_misses", postMisses);
    outcome.count("locked_writebacks", lockedWaybacks_);
    outcome.secretRecovered = signalRounds != 0;
    if (!outcome.secretRecovered)
        outcome.notes.push_back(
            "no eviction signal: victim line never displaced the set");
    return outcome;
}

AttackOutcome
EvictReloadAttack::execute(hw::Soc &soc)
{
    lockedWaybacks_ = 0;
    AttackOutcome outcome = makeOutcome("shared_line");
    if (config_.victimAddr == 0 || !victim_) {
        outcome.notes.push_back("misconfigured: no victim");
        return outcome;
    }

    const std::vector<PhysAddr> conflicts = buildConflictSet(soc, config_);
    const PhysAddr scratch = alignUp(config_.attackerBase, CACHE_LINE_SIZE);
    const Cycles hitCost = calibrateHitCost(soc, scratch);
    const Cycles threshold =
        hitCost + soc.l2().timing().missPenaltyCycles / 2;
    const std::size_t usable =
        discoverEvictionSetSize(soc, conflicts, threshold);

    outcome.count("eviction_set_size", usable);
    outcome.count("rounds", config_.rounds);
    std::uint64_t signalRounds = 0;
    std::uint64_t reloadHits = 0;
    for (unsigned round = 0; round < config_.rounds; ++round) {
        // Control: evict, then reload with no victim activity. A clean
        // prime proves every unlocked way is attacker-owned, so a
        // cacheable unlocked victim line must miss here.
        primeUntilClean(soc, conflicts, usable, threshold);
        const bool controlMissed =
            timedRead(soc, config_.victimAddr) >= threshold;
        // Measurement: evict, run the victim, reload.
        primeUntilClean(soc, conflicts, usable, threshold);
        victim_(soc);
        const bool reloadHit =
            timedRead(soc, config_.victimAddr) < threshold;
        if (reloadHit)
            ++reloadHits;
        // Signal only when the victim made the difference: a locked
        // line hits both reloads; an iRAM one costs the same fixed
        // latency both times.
        if (controlMissed && reloadHit)
            ++signalRounds;
    }
    outcome.count("signal_rounds", signalRounds);
    outcome.count("reload_hits", reloadHits);
    outcome.count("locked_writebacks", lockedWaybacks_);
    outcome.secretRecovered = signalRounds != 0;
    if (!outcome.secretRecovered)
        outcome.notes.push_back(
            "reload timing carried no victim-dependent signal");
    return outcome;
}

} // namespace sentry::attacks::v2
