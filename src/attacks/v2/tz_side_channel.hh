/**
 * @file
 * TrustZone shared-memory cache side channel (Ahn & Lee, PAPERS.md).
 *
 * The secure and normal worlds share the L2, and secure services hand
 * results to the normal world through a cacheable shared mailbox
 * buffer. A naive service that indexes the mailbox with secret data
 * (here: one cache line per secret nibble value) leaks that secret:
 * the normal-world attacker evicts the mailbox lines, triggers the
 * SMC, and times reloads — the single hot line names the nibble.
 *
 * The hardened service touches every mailbox line in a fixed order on
 * every call, making the reload profile secret-independent; the
 * attacker sees all lines hot and recovers nothing. This is the
 * constant-touch discipline Sentry's secure-world helpers follow.
 */

#ifndef SENTRY_ATTACKS_V2_TZ_SIDE_CHANNEL_HH
#define SENTRY_ATTACKS_V2_TZ_SIDE_CHANNEL_HH

#include <array>

#include "attacks/v2/attack.hh"
#include "common/types.hh"

namespace sentry::attacks::v2
{

/** Mailbox lines = one per nibble value. */
constexpr unsigned TZ_MAILBOX_LINES = 16;
/** Nibbles of the fuse secret the demo service processes per run. */
constexpr unsigned TZ_SECRET_NIBBLES = 8;

/**
 * The victim: a secure-world service that processes the fuse secret
 * nibble by nibble and touches the shared mailbox as it goes.
 */
class TzSecretService
{
  public:
    /**
     * Bind the service to @p soc with its mailbox at @p shared_base
     * (TZ_MAILBOX_LINES cache lines of cacheable DRAM).
     * @param hardened touch all mailbox lines per call instead of the
     *        secret-indexed one.
     */
    TzSecretService(hw::Soc &soc, PhysAddr shared_base, bool hardened);

    /** @return false when the device's firmware is locked (no secure
     * world, hence no service). */
    bool available() const { return available_; }

    /** @return nibble @p i of the fuse secret (test oracle). */
    unsigned nibble(unsigned i) const;

    /** SMC: process nibble @p i, touching the mailbox accordingly. */
    void invoke(unsigned i);

    PhysAddr mailboxBase() const { return sharedBase_; }

  private:
    hw::Soc &soc_;
    PhysAddr sharedBase_;
    bool hardened_;
    bool available_ = false;
    std::array<std::uint8_t, 32> secret_{};
};

/** Attacker-side configuration. */
struct TzSideChannelConfig
{
    /** Attacker-owned cacheable region for eviction sets; must span at
     * least (ways+1) * waySizeBytes. */
    PhysAddr attackerBase = 0;
    std::size_t attackerSpan = 0;
};

/** The normal-world attacker. */
class TzSideChannelAttack : public Attack
{
  public:
    TzSideChannelAttack(TzSideChannelConfig config, TzSecretService &service,
                        std::uint64_t seed)
        : Attack("tz_side_channel", seed), config_(config),
          service_(service)
    {}

    /** Per-nibble recovered value, or -1 when ambiguous. */
    const std::array<int, TZ_SECRET_NIBBLES> &recovered() const
    {
        return recovered_;
    }

  protected:
    AttackOutcome execute(hw::Soc &soc) override;

  private:
    TzSideChannelConfig config_;
    TzSecretService &service_;
    std::array<int, TZ_SECRET_NIBBLES> recovered_{};
};

} // namespace sentry::attacks::v2

#endif // SENTRY_ATTACKS_V2_TZ_SIDE_CHANNEL_HH
