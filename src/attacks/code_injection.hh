/**
 * @file
 * Code-injection attacks (paper section 3.2): attempts to *modify*
 * state on the platform rather than read it.
 *
 * Two vectors are modelled:
 *   - DMA writes from a compromised peripheral (stopped by TrustZone
 *     region protection, since there is no IOMMU);
 *   - replacing the boot firmware with a version that skips the iRAM/
 *     cache zeroing (stopped by the manufacturer-signature check).
 * The bus-analyzer write-injection vector is out of scope exactly as in
 * the paper: electrically unsound, ~$100k+ to even attempt.
 */

#ifndef SENTRY_ATTACKS_CODE_INJECTION_HH
#define SENTRY_ATTACKS_CODE_INJECTION_HH

#include <cstdint>
#include <span>

#include "attacks/report.hh"
#include "hw/soc.hh"

namespace sentry::attacks
{

/** The state-modifying attacker. */
class CodeInjectionAttack
{
  public:
    /**
     * Try to overwrite [addr, addr+payload.size()) via DMA.
     * @return result; secretRecovered=true means the write landed.
     */
    AttackResult injectViaDma(hw::Soc &soc, PhysAddr addr,
                              std::span<const std::uint8_t> payload,
                              const std::string &target);

    /**
     * Try to install a malicious (unsigned) boot firmware image that
     * would skip the zeroing of on-SoC storage.
     */
    AttackResult replaceFirmware(hw::Soc &soc,
                                 std::span<const std::uint8_t> image);
};

} // namespace sentry::attacks

#endif // SENTRY_ATTACKS_CODE_INJECTION_HH
