#include "attacks/report.hh"

#include <cstdio>

namespace sentry::attacks
{

std::string
formatResult(const AttackResult &result)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-24s %-32s %s", result.attack.c_str(),
                  result.target.c_str(), result.verdict());
    return buf;
}

} // namespace sentry::attacks
