/**
 * @file
 * File-system buffer cache.
 *
 * The paper's dm-crypt benchmarks show the cache "masking" encryption
 * overhead: once a workload's blocks are cached, reads never touch the
 * crypto layer. Direct I/O bypasses the cache entirely, which is the
 * configuration that exposes the true crypto cost (Figure 9).
 *
 * Writes are write-through (they always reach the encrypting layer),
 * matching the shape of the paper's randrw results.
 */

#ifndef SENTRY_OS_BUFFER_CACHE_HH
#define SENTRY_OS_BUFFER_CACHE_HH

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.hh"
#include "os/block_device.hh"

namespace sentry::os
{

/** Hit/miss counters. */
struct BufferCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
};

/** LRU buffer cache over a BlockLayer. */
class BufferCache
{
  public:
    /**
     * @param clock          clock charged for cached copies
     * @param lower          backing (possibly encrypting) layer
     * @param capacity_bytes cache capacity
     * @param copy_bytes_per_sec rate of a cache-hit memcpy
     * @param op_overhead_seconds per-request syscall + file-system
     *        bookkeeping cost (30 us default); this is what bounds the
     *        no-crypto workloads in Figure 9
     */
    BufferCache(SimClock &clock, BlockLayer &lower,
                std::size_t capacity_bytes,
                double copy_bytes_per_sec = 2e9,
                double op_overhead_seconds = 30e-6);

    /**
     * Read a block. @p direct_io bypasses the cache (and does not
     * pollute it), exactly like O_DIRECT.
     */
    void read(std::uint64_t index, std::span<std::uint8_t> buf,
              bool direct_io);

    /** Write-through write. */
    void write(std::uint64_t index, std::span<const std::uint8_t> buf,
               bool direct_io);

    /** Drop every cached block. */
    void invalidateAll();

    /** @return counters. */
    const BufferCacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t index;
        std::vector<std::uint8_t> data;
    };

    void insert(std::uint64_t index, std::span<const std::uint8_t> buf);
    void chargeCopy();

    SimClock &clock_;
    BlockLayer &lower_;
    std::size_t capacityBlocks_;
    double copyBytesPerSec_;
    double opOverheadSeconds_;

    std::list<Entry> lru_; // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
    BufferCacheStats stats_;
};

} // namespace sentry::os

#endif // SENTRY_OS_BUFFER_CACHE_HH
