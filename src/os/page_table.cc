#include "os/page_table.hh"

#include "common/logging.hh"

namespace sentry::os
{

Pte &
PageTable::map(VirtAddr va, PhysAddr frame)
{
    if (va % PAGE_SIZE != 0)
        panic("PageTable::map: unaligned VA 0x%llx",
              static_cast<unsigned long long>(va));
    Pte &pte = entries_[va];
    pte.frame = frame;
    pte.present = true;
    return pte;
}

bool
PageTable::unmap(VirtAddr va)
{
    return entries_.erase(pageOf(va)) > 0;
}

Pte *
PageTable::find(VirtAddr va)
{
    auto it = entries_.find(pageOf(va));
    return it == entries_.end() ? nullptr : &it->second;
}

const Pte *
PageTable::find(VirtAddr va) const
{
    auto it = entries_.find(pageOf(va));
    return it == entries_.end() ? nullptr : &it->second;
}

void
PageTable::forEach(const std::function<void(VirtAddr, Pte &)> &fn)
{
    for (auto &[va, pte] : entries_)
        fn(va, pte);
}

} // namespace sentry::os
