/**
 * @file
 * Virtual memory areas (VMAs) of a process.
 *
 * VMAs carry the attributes Sentry's encrypt-on-lock walk cares about:
 *   - DmaRegion VMAs are accessed by devices via physical addresses and
 *     never page-fault, so Sentry must decrypt them eagerly on unlock;
 *   - the share policy decides whether a page is skipped (shared with a
 *     non-sensitive process) or encrypted (private / shared only among
 *     sensitive processes) — paper section 7.
 */

#ifndef SENTRY_OS_ADDRESS_SPACE_HH
#define SENTRY_OS_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sentry::os
{

/** What a VMA holds. */
enum class VmaType
{
    Code,
    Heap,
    Stack,
    DmaRegion, //!< GPU / I-O buffers accessed by physical address
};

/** Page-sharing policy of a VMA. */
enum class SharePolicy
{
    Private,
    SharedSensitiveOnly, //!< shared, but only among sensitive processes
    SharedWithNonSensitive,
};

/** One contiguous virtual mapping. */
struct Vma
{
    std::string name;
    VmaType type;
    SharePolicy share = SharePolicy::Private;
    VirtAddr base = 0;
    std::size_t size = 0;

    VirtAddr end() const { return base + size; }
    std::size_t pages() const { return size / PAGE_SIZE; }
    bool contains(VirtAddr va) const { return va >= base && va < end(); }
};

/** The ordered set of VMAs of one process. */
class AddressSpace
{
  public:
    /**
     * Append a VMA of @p size bytes (page aligned) after the last one,
     * leaving a guard gap.
     * @return the new VMA.
     */
    Vma &addVma(std::string name, VmaType type, std::size_t size,
                SharePolicy share);

    /** @return the VMA containing @p va, or nullptr. */
    const Vma *findVma(VirtAddr va) const;

    /** @return all VMAs. */
    const std::vector<Vma> &vmas() const { return vmas_; }
    std::vector<Vma> &vmas() { return vmas_; }

    /** @return total mapped bytes. */
    std::size_t totalBytes() const;

  private:
    /** Process VAs start here; gap between VMAs. */
    static constexpr VirtAddr VA_BASE = 0x0001'0000;
    static constexpr VirtAddr VA_GAP = 16 * PAGE_SIZE;

    std::vector<Vma> vmas_;
    VirtAddr nextBase_ = VA_BASE;
};

} // namespace sentry::os

#endif // SENTRY_OS_ADDRESS_SPACE_HH
