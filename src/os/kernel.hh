/**
 * @file
 * The mini-kernel: process/VMA management, the virtual-memory access
 * path with young-bit fault delivery, screen-lock power management with
 * Sentry hooks, the freed-page zeroing thread, and the crypto registry.
 *
 * This is the substrate the paper's kernel modifications are expressed
 * against; core/Sentry installs its fault handler and lock/unlock hooks
 * here rather than the kernel knowing about Sentry.
 */

#ifndef SENTRY_OS_KERNEL_HH
#define SENTRY_OS_KERNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/crypto_api.hh"
#include "hw/soc.hh"
#include "os/phys_allocator.hh"
#include "os/process.hh"
#include "os/scheduler.hh"

namespace sentry::os
{

/** Device power/UI state. */
enum class PowerState
{
    Awake,
    Locked,    //!< screen locked; Sentry protections active
    Suspended, //!< S3 suspend-to-RAM: locked + CPU halted
    DeepLock,  //!< too many bad PINs; unlock requires full credentials
};

/** What pulled the device out of suspend. */
enum class WakeReason
{
    UserInteraction, //!< power/home/camera button
    IncomingCall,
    TimerAlarm,
    Notification,
};

/**
 * Checkpoint of all kernel state, produced by Kernel::snapshot().
 *
 * Process objects are captured as rebuildable images (page tables and
 * address spaces copied by value, scheduler membership by pid); hooks
 * (fault handler, lock hooks) and the crypto registry are wiring and
 * stay with each device. Page *contents* live in the SocSnapshot's COW
 * DRAM image, not here.
 */
struct KernelSnapshot
{
    struct ProcessImage
    {
        int pid = 0;
        std::string name;
        PageTable pageTable;
        AddressSpace addressSpace;
        bool sensitive = false;
        bool schedulable = true;
        PhysAddr kernelStackTop = 0;
    };

    std::vector<ProcessImage> processes;
    int nextPid = 1;
    PhysAllocator allocator;
    std::vector<int> runQueue;
    std::vector<int> parked;
    int currentPid = 0; //!< 0 = none
    std::uint64_t faultCount = 0;
    std::vector<PhysAddr> freedDirtyFrames;
    PowerState powerState = PowerState::Awake;
    std::string pin;
    unsigned badPinAttempts = 0;
    double suspendedSeconds = 0.0;
    std::uint64_t wakeCount = 0;
    Cycles kernelCycles = 0;
};

/** The operating system kernel. */
class Kernel
{
  public:
    explicit Kernel(hw::Soc &soc);

    hw::Soc &soc() { return soc_; }
    PhysAllocator &allocator() { return allocator_; }
    Scheduler &scheduler() { return scheduler_; }
    crypto::CryptoApi &cryptoApi() { return cryptoApi_; }

    // ---- processes & memory -------------------------------------------

    /** Create a process (with a kernel stack) and admit it to the run
     *  queue. The kernel owns the Process object. */
    Process &createProcess(const std::string &name);

    /** Exit a process: all its pages go to the freed list *unscrubbed*
     *  (their contents remain in DRAM until the zero thread runs). */
    void destroyProcess(Process &process);

    /** @return all live processes. */
    const std::vector<std::unique_ptr<Process>> &processes() const
    {
        return processes_;
    }

    /**
     * Add a VMA of @p size bytes to @p process, allocating and mapping
     * frames.
     */
    Vma &addVma(Process &process, const std::string &name, VmaType type,
                std::size_t size,
                SharePolicy share = SharePolicy::Private);

    /**
     * Resolve @p va for an access, delivering a young-bit fault to the
     * installed handler when needed.
     * @return the physical address.
     */
    PhysAddr resolve(Process &process, VirtAddr va, bool write);

    /** Read process memory through the paging path. */
    void readVirt(Process &process, VirtAddr va, void *buf,
                  std::size_t len);

    /** Write process memory through the paging path. */
    void writeVirt(Process &process, VirtAddr va, const void *buf,
                   std::size_t len);

    /** Touch every page of [va, va+len) (read access). */
    void touchRange(Process &process, VirtAddr va, std::size_t len,
                    bool write = false);

    /**
     * Install the page-fault handler (Sentry). The handler returns true
     * when it serviced the fault; the kernel then retries the access.
     */
    using FaultHandler = std::function<bool(Process &, VirtAddr, Pte &)>;
    void setFaultHandler(FaultHandler handler)
    {
        faultHandler_ = std::move(handler);
    }

    /** @return young-bit faults delivered so far. */
    std::uint64_t faultCount() const { return faultCount_; }

    // ---- freed pages ---------------------------------------------------

    /** @return bytes on the freed list still holding stale data. */
    std::size_t freedPendingBytes() const;

    /**
     * Run the zeroing kthread until the freed list is clean (charges
     * time at the platform zeroing rate and energy per byte).
     * @return simulated seconds spent.
     */
    double zeroFreedPages();

    // ---- screen lock ---------------------------------------------------

    PowerState powerState() const { return powerState_; }

    /** Set the unlock PIN. */
    void setPin(std::string pin) { pin_ = std::move(pin); }

    /** Lock the screen; runs the registered on-lock hook. */
    void lockScreen();

    /**
     * Suspend to RAM (ACPI-S3 style): the screen locks first (running
     * Sentry's encrypt-on-lock), then the CPU halts for @p seconds of
     * simulated time, drawing only the suspend floor power.
     */
    void suspendToRam(double seconds = 0.0);

    /**
     * Wake from suspend. The device comes back *locked*: waking is not
     * unlocking (paper section 7, "Secure On Suspend").
     * @return the state after wake (Locked, or DeepLock if it was).
     */
    PowerState wakeUp(WakeReason reason);

    /** @return total simulated seconds spent suspended. */
    double suspendedSeconds() const { return suspendedSeconds_; }

    /** @return wake events delivered so far. */
    std::uint64_t wakeCount() const { return wakeCount_; }

    /**
     * Attempt an unlock. Five consecutive failures enter DeepLock.
     * @return true on success (hook ran, state Awake).
     */
    bool unlockScreen(const std::string &pin);

    /** Register Sentry's lock/unlock hooks. */
    void setLockHooks(std::function<void()> on_lock,
                      std::function<void()> on_unlock);

    /** Register a hook run when five bad PINs trigger DeepLock. */
    void setDeepLockHook(std::function<void()> on_deep_lock)
    {
        onDeepLock_ = std::move(on_deep_lock);
    }

    // ---- kernel-time accounting ----------------------------------------

    /** @return cycles attributed to kernel work since the last reset. */
    Cycles kernelCycles() const { return kernelCycles_; }

    /** Zero the kernel-time accumulator. */
    void resetKernelCycles() { kernelCycles_ = 0; }

    // ---- snapshot / fork -----------------------------------------------

    /** Capture all kernel state (processes as rebuildable images). */
    KernelSnapshot snapshot() const;

    /**
     * Replace this kernel's state with @p snap: existing processes are
     * discarded, the snapshot's are rebuilt with their original pids,
     * and scheduler queues are re-threaded onto the new objects.
     * Installed hooks and the crypto registry are left untouched.
     */
    void forkFrom(const KernelSnapshot &snap);

    /** RAII scope attributing elapsed simulated time to the kernel. */
    class KernelTimer
    {
      public:
        explicit KernelTimer(Kernel &kernel);
        ~KernelTimer();
        KernelTimer(const KernelTimer &) = delete;
        KernelTimer &operator=(const KernelTimer &) = delete;

      private:
        Kernel &kernel_;
        Cycles start_;
        bool outermost_;
    };

  private:
    friend class KernelTimer;

    hw::Soc &soc_;
    PhysAllocator allocator_;
    Scheduler scheduler_;
    crypto::CryptoApi cryptoApi_;

    std::vector<std::unique_ptr<Process>> processes_;
    int nextPid_ = 1;

    FaultHandler faultHandler_;
    std::uint64_t faultCount_ = 0;

    std::vector<PhysAddr> freedDirtyFrames_;

    PowerState powerState_ = PowerState::Awake;
    std::string pin_ = "0000";
    unsigned badPinAttempts_ = 0;

    std::function<void()> onLock_;
    std::function<void()> onUnlock_;
    std::function<void()> onDeepLock_;
    double suspendedSeconds_ = 0.0;
    std::uint64_t wakeCount_ = 0;

    Cycles kernelCycles_ = 0;
    unsigned kernelTimerDepth_ = 0;
    Cycles kernelTimerStart_ = 0;
};

} // namespace sentry::os

#endif // SENTRY_OS_KERNEL_HH
