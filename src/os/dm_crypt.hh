/**
 * @file
 * dm-crypt: transparent block-level encryption (paper section 7,
 * "Securing Persistent State").
 *
 * The cipher comes from the kernel CryptoApi's best "aes"
 * implementation, so simply registering AES On SoC at a higher priority
 * than the generic kernel AES re-keys this whole layer onto on-SoC
 * state with no dm-crypt changes — the paper's integration story.
 *
 * Per-block IVs use the plain64 convention (little-endian block number
 * in the first 8 IV bytes).
 *
 * Writes model kcryptd: they are encrypted by a pool of worker threads
 * (one simulated core each). Multi-block writes via writeBlocks() run
 * the host-side encryption on a real thread pool — each worker holds a
 * HostAesCbc clone of the engine's schedule and never touches the
 * simulated machine — while the issuing thread replays the simulated
 * charges, so simulated time/energy/traffic are identical to the
 * sequential charge-divisor path and ciphertext is bit-identical.
 */

#ifndef SENTRY_OS_DM_CRYPT_HH
#define SENTRY_OS_DM_CRYPT_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/aes_on_soc.hh"
#include "os/block_device.hh"

namespace sentry::os
{

/** Encrypting block-layer shim. */
class DmCrypt : public BlockLayer
{
  public:
    /**
     * @param lower  backing device (holds only ciphertext)
     * @param cipher keyed AES engine (from CryptoApi::allocCipher)
     * @param async_workers kcryptd worker threads: writes are encrypted
     *        asynchronously on this many cores, so their wall-clock
     *        cost is divided accordingly (reads block the caller and
     *        always pay the full inline cost)
     */
    DmCrypt(BlockLayer &lower,
            std::unique_ptr<crypto::SimAesEngine> cipher,
            unsigned async_workers = 1);

    ~DmCrypt() override; // joins the kcryptd pool

    void readBlock(std::uint64_t index,
                   std::span<std::uint8_t> buf) override;
    void writeBlock(std::uint64_t index,
                    std::span<const std::uint8_t> buf) override;

    /**
     * Scatter-gather write: encrypt @p data (a whole number of blocks,
     * block @p first_index onward) on the kcryptd pool and hand the
     * ciphertext to the lower layer in one batch. Equivalent to calling
     * writeBlock() once per block — same ciphertext, same simulated
     * charges — but the host-side AES runs on real threads.
     */
    void writeBlocks(std::uint64_t first_index,
                     std::span<const std::uint8_t> data) override;

    std::uint64_t numBlocks() const override;

    /** @return the engine (diagnostics: placement, bytes processed). */
    const crypto::SimAesEngine &cipher() const { return *cipher_; }

    /** @return the kcryptd worker count. */
    unsigned asyncWorkers() const { return asyncWorkers_; }

    /** @return the plain64 IV for block @p index. */
    static crypto::Iv blockIv(std::uint64_t index);

  private:
    class KcryptdPool; // real worker threads (host-side crypto only)

    BlockLayer &lower_;
    std::unique_ptr<crypto::SimAesEngine> cipher_;
    unsigned asyncWorkers_;
    std::vector<std::uint8_t> staging_; //!< reused write staging buffer
    std::unique_ptr<KcryptdPool> pool_; //!< lazily started
};

} // namespace sentry::os

#endif // SENTRY_OS_DM_CRYPT_HH
