/**
 * @file
 * dm-crypt: transparent block-level encryption (paper section 7,
 * "Securing Persistent State").
 *
 * The cipher comes from the kernel CryptoApi's best "aes"
 * implementation, so simply registering AES On SoC at a higher priority
 * than the generic kernel AES re-keys this whole layer onto on-SoC
 * state with no dm-crypt changes — the paper's integration story.
 *
 * Per-block IVs use the plain64 convention (little-endian block number
 * in the first 8 IV bytes).
 */

#ifndef SENTRY_OS_DM_CRYPT_HH
#define SENTRY_OS_DM_CRYPT_HH

#include <cstdint>
#include <memory>
#include <span>

#include "crypto/aes_on_soc.hh"
#include "os/block_device.hh"

namespace sentry::os
{

/** Encrypting block-layer shim. */
class DmCrypt : public BlockLayer
{
  public:
    /**
     * @param lower  backing device (holds only ciphertext)
     * @param cipher keyed AES engine (from CryptoApi::allocCipher)
     * @param async_workers kcryptd worker threads: writes are encrypted
     *        asynchronously on this many cores, so their wall-clock
     *        cost is divided accordingly (reads block the caller and
     *        always pay the full inline cost)
     */
    DmCrypt(BlockLayer &lower,
            std::unique_ptr<crypto::SimAesEngine> cipher,
            unsigned async_workers = 1);

    void readBlock(std::uint64_t index,
                   std::span<std::uint8_t> buf) override;
    void writeBlock(std::uint64_t index,
                    std::span<const std::uint8_t> buf) override;
    std::uint64_t numBlocks() const override;

    /** @return the engine (diagnostics: placement, bytes processed). */
    const crypto::SimAesEngine &cipher() const { return *cipher_; }

    /** @return the plain64 IV for block @p index. */
    static crypto::Iv blockIv(std::uint64_t index);

  private:
    BlockLayer &lower_;
    std::unique_ptr<crypto::SimAesEngine> cipher_;
    unsigned asyncWorkers_;
};

} // namespace sentry::os

#endif // SENTRY_OS_DM_CRYPT_HH
