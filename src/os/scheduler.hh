/**
 * @file
 * Round-robin scheduler with the unschedulable queue Sentry uses to
 * park encrypted processes while the screen is locked (paper section 7).
 *
 * A context switch spills the outgoing register file to the current
 * kernel stack in DRAM — the hazard AES On SoC's irq guard exists for.
 */

#ifndef SENTRY_OS_SCHEDULER_HH
#define SENTRY_OS_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/cpu.hh"

namespace sentry::os
{

class Process;

/** The run queue. */
class Scheduler
{
  public:
    explicit Scheduler(hw::Cpu &cpu) : cpu_(cpu) {}

    /** Add a process to the run queue. */
    void admit(Process *process);

    /** Remove a process entirely (exit). */
    void remove(Process *process);

    /** Park a process (Sentry: encrypted while locked). */
    void makeUnschedulable(Process *process);

    /** Return a parked process to the run queue. */
    void makeSchedulable(Process *process);

    /** @return the currently running process (may be nullptr). */
    Process *current() const { return current_; }

    /**
     * Timer tick: pick the next runnable process. Switching away from a
     * running process spills the register file to its kernel stack.
     * @return the newly running process (nullptr when queue empty).
     */
    Process *tick();

    /** @return processes waiting in the unschedulable queue. */
    const std::deque<Process *> &parked() const { return parked_; }

    /** @return size of the run queue (excluding current). */
    std::size_t runnable() const { return runQueue_.size(); }

    /**
     * Queue state for snapshot/fork. The pointers name processes of one
     * specific kernel; Kernel::snapshot() translates them to pids and
     * Kernel::forkFrom() translates back to its freshly rebuilt
     * Process objects before calling restoreForkState().
     */
    struct ForkState
    {
        std::deque<Process *> runQueue;
        std::deque<Process *> parked;
        Process *current = nullptr;
    };

    ForkState forkState() const
    {
        return ForkState{runQueue_, parked_, current_};
    }

    void restoreForkState(const ForkState &fs)
    {
        runQueue_ = fs.runQueue;
        parked_ = fs.parked;
        current_ = fs.current;
    }

  private:
    hw::Cpu &cpu_;
    std::deque<Process *> runQueue_;
    std::deque<Process *> parked_;
    Process *current_ = nullptr;
};

} // namespace sentry::os

#endif // SENTRY_OS_SCHEDULER_HH
