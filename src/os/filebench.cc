#include "os/filebench.hh"

#include <vector>

#include "common/logging.hh"

namespace sentry::os
{

const char *
filebenchWorkloadName(FilebenchWorkload workload)
{
    switch (workload) {
      case FilebenchWorkload::SeqRead:
        return "seqread";
      case FilebenchWorkload::RandRead:
        return "randread";
      case FilebenchWorkload::RandRW:
        return "randrw";
      default:
        return "?";
    }
}

Filebench::Filebench(SimClock &clock, BufferCache &cache,
                     std::size_t working_set_bytes)
    : clock_(clock), cache_(cache),
      workingSetBlocks_(working_set_bytes / BLOCK_SIZE)
{
    if (workingSetBlocks_ == 0)
        fatal("filebench working set must be at least one block");
}

void
Filebench::createFiles()
{
    std::vector<std::uint8_t> block(BLOCK_SIZE);
    for (std::uint64_t i = 0; i < workingSetBlocks_; ++i) {
        for (std::size_t b = 0; b < BLOCK_SIZE; ++b)
            block[b] = static_cast<std::uint8_t>(i + b);
        cache_.write(i, block, /*direct_io=*/false);
    }
}

FilebenchResult
Filebench::run(FilebenchWorkload workload, std::size_t io_bytes,
               bool direct_io, Rng &rng)
{
    createFiles();

    std::vector<std::uint8_t> block(BLOCK_SIZE);
    const std::uint64_t ops = io_bytes / BLOCK_SIZE;

    const Cycles start = clock_.now();
    std::uint64_t next = 0;
    for (std::uint64_t op = 0; op < ops; ++op) {
        std::uint64_t index;
        switch (workload) {
          case FilebenchWorkload::SeqRead:
            index = next++ % workingSetBlocks_;
            cache_.read(index, block, direct_io);
            break;
          case FilebenchWorkload::RandRead:
            index = rng.below(workingSetBlocks_);
            cache_.read(index, block, direct_io);
            break;
          case FilebenchWorkload::RandRW:
            index = rng.below(workingSetBlocks_);
            if (rng.chance(0.5))
                cache_.read(index, block, direct_io);
            else
                cache_.write(index, block, direct_io);
            break;
        }
    }

    FilebenchResult result;
    result.bytesMoved = ops * BLOCK_SIZE;
    result.seconds = clock_.toSeconds(clock_.now() - start);
    return result;
}

} // namespace sentry::os
