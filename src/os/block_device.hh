/**
 * @file
 * Block layer: the abstract sector interface plus a RAM-backed block
 * device (the paper's dm-crypt evaluation runs on a 450 MB in-memory
 * partition so the disk is never the bottleneck).
 */

#ifndef SENTRY_OS_BLOCK_DEVICE_HH
#define SENTRY_OS_BLOCK_DEVICE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/sim_clock.hh"
#include "common/types.hh"

namespace sentry::os
{

/** Block size used by the whole stack (matches the page size). */
constexpr std::size_t BLOCK_SIZE = 4 * KiB;

/** Anything that can serve 4 KiB blocks. */
class BlockLayer
{
  public:
    virtual ~BlockLayer() = default;

    /** Read block @p index into @p buf (BLOCK_SIZE bytes). */
    virtual void readBlock(std::uint64_t index,
                           std::span<std::uint8_t> buf) = 0;

    /** Write block @p index from @p buf. */
    virtual void writeBlock(std::uint64_t index,
                            std::span<const std::uint8_t> buf) = 0;

    /**
     * Scatter-gather write of @p data (a whole number of blocks) to
     * block @p first_index onward. The default is a per-block loop;
     * layers that can do better (e.g. dm-crypt's kcryptd batch) may
     * override, but must stay equivalent to the loop.
     */
    virtual void
    writeBlocks(std::uint64_t first_index, std::span<const std::uint8_t> data)
    {
        for (std::size_t off = 0; off < data.size(); off += BLOCK_SIZE)
            writeBlock(first_index + off / BLOCK_SIZE,
                       data.subspan(off, BLOCK_SIZE));
    }

    /** @return number of blocks. */
    virtual std::uint64_t numBlocks() const = 0;
};

/** RAM-backed block device with a fixed streaming rate. */
class RamBlockDevice : public BlockLayer
{
  public:
    /**
     * @param clock          simulated clock to charge transfer time to
     * @param bytes          capacity (multiple of BLOCK_SIZE)
     * @param bytes_per_sec  device streaming rate
     */
    RamBlockDevice(SimClock &clock, std::size_t bytes,
                   double bytes_per_sec = 400e6);

    void readBlock(std::uint64_t index,
                   std::span<std::uint8_t> buf) override;
    void writeBlock(std::uint64_t index,
                    std::span<const std::uint8_t> buf) override;
    std::uint64_t numBlocks() const override;

    /** Direct storage view for test assertions (what is "on disk"). */
    std::span<const std::uint8_t> raw() const { return storage_; }

  private:
    SimClock &clock_;
    std::vector<std::uint8_t> storage_;
    double bytesPerSec_;
};

} // namespace sentry::os

#endif // SENTRY_OS_BLOCK_DEVICE_HH
