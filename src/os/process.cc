// Process is header-only; this translation unit anchors the target.
#include "os/process.hh"
