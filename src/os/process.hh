/**
 * @file
 * A simulated process: page table, address space, scheduling state, and
 * the Sentry attributes (sensitive flag, unschedulable-while-locked).
 */

#ifndef SENTRY_OS_PROCESS_HH
#define SENTRY_OS_PROCESS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "os/address_space.hh"
#include "os/page_table.hh"

namespace sentry::os
{

/** One process. */
class Process
{
  public:
    Process(int pid, std::string name) : pid_(pid), name_(std::move(name)) {}

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    int pid() const { return pid_; }
    const std::string &name() const { return name_; }

    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }

    AddressSpace &addressSpace() { return addressSpace_; }
    const AddressSpace &addressSpace() const { return addressSpace_; }

    /** Sentry: the user marked this app for protection. */
    bool sensitive() const { return sensitive_; }
    void setSensitive(bool sensitive) { sensitive_ = sensitive; }

    /** Encrypted processes are parked off the run queue while locked. */
    bool schedulable() const { return schedulable_; }
    void setSchedulable(bool schedulable) { schedulable_ = schedulable; }

    /** Physical address of this process's kernel stack top (in DRAM). */
    PhysAddr kernelStackTop() const { return kernelStackTop_; }
    void setKernelStackTop(PhysAddr top) { kernelStackTop_ = top; }

  private:
    int pid_;
    std::string name_;
    PageTable pageTable_;
    AddressSpace addressSpace_;
    bool sensitive_ = false;
    bool schedulable_ = true;
    PhysAddr kernelStackTop_ = 0;
};

} // namespace sentry::os

#endif // SENTRY_OS_PROCESS_HH
