#include "os/kernel.hh"

#include <cstring>
#include <unordered_map>

#include "common/logging.hh"

namespace sentry::os
{

namespace
{
/** Frames reserved at the top of DRAM for kernel stacks. */
constexpr std::size_t KERNEL_STACK_BYTES = PAGE_SIZE;
} // namespace

Kernel::Kernel(hw::Soc &soc)
    : soc_(soc), allocator_(DRAM_BASE, soc.dram().size()),
      scheduler_(soc.cpu())
{}

Kernel::KernelTimer::KernelTimer(Kernel &kernel)
    : kernel_(kernel), start_(kernel.soc_.clock().now()),
      outermost_(kernel.kernelTimerDepth_ == 0)
{
    ++kernel_.kernelTimerDepth_;
    if (outermost_)
        kernel_.kernelTimerStart_ = start_;
}

Kernel::KernelTimer::~KernelTimer()
{
    --kernel_.kernelTimerDepth_;
    if (outermost_) {
        kernel_.kernelCycles_ +=
            kernel_.soc_.clock().now() - kernel_.kernelTimerStart_;
    }
}

Process &
Kernel::createProcess(const std::string &name)
{
    auto process = std::make_unique<Process>(nextPid_++, name);
    const PhysAddr stackFrame = allocator_.allocFrame();
    process->setKernelStackTop(stackFrame + KERNEL_STACK_BYTES);
    scheduler_.admit(process.get());
    processes_.push_back(std::move(process));
    return *processes_.back();
}

void
Kernel::destroyProcess(Process &process)
{
    scheduler_.remove(&process);
    // Pages go back to the allocator with their contents intact; the
    // zeroing kthread scrubs them eventually (paper: "Securing Freed
    // Pages").
    process.pageTable().forEach([&](VirtAddr, Pte &pte) {
        if (!pte.present)
            return;
        // Pages resident on-SoC return their DRAM home; the locked-cache
        // frame itself belongs to the pager, not the allocator.
        const PhysAddr frame = pte.onSoc ? pte.dramHome : pte.frame;
        freedDirtyFrames_.push_back(frame);
        allocator_.freeFrame(frame);
    });
    freedDirtyFrames_.push_back(process.kernelStackTop() -
                                KERNEL_STACK_BYTES);
    allocator_.freeFrame(process.kernelStackTop() - KERNEL_STACK_BYTES);

    for (auto it = processes_.begin(); it != processes_.end(); ++it) {
        if (it->get() == &process) {
            processes_.erase(it);
            return;
        }
    }
    panic("destroyProcess: unknown process");
}

Vma &
Kernel::addVma(Process &process, const std::string &name, VmaType type,
               std::size_t size, SharePolicy share)
{
    Vma &vma = process.addressSpace().addVma(name, type, size, share);
    for (std::size_t page = 0; page < vma.pages(); ++page) {
        const PhysAddr frame = allocator_.allocFrame();
        process.pageTable().map(vma.base + page * PAGE_SIZE, frame);
    }
    return vma;
}

PhysAddr
Kernel::resolve(Process &process, VirtAddr va, bool write)
{
    Pte *pte = process.pageTable().find(va);
    if (pte == nullptr || !pte->present)
        panic("segfault: %s accesses unmapped VA 0x%llx",
              process.name().c_str(), static_cast<unsigned long long>(va));
    if (write && !pte->writable)
        panic("write to read-only page at VA 0x%llx",
              static_cast<unsigned long long>(va));

    if (!pte->young) {
        // Trap: enter the kernel fault path.
        KernelTimer timer(*this);
        ++faultCount_;
        soc_.clock().advance(soc_.config().cost.pageFaultCycles);
        soc_.energy().charge(hw::EnergyCategory::PageFault,
                             soc_.energy().params().pageFaultEach);
        const bool handled =
            faultHandler_ && faultHandler_(process, va, *pte);
        if (!handled)
            pte->young = true; // default: just set the accessed bit
        // Re-find: the handler may have remapped the page.
        pte = process.pageTable().find(va);
        if (pte == nullptr || !pte->present || !pte->young)
            panic("fault handler left VA 0x%llx unresolvable",
                  static_cast<unsigned long long>(va));
    }

    return pte->frame + (va % PAGE_SIZE);
}

void
Kernel::readVirt(Process &process, VirtAddr va, void *buf, std::size_t len)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const std::size_t inPage =
            std::min<std::size_t>(len, PAGE_SIZE - (va % PAGE_SIZE));
        const PhysAddr pa = resolve(process, va, false);
        soc_.memory().read(pa, out, inPage);
        va += inPage;
        out += inPage;
        len -= inPage;
    }
}

void
Kernel::writeVirt(Process &process, VirtAddr va, const void *buf,
                  std::size_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        const std::size_t inPage =
            std::min<std::size_t>(len, PAGE_SIZE - (va % PAGE_SIZE));
        const PhysAddr pa = resolve(process, va, true);
        soc_.memory().write(pa, in, inPage);
        va += inPage;
        in += inPage;
        len -= inPage;
    }
}

void
Kernel::touchRange(Process &process, VirtAddr va, std::size_t len,
                   bool write)
{
    std::uint8_t scratch[8] = {};
    const VirtAddr first = PageTable::pageOf(va);
    const VirtAddr last = PageTable::pageOf(va + len - 1);
    for (VirtAddr page = first; page <= last; page += PAGE_SIZE) {
        const PhysAddr pa = resolve(process, page, write);
        if (write)
            soc_.memory().write(pa, scratch, sizeof(scratch));
        else
            soc_.memory().read(pa, scratch, sizeof(scratch));
    }
}

std::size_t
Kernel::freedPendingBytes() const
{
    return freedDirtyFrames_.size() * PAGE_SIZE;
}

double
Kernel::zeroFreedPages()
{
    if (freedDirtyFrames_.empty())
        return 0.0;

    KernelTimer timer(*this);
    const std::size_t bytes = freedPendingBytes();
    for (const PhysAddr frame : freedDirtyFrames_)
        soc_.memory().fill(frame, 0, PAGE_SIZE);
    freedDirtyFrames_.clear();

    const double seconds = static_cast<double>(bytes) /
                           soc_.config().cost.zeroingBytesPerSec;
    soc_.clock().advanceSeconds(seconds);
    soc_.energy().charge(hw::EnergyCategory::Zeroing,
                         soc_.energy().params().zeroingPerByte *
                             static_cast<double>(bytes));
    return seconds;
}

KernelSnapshot
Kernel::snapshot() const
{
    KernelSnapshot snap{{},
                        nextPid_,
                        allocator_,
                        {},
                        {},
                        0,
                        faultCount_,
                        freedDirtyFrames_,
                        powerState_,
                        pin_,
                        badPinAttempts_,
                        suspendedSeconds_,
                        wakeCount_,
                        kernelCycles_};
    snap.processes.reserve(processes_.size());
    for (const auto &process : processes_) {
        snap.processes.push_back(KernelSnapshot::ProcessImage{
            process->pid(), process->name(), process->pageTable(),
            process->addressSpace(), process->sensitive(),
            process->schedulable(), process->kernelStackTop()});
    }
    const Scheduler::ForkState queues = scheduler_.forkState();
    for (const Process *process : queues.runQueue)
        snap.runQueue.push_back(process->pid());
    for (const Process *process : queues.parked)
        snap.parked.push_back(process->pid());
    snap.currentPid =
        queues.current != nullptr ? queues.current->pid() : 0;
    return snap;
}

void
Kernel::forkFrom(const KernelSnapshot &snap)
{
    processes_.clear();
    std::unordered_map<int, Process *> byPid;
    for (const KernelSnapshot::ProcessImage &image : snap.processes) {
        auto process = std::make_unique<Process>(image.pid, image.name);
        process->pageTable() = image.pageTable;
        process->addressSpace() = image.addressSpace;
        process->setSensitive(image.sensitive);
        process->setSchedulable(image.schedulable);
        process->setKernelStackTop(image.kernelStackTop);
        byPid.emplace(image.pid, process.get());
        processes_.push_back(std::move(process));
    }

    const auto lookup = [&](int pid) -> Process * {
        const auto it = byPid.find(pid);
        if (it == byPid.end())
            panic("Kernel::forkFrom: scheduler names unknown pid %d", pid);
        return it->second;
    };
    Scheduler::ForkState queues;
    for (const int pid : snap.runQueue)
        queues.runQueue.push_back(lookup(pid));
    for (const int pid : snap.parked)
        queues.parked.push_back(lookup(pid));
    queues.current = snap.currentPid != 0 ? lookup(snap.currentPid) : nullptr;
    scheduler_.restoreForkState(queues);

    nextPid_ = snap.nextPid;
    allocator_ = snap.allocator;
    faultCount_ = snap.faultCount;
    freedDirtyFrames_ = snap.freedDirtyFrames;
    powerState_ = snap.powerState;
    pin_ = snap.pin;
    badPinAttempts_ = snap.badPinAttempts;
    suspendedSeconds_ = snap.suspendedSeconds;
    wakeCount_ = snap.wakeCount;
    kernelCycles_ = snap.kernelCycles;
    // Timer scopes never straddle a fork; reset the transient depth.
    kernelTimerDepth_ = 0;
    kernelTimerStart_ = 0;
}

void
Kernel::lockScreen()
{
    if (powerState_ != PowerState::Awake)
        return;
    if (onLock_)
        onLock_();
    powerState_ = PowerState::Locked;
}

void
Kernel::suspendToRam(double seconds)
{
    lockScreen(); // encrypt-on-lock runs before the CPU halts
    if (powerState_ == PowerState::Locked)
        powerState_ = PowerState::Suspended;
    if (seconds > 0) {
        soc_.clock().advanceSeconds(seconds);
        suspendedSeconds_ += seconds;
    }
}

PowerState
Kernel::wakeUp(WakeReason reason)
{
    (void)reason; // all wake sources resume to the same locked state
    ++wakeCount_;
    if (powerState_ == PowerState::Suspended)
        powerState_ = PowerState::Locked;
    return powerState_;
}

bool
Kernel::unlockScreen(const std::string &pin)
{
    if (powerState_ == PowerState::Awake)
        return true;
    if (powerState_ == PowerState::DeepLock)
        return false; // PIN no longer accepted
    if (powerState_ == PowerState::Suspended)
        wakeUp(WakeReason::UserInteraction);
    if (pin != pin_) {
        if (++badPinAttempts_ >= 5) {
            powerState_ = PowerState::DeepLock;
            if (onDeepLock_)
                onDeepLock_();
        }
        return false;
    }
    badPinAttempts_ = 0;
    powerState_ = PowerState::Awake;
    if (onUnlock_)
        onUnlock_();
    return true;
}

void
Kernel::setLockHooks(std::function<void()> on_lock,
                     std::function<void()> on_unlock)
{
    onLock_ = std::move(on_lock);
    onUnlock_ = std::move(on_unlock);
}

} // namespace sentry::os
