#include "os/buffer_cache.hh"

#include <cstring>

#include "common/logging.hh"

namespace sentry::os
{

BufferCache::BufferCache(SimClock &clock, BlockLayer &lower,
                         std::size_t capacity_bytes,
                         double copy_bytes_per_sec,
                         double op_overhead_seconds)
    : clock_(clock), lower_(lower),
      capacityBlocks_(capacity_bytes / BLOCK_SIZE),
      copyBytesPerSec_(copy_bytes_per_sec),
      opOverheadSeconds_(op_overhead_seconds)
{
    if (capacityBlocks_ == 0)
        fatal("buffer cache needs at least one block of capacity");
}

void
BufferCache::chargeCopy()
{
    clock_.advanceSeconds(static_cast<double>(BLOCK_SIZE) /
                          copyBytesPerSec_);
}

void
BufferCache::insert(std::uint64_t index, std::span<const std::uint8_t> buf)
{
    auto it = map_.find(index);
    if (it != map_.end()) {
        it->second->data.assign(buf.begin(), buf.end());
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacityBlocks_) {
        map_.erase(lru_.back().index);
        lru_.pop_back();
    }
    lru_.push_front({index, {buf.begin(), buf.end()}});
    map_[index] = lru_.begin();
}

void
BufferCache::read(std::uint64_t index, std::span<std::uint8_t> buf,
                  bool direct_io)
{
    clock_.advanceSeconds(opOverheadSeconds_);
    if (direct_io) {
        lower_.readBlock(index, buf);
        return;
    }
    auto it = map_.find(index);
    if (it != map_.end()) {
        ++stats_.hits;
        std::memcpy(buf.data(), it->second->data.data(), BLOCK_SIZE);
        lru_.splice(lru_.begin(), lru_, it->second);
        chargeCopy();
        return;
    }
    ++stats_.misses;
    lower_.readBlock(index, buf);
    insert(index, {buf.data(), buf.size()});
}

void
BufferCache::write(std::uint64_t index, std::span<const std::uint8_t> buf,
                   bool direct_io)
{
    clock_.advanceSeconds(opOverheadSeconds_);
    ++stats_.writes;
    lower_.writeBlock(index, buf);
    if (!direct_io)
        insert(index, buf);
}

void
BufferCache::invalidateAll()
{
    lru_.clear();
    map_.clear();
}

} // namespace sentry::os
