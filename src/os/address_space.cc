#include "os/address_space.hh"

#include "common/logging.hh"

namespace sentry::os
{

Vma &
AddressSpace::addVma(std::string name, VmaType type, std::size_t size,
                     SharePolicy share)
{
    if (size == 0 || size % PAGE_SIZE != 0)
        fatal("VMA \"%s\" size must be a non-zero page multiple (%zu)",
              name.c_str(), size);

    Vma vma;
    vma.name = std::move(name);
    vma.type = type;
    vma.share = share;
    vma.base = nextBase_;
    vma.size = size;
    nextBase_ = vma.end() + VA_GAP;

    vmas_.push_back(std::move(vma));
    return vmas_.back();
}

const Vma *
AddressSpace::findVma(VirtAddr va) const
{
    for (const auto &vma : vmas_) {
        if (vma.contains(va))
            return &vma;
    }
    return nullptr;
}

std::size_t
AddressSpace::totalBytes() const
{
    std::size_t total = 0;
    for (const auto &vma : vmas_)
        total += vma.size;
    return total;
}

} // namespace sentry::os
