/**
 * @file
 * Filebench-style workload engine for the dm-crypt evaluation
 * (paper Figure 9): sequential reads, random reads, and a mixed random
 * read/write workload, each runnable through the buffer cache or with
 * direct I/O.
 *
 * Each run first "creates the files" (writes the whole working set,
 * warming the buffer cache exactly as the paper describes), then runs
 * the measured I/O phase.
 */

#ifndef SENTRY_OS_FILEBENCH_HH
#define SENTRY_OS_FILEBENCH_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/sim_clock.hh"
#include "os/buffer_cache.hh"

namespace sentry::os
{

/** Workload shapes from the paper. */
enum class FilebenchWorkload
{
    SeqRead,
    RandRead,
    RandRW, //!< 50/50 mix
};

/** @return workload name as used in the paper's figure. */
const char *filebenchWorkloadName(FilebenchWorkload workload);

/** Result of one run. */
struct FilebenchResult
{
    std::uint64_t bytesMoved = 0;
    double seconds = 0.0;

    double
    mbPerSec() const
    {
        return seconds > 0
                   ? static_cast<double>(bytesMoved) / (1024.0 * 1024.0) /
                         seconds
                   : 0.0;
    }
};

/** The workload driver. */
class Filebench
{
  public:
    /**
     * @param clock       simulated clock used for timing windows
     * @param cache       the buffer cache over the device under test
     * @param working_set_bytes size of the file set
     */
    Filebench(SimClock &clock, BufferCache &cache,
              std::size_t working_set_bytes);

    /**
     * Run a workload.
     * @param workload   access pattern
     * @param io_bytes   bytes of I/O to issue in the measured phase
     * @param direct_io  bypass the buffer cache
     * @param rng        randomness for block selection
     */
    FilebenchResult run(FilebenchWorkload workload, std::size_t io_bytes,
                        bool direct_io, Rng &rng);

  private:
    void createFiles();

    SimClock &clock_;
    BufferCache &cache_;
    std::uint64_t workingSetBlocks_;
};

} // namespace sentry::os

#endif // SENTRY_OS_FILEBENCH_HH
