#include "os/dm_crypt.hh"

#include <cstring>
#include <vector>

namespace sentry::os
{

DmCrypt::DmCrypt(BlockLayer &lower,
                 std::unique_ptr<crypto::SimAesEngine> cipher,
                 unsigned async_workers)
    : lower_(lower), cipher_(std::move(cipher)),
      asyncWorkers_(async_workers == 0 ? 1 : async_workers)
{}

crypto::Iv
DmCrypt::blockIv(std::uint64_t index)
{
    crypto::Iv iv{};
    for (int i = 0; i < 8; ++i)
        iv[i] = static_cast<std::uint8_t>(index >> (8 * i));
    return iv;
}

void
DmCrypt::readBlock(std::uint64_t index, std::span<std::uint8_t> buf)
{
    lower_.readBlock(index, buf);
    cipher_->cbcDecrypt(blockIv(index), buf);
}

void
DmCrypt::writeBlock(std::uint64_t index, std::span<const std::uint8_t> buf)
{
    std::vector<std::uint8_t> staging(buf.begin(), buf.end());
    // Writes are queued to kcryptd workers: the encryption runs on
    // asyncWorkers_ cores in parallel with the issuing thread.
    cipher_->setChargeDivisor(asyncWorkers_);
    cipher_->cbcEncrypt(blockIv(index), staging);
    cipher_->setChargeDivisor(1.0);
    lower_.writeBlock(index, staging);
}

std::uint64_t
DmCrypt::numBlocks() const
{
    return lower_.numBlocks();
}

} // namespace sentry::os
