#include "os/dm_crypt.hh"

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/trace_engine.hh"

namespace sentry::os
{

namespace
{

/**
 * Fire one probe::KcryptdOp for a kcryptd block pickup and charge any
 * subscriber-requested worker stall to the simulated clock. Always
 * called from the issuing thread — the pool's host threads never see
 * the Soc.
 */
void
chargeKcryptdStall(crypto::SimAesEngine &cipher)
{
    probe::TraceEngine &trace = cipher.soc().trace();
    if (!trace.enabled(probe::TraceKind::KcryptdOp))
        return;
    probe::KcryptdOp event{0.0};
    trace.emit(event);
    if (event.stallSeconds > 0.0)
        cipher.soc().clock().advanceSeconds(event.stallSeconds);
}

} // namespace

/**
 * Persistent kcryptd worker pool.
 *
 * Workers only ever run host-side AES over their private HostAesCbc
 * clone — the simulated machine (Soc, clock, caches) is single-threaded
 * state and is never touched off the issuing thread. Blocks of a job
 * are striped across workers (worker w takes blocks w, w+N, ...); each
 * block is an independent CBC unit under its own plain64 IV, so the
 * ciphertext is bit-identical to encrypting the blocks one after
 * another on the issuing thread.
 */
class DmCrypt::KcryptdPool
{
  public:
    KcryptdPool(const crypto::SimAesEngine &engine, unsigned nworkers)
    {
        ciphers_.reserve(nworkers);
        for (unsigned w = 0; w < nworkers; ++w)
            ciphers_.push_back(engine.hostCipherClone());
        threads_.reserve(nworkers);
        for (unsigned w = 0; w < nworkers; ++w)
            threads_.emplace_back([this, w, nworkers] {
                run(w, nworkers);
            });
    }

    ~KcryptdPool()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        start_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    /** Encrypt @p nblocks blocks in place; block i gets the plain64 IV
     *  of @p first_index + i. Blocks until the whole job is done. */
    void
    encryptBlocks(std::uint64_t first_index, std::uint8_t *data,
                  std::size_t nblocks)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            first_ = first_index;
            data_ = data;
            nblocks_ = nblocks;
            remaining_ = static_cast<unsigned>(threads_.size());
            ++seq_;
        }
        start_.notify_all();
        std::unique_lock<std::mutex> lock(m_);
        finished_.wait(lock, [this] { return remaining_ == 0; });
    }

  private:
    void
    run(unsigned worker, unsigned nworkers)
    {
        const crypto::HostAesCbc &cipher = ciphers_[worker];
        std::uint64_t seen = 0;
        for (;;) {
            std::uint64_t first;
            std::uint8_t *data;
            std::size_t nblocks;
            {
                std::unique_lock<std::mutex> lock(m_);
                start_.wait(lock,
                            [this, seen] { return stop_ || seq_ != seen; });
                if (stop_)
                    return;
                seen = seq_;
                first = first_;
                data = data_;
                nblocks = nblocks_;
            }
            for (std::size_t b = worker; b < nblocks; b += nworkers) {
                cipher.cbcEncrypt(
                    blockIv(first + b),
                    {data + b * BLOCK_SIZE, BLOCK_SIZE});
            }
            {
                std::lock_guard<std::mutex> lock(m_);
                if (--remaining_ == 0)
                    finished_.notify_one();
            }
        }
    }

    std::vector<crypto::HostAesCbc> ciphers_; //!< one clone per worker
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable start_, finished_;
    bool stop_ = false;
    std::uint64_t seq_ = 0; //!< job sequence number
    std::uint64_t first_ = 0;
    std::uint8_t *data_ = nullptr;
    std::size_t nblocks_ = 0;
    unsigned remaining_ = 0;
};

DmCrypt::DmCrypt(BlockLayer &lower,
                 std::unique_ptr<crypto::SimAesEngine> cipher,
                 unsigned async_workers)
    : lower_(lower), cipher_(std::move(cipher)),
      asyncWorkers_(async_workers == 0 ? 1 : async_workers)
{}

DmCrypt::~DmCrypt() = default;

crypto::Iv
DmCrypt::blockIv(std::uint64_t index)
{
    crypto::Iv iv{};
    for (int i = 0; i < 8; ++i)
        iv[i] = static_cast<std::uint8_t>(index >> (8 * i));
    return iv;
}

void
DmCrypt::readBlock(std::uint64_t index, std::span<std::uint8_t> buf)
{
    lower_.readBlock(index, buf);
    cipher_->cbcDecrypt(blockIv(index), buf);
}

void
DmCrypt::writeBlock(std::uint64_t index, std::span<const std::uint8_t> buf)
{
    staging_.assign(buf.begin(), buf.end());
    chargeKcryptdStall(*cipher_);
    // The write is queued to kcryptd workers: the encryption runs on
    // asyncWorkers_ cores in parallel with the issuing thread. The
    // scope restores the previous divisor even if the cipher throws.
    crypto::ScopedChargeDivisor scope(*cipher_, asyncWorkers_);
    cipher_->cbcEncrypt(blockIv(index), staging_);
    lower_.writeBlock(index, staging_);
}

void
DmCrypt::writeBlocks(std::uint64_t first_index,
                     std::span<const std::uint8_t> data)
{
    if (data.size() % BLOCK_SIZE != 0)
        fatal("DmCrypt::writeBlocks requires whole blocks");
    const std::size_t nblocks = data.size() / BLOCK_SIZE;
    if (nblocks == 0)
        return;
    if (asyncWorkers_ <= 1 || nblocks == 1) {
        // Nothing to fan out; keep the inline per-block path.
        for (std::size_t b = 0; b < nblocks; ++b)
            writeBlock(first_index + b,
                       data.subspan(b * BLOCK_SIZE, BLOCK_SIZE));
        return;
    }

    staging_.assign(data.begin(), data.end());
    if (!pool_)
        pool_ = std::make_unique<KcryptdPool>(*cipher_, asyncWorkers_);
    pool_->encryptBlocks(first_index, staging_.data(), nblocks);
    // Replay the simulated side of the work the pool just did: per
    // block, the same register touches, ivec write, irq-guarded chunks
    // and time/energy charges the per-block path would have made.
    for (std::size_t b = 0; b < nblocks; ++b) {
        chargeKcryptdStall(*cipher_);
        cipher_->chargeParallelBulk(blockIv(first_index + b), BLOCK_SIZE,
                                    asyncWorkers_);
    }
    lower_.writeBlocks(first_index, staging_);
}

std::uint64_t
DmCrypt::numBlocks() const
{
    return lower_.numBlocks();
}

} // namespace sentry::os
