#include "os/phys_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentry::os
{

PhysAllocator::PhysAllocator(PhysAddr base, std::size_t size)
    : base_(base), size_(size)
{
    if (base % PAGE_SIZE != 0 || size % PAGE_SIZE != 0)
        fatal("PhysAllocator range must be page aligned");
    freeList_.reserve(size / PAGE_SIZE);
    // Push in reverse so allocation proceeds from low addresses up.
    for (PhysAddr frame = base + size; frame > base;)
        freeList_.push_back(frame -= PAGE_SIZE);
    totalFrames_ = freeList_.size();
}

void
PhysAllocator::reserveRange(PhysAddr base, std::size_t size)
{
    const PhysAddr end = base + size;
    freeList_.erase(std::remove_if(freeList_.begin(), freeList_.end(),
                                   [&](PhysAddr frame) {
                                       return frame >= base && frame < end;
                                   }),
                    freeList_.end());
    totalFrames_ = freeList_.size() + allocated_.size();
}

PhysAddr
PhysAllocator::allocFrame()
{
    if (freeList_.empty())
        fatal("out of physical memory (%zu frames allocated)",
              allocated_.size());
    const PhysAddr frame = freeList_.back();
    freeList_.pop_back();
    allocated_.insert(frame);
    return frame;
}

std::size_t
PhysAllocator::rowInBank(PhysAddr frame) const
{
    const PhysAddr offset = frame - partition_.geomBase;
    return (offset / partition_.rowBytes) / partition_.banks;
}

bool
PhysAllocator::inVictimRows(PhysAddr frame) const
{
    if (!partition_.enabled())
        return false;
    return rowInBank(frame) < partition_.victimRowLimit;
}

bool
PhysAllocator::inAttackerRows(PhysAddr frame) const
{
    if (!partition_.enabled())
        return false;
    return rowInBank(frame) >=
           partition_.victimRowLimit + partition_.guardRows;
}

PhysAddr
PhysAllocator::tryAllocFrame(MemDomain domain)
{
    if (freeList_.empty())
        return 0;
    // Fast path: no partition, or a Default request whose next frame
    // already qualifies — identical behavior (and identical frame
    // order) to the plain allocFrame() stack pop.
    const bool partitioned = partition_.enabled();
    if (!partitioned ||
        (domain == MemDomain::Default && inVictimRows(freeList_.back()))) {
        const PhysAddr frame = freeList_.back();
        freeList_.pop_back();
        allocated_.insert(frame);
        return frame;
    }

    // Victim/Default scan from the back (low addresses first, like the
    // stack pop); Attacker scans from the front, i.e. from the highest
    // addresses, keeping the two regions' allocation orders disjoint.
    const bool wantVictim = domain != MemDomain::Attacker;
    if (wantVictim) {
        for (std::size_t i = freeList_.size(); i > 0; --i) {
            const PhysAddr frame = freeList_[i - 1];
            if (!inVictimRows(frame))
                continue;
            freeList_.erase(freeList_.begin() +
                            static_cast<std::ptrdiff_t>(i - 1));
            allocated_.insert(frame);
            return frame;
        }
        // Default degrades gracefully so enabling the partition never
        // shrinks usable capacity; strict Victim does not.
        if (domain == MemDomain::Default) {
            const PhysAddr frame = freeList_.back();
            freeList_.pop_back();
            allocated_.insert(frame);
            return frame;
        }
        return 0;
    }
    for (std::size_t i = 0; i < freeList_.size(); ++i) {
        const PhysAddr frame = freeList_[i];
        if (!inAttackerRows(frame))
            continue;
        freeList_.erase(freeList_.begin() +
                        static_cast<std::ptrdiff_t>(i));
        allocated_.insert(frame);
        return frame;
    }
    return 0;
}

PhysAddr
PhysAllocator::allocFrame(MemDomain domain)
{
    const PhysAddr frame = tryAllocFrame(domain);
    if (frame == 0)
        fatal("out of physical memory in domain %d (%zu frames "
              "allocated)",
              static_cast<int>(domain), allocated_.size());
    return frame;
}

PhysAddr
PhysAllocator::allocContiguous(std::size_t frames)
{
    if (frames == 0)
        panic("allocContiguous of zero frames");

    std::vector<PhysAddr> sorted(freeList_);
    std::sort(sorted.begin(), sorted.end());
    std::size_t runStart = 0;
    for (std::size_t i = 1; i <= sorted.size(); ++i) {
        const bool contiguous =
            i < sorted.size() && sorted[i] == sorted[i - 1] + PAGE_SIZE;
        if (!contiguous) {
            if (i - runStart >= frames) {
                const PhysAddr base = sorted[runStart];
                for (std::size_t f = 0; f < frames; ++f) {
                    const PhysAddr frame = base + f * PAGE_SIZE;
                    freeList_.erase(std::remove(freeList_.begin(),
                                                freeList_.end(), frame),
                                    freeList_.end());
                    allocated_.insert(frame);
                }
                return base;
            }
            runStart = i;
        }
    }
    fatal("no contiguous run of %zu frames available", frames);
}

void
PhysAllocator::freeFrame(PhysAddr frame)
{
    if (allocated_.erase(frame) == 0)
        panic("double free of frame 0x%llx",
              static_cast<unsigned long long>(frame));
    freeList_.push_back(frame);
}

} // namespace sentry::os
