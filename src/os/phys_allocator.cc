#include "os/phys_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentry::os
{

PhysAllocator::PhysAllocator(PhysAddr base, std::size_t size)
    : base_(base), size_(size)
{
    if (base % PAGE_SIZE != 0 || size % PAGE_SIZE != 0)
        fatal("PhysAllocator range must be page aligned");
    freeList_.reserve(size / PAGE_SIZE);
    // Push in reverse so allocation proceeds from low addresses up.
    for (PhysAddr frame = base + size; frame > base;)
        freeList_.push_back(frame -= PAGE_SIZE);
    totalFrames_ = freeList_.size();
}

void
PhysAllocator::reserveRange(PhysAddr base, std::size_t size)
{
    const PhysAddr end = base + size;
    freeList_.erase(std::remove_if(freeList_.begin(), freeList_.end(),
                                   [&](PhysAddr frame) {
                                       return frame >= base && frame < end;
                                   }),
                    freeList_.end());
    totalFrames_ = freeList_.size() + allocated_.size();
}

PhysAddr
PhysAllocator::allocFrame()
{
    if (freeList_.empty())
        fatal("out of physical memory (%zu frames allocated)",
              allocated_.size());
    const PhysAddr frame = freeList_.back();
    freeList_.pop_back();
    allocated_.insert(frame);
    return frame;
}

PhysAddr
PhysAllocator::allocContiguous(std::size_t frames)
{
    if (frames == 0)
        panic("allocContiguous of zero frames");

    std::vector<PhysAddr> sorted(freeList_);
    std::sort(sorted.begin(), sorted.end());
    std::size_t runStart = 0;
    for (std::size_t i = 1; i <= sorted.size(); ++i) {
        const bool contiguous =
            i < sorted.size() && sorted[i] == sorted[i - 1] + PAGE_SIZE;
        if (!contiguous) {
            if (i - runStart >= frames) {
                const PhysAddr base = sorted[runStart];
                for (std::size_t f = 0; f < frames; ++f) {
                    const PhysAddr frame = base + f * PAGE_SIZE;
                    freeList_.erase(std::remove(freeList_.begin(),
                                                freeList_.end(), frame),
                                    freeList_.end());
                    allocated_.insert(frame);
                }
                return base;
            }
            runStart = i;
        }
    }
    fatal("no contiguous run of %zu frames available", frames);
}

void
PhysAllocator::freeFrame(PhysAddr frame)
{
    if (allocated_.erase(frame) == 0)
        panic("double free of frame 0x%llx",
              static_cast<unsigned long long>(frame));
    freeList_.push_back(frame);
}

} // namespace sentry::os
