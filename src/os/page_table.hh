/**
 * @file
 * Per-process page table.
 *
 * The ARM "young" (accessed) bit is the mechanism both Sentry paths
 * hinge on (paper sections 5 and 7): clearing it on a PTE forces a trap
 * on the next access, which is where decrypt-on-demand and the
 * locked-cache pager hook in.
 */

#ifndef SENTRY_OS_PAGE_TABLE_HH
#define SENTRY_OS_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "common/types.hh"

namespace sentry::os
{

/** One page table entry. */
struct Pte
{
    PhysAddr frame = 0;
    bool present = false;
    bool writable = true;
    /** ARM accessed bit; clear => the next access traps. */
    bool young = true;
    /** Sentry: the frame currently holds ciphertext. */
    bool encrypted = false;
    /** Sentry background mode: page is resident in a locked-cache frame. */
    bool onSoc = false;
    /** Background mode: the page's DRAM home while resident on-SoC. */
    PhysAddr dramHome = 0;
};

/** Sparse page table keyed by page-aligned virtual address. */
class PageTable
{
  public:
    /** Map @p va (page aligned) to @p frame. */
    Pte &map(VirtAddr va, PhysAddr frame);

    /** Remove a mapping; @return true if it existed. */
    bool unmap(VirtAddr va);

    /** @return the PTE for the page containing @p va, or nullptr. */
    Pte *find(VirtAddr va);
    const Pte *find(VirtAddr va) const;

    /** Iterate over all entries in VA order. */
    void forEach(const std::function<void(VirtAddr, Pte &)> &fn);

    /** @return number of mapped pages. */
    std::size_t size() const { return entries_.size(); }

    /** @return page-aligned base of the page containing @p va. */
    static VirtAddr pageOf(VirtAddr va) { return alignDown(va, PAGE_SIZE); }

  private:
    std::map<VirtAddr, Pte> entries_;
};

} // namespace sentry::os

#endif // SENTRY_OS_PAGE_TABLE_HH
