#include "os/block_device.hh"

#include <cstring>

#include "common/logging.hh"

namespace sentry::os
{

RamBlockDevice::RamBlockDevice(SimClock &clock, std::size_t bytes,
                               double bytes_per_sec)
    : clock_(clock), storage_(bytes, 0), bytesPerSec_(bytes_per_sec)
{
    if (bytes == 0 || bytes % BLOCK_SIZE != 0)
        fatal("block device size must be a non-zero block multiple");
    if (bytes_per_sec <= 0)
        fatal("block device rate must be positive");
}

void
RamBlockDevice::readBlock(std::uint64_t index, std::span<std::uint8_t> buf)
{
    if (buf.size() != BLOCK_SIZE || index >= numBlocks())
        panic("bad block read (index %llu)",
              static_cast<unsigned long long>(index));
    std::memcpy(buf.data(), storage_.data() + index * BLOCK_SIZE,
                BLOCK_SIZE);
    clock_.advanceSeconds(static_cast<double>(BLOCK_SIZE) / bytesPerSec_);
}

void
RamBlockDevice::writeBlock(std::uint64_t index,
                           std::span<const std::uint8_t> buf)
{
    if (buf.size() != BLOCK_SIZE || index >= numBlocks())
        panic("bad block write (index %llu)",
              static_cast<unsigned long long>(index));
    std::memcpy(storage_.data() + index * BLOCK_SIZE, buf.data(),
                BLOCK_SIZE);
    clock_.advanceSeconds(static_cast<double>(BLOCK_SIZE) / bytesPerSec_);
}

std::uint64_t
RamBlockDevice::numBlocks() const
{
    return storage_.size() / BLOCK_SIZE;
}

} // namespace sentry::os
