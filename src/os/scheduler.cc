#include "os/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/process.hh"

namespace sentry::os
{

namespace
{
void
eraseFrom(std::deque<Process *> &queue, Process *process)
{
    queue.erase(std::remove(queue.begin(), queue.end(), process),
                queue.end());
}
} // namespace

void
Scheduler::admit(Process *process)
{
    runQueue_.push_back(process);
}

void
Scheduler::remove(Process *process)
{
    eraseFrom(runQueue_, process);
    eraseFrom(parked_, process);
    if (current_ == process)
        current_ = nullptr;
}

void
Scheduler::makeUnschedulable(Process *process)
{
    process->setSchedulable(false);
    eraseFrom(runQueue_, process);
    if (current_ == process)
        current_ = nullptr;
    parked_.push_back(process);
}

void
Scheduler::makeSchedulable(Process *process)
{
    process->setSchedulable(true);
    eraseFrom(parked_, process);
    runQueue_.push_back(process);
}

Process *
Scheduler::tick()
{
    if (current_ != nullptr) {
        // Outgoing context: registers land on the kernel stack in DRAM.
        cpu_.setCurrentStack(current_->kernelStackTop());
        cpu_.contextSwitchSpill();
        runQueue_.push_back(current_);
        current_ = nullptr;
    }
    if (runQueue_.empty())
        return nullptr;
    current_ = runQueue_.front();
    runQueue_.pop_front();
    if (!current_->schedulable())
        panic("unschedulable process \"%s\" on the run queue",
              current_->name().c_str());
    cpu_.setCurrentStack(current_->kernelStackTop());
    return current_;
}

} // namespace sentry::os
