/**
 * @file
 * Physical page-frame allocator over the DRAM window.
 */

#ifndef SENTRY_OS_PHYS_ALLOCATOR_HH
#define SENTRY_OS_PHYS_ALLOCATOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace sentry::os
{

/** Stack-based free-frame allocator (4 KiB frames). */
class PhysAllocator
{
  public:
    /** Manage frames in [base, base+size); both page aligned. */
    PhysAllocator(PhysAddr base, std::size_t size);

    /** Remove [base, base+size) from the pool (device carve-outs). */
    void reserveRange(PhysAddr base, std::size_t size);

    /** @return a free frame; fatal when exhausted. */
    PhysAddr allocFrame();

    /**
     * Allocate @p frames physically contiguous frames (for buffers that
     * are addressed without a page table, e.g. crypto state regions).
     * @return base of the run; fatal when no run exists.
     */
    PhysAddr allocContiguous(std::size_t frames);

    /** Return @p frame to the pool. */
    void freeFrame(PhysAddr frame);

    /** @return frames currently free. */
    std::size_t freeFrames() const { return freeList_.size(); }

    /** @return total frames managed (free + allocated). */
    std::size_t totalFrames() const { return totalFrames_; }

    /** @return true if @p frame is currently allocated. */
    bool isAllocated(PhysAddr frame) const
    {
        return allocated_.contains(frame);
    }

  private:
    PhysAddr base_;
    std::size_t size_;
    std::vector<PhysAddr> freeList_;
    std::unordered_set<PhysAddr> allocated_;
    std::size_t totalFrames_ = 0;
};

} // namespace sentry::os

#endif // SENTRY_OS_PHYS_ALLOCATOR_HH
