/**
 * @file
 * Physical page-frame allocator over the DRAM window.
 */

#ifndef SENTRY_OS_PHYS_ALLOCATOR_HH
#define SENTRY_OS_PHYS_ALLOCATOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace sentry::os
{

/**
 * Which DRAM-row partition an allocation must land in once CATT-style
 * row partitioning is enabled (see PhysAllocator::partitionRows).
 * Default keeps today's placement; Victim/Attacker are strict.
 */
enum class MemDomain
{
    Default,
    Victim,
    Attacker,
};

/**
 * CATT-style row-partitioning plan ("CAn't Touch This", Brasser et
 * al.): split each DRAM bank's rows into a victim region (kernel +
 * sensitive processes), a guard band no one may occupy, and an
 * attacker region. Rowhammer disturbance only reaches *bank-adjacent*
 * rows, so with at least one guard row an attacker frame can never
 * flip bits in a victim row.
 */
struct RowPartition
{
    std::size_t rowBytes = 0;      //!< 0 = partitioning disabled
    unsigned banks = 1;            //!< bank interleave factor
    std::size_t victimRowLimit = 0;//!< rows-in-bank < limit are victim
    std::size_t guardRows = 1;     //!< dead rows between the regions
    PhysAddr geomBase = 0;         //!< frame addr of DRAM row 0

    bool enabled() const { return rowBytes != 0; }
};

/** Stack-based free-frame allocator (4 KiB frames). */
class PhysAllocator
{
  public:
    /** Manage frames in [base, base+size); both page aligned. */
    PhysAllocator(PhysAddr base, std::size_t size);

    /** Remove [base, base+size) from the pool (device carve-outs). */
    void reserveRange(PhysAddr base, std::size_t size);

    /** @return a free frame; fatal when exhausted. */
    PhysAddr allocFrame();

    /**
     * Domain-aware variant. With partitioning off (or Default before
     * any partition is set) this is exactly allocFrame(). With a
     * partition: Victim and Attacker are strict (fatal when their
     * region is empty); Default prefers victim rows but falls back to
     * any frame so total capacity is unchanged.
     */
    PhysAddr allocFrame(MemDomain domain);

    /** Like allocFrame(domain) but returns 0 instead of dying when no
     * qualifying frame exists. */
    PhysAddr tryAllocFrame(MemDomain domain);

    /** Install a row-partitioning plan (empty plan disables). */
    void partitionRows(const RowPartition &plan) { partition_ = plan; }

    /** @return the active row-partitioning plan. */
    const RowPartition &rowPartition() const { return partition_; }

    /** @return true if @p frame sits in a victim row. */
    bool inVictimRows(PhysAddr frame) const;

    /** @return true if @p frame sits past the guard band, in attacker
     * rows. */
    bool inAttackerRows(PhysAddr frame) const;

    /**
     * Allocate @p frames physically contiguous frames (for buffers that
     * are addressed without a page table, e.g. crypto state regions).
     * @return base of the run; fatal when no run exists.
     */
    PhysAddr allocContiguous(std::size_t frames);

    /** Return @p frame to the pool. */
    void freeFrame(PhysAddr frame);

    /** @return frames currently free. */
    std::size_t freeFrames() const { return freeList_.size(); }

    /** @return total frames managed (free + allocated). */
    std::size_t totalFrames() const { return totalFrames_; }

    /** @return true if @p frame is currently allocated. */
    bool isAllocated(PhysAddr frame) const
    {
        return allocated_.contains(frame);
    }

  private:
    std::size_t rowInBank(PhysAddr frame) const;

    PhysAddr base_;
    std::size_t size_;
    std::vector<PhysAddr> freeList_;
    std::unordered_set<PhysAddr> allocated_;
    std::size_t totalFrames_ = 0;
    RowPartition partition_;
};

} // namespace sentry::os

#endif // SENTRY_OS_PHYS_ALLOCATOR_HH
