/**
 * @file
 * AES lookup tables (FIPS-197), generated at first use from GF(2^8)
 * arithmetic rather than pasted as literals.
 *
 * The table set matches the paper's Table 4 accounting:
 *   - S-box and inverse S-box (2 x 256 B = 512 B, access-protected)
 *   - round tables Te0..Te3 / Td0..Td3 (2 x 1024 B used per direction in
 *     the paper's OpenSSL build; we expose all eight, 2 x 4 KiB total,
 *     and account the OpenSSL-equivalent 2 KiB in AesState)
 *   - Rcon (40 B, access-protected)
 *
 * The contents are public, but *access patterns* into them leak key
 * material (Tromer/Osvik/Shamir), which is why Sentry treats them as
 * "access-protected" state and keeps them on the SoC.
 */

#ifndef SENTRY_CRYPTO_AES_TABLES_HH
#define SENTRY_CRYPTO_AES_TABLES_HH

#include <cstdint>

namespace sentry::crypto
{

/** Number of Rcon entries OpenSSL ships (10 words = 40 bytes). */
constexpr unsigned AES_RCON_WORDS = 10;

/** The full set of AES lookup tables. */
struct AesTables
{
    std::uint8_t sbox[256];
    std::uint8_t invSbox[256];
    /** Encryption round tables; te[k] is Te_k, big-endian packed. */
    std::uint32_t te[4][256];
    /** Decryption round tables (equivalent inverse cipher). */
    std::uint32_t td[4][256];
    /** Round constants as big-endian words (0x01000000, ...). */
    std::uint32_t rcon[AES_RCON_WORDS];
};

/** @return the process-wide generated table set. */
const AesTables &aesTables();

/** GF(2^8) multiply modulo the AES polynomial x^8+x^4+x^3+x+1. */
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_AES_TABLES_HH
