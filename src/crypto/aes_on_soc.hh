/**
 * @file
 * AES engines whose state lives in *simulated physical memory* — the
 * heart of both the paper's baseline and its contribution:
 *
 *   - StatePlacement::Dram   => the "generic AES" baseline: round keys
 *     and lookup tables are materialised in DRAM pages, table lookups
 *     miss through the L2 onto the external bus (feeding the bus-monitor
 *     side channel), and the key schedule sits in DRAM for a cold-boot
 *     or DMA attacker to harvest;
 *   - StatePlacement::Iram / LockedL2  => AES On SoC (paper section 6):
 *     all secret and access-protected state is materialised in on-SoC
 *     storage, every sensitive computation runs with interrupts masked
 *     (OnSocIrqGuard), registers are scrubbed afterwards, and no
 *     procedure passes sensitive arguments via a DRAM stack.
 *
 * Two operating granularities:
 *   - the BlockCipher interface runs *audited*: every table lookup and
 *     round-key fetch is an individual simulated memory access, so the
 *     access trace (and its visibility on the external bus) is exact;
 *   - the bulk cbc{En,De}crypt paths process whole buffers/pages with
 *     costs charged through the platform cost model — the state stays
 *     resident in its simulated region, but per-lookup traffic is not
 *     replayed (DESIGN.md section 4, decision 1).
 */

#ifndef SENTRY_CRYPTO_AES_ON_SOC_HH
#define SENTRY_CRYPTO_AES_ON_SOC_HH

#include <cstdint>
#include <memory>
#include <span>

#include "crypto/aes.hh"
#include "crypto/aes_state.hh"
#include "crypto/modes.hh"
#include "hw/soc.hh"

namespace sentry::crypto
{

/** Where an engine's AES state physically lives. */
enum class StatePlacement
{
    Dram,     //!< generic AES: state in ordinary DRAM pages
    Iram,     //!< AES On SoC, iRAM variant
    LockedL2, //!< AES On SoC, locked-cache-way variant
};

/** @return printable placement name. */
const char *statePlacementName(StatePlacement placement);

/**
 * Where the *secret* state (key + round keys) lives relative to the
 * state region.
 *
 * OnRegion is the normal case. RegistersOnly models the TRESOR/AESSE
 * family of x86 defences the paper's section 9 discusses: the key
 * schedule is confined to CPU registers (never materialised in memory),
 * but the access-protected lookup tables still live wherever the state
 * region is — which is exactly why those schemes stay vulnerable to the
 * bus-monitoring side channel even though they defeat cold boot.
 */
enum class SecretResidency
{
    OnRegion,
    RegistersOnly,
};

class SimAesEngine;

/**
 * A thread-confined host-side AES-CBC cipher cloned from a
 * SimAesEngine's key schedule.
 *
 * kcryptd worker threads must not touch the simulated machine (the Soc
 * is single-threaded state); each worker gets one of these clones and
 * performs only host computation with it. Ciphertext is bit-identical
 * to the engine's own bulk path because both run the same schedule
 * through the same native round engine.
 */
class HostAesCbc
{
  public:
    explicit HostAesCbc(const AesKeySchedule &schedule);

    /** CBC-encrypt @p data (multiple of 16 bytes) in place. */
    void cbcEncrypt(const Iv &iv, std::span<std::uint8_t> data) const;

    /** CBC-decrypt @p data in place. */
    void cbcDecrypt(const Iv &iv, std::span<std::uint8_t> data) const;

  private:
    AesKeySchedule schedule_;
};

/**
 * RAII scope for SimAesEngine::setChargeDivisor: restores the previous
 * divisor on scope exit, so an exception on the bulk path can no longer
 * leave the engine charging divided time forever.
 */
class ScopedChargeDivisor
{
  public:
    ScopedChargeDivisor(SimAesEngine &engine, double divisor);
    ~ScopedChargeDivisor();

    ScopedChargeDivisor(const ScopedChargeDivisor &) = delete;
    ScopedChargeDivisor &operator=(const ScopedChargeDivisor &) = delete;

  private:
    SimAesEngine &engine_;
    double previous_;
};

/**
 * An AES-CBC engine bound to a physical state region inside the
 * simulated machine.
 */
class SimAesEngine : public BlockCipher
{
  public:
    /**
     * @param soc         the device
     * @param state_base  physical base of the state region; must provide
     *                    AesStateLayout::forKeyBytes(key).totalBytes()
     * @param key         16/24/32-byte AES key
     * @param placement   what kind of memory state_base points into
     * @param kernel_path charge kernel Crypto-API costs instead of
     *                    user-mode costs on the bulk paths
     */
    SimAesEngine(hw::Soc &soc, PhysAddr state_base,
                 std::span<const std::uint8_t> key, StatePlacement placement,
                 bool kernel_path = false,
                 SecretResidency secrets = SecretResidency::OnRegion);

    ~SimAesEngine() override; // out of line: FastEnv is incomplete here

    /** Audited single-block encrypt: exact per-lookup memory traffic. */
    void encryptBlock(const std::uint8_t in[16],
                      std::uint8_t out[16]) const override;

    /** Audited single-block decrypt. */
    void decryptBlock(const std::uint8_t in[16],
                      std::uint8_t out[16]) const override;

    /**
     * Batched audited encrypt: semantically identical to calling
     * encryptBlock() once per 16-byte block, but the fast path resolves
     * the state region's cache lines once per call and replays the
     * audited lookups against them. Simulated clock, L2Stats, bus
     * traffic, and memory contents match the per-block loop exactly at
     * every block boundary (see DESIGN.md "fast-path invariants").
     */
    void encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t nblocks) const;

    /** Batched audited decrypt; same equivalence as encryptBlocks(). */
    void decryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t nblocks) const;

    /**
     * Audited CBC encrypt of a host buffer: equivalent to host-side
     * chaining around an encryptBlock() loop, with every table lookup
     * an individual simulated access.
     */
    void cbcEncryptAudited(const Iv &iv,
                           std::span<std::uint8_t> data) const;

    /** Audited CBC decrypt of a host buffer. */
    void cbcDecryptAudited(const Iv &iv,
                           std::span<std::uint8_t> data) const;

    /**
     * Toggle the batched fast path (on by default). With it off the
     * batched entry points fall back to the per-block reference loop;
     * tests use the toggle to assert the two are indistinguishable.
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }

    /** @return true while the batched fast path is enabled. */
    bool fastPathEnabled() const { return fastPath_; }

    /** Bulk CBC encrypt of a host buffer (e.g. a dm-crypt sector). */
    void cbcEncrypt(const Iv &iv, std::span<std::uint8_t> data);

    /** Bulk CBC decrypt of a host buffer. */
    void cbcDecrypt(const Iv &iv, std::span<std::uint8_t> data);

    /**
     * Bulk CBC encrypt of simulated physical memory, in place. The data
     * moves through the regular cacheable path, so cache and bus effects
     * are real; AES compute cost comes from the platform cost model.
     */
    void cbcEncryptPhys(PhysAddr addr, std::size_t len, const Iv &iv);

    /** Bulk CBC decrypt of simulated physical memory, in place. */
    void cbcDecryptPhys(PhysAddr addr, std::size_t len, const Iv &iv);

    /** @return the state layout (component offsets inside the region). */
    const AesStateLayout &layout() const { return layout_; }

    /** @return physical base of the state region. */
    PhysAddr stateBase() const { return stateBase_; }

    /** @return where the state lives. */
    StatePlacement placement() const { return placement_; }

    /** @return where the secret half of the state lives. */
    SecretResidency secretResidency() const { return secrets_; }

    /** @return total plaintext+ciphertext bytes processed so far. */
    std::uint64_t bytesProcessed() const { return bytesProcessed_; }

    /**
     * Erase all sensitive state from the region (the paper's "write
     * 0xFF in all sensitive data" scrub) and from the host-side
     * schedule mirror.
     */
    void scrub();

    /**
     * Divide subsequent bulk-path time charges by @p divisor: models
     * work spread across multiple cores (dm-crypt's kcryptd worker
     * threads encrypt writes on all four cores in parallel). Energy is
     * unaffected — the Joules are spent regardless of spreading.
     */
    void setChargeDivisor(double divisor);

    /** @return the current bulk-charge divisor. */
    double chargeDivisor() const { return chargeDivisor_; }

    /** @return a host-side CBC clone for a kcryptd worker thread. */
    HostAesCbc hostCipherClone() const { return HostAesCbc(schedule_); }

    /** @return the device this engine's state lives on. */
    hw::Soc &soc() const { return soc_; }

    /**
     * Replay the bulk path's *simulated* side effects (ivec write,
     * register touches, irq-guarded chunks, time/energy charges at
     * 1/@p workers wall-clock) for data whose host-side crypto already
     * ran on kcryptd worker threads. Charges are identical to
     * cbcEncrypt() of the same size under the same divisor.
     */
    void chargeParallelBulk(const Iv &iv, std::size_t bytes,
                            double workers);

    /**
     * Host-side mutable engine state for snapshot/fork. The simulated
     * state region's *contents* travel in the SocSnapshot's COW memory
     * images; this carries only the host mirror and accounting.
     */
    struct ForkState
    {
        AesKeySchedule schedule;
        std::uint64_t bytesProcessed;
        bool scrubbed;
        double chargeDivisor;
        bool fastPath;
    };

    ForkState forkState() const
    {
        return ForkState{schedule_, bytesProcessed_, scrubbed_,
                         chargeDivisor_, fastPath_};
    }

    /** Restore host state; drops the fast-path line map, whose pinned
     * cache lines and cached iRAM pointer die with the fork. */
    void restoreForkState(const ForkState &fs);

  private:
    class SimEnv;  // audited state-access environment
    class FastEnv; // audited fast path (pinned line handles)

    bool onSoc() const { return placement_ != StatePlacement::Dram; }
    /** Batched audited core; non-null @p cbc_iv selects CBC chaining
     *  (in == out == the data buffer). */
    void cryptBlocks(const Iv *cbc_iv, const std::uint8_t *in,
                     std::uint8_t *out, std::size_t nblocks,
                     bool encrypt) const;
    void materialiseState(std::span<const std::uint8_t> key);
    void chargeBulk(std::size_t bytes);
    void touchRegistersWithSecrets() const;

    hw::Soc &soc_;
    PhysAddr stateBase_;
    StatePlacement placement_;
    bool kernelPath_;
    SecretResidency secrets_ = SecretResidency::OnRegion;
    AesStateLayout layout_;
    AesKeySchedule schedule_; //!< host mirror (models CPU registers/L1)
    std::uint64_t bytesProcessed_ = 0;
    bool scrubbed_ = false;
    double chargeDivisor_ = 1.0;
    bool fastPath_ = true;
    mutable std::unique_ptr<FastEnv> fastEnv_; // lazily built line map

    // Component offsets resolved once for the audited path.
    PhysAddr inputOff_, keyOff_, encKeysOff_, decKeysOff_, teOff_, tdOff_,
        sboxOff_, invSboxOff_, rconOff_, ivecOff_;
};

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_AES_ON_SOC_HH
