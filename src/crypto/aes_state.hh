/**
 * @file
 * Classified layout of AES's runtime state (the paper's Table 4).
 *
 * Every piece of state an AES implementation touches is classified as:
 *   - Secret: leaks break confidentiality directly (keys, round keys,
 *     plaintext input block);
 *   - AccessProtected: contents are public, but the *order of accesses*
 *     leaks key material (round tables, S-boxes, Rcon) — safe against
 *     cold boot, but not against a bus monitor;
 *   - Public: ciphertext and progress counters.
 *
 * The layout doubles as the physical placement map AES On SoC uses when
 * it materialises its state inside an on-SoC region: every component
 * gets an offset, so tests can point at exactly where each class of
 * state lives and verify where its bytes do (and do not) show up.
 */

#ifndef SENTRY_CRYPTO_AES_STATE_HH
#define SENTRY_CRYPTO_AES_STATE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sentry::crypto
{

/** Sensitivity classes from Table 4. */
enum class Sensitivity
{
    Secret,
    Public,
    AccessProtected,
};

/** @return printable name of a sensitivity class. */
const char *sensitivityName(Sensitivity s);

/** One named component of the AES state. */
struct AesStateComponent
{
    std::string name;
    std::size_t offset; //!< byte offset inside the on-SoC state region
    std::size_t bytes;
    Sensitivity sensitivity;
};

/** Complete accounting of the state one AES instance needs. */
class AesStateLayout
{
  public:
    /** Build the layout for a given key length (16, 24, or 32 bytes). */
    static AesStateLayout forKeyBytes(unsigned key_bytes);

    /** @return all components in layout order. */
    const std::vector<AesStateComponent> &components() const
    {
        return components_;
    }

    /** @return the component named @p name; fatal if absent. */
    const AesStateComponent &find(const std::string &name) const;

    /** @return total bytes of state. */
    std::size_t totalBytes() const { return totalBytes_; }

    /** @return bytes belonging to one sensitivity class. */
    std::size_t bytesOf(Sensitivity s) const;

    /** @return bytes that must live on the SoC (secret + access-prot). */
    std::size_t protectedBytes() const;

    /** @return the key length this layout was built for. */
    unsigned keyBytes() const { return keyBytes_; }

    /** @return the number of AES rounds for this key length. */
    unsigned rounds() const { return keyBytes_ / 4 + 6; }

  private:
    std::vector<AesStateComponent> components_;
    std::size_t totalBytes_ = 0;
    unsigned keyBytes_ = 0;
};

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_AES_STATE_HH
