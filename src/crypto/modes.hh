/**
 * @file
 * Block-cipher modes of operation: ECB, CBC, and CTR.
 *
 * Sentry uses CBC (the Android/Linux default, per the paper). The modes
 * are written against an abstract BlockCipher so the same code drives
 * both the generic AES baseline and AES On SoC.
 */

#ifndef SENTRY_CRYPTO_MODES_HH
#define SENTRY_CRYPTO_MODES_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace sentry::crypto
{

/** 16-byte initialisation vector. */
using Iv = std::array<std::uint8_t, AES_BLOCK_SIZE>;

/** Abstract single-block cipher (always 16-byte blocks here). */
class BlockCipher
{
  public:
    virtual ~BlockCipher() = default;

    /** Encrypt one 16-byte block. */
    virtual void encryptBlock(const std::uint8_t in[16],
                              std::uint8_t out[16]) const = 0;

    /** Decrypt one 16-byte block. */
    virtual void decryptBlock(const std::uint8_t in[16],
                              std::uint8_t out[16]) const = 0;
};

class Aes;

/** BlockCipher adapter over the generic T-table AES. */
class AesBlockCipher : public BlockCipher
{
  public:
    /** @param aes cipher to adapt; must outlive this adapter. */
    explicit AesBlockCipher(const Aes &aes) : aes_(aes) {}

    void encryptBlock(const std::uint8_t in[16],
                      std::uint8_t out[16]) const override;
    void decryptBlock(const std::uint8_t in[16],
                      std::uint8_t out[16]) const override;

  private:
    const Aes &aes_;
};

/**
 * CBC-encrypt @p data in place. @p data.size() must be a multiple of 16.
 */
void cbcEncrypt(const BlockCipher &cipher, const Iv &iv,
                std::span<std::uint8_t> data);

/** CBC-decrypt @p data in place (multiple of 16 bytes). */
void cbcDecrypt(const BlockCipher &cipher, const Iv &iv,
                std::span<std::uint8_t> data);

/**
 * CTR-mode transform in place (encryption and decryption are identical).
 * Handles arbitrary lengths. The counter occupies the last 8 bytes of
 * the IV, big-endian.
 */
void ctrTransform(const BlockCipher &cipher, const Iv &iv,
                  std::span<std::uint8_t> data);

/** ECB-encrypt in place (multiple of 16 bytes). Test/analysis use only. */
void ecbEncrypt(const BlockCipher &cipher, std::span<std::uint8_t> data);

/** ECB-decrypt in place (multiple of 16 bytes). */
void ecbDecrypt(const BlockCipher &cipher, std::span<std::uint8_t> data);

/** Append PKCS#7 padding to @p data up to a 16-byte boundary. */
void pkcs7Pad(std::vector<std::uint8_t> &data);

/**
 * Validate and strip PKCS#7 padding.
 * @return true on well-formed padding, false otherwise (data untouched).
 */
bool pkcs7Unpad(std::vector<std::uint8_t> &data);

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_MODES_HH
