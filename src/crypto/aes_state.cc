#include "crypto/aes_state.hh"

#include "common/logging.hh"
#include "common/types.hh"
#include "crypto/aes.hh"

namespace sentry::crypto
{

const char *
sensitivityName(Sensitivity s)
{
    switch (s) {
      case Sensitivity::Secret:
        return "Secret";
      case Sensitivity::Public:
        return "Public";
      case Sensitivity::AccessProtected:
        return "Access-protected";
      default:
        return "?";
    }
}

AesStateLayout
AesStateLayout::forKeyBytes(unsigned key_bytes)
{
    if (key_bytes != 16 && key_bytes != 24 && key_bytes != 32)
        fatal("AES key length must be 16/24/32 bytes (got %u)", key_bytes);

    AesStateLayout layout;
    layout.keyBytes_ = key_bytes;
    const unsigned rounds = key_bytes / 4 + 6;
    const std::size_t scheduleBytes = 4u * (rounds + 1) * 4u;

    std::size_t offset = 0;
    auto push = [&](std::string name, std::size_t bytes, Sensitivity s) {
        // Components are cache-line aligned, as real AES builds align
        // their tables (and as the table-lookup side channel assumes).
        offset = alignUp(offset, CACHE_LINE_SIZE);
        layout.components_.push_back({std::move(name), offset, bytes, s});
        offset += bytes;
    };

    // Order mirrors Table 4. Sizes are what *this* implementation
    // actually allocates; EXPERIMENTS.md compares them against the
    // paper's OpenSSL accounting.
    push("Input block", AES_BLOCK_SIZE, Sensitivity::Secret);
    push("Key", key_bytes, Sensitivity::Secret);
    push("Round index", 1, Sensitivity::Public);
    push("Enc round keys", scheduleBytes, Sensitivity::Secret);
    push("Dec round keys", scheduleBytes, Sensitivity::Secret);
    push("Enc round tables (Te0-3)", 4 * 256 * 4,
         Sensitivity::AccessProtected);
    push("Dec round tables (Td0-3)", 4 * 256 * 4,
         Sensitivity::AccessProtected);
    push("S-box", 256, Sensitivity::AccessProtected);
    push("Inverse S-box", 256, Sensitivity::AccessProtected);
    push("Rcon", AES_RCON_WORDS * 4, Sensitivity::AccessProtected);
    push("Block index", 1, Sensitivity::Public);
    push("CBC block/ivec", AES_BLOCK_SIZE, Sensitivity::Public);

    layout.totalBytes_ = offset;
    return layout;
}

const AesStateComponent &
AesStateLayout::find(const std::string &name) const
{
    for (const auto &c : components_) {
        if (c.name == name)
            return c;
    }
    fatal("AesStateLayout: no component named \"%s\"", name.c_str());
}

std::size_t
AesStateLayout::bytesOf(Sensitivity s) const
{
    std::size_t total = 0;
    for (const auto &c : components_) {
        if (c.sensitivity == s)
            total += c.bytes;
    }
    return total;
}

std::size_t
AesStateLayout::protectedBytes() const
{
    return bytesOf(Sensitivity::Secret) +
           bytesOf(Sensitivity::AccessProtected);
}

} // namespace sentry::crypto
