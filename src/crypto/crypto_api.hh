/**
 * @file
 * Linux-Crypto-API-style algorithm registry.
 *
 * Implementations register under an algorithm name with a priority; a
 * lookup returns a cipher from the highest-priority implementation.
 * Sentry registers AES On SoC with a higher priority than the generic
 * kernel AES, so legacy consumers (dm-crypt) transparently pick it up —
 * exactly the paper's integration path (section 7, "Securing Persistent
 * State").
 */

#ifndef SENTRY_CRYPTO_CRYPTO_API_HH
#define SENTRY_CRYPTO_CRYPTO_API_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/aes_on_soc.hh"

namespace sentry::crypto
{

/** A registered cipher implementation. */
struct CipherImplementation
{
    std::string algorithm; //!< e.g. "aes"
    std::string implName;  //!< e.g. "aes-generic", "aes-onsoc-iram"
    int priority;          //!< higher wins
    /** Allocate an engine keyed with @p key. */
    std::function<std::unique_ptr<SimAesEngine>(
        std::span<const std::uint8_t> key)>
        factory;
};

/** The algorithm registry. */
class CryptoApi
{
  public:
    /** Register an implementation (duplicate implNames are rejected). */
    void registerImplementation(CipherImplementation impl);

    /** Remove an implementation by name. @return true if found. */
    bool unregisterImplementation(const std::string &impl_name);

    /**
     * @return the highest-priority implementation of @p algorithm, or
     *         nullptr when none is registered.
     */
    const CipherImplementation *lookup(const std::string &algorithm) const;

    /**
     * Allocate a keyed cipher from the best implementation of
     * @p algorithm; fatal when the algorithm is unknown.
     */
    std::unique_ptr<SimAesEngine>
    allocCipher(const std::string &algorithm,
                std::span<const std::uint8_t> key) const;

    /** @return all registrations (diagnostics). */
    const std::vector<CipherImplementation> &implementations() const
    {
        return impls_;
    }

  private:
    std::vector<CipherImplementation> impls_;
};

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_CRYPTO_API_HH
