#include "crypto/aes_on_soc.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "crypto/aes_round.hh"

namespace sentry::crypto
{

namespace
{

/** Host-side block cipher over an expanded schedule (CPU-register/L1
 *  computation for the bulk paths). */
class ScheduleCipher : public BlockCipher
{
  public:
    explicit ScheduleCipher(const AesKeySchedule &schedule)
        : schedule_(schedule)
    {}

    void
    encryptBlock(const std::uint8_t in[16],
                 std::uint8_t out[16]) const override
    {
        NativeAesEnv env(schedule_);
        aesEncryptBlock(env, in, out);
    }

    void
    decryptBlock(const std::uint8_t in[16],
                 std::uint8_t out[16]) const override
    {
        NativeAesEnv env(schedule_);
        aesDecryptBlock(env, in, out);
    }

  private:
    const AesKeySchedule &schedule_;
};

} // namespace

const char *
statePlacementName(StatePlacement placement)
{
    switch (placement) {
      case StatePlacement::Dram:
        return "dram";
      case StatePlacement::Iram:
        return "iram";
      case StatePlacement::LockedL2:
        return "locked-l2";
      default:
        return "?";
    }
}

/**
 * Audited environment: every lookup is one simulated memory access at
 * the component's true physical location.
 */
class SimAesEngine::SimEnv
{
  public:
    explicit SimEnv(const SimAesEngine &engine)
        : mem_(engine.soc_.memory()), engine_(engine)
    {}

    std::uint32_t
    te(unsigned t, std::uint8_t i) const
    {
        return mem_.read32(engine_.teOff_ + (t * 256 + i) * 4);
    }

    std::uint32_t
    td(unsigned t, std::uint8_t i) const
    {
        return mem_.read32(engine_.tdOff_ + (t * 256 + i) * 4);
    }

    std::uint8_t
    sbox(std::uint8_t i) const
    {
        std::uint8_t b;
        mem_.read(engine_.sboxOff_ + i, &b, 1);
        return b;
    }

    std::uint8_t
    invSbox(std::uint8_t i) const
    {
        std::uint8_t b;
        mem_.read(engine_.invSboxOff_ + i, &b, 1);
        return b;
    }

    std::uint32_t
    encKey(unsigned i) const
    {
        if (engine_.secrets_ == SecretResidency::RegistersOnly)
            return engine_.schedule_.encWords()[i]; // register read
        return mem_.read32(engine_.encKeysOff_ + 4 * i);
    }

    std::uint32_t
    decKey(unsigned i) const
    {
        if (engine_.secrets_ == SecretResidency::RegistersOnly)
            return engine_.schedule_.decWords()[i]; // register read
        return mem_.read32(engine_.decKeysOff_ + 4 * i);
    }

    unsigned rounds() const { return engine_.schedule_.rounds(); }

  private:
    hw::MemorySystem &mem_;
    const SimAesEngine &engine_;
};

SimAesEngine::SimAesEngine(hw::Soc &soc, PhysAddr state_base,
                           std::span<const std::uint8_t> key,
                           StatePlacement placement, bool kernel_path,
                           SecretResidency secrets)
    : soc_(soc), stateBase_(state_base), placement_(placement),
      kernelPath_(kernel_path), secrets_(secrets),
      layout_(AesStateLayout::forKeyBytes(
          static_cast<unsigned>(key.size()))),
      schedule_(key)
{
    inputOff_ = stateBase_ + layout_.find("Input block").offset;
    keyOff_ = stateBase_ + layout_.find("Key").offset;
    encKeysOff_ = stateBase_ + layout_.find("Enc round keys").offset;
    decKeysOff_ = stateBase_ + layout_.find("Dec round keys").offset;
    teOff_ = stateBase_ + layout_.find("Enc round tables (Te0-3)").offset;
    tdOff_ = stateBase_ + layout_.find("Dec round tables (Td0-3)").offset;
    sboxOff_ = stateBase_ + layout_.find("S-box").offset;
    invSboxOff_ = stateBase_ + layout_.find("Inverse S-box").offset;
    rconOff_ = stateBase_ + layout_.find("Rcon").offset;
    ivecOff_ = stateBase_ + layout_.find("CBC block/ivec").offset;

    materialiseState(key);
}

void
SimAesEngine::materialiseState(std::span<const std::uint8_t> key)
{
    hw::MemorySystem &mem = soc_.memory();
    const AesTables &tables = aesTables();

    auto writeWords = [&](PhysAddr base, std::span<const std::uint32_t> w) {
        for (std::size_t i = 0; i < w.size(); ++i)
            mem.write32(base + 4 * i, w[i]);
    };

    // RegistersOnly (TRESOR-style): the key and schedule exist only in
    // the host-side mirror modelling CPU registers; nothing secret is
    // ever written to the memory system.
    if (secrets_ == SecretResidency::OnRegion) {
        mem.write(keyOff_, key.data(), key.size());
        writeWords(encKeysOff_, schedule_.encWords());
        writeWords(decKeysOff_, schedule_.decWords());
    }

    for (unsigned t = 0; t < 4; ++t) {
        writeWords(teOff_ + t * 256 * 4, {tables.te[t], 256});
        writeWords(tdOff_ + t * 256 * 4, {tables.td[t], 256});
    }
    mem.write(sboxOff_, tables.sbox, 256);
    mem.write(invSboxOff_, tables.invSbox, 256);
    writeWords(rconOff_, {tables.rcon, AES_RCON_WORDS});
}

void
SimAesEngine::touchRegistersWithSecrets() const
{
    // Model what real crypto code does: live round-key words and the
    // working block sit in CPU registers during computation.
    const auto words = schedule_.encWords();
    soc_.cpu().loadRegisters(words.subspan(0, std::min<std::size_t>(
                                                  8, words.size())));
}

void
SimAesEngine::encryptBlock(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    hw::MemorySystem &mem = soc_.memory();

    touchRegistersWithSecrets();
    if (onSoc()) {
        hw::OnSocIrqGuard guard(soc_.cpu());
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesEncryptBlock(env, block, out);
    } else {
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesEncryptBlock(env, block, out);
        soc_.cpu().pollPreemption();
    }
}

void
SimAesEngine::decryptBlock(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    hw::MemorySystem &mem = soc_.memory();

    touchRegistersWithSecrets();
    if (onSoc()) {
        hw::OnSocIrqGuard guard(soc_.cpu());
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesDecryptBlock(env, block, out);
    } else {
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesDecryptBlock(env, block, out);
        soc_.cpu().pollPreemption();
    }
}

void
SimAesEngine::chargeBulk(std::size_t bytes)
{
    const hw::CpuCost &cost = soc_.config().cost;
    double cpb = kernelPath_ ? cost.aesCyclesPerByteKernel
                             : cost.aesCyclesPerByteUser;
    if (onSoc())
        cpb *= cost.aesOnSocFactor;
    soc_.clock().advance(static_cast<Cycles>(
        cpb * static_cast<double>(bytes) / chargeDivisor_));

    const hw::EnergyParams &ep = soc_.energy().params();
    double perByte = ep.cpuAesPerByte;
    if (kernelPath_)
        perByte += ep.kernelAesExtraPerByte;
    soc_.energy().charge(hw::EnergyCategory::CpuAes,
                         perByte * static_cast<double>(bytes));
    bytesProcessed_ += bytes;
}

namespace
{
/** Interrupts are masked for at most one chunk of crypto at a time
 *  (the paper's ~160 us irq-off window on the Tegra 3). */
constexpr std::size_t GUARD_CHUNK = 2 * KiB;
} // namespace

void
SimAesEngine::cbcEncrypt(const Iv &iv, std::span<std::uint8_t> data)
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcEncrypt requires a multiple of 16 bytes");
    touchRegistersWithSecrets();
    // The CBC chaining block is public state kept in the region.
    soc_.memory().write(ivecOff_, iv.data(), iv.size());

    ScheduleCipher cipher(schedule_);
    Iv chain = iv;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n =
            std::min(GUARD_CHUNK, data.size() - off);
        const auto chunk = data.subspan(off, n);
        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            crypto::cbcEncrypt(cipher, chain, chunk);
            chargeBulk(n);
        } else {
            crypto::cbcEncrypt(cipher, chain, chunk);
            chargeBulk(n);
            soc_.cpu().pollPreemption();
        }
        std::memcpy(chain.data(), chunk.data() + n - AES_BLOCK_SIZE,
                    AES_BLOCK_SIZE);
        off += n;
    }
}

void
SimAesEngine::cbcDecrypt(const Iv &iv, std::span<std::uint8_t> data)
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcDecrypt requires a multiple of 16 bytes");
    touchRegistersWithSecrets();
    soc_.memory().write(ivecOff_, iv.data(), iv.size());

    ScheduleCipher cipher(schedule_);
    Iv chain = iv;
    Iv nextChain;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n =
            std::min(GUARD_CHUNK, data.size() - off);
        const auto chunk = data.subspan(off, n);
        // Capture the chaining ciphertext before decrypting in place.
        std::memcpy(nextChain.data(),
                    chunk.data() + n - AES_BLOCK_SIZE, AES_BLOCK_SIZE);
        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            crypto::cbcDecrypt(cipher, chain, chunk);
            chargeBulk(n);
        } else {
            crypto::cbcDecrypt(cipher, chain, chunk);
            chargeBulk(n);
            soc_.cpu().pollPreemption();
        }
        chain = nextChain;
        off += n;
    }
}

void
SimAesEngine::cbcEncryptPhys(PhysAddr addr, std::size_t len, const Iv &iv)
{
    if (len % AES_BLOCK_SIZE != 0)
        fatal("cbcEncryptPhys requires a multiple of 16 bytes");
    std::vector<std::uint8_t> staging(len);
    soc_.memory().read(addr, staging.data(), len);
    cbcEncrypt(iv, staging);
    soc_.memory().write(addr, staging.data(), len);
}

void
SimAesEngine::cbcDecryptPhys(PhysAddr addr, std::size_t len, const Iv &iv)
{
    if (len % AES_BLOCK_SIZE != 0)
        fatal("cbcDecryptPhys requires a multiple of 16 bytes");
    std::vector<std::uint8_t> staging(len);
    soc_.memory().read(addr, staging.data(), len);
    cbcDecrypt(iv, staging);
    soc_.memory().write(addr, staging.data(), len);
}

void
SimAesEngine::setChargeDivisor(double divisor)
{
    if (divisor < 1.0)
        fatal("charge divisor must be >= 1 (got %f)", divisor);
    chargeDivisor_ = divisor;
}

void
SimAesEngine::scrub()
{
    // Paper protocol: write 0xFF over all sensitive data, then drop the
    // host mirror too.
    hw::MemorySystem &mem = soc_.memory();
    for (const auto &c : layout_.components()) {
        if (c.sensitivity != Sensitivity::Public)
            mem.fill(stateBase_ + c.offset, 0xff, c.bytes);
    }
    schedule_.scrub();
    scrubbed_ = true;
}

} // namespace sentry::crypto
