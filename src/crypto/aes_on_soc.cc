#include "crypto/aes_on_soc.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "crypto/aes_round.hh"
#include "host/kernels.hh"

namespace sentry::crypto
{

namespace
{

/** Host-side block cipher over an expanded schedule, routed through the
 *  runtime-dispatched kernel registry (AES-NI / ARMv8-CE / portable). */
class ScheduleCipher : public BlockCipher
{
  public:
    explicit ScheduleCipher(const AesKeySchedule &schedule)
        : schedule_(schedule)
    {}

    void
    encryptBlock(const std::uint8_t in[16],
                 std::uint8_t out[16]) const override
    {
        host::kernels().aes.encryptBlock(schedule_, in, out);
    }

    void
    decryptBlock(const std::uint8_t in[16],
                 std::uint8_t out[16]) const override
    {
        host::kernels().aes.decryptBlock(schedule_, in, out);
    }

  private:
    const AesKeySchedule &schedule_;
};

} // namespace

HostAesCbc::HostAesCbc(const AesKeySchedule &schedule) : schedule_(schedule)
{
    // Force the one-time T-table initialisation on this thread so
    // worker threads only ever read the tables (the portable kernel
    // tier, and the verification pass of an accelerated tier, use them).
    aesTables();
}

void
HostAesCbc::cbcEncrypt(const Iv &iv, std::span<std::uint8_t> data) const
{
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcEncrypt requires a multiple of 16 bytes");
    host::kernels().aes.cbcEncrypt(schedule_, iv.data(), data.data(),
                                   data.size());
}

void
HostAesCbc::cbcDecrypt(const Iv &iv, std::span<std::uint8_t> data) const
{
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcDecrypt requires a multiple of 16 bytes");
    host::kernels().aes.cbcDecrypt(schedule_, iv.data(), data.data(),
                                   data.size());
}

ScopedChargeDivisor::ScopedChargeDivisor(SimAesEngine &engine, double divisor)
    : engine_(engine), previous_(engine.chargeDivisor())
{
    engine_.setChargeDivisor(divisor);
}

ScopedChargeDivisor::~ScopedChargeDivisor()
{
    engine_.setChargeDivisor(previous_);
}

const char *
statePlacementName(StatePlacement placement)
{
    switch (placement) {
      case StatePlacement::Dram:
        return "dram";
      case StatePlacement::Iram:
        return "iram";
      case StatePlacement::LockedL2:
        return "locked-l2";
      default:
        return "?";
    }
}

/**
 * Audited environment: every lookup is one simulated memory access at
 * the component's true physical location.
 */
class SimAesEngine::SimEnv
{
  public:
    explicit SimEnv(const SimAesEngine &engine)
        : mem_(engine.soc_.memory()), engine_(engine)
    {}

    std::uint32_t
    te(unsigned t, std::uint8_t i) const
    {
        return mem_.read32(engine_.teOff_ + (t * 256 + i) * 4);
    }

    std::uint32_t
    td(unsigned t, std::uint8_t i) const
    {
        return mem_.read32(engine_.tdOff_ + (t * 256 + i) * 4);
    }

    std::uint8_t
    sbox(std::uint8_t i) const
    {
        std::uint8_t b;
        mem_.read(engine_.sboxOff_ + i, &b, 1);
        return b;
    }

    std::uint8_t
    invSbox(std::uint8_t i) const
    {
        std::uint8_t b;
        mem_.read(engine_.invSboxOff_ + i, &b, 1);
        return b;
    }

    std::uint32_t
    encKey(unsigned i) const
    {
        if (engine_.secrets_ == SecretResidency::RegistersOnly)
            return engine_.schedule_.encWords()[i]; // register read
        return mem_.read32(engine_.encKeysOff_ + 4 * i);
    }

    std::uint32_t
    decKey(unsigned i) const
    {
        if (engine_.secrets_ == SecretResidency::RegistersOnly)
            return engine_.schedule_.decWords()[i]; // register read
        return mem_.read32(engine_.decKeysOff_ + 4 * i);
    }

    unsigned rounds() const { return engine_.schedule_.rounds(); }

  private:
    hw::MemorySystem &mem_;
    const SimAesEngine &engine_;
};

/**
 * Audited *fast* environment: same per-lookup semantics as SimEnv, but
 * the state region's cache lines are resolved once and replayed.
 *
 * Invariant: a lookup takes the fast route only when its line is
 * provably resident (one tag compare against the live line array), in
 * which case the reference path would have scored a charged L2 hit with
 * no bus traffic and no state change beyond the counters. Everything
 * else — first touches, evictions by interleaved traffic, the
 * all-ways-locked uncached fallback — drops to the regular
 * MemorySystem path, which is the reference path. Clock and stats
 * charges for fast hits are accumulated and flushed at transaction
 * boundaries (before any slow access and at every block boundary), so
 * every observable point sees identical totals.
 */
class SimAesEngine::FastEnv
{
  public:
    explicit FastEnv(const SimAesEngine &engine)
        : engine_(engine), mem_(engine.soc_.memory()),
          l2_(engine.soc_.l2()), clock_(engine.soc_.clock()),
          iram_(engine.placement_ == StatePlacement::Iram),
          registersOnly_(engine.secrets_ == SecretResidency::RegistersOnly),
          iramCycles_(engine.soc_.config().timing.iramAccessCycles),
          regionBase_(alignDown(engine.stateBase_, CACHE_LINE_SIZE)),
          teOff_(engine.teOff_), tdOff_(engine.tdOff_),
          sboxOff_(engine.sboxOff_), invSboxOff_(engine.invSboxOff_),
          encKeysOff_(engine.encKeysOff_), decKeysOff_(engine.decKeysOff_)
    {
        const PhysAddr end =
            engine.stateBase_ + engine.layout_.totalBytes();
        nlines_ = static_cast<std::size_t>(
            (alignDown(end - 1, CACHE_LINE_SIZE) + CACHE_LINE_SIZE -
             regionBase_) /
            CACHE_LINE_SIZE);
        entries_.assign(nlines_, Entry{});
        if (iram_)
            iramData_ = engine.soc_.iram().raw().data();
    }

    // --- state-access interface for the round engine ----------------

    std::uint32_t
    te(unsigned t, std::uint8_t i)
    {
        return read32(teOff_ + (t * 256 + i) * 4);
    }

    std::uint32_t
    td(unsigned t, std::uint8_t i)
    {
        return read32(tdOff_ + (t * 256 + i) * 4);
    }

    std::uint8_t
    sbox(std::uint8_t i)
    {
        std::uint8_t b;
        read(sboxOff_ + i, &b, 1);
        return b;
    }

    std::uint8_t
    invSbox(std::uint8_t i)
    {
        std::uint8_t b;
        read(invSboxOff_ + i, &b, 1);
        return b;
    }

    std::uint32_t
    encKey(unsigned i)
    {
        if (registersOnly_)
            return engine_.schedule_.encWords()[i]; // register read
        return read32(encKeysOff_ + 4 * i);
    }

    std::uint32_t
    decKey(unsigned i)
    {
        if (registersOnly_)
            return engine_.schedule_.decWords()[i]; // register read
        return read32(decKeysOff_ + 4 * i);
    }

    unsigned rounds() const { return engine_.schedule_.rounds(); }

    // --- audited chunked read/write ---------------------------------

    std::uint32_t
    read32(PhysAddr addr)
    {
        // Hot path, inlined: an aligned word in an already-resolved,
        // still-resident line. Everything else drops to fastReadPtr /
        // the reference path.
        if (!iram_) {
            const std::size_t off =
                static_cast<std::size_t>(addr - regionBase_);
            const std::size_t li = off / CACHE_LINE_SIZE;
            const std::size_t inLine = off % CACHE_LINE_SIZE;
            if (li < nlines_ && inLine <= CACHE_LINE_SIZE - 4) {
                const Entry &e = entries_[li];
                if (e.resolved && e.id.line->valid &&
                    e.id.line->tag == e.id.tag) {
                    ++pendingHits_;
                    ++audited_;
                    std::uint32_t v;
                    std::memcpy(&v, e.payload + inLine, 4);
                    return v;
                }
            }
        }
        const std::uint8_t *p = fastReadPtr(addr, 4);
        if (p != nullptr) {
            std::uint32_t v;
            std::memcpy(&v, p, 4);
            return v;
        }
        slowCharge(addr, 4);
        return mem_.read32(addr);
    }

    void
    read(PhysAddr addr, std::uint8_t *dst, std::size_t len)
    {
        while (len > 0) {
            const std::size_t chunk = lineChunk(addr, len);
            const std::uint8_t *p = fastReadPtr(addr, chunk);
            if (p != nullptr) {
                std::memcpy(dst, p, chunk);
            } else {
                slowCharge(addr, chunk);
                mem_.read(addr, dst, chunk);
            }
            addr += chunk;
            dst += chunk;
            len -= chunk;
        }
    }

    void
    write(PhysAddr addr, const std::uint8_t *src, std::size_t len)
    {
        while (len > 0) {
            const std::size_t chunk = lineChunk(addr, len);
            std::uint8_t *p = fastWritePtr(addr, chunk);
            if (p != nullptr) {
                std::memcpy(p, src, chunk);
            } else {
                slowCharge(addr, chunk);
                mem_.write(addr, src, chunk);
            }
            addr += chunk;
            src += chunk;
            len -= chunk;
        }
    }

    /** Flush accumulated fast-hit charges (a transaction boundary). */
    void
    flush()
    {
        if (pendingHits_ > 0) {
            l2_.chargeHits(pendingHits_);
            pendingHits_ = 0;
        }
        if (pendingIram_ > 0) {
            clock_.advance(pendingIram_ * iramCycles_);
            pendingIram_ = 0;
        }
    }

    /** @return total audited accesses issued (fast + slow chunks). */
    std::uint64_t audited() const { return audited_; }

    /** @return total slow-path chunks issued. */
    std::uint64_t slowCount() const { return slow_; }

    /** @return true when the engine state lives in iRAM. */
    bool isIram() const { return iram_; }

    // --- native block tier -------------------------------------------
    //
    // When the entire lookup working set of one direction (round
    // tables, S-box, and — for OnRegion secrets — the round keys) is
    // resident with byte-for-byte canonical content, every lookup of a
    // block is guaranteed to be a charged L2 hit returning exactly the
    // canonical value. The block can then run through the host cipher
    // and charge the measured per-block lookup count in one batch —
    // same ciphertext, same counters, same clock. Residency can only
    // be lost to an eviction, and an eviction is always paired with a
    // line fill, so readiness re-verifies whenever the fill counter
    // moves. iRAM state verifies against the iRAM array instead; there
    // is no residency question.

    /** Per-call entry point: (re)verify the lookup working set. */
    void
    beginCall(bool encrypt)
    {
        nativeOk_ = verifyLookupState(encrypt);
        fillsSeen_ = l2_.stats().fills;
    }

    /** @return true when the next block may run on the host cipher. */
    bool
    nativeReady(bool encrypt)
    {
        if ((encrypt ? lookupsEnc_ : lookupsDec_) == 0)
            return false; // per-block lookup count not yet measured
        if (!iram_) {
            const std::uint64_t fills = l2_.stats().fills;
            if (fills != fillsSeen_) {
                nativeOk_ = verifyLookupState(encrypt);
                fillsSeen_ = fills;
            }
        }
        return nativeOk_;
    }

    /** Account one native block's lookups (flushed with the rest). */
    void
    chargeNativeLookups(bool encrypt)
    {
        const std::uint64_t n = encrypt ? lookupsEnc_ : lookupsDec_;
        audited_ += n;
        if (iram_)
            pendingIram_ += n;
        else
            pendingHits_ += n;
    }

    /**
     * Record a fully-audited block's lookup count. Only an all-fast
     * block is usable as the reference: a slow chunk means part of the
     * working set was charged differently. The count itself is
     * data-independent (fixed by the round structure), so one clean
     * measurement holds for every later block.
     */
    void
    noteMeasuredBlock(bool encrypt, std::uint64_t lookups, bool all_fast)
    {
        if (all_fast)
            (encrypt ? lookupsEnc_ : lookupsDec_) = lookups;
    }

  private:
    struct Entry
    {
        const std::uint8_t *payload = nullptr; //!< line-aligned
        hw::L2LineId id;
        bool resolved = false;
    };

    /** Largest chunk of [addr, addr+len) inside addr's cache line. */
    static std::size_t
    lineChunk(PhysAddr addr, std::size_t len)
    {
        const PhysAddr lineEnd =
            alignDown(addr, CACHE_LINE_SIZE) + CACHE_LINE_SIZE;
        return std::min<std::size_t>(len, lineEnd - addr);
    }

    /** Account the slow-path chunks MemorySystem will issue for
     *  [addr, addr+len) and flush so the reference path's clock/stat
     *  ordering around misses is preserved exactly. */
    void
    slowCharge(PhysAddr addr, std::size_t len)
    {
        while (len > 0) {
            const std::size_t chunk = lineChunk(addr, len);
            ++audited_;
            ++slow_;
            addr += chunk;
            len -= chunk;
        }
        flush();
    }

    /** @return true when every byte of [addr, addr+len) is servable
     *  from resident lines (or iRAM) and equals @p ref. */
    bool
    contentMatches(PhysAddr addr, const void *ref, std::size_t len)
    {
        const std::uint8_t *r = static_cast<const std::uint8_t *>(ref);
        if (iram_)
            return std::memcmp(iramData_ + (addr - IRAM_BASE), r, len) == 0;
        while (len > 0) {
            const std::size_t chunk = lineChunk(addr, len);
            Entry *e = entryFor(addr, chunk);
            if (e == nullptr)
                return false;
            if (!e->resolved || !l2_.lineResident(e->id)) {
                const std::uint8_t *p = l2_.probeLine(addr, e->id);
                if (p == nullptr)
                    return false; // not resident
                e->payload = p;
                e->resolved = true;
            }
            if (std::memcmp(e->payload + addr % CACHE_LINE_SIZE, r, chunk) !=
                0)
                return false;
            addr += chunk;
            r += chunk;
            len -= chunk;
        }
        return true;
    }

    /** Verify one direction's whole lookup working set. Byte layout in
     *  the region is host representation (MemorySystem::write32 stores
     *  words verbatim), so canonical tables compare directly. */
    bool
    verifyLookupState(bool encrypt)
    {
        const AesTables &t = aesTables();
        if (encrypt) {
            for (unsigned k = 0; k < 4; ++k)
                if (!contentMatches(teOff_ + k * 256 * 4, t.te[k], 256 * 4))
                    return false;
            if (!contentMatches(sboxOff_, t.sbox, 256))
                return false;
            if (!registersOnly_) {
                const auto w = engine_.schedule_.encWords();
                if (!contentMatches(encKeysOff_, w.data(), 4 * w.size()))
                    return false;
            }
        } else {
            for (unsigned k = 0; k < 4; ++k)
                if (!contentMatches(tdOff_ + k * 256 * 4, t.td[k], 256 * 4))
                    return false;
            if (!contentMatches(invSboxOff_, t.invSbox, 256))
                return false;
            if (!registersOnly_) {
                const auto w = engine_.schedule_.decWords();
                if (!contentMatches(decKeysOff_, w.data(), 4 * w.size()))
                    return false;
            }
        }
        return true;
    }

    Entry *
    entryFor(PhysAddr addr, std::size_t len)
    {
        if (addr % CACHE_LINE_SIZE + len > CACHE_LINE_SIZE)
            return nullptr; // straddles: let MemorySystem split it
        const std::size_t li =
            static_cast<std::size_t>((addr - regionBase_) /
                                     CACHE_LINE_SIZE);
        if (li >= entries_.size())
            return nullptr; // outside the mapped state region
        return &entries_[li];
    }

    const std::uint8_t *
    fastReadPtr(PhysAddr addr, std::size_t len)
    {
        if (iram_) {
            ++pendingIram_;
            ++audited_;
            return iramData_ + (addr - IRAM_BASE);
        }
        Entry *e = entryFor(addr, len);
        if (e == nullptr)
            return nullptr;
        if (!e->resolved || !l2_.lineResident(e->id)) {
            const std::uint8_t *p = l2_.probeLine(addr, e->id);
            if (p == nullptr)
                return nullptr; // not resident: regular path
            e->payload = p;
            e->resolved = true;
        }
        ++pendingHits_;
        ++audited_;
        return e->payload + addr % CACHE_LINE_SIZE;
    }

    std::uint8_t *
    fastWritePtr(PhysAddr addr, std::size_t len)
    {
        if (iram_) {
            ++pendingIram_;
            ++audited_;
            return iramData_ + (addr - IRAM_BASE);
        }
        Entry *e = entryFor(addr, len);
        if (e == nullptr)
            return nullptr;
        if (!e->resolved || !l2_.lineResident(e->id)) {
            const std::uint8_t *p = l2_.probeLine(addr, e->id);
            if (p == nullptr)
                return nullptr;
            e->payload = p;
            e->resolved = true;
        }
        ++pendingHits_;
        ++audited_;
        // Marks the line dirty, exactly as a write() hit would.
        return l2_.linePayloadForWrite(e->id) + addr % CACHE_LINE_SIZE;
    }

    const SimAesEngine &engine_;
    hw::MemorySystem &mem_;
    hw::L2Cache &l2_;
    SimClock &clock_;
    const bool iram_;
    const bool registersOnly_;
    const Cycles iramCycles_;
    const PhysAddr regionBase_;
    // Component offsets mirrored from the engine so the per-lookup hot
    // path needs no second object's cache lines.
    const PhysAddr teOff_, tdOff_, sboxOff_, invSboxOff_, encKeysOff_,
        decKeysOff_;
    std::uint8_t *iramData_ = nullptr;
    std::vector<Entry> entries_;
    std::size_t nlines_ = 0;
    std::uint64_t pendingHits_ = 0;
    std::uint64_t pendingIram_ = 0;
    std::uint64_t audited_ = 0;
    std::uint64_t slow_ = 0;
    // Native-tier state (see the comment block above).
    bool nativeOk_ = false;
    std::uint64_t fillsSeen_ = 0;
    std::uint64_t lookupsEnc_ = 0;
    std::uint64_t lookupsDec_ = 0;
};

SimAesEngine::~SimAesEngine() = default;

void
SimAesEngine::restoreForkState(const ForkState &fs)
{
    schedule_ = fs.schedule;
    bytesProcessed_ = fs.bytesProcessed;
    scrubbed_ = fs.scrubbed;
    chargeDivisor_ = fs.chargeDivisor;
    fastPath_ = fs.fastPath;
    fastEnv_.reset();
}

SimAesEngine::SimAesEngine(hw::Soc &soc, PhysAddr state_base,
                           std::span<const std::uint8_t> key,
                           StatePlacement placement, bool kernel_path,
                           SecretResidency secrets)
    : soc_(soc), stateBase_(state_base), placement_(placement),
      kernelPath_(kernel_path), secrets_(secrets),
      layout_(AesStateLayout::forKeyBytes(
          static_cast<unsigned>(key.size()))),
      schedule_(key)
{
    inputOff_ = stateBase_ + layout_.find("Input block").offset;
    keyOff_ = stateBase_ + layout_.find("Key").offset;
    encKeysOff_ = stateBase_ + layout_.find("Enc round keys").offset;
    decKeysOff_ = stateBase_ + layout_.find("Dec round keys").offset;
    teOff_ = stateBase_ + layout_.find("Enc round tables (Te0-3)").offset;
    tdOff_ = stateBase_ + layout_.find("Dec round tables (Td0-3)").offset;
    sboxOff_ = stateBase_ + layout_.find("S-box").offset;
    invSboxOff_ = stateBase_ + layout_.find("Inverse S-box").offset;
    rconOff_ = stateBase_ + layout_.find("Rcon").offset;
    ivecOff_ = stateBase_ + layout_.find("CBC block/ivec").offset;

    materialiseState(key);
}

void
SimAesEngine::materialiseState(std::span<const std::uint8_t> key)
{
    hw::MemorySystem &mem = soc_.memory();
    const AesTables &tables = aesTables();

    auto writeWords = [&](PhysAddr base, std::span<const std::uint32_t> w) {
        for (std::size_t i = 0; i < w.size(); ++i)
            mem.write32(base + 4 * i, w[i]);
    };

    // RegistersOnly (TRESOR-style): the key and schedule exist only in
    // the host-side mirror modelling CPU registers; nothing secret is
    // ever written to the memory system.
    if (secrets_ == SecretResidency::OnRegion) {
        mem.write(keyOff_, key.data(), key.size());
        writeWords(encKeysOff_, schedule_.encWords());
        writeWords(decKeysOff_, schedule_.decWords());
    }

    for (unsigned t = 0; t < 4; ++t) {
        writeWords(teOff_ + t * 256 * 4, {tables.te[t], 256});
        writeWords(tdOff_ + t * 256 * 4, {tables.td[t], 256});
    }
    mem.write(sboxOff_, tables.sbox, 256);
    mem.write(invSboxOff_, tables.invSbox, 256);
    writeWords(rconOff_, {tables.rcon, AES_RCON_WORDS});
}

void
SimAesEngine::touchRegistersWithSecrets() const
{
    // Model what real crypto code does: live round-key words and the
    // working block sit in CPU registers during computation.
    const auto words = schedule_.encWords();
    soc_.cpu().loadRegisters(words.subspan(0, std::min<std::size_t>(
                                                  8, words.size())));
}

void
SimAesEngine::encryptBlock(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    hw::MemorySystem &mem = soc_.memory();

    touchRegistersWithSecrets();
    if (onSoc()) {
        hw::OnSocIrqGuard guard(soc_.cpu());
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesEncryptBlock(env, block, out);
    } else {
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesEncryptBlock(env, block, out);
        soc_.cpu().pollPreemption();
    }
}

void
SimAesEngine::decryptBlock(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    hw::MemorySystem &mem = soc_.memory();

    touchRegistersWithSecrets();
    if (onSoc()) {
        hw::OnSocIrqGuard guard(soc_.cpu());
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesDecryptBlock(env, block, out);
    } else {
        mem.write(inputOff_, in, AES_BLOCK_SIZE);
        std::uint8_t block[AES_BLOCK_SIZE];
        mem.read(inputOff_, block, AES_BLOCK_SIZE);
        SimEnv env(*this);
        aesDecryptBlock(env, block, out);
        soc_.cpu().pollPreemption();
    }
}

void
SimAesEngine::encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                            std::size_t nblocks) const
{
    cryptBlocks(nullptr, in, out, nblocks, /*encrypt=*/true);
}

void
SimAesEngine::decryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                            std::size_t nblocks) const
{
    cryptBlocks(nullptr, in, out, nblocks, /*encrypt=*/false);
}

void
SimAesEngine::cryptBlocks(const Iv *cbc_iv, const std::uint8_t *in,
                          std::uint8_t *out, std::size_t nblocks,
                          bool encrypt) const
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");

    Iv chain{};
    if (cbc_iv != nullptr)
        chain = *cbc_iv;

    if (!fastPath_) {
        // Reference path: the audited per-block loop, with any CBC
        // chaining applied host-side around it.
        std::uint8_t x[AES_BLOCK_SIZE];
        for (std::size_t b = 0; b < nblocks; ++b) {
            const std::uint8_t *src = in + AES_BLOCK_SIZE * b;
            std::uint8_t *dst = out + AES_BLOCK_SIZE * b;
            if (cbc_iv == nullptr) {
                if (encrypt)
                    encryptBlock(src, dst);
                else
                    decryptBlock(src, dst);
            } else if (encrypt) {
                std::memcpy(x, src, AES_BLOCK_SIZE);
                host::xorBlock16(x, chain.data());
                encryptBlock(x, dst);
                std::memcpy(chain.data(), dst, AES_BLOCK_SIZE);
            } else {
                Iv next;
                std::memcpy(next.data(), src, AES_BLOCK_SIZE);
                decryptBlock(src, x);
                host::xorBlock16(x, chain.data());
                std::memcpy(dst, x, AES_BLOCK_SIZE);
                chain = next;
            }
        }
        return;
    }

    if (!fastEnv_)
        fastEnv_ = std::make_unique<FastEnv>(*this);
    FastEnv &env = *fastEnv_;
    env.beginCall(encrypt);
    ScheduleCipher native(schedule_);

    // Snapshot counters for the end-of-call accounting cross-check.
    const hw::L2Stats &l2stats = soc_.l2().stats();
    const std::uint64_t l2Before = l2stats.hits + l2stats.misses;
    const std::uint64_t issuedBefore = env.audited();
    const std::uint64_t spillsBefore = soc_.cpu().spillCount();

    std::uint8_t block[AES_BLOCK_SIZE];
    std::uint8_t x[AES_BLOCK_SIZE];
    Iv next{};
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *src = in + AES_BLOCK_SIZE * b;
        std::uint8_t *dst = out + AES_BLOCK_SIZE * b;
        if (cbc_iv != nullptr) {
            if (encrypt) {
                std::memcpy(x, src, AES_BLOCK_SIZE);
                host::xorBlock16(x, chain.data());
                src = x;
            } else {
                std::memcpy(next.data(), src, AES_BLOCK_SIZE);
            }
        }
        touchRegistersWithSecrets();

        const auto runCipher = [&] {
            env.write(inputOff_, src, AES_BLOCK_SIZE);
            env.read(inputOff_, block, AES_BLOCK_SIZE);
            if (env.nativeReady(encrypt)) {
                if (encrypt)
                    native.encryptBlock(block, dst);
                else
                    native.decryptBlock(block, dst);
                env.chargeNativeLookups(encrypt);
            } else {
                const std::uint64_t a0 = env.audited();
                const std::uint64_t s0 = env.slowCount();
                if (encrypt)
                    aesEncryptBlock(env, block, dst);
                else
                    aesDecryptBlock(env, block, dst);
                env.noteMeasuredBlock(encrypt, env.audited() - a0,
                                      env.slowCount() == s0);
            }
            env.flush(); // boundary: a guard exit reads the clock
        };

        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            runCipher();
        } else {
            runCipher();
            soc_.cpu().pollPreemption();
        }

        if (cbc_iv != nullptr) {
            if (encrypt) {
                std::memcpy(chain.data(), dst, AES_BLOCK_SIZE);
            } else {
                host::xorBlock16(dst, chain.data());
                chain = next;
            }
        }
    }

    // Fast-path invariant: every audited access is visible in the L2
    // hit/miss counters, one for one. Register spills from a delivered
    // preemption issue their own traffic, so only check when none
    // happened (and never for iRAM state, which bypasses the L2).
    if (!env.isIram() && soc_.cpu().spillCount() == spillsBefore) {
        const std::uint64_t issued = env.audited() - issuedBefore;
        const std::uint64_t counted =
            l2stats.hits + l2stats.misses - l2Before;
        if (issued != counted) {
            panic("audited fast path drift: issued %llu accesses, L2 "
                  "counted %llu",
                  static_cast<unsigned long long>(issued),
                  static_cast<unsigned long long>(counted));
        }
    }
}

void
SimAesEngine::cbcEncryptAudited(const Iv &iv,
                                std::span<std::uint8_t> data) const
{
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcEncryptAudited requires a multiple of 16 bytes");
    cryptBlocks(&iv, data.data(), data.data(),
                data.size() / AES_BLOCK_SIZE, /*encrypt=*/true);
}

void
SimAesEngine::cbcDecryptAudited(const Iv &iv,
                                std::span<std::uint8_t> data) const
{
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcDecryptAudited requires a multiple of 16 bytes");
    cryptBlocks(&iv, data.data(), data.data(),
                data.size() / AES_BLOCK_SIZE, /*encrypt=*/false);
}

void
SimAesEngine::chargeBulk(std::size_t bytes)
{
    const hw::CpuCost &cost = soc_.config().cost;
    double cpb = kernelPath_ ? cost.aesCyclesPerByteKernel
                             : cost.aesCyclesPerByteUser;
    if (onSoc())
        cpb *= cost.aesOnSocFactor;
    soc_.clock().advance(static_cast<Cycles>(
        cpb * static_cast<double>(bytes) / chargeDivisor_));

    const hw::EnergyParams &ep = soc_.energy().params();
    double perByte = ep.cpuAesPerByte;
    if (kernelPath_)
        perByte += ep.kernelAesExtraPerByte;
    soc_.energy().charge(hw::EnergyCategory::CpuAes,
                         perByte * static_cast<double>(bytes));
    bytesProcessed_ += bytes;
}

namespace
{
/** Interrupts are masked for at most one chunk of crypto at a time
 *  (the paper's ~160 us irq-off window on the Tegra 3). */
constexpr std::size_t GUARD_CHUNK = 2 * KiB;
} // namespace

void
SimAesEngine::cbcEncrypt(const Iv &iv, std::span<std::uint8_t> data)
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcEncrypt requires a multiple of 16 bytes");
    touchRegistersWithSecrets();
    // The CBC chaining block is public state kept in the region.
    soc_.memory().write(ivecOff_, iv.data(), iv.size());

    const host::AesKernel &aes = host::kernels().aes;
    Iv chain = iv;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n =
            std::min(GUARD_CHUNK, data.size() - off);
        const auto chunk = data.subspan(off, n);
        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            aes.cbcEncrypt(schedule_, chain.data(), chunk.data(), n);
            chargeBulk(n);
        } else {
            aes.cbcEncrypt(schedule_, chain.data(), chunk.data(), n);
            chargeBulk(n);
            soc_.cpu().pollPreemption();
        }
        std::memcpy(chain.data(), chunk.data() + n - AES_BLOCK_SIZE,
                    AES_BLOCK_SIZE);
        off += n;
    }
}

void
SimAesEngine::cbcDecrypt(const Iv &iv, std::span<std::uint8_t> data)
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    if (data.size() % AES_BLOCK_SIZE != 0)
        fatal("cbcDecrypt requires a multiple of 16 bytes");
    touchRegistersWithSecrets();
    soc_.memory().write(ivecOff_, iv.data(), iv.size());

    const host::AesKernel &aes = host::kernels().aes;
    Iv chain = iv;
    Iv nextChain;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n =
            std::min(GUARD_CHUNK, data.size() - off);
        const auto chunk = data.subspan(off, n);
        // Capture the chaining ciphertext before decrypting in place.
        std::memcpy(nextChain.data(),
                    chunk.data() + n - AES_BLOCK_SIZE, AES_BLOCK_SIZE);
        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            aes.cbcDecrypt(schedule_, chain.data(), chunk.data(), n);
            chargeBulk(n);
        } else {
            aes.cbcDecrypt(schedule_, chain.data(), chunk.data(), n);
            chargeBulk(n);
            soc_.cpu().pollPreemption();
        }
        chain = nextChain;
        off += n;
    }
}

void
SimAesEngine::cbcEncryptPhys(PhysAddr addr, std::size_t len, const Iv &iv)
{
    if (len % AES_BLOCK_SIZE != 0)
        fatal("cbcEncryptPhys requires a multiple of 16 bytes");
    std::vector<std::uint8_t> staging(len);
    soc_.memory().read(addr, staging.data(), len);
    cbcEncrypt(iv, staging);
    soc_.memory().write(addr, staging.data(), len);
}

void
SimAesEngine::cbcDecryptPhys(PhysAddr addr, std::size_t len, const Iv &iv)
{
    if (len % AES_BLOCK_SIZE != 0)
        fatal("cbcDecryptPhys requires a multiple of 16 bytes");
    std::vector<std::uint8_t> staging(len);
    soc_.memory().read(addr, staging.data(), len);
    cbcDecrypt(iv, staging);
    soc_.memory().write(addr, staging.data(), len);
}

void
SimAesEngine::chargeParallelBulk(const Iv &iv, std::size_t bytes,
                                 double workers)
{
    if (scrubbed_)
        panic("SimAesEngine used after scrub()");
    if (bytes % AES_BLOCK_SIZE != 0)
        fatal("chargeParallelBulk requires a multiple of 16 bytes");
    ScopedChargeDivisor scope(*this, workers);
    touchRegistersWithSecrets();
    soc_.memory().write(ivecOff_, iv.data(), iv.size());

    std::size_t off = 0;
    while (off < bytes) {
        const std::size_t n = std::min(GUARD_CHUNK, bytes - off);
        if (onSoc()) {
            hw::OnSocIrqGuard guard(soc_.cpu());
            chargeBulk(n);
        } else {
            chargeBulk(n);
            soc_.cpu().pollPreemption();
        }
        off += n;
    }
}

void
SimAesEngine::setChargeDivisor(double divisor)
{
    if (divisor < 1.0)
        fatal("charge divisor must be >= 1 (got %f)", divisor);
    chargeDivisor_ = divisor;
}

void
SimAesEngine::scrub()
{
    // Paper protocol: write 0xFF over all sensitive data, then drop the
    // host mirror too.
    hw::MemorySystem &mem = soc_.memory();
    for (const auto &c : layout_.components()) {
        if (c.sensitivity != Sensitivity::Public)
            mem.fill(stateBase_ + c.offset, 0xff, c.bytes);
    }
    schedule_.scrub();
    scrubbed_ = true;
}

} // namespace sentry::crypto
