/**
 * @file
 * SHA-256 (FIPS 180-4) and HMAC-SHA256, used by the key-derivation path
 * that turns {boot password, secure-fuse secret} into Sentry's persistent
 * root key (paper section 7, "Bootstrapping").
 */

#ifndef SENTRY_CRYPTO_SHA256_HH
#define SENTRY_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <span>

namespace sentry::crypto
{

/** A 32-byte SHA-256 digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p data. */
    void update(std::span<const std::uint8_t> data);

    /** Finalise and return the digest; the hasher is then reset. */
    Sha256Digest finish();

    /** One-shot convenience. */
    static Sha256Digest hash(std::span<const std::uint8_t> data);

  private:
    void processBlock(const std::uint8_t block[64]);

    std::uint32_t state_[8];
    std::uint64_t totalBytes_;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
};

/** HMAC-SHA256 per RFC 2104. */
Sha256Digest hmacSha256(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> message);

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_SHA256_HH
