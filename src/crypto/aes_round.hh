/**
 * @file
 * The AES round engine, parameterised over a state-access environment.
 *
 * Every table lookup and round-key fetch goes through an Env object. Two
 * environments exist in this codebase:
 *
 *   - NativeAesEnv (aes.hh): direct array access; used for key expansion,
 *     host-side validation, and as the computational core of fast paths.
 *   - SimAesEnv (aes_on_soc.hh): routes each access through the simulated
 *     memory system, so where the AES state physically lives (DRAM, iRAM,
 *     or a locked L2 way) determines what an attacker probing the memory
 *     bus can observe. This is the mechanism that makes the paper's
 *     "access-protected state" argument *testable* here.
 *
 * The engine implements the standard T-table formulation with the
 * equivalent inverse cipher for decryption (round keys pre-transformed
 * with InvMixColumns).
 */

#ifndef SENTRY_CRYPTO_AES_ROUND_HH
#define SENTRY_CRYPTO_AES_ROUND_HH

#include <cstdint>

namespace sentry::crypto
{

/** Load a big-endian 32-bit word from @p p. */
inline std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

/** Store @p w to @p p big-endian. */
inline void
storeBe32(std::uint8_t *p, std::uint32_t w)
{
    p[0] = static_cast<std::uint8_t>(w >> 24);
    p[1] = static_cast<std::uint8_t>(w >> 16);
    p[2] = static_cast<std::uint8_t>(w >> 8);
    p[3] = static_cast<std::uint8_t>(w);
}

/**
 * Encrypt one 16-byte block.
 *
 * @param env   state-access environment (tables + round keys)
 * @param in    16 bytes of plaintext
 * @param out   16 bytes of ciphertext (may alias @p in)
 */
template <typename Env>
void
aesEncryptBlock(Env &env, const std::uint8_t in[16], std::uint8_t out[16])
{
    const unsigned nr = env.rounds();

    std::uint32_t s0 = loadBe32(in) ^ env.encKey(0);
    std::uint32_t s1 = loadBe32(in + 4) ^ env.encKey(1);
    std::uint32_t s2 = loadBe32(in + 8) ^ env.encKey(2);
    std::uint32_t s3 = loadBe32(in + 12) ^ env.encKey(3);

    for (unsigned round = 1; round < nr; ++round) {
        const unsigned k = 4 * round;
        const std::uint32_t t0 =
            env.te(0, static_cast<std::uint8_t>(s0 >> 24)) ^
            env.te(1, static_cast<std::uint8_t>(s1 >> 16)) ^
            env.te(2, static_cast<std::uint8_t>(s2 >> 8)) ^
            env.te(3, static_cast<std::uint8_t>(s3)) ^ env.encKey(k);
        const std::uint32_t t1 =
            env.te(0, static_cast<std::uint8_t>(s1 >> 24)) ^
            env.te(1, static_cast<std::uint8_t>(s2 >> 16)) ^
            env.te(2, static_cast<std::uint8_t>(s3 >> 8)) ^
            env.te(3, static_cast<std::uint8_t>(s0)) ^ env.encKey(k + 1);
        const std::uint32_t t2 =
            env.te(0, static_cast<std::uint8_t>(s2 >> 24)) ^
            env.te(1, static_cast<std::uint8_t>(s3 >> 16)) ^
            env.te(2, static_cast<std::uint8_t>(s0 >> 8)) ^
            env.te(3, static_cast<std::uint8_t>(s1)) ^ env.encKey(k + 2);
        const std::uint32_t t3 =
            env.te(0, static_cast<std::uint8_t>(s3 >> 24)) ^
            env.te(1, static_cast<std::uint8_t>(s0 >> 16)) ^
            env.te(2, static_cast<std::uint8_t>(s1 >> 8)) ^
            env.te(3, static_cast<std::uint8_t>(s2)) ^ env.encKey(k + 3);
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    const unsigned k = 4 * nr;
    auto finalWord = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                         std::uint32_t d, unsigned ki) {
        const std::uint32_t w =
            (static_cast<std::uint32_t>(
                 env.sbox(static_cast<std::uint8_t>(a >> 24)))
             << 24) |
            (static_cast<std::uint32_t>(
                 env.sbox(static_cast<std::uint8_t>(b >> 16)))
             << 16) |
            (static_cast<std::uint32_t>(
                 env.sbox(static_cast<std::uint8_t>(c >> 8)))
             << 8) |
            static_cast<std::uint32_t>(
                env.sbox(static_cast<std::uint8_t>(d)));
        return w ^ env.encKey(ki);
    };
    storeBe32(out, finalWord(s0, s1, s2, s3, k));
    storeBe32(out + 4, finalWord(s1, s2, s3, s0, k + 1));
    storeBe32(out + 8, finalWord(s2, s3, s0, s1, k + 2));
    storeBe32(out + 12, finalWord(s3, s0, s1, s2, k + 3));
}

/**
 * Decrypt one 16-byte block using the equivalent inverse cipher.
 *
 * @param env   state-access environment; decKey() must return round keys
 *              already reordered and InvMixColumns-transformed
 * @param in    16 bytes of ciphertext
 * @param out   16 bytes of plaintext (may alias @p in)
 */
template <typename Env>
void
aesDecryptBlock(Env &env, const std::uint8_t in[16], std::uint8_t out[16])
{
    const unsigned nr = env.rounds();

    std::uint32_t s0 = loadBe32(in) ^ env.decKey(0);
    std::uint32_t s1 = loadBe32(in + 4) ^ env.decKey(1);
    std::uint32_t s2 = loadBe32(in + 8) ^ env.decKey(2);
    std::uint32_t s3 = loadBe32(in + 12) ^ env.decKey(3);

    for (unsigned round = 1; round < nr; ++round) {
        const unsigned k = 4 * round;
        const std::uint32_t t0 =
            env.td(0, static_cast<std::uint8_t>(s0 >> 24)) ^
            env.td(1, static_cast<std::uint8_t>(s3 >> 16)) ^
            env.td(2, static_cast<std::uint8_t>(s2 >> 8)) ^
            env.td(3, static_cast<std::uint8_t>(s1)) ^ env.decKey(k);
        const std::uint32_t t1 =
            env.td(0, static_cast<std::uint8_t>(s1 >> 24)) ^
            env.td(1, static_cast<std::uint8_t>(s0 >> 16)) ^
            env.td(2, static_cast<std::uint8_t>(s3 >> 8)) ^
            env.td(3, static_cast<std::uint8_t>(s2)) ^ env.decKey(k + 1);
        const std::uint32_t t2 =
            env.td(0, static_cast<std::uint8_t>(s2 >> 24)) ^
            env.td(1, static_cast<std::uint8_t>(s1 >> 16)) ^
            env.td(2, static_cast<std::uint8_t>(s0 >> 8)) ^
            env.td(3, static_cast<std::uint8_t>(s3)) ^ env.decKey(k + 2);
        const std::uint32_t t3 =
            env.td(0, static_cast<std::uint8_t>(s3 >> 24)) ^
            env.td(1, static_cast<std::uint8_t>(s2 >> 16)) ^
            env.td(2, static_cast<std::uint8_t>(s1 >> 8)) ^
            env.td(3, static_cast<std::uint8_t>(s0)) ^ env.decKey(k + 3);
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    const unsigned k = 4 * nr;
    auto finalWord = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                         std::uint32_t d, unsigned ki) {
        const std::uint32_t w =
            (static_cast<std::uint32_t>(
                 env.invSbox(static_cast<std::uint8_t>(a >> 24)))
             << 24) |
            (static_cast<std::uint32_t>(
                 env.invSbox(static_cast<std::uint8_t>(b >> 16)))
             << 16) |
            (static_cast<std::uint32_t>(
                 env.invSbox(static_cast<std::uint8_t>(c >> 8)))
             << 8) |
            static_cast<std::uint32_t>(
                env.invSbox(static_cast<std::uint8_t>(d)));
        return w ^ env.decKey(ki);
    };
    storeBe32(out, finalWord(s0, s3, s2, s1, k));
    storeBe32(out + 4, finalWord(s1, s0, s3, s2, k + 1));
    storeBe32(out + 8, finalWord(s2, s1, s0, s3, k + 2));
    storeBe32(out + 12, finalWord(s3, s2, s1, s0, k + 3));
}

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_AES_ROUND_HH
