#include "crypto/crypto_api.hh"

#include "common/logging.hh"

namespace sentry::crypto
{

void
CryptoApi::registerImplementation(CipherImplementation impl)
{
    for (const auto &existing : impls_) {
        if (existing.implName == impl.implName)
            fatal("crypto implementation \"%s\" already registered",
                  impl.implName.c_str());
    }
    impls_.push_back(std::move(impl));
}

bool
CryptoApi::unregisterImplementation(const std::string &impl_name)
{
    for (auto it = impls_.begin(); it != impls_.end(); ++it) {
        if (it->implName == impl_name) {
            impls_.erase(it);
            return true;
        }
    }
    return false;
}

const CipherImplementation *
CryptoApi::lookup(const std::string &algorithm) const
{
    const CipherImplementation *best = nullptr;
    for (const auto &impl : impls_) {
        if (impl.algorithm != algorithm)
            continue;
        if (best == nullptr || impl.priority > best->priority)
            best = &impl;
    }
    return best;
}

std::unique_ptr<SimAesEngine>
CryptoApi::allocCipher(const std::string &algorithm,
                       std::span<const std::uint8_t> key) const
{
    const CipherImplementation *impl = lookup(algorithm);
    if (impl == nullptr)
        fatal("no implementation registered for algorithm \"%s\"",
              algorithm.c_str());
    return impl->factory(key);
}

} // namespace sentry::crypto
