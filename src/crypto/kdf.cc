#include "crypto/kdf.hh"

#include <cstring>

#include "common/logging.hh"
#include "crypto/sha256.hh"

namespace sentry::crypto
{

std::vector<std::uint8_t>
pbkdf2Sha256(std::span<const std::uint8_t> password,
             std::span<const std::uint8_t> salt, unsigned iterations,
             std::size_t dkLen)
{
    if (iterations == 0)
        fatal("pbkdf2Sha256: iteration count must be positive");

    std::vector<std::uint8_t> derived;
    derived.reserve(dkLen);

    std::uint32_t blockIndex = 1;
    while (derived.size() < dkLen) {
        // U1 = HMAC(password, salt || INT_BE(blockIndex))
        std::vector<std::uint8_t> msg(salt.begin(), salt.end());
        msg.push_back(static_cast<std::uint8_t>(blockIndex >> 24));
        msg.push_back(static_cast<std::uint8_t>(blockIndex >> 16));
        msg.push_back(static_cast<std::uint8_t>(blockIndex >> 8));
        msg.push_back(static_cast<std::uint8_t>(blockIndex));

        Sha256Digest u = hmacSha256(password, msg);
        Sha256Digest t = u;
        for (unsigned iter = 1; iter < iterations; ++iter) {
            u = hmacSha256(password, {u.data(), u.size()});
            for (std::size_t i = 0; i < t.size(); ++i)
                t[i] ^= u[i];
        }

        const std::size_t take =
            std::min<std::size_t>(t.size(), dkLen - derived.size());
        derived.insert(derived.end(), t.begin(), t.begin() + take);
        ++blockIndex;
    }

    return derived;
}

std::vector<std::uint8_t>
derivePersistentKey(const std::string &password,
                    std::span<const std::uint8_t> fuse_secret)
{
    const std::span<const std::uint8_t> pw{
        reinterpret_cast<const std::uint8_t *>(password.data()),
        password.size()};
    // 4096 iterations mirrors the dm-crypt/LUKS default era of the paper.
    return pbkdf2Sha256(pw, fuse_secret, 4096, 16);
}

} // namespace sentry::crypto
