/**
 * @file
 * AES-128/192/256 block cipher (FIPS-197), implemented from scratch.
 *
 * Two independent implementations are provided:
 *   - the T-table fast path (aes_round.hh engine with NativeAesEnv),
 *     structurally identical to OpenSSL's — this is the paper's
 *     "generic AES" baseline, including its table-access side channel;
 *   - a canonical step-by-step path (SubBytes/ShiftRows/MixColumns)
 *     used to cross-validate the fast path in the test suite.
 */

#ifndef SENTRY_CRYPTO_AES_HH
#define SENTRY_CRYPTO_AES_HH

#include <cstdint>
#include <span>

#include "crypto/aes_tables.hh"

namespace sentry::crypto
{

/** Maximum round-key words: AES-256 has 15 round keys of 4 words. */
constexpr unsigned AES_MAX_KEY_WORDS = 60;

/**
 * Expanded AES key schedule.
 *
 * Holds both the encryption schedule and the equivalent-inverse-cipher
 * decryption schedule (reversed round order, InvMixColumns applied to
 * the middle rounds).
 */
class AesKeySchedule
{
  public:
    /** Expand @p key; its size (16/24/32 bytes) selects the variant. */
    explicit AesKeySchedule(std::span<const std::uint8_t> key);

    /** @return number of rounds (10, 12, or 14). */
    unsigned rounds() const { return rounds_; }

    /** @return key length in bytes (16, 24, or 32). */
    unsigned keyBytes() const { return keyBytes_; }

    /** @return encryption round-key words, 4*(rounds+1) of them. */
    std::span<const std::uint32_t>
    encWords() const
    {
        return {enc_, 4 * (rounds_ + 1)};
    }

    /** @return decryption round-key words (equivalent inverse cipher). */
    std::span<const std::uint32_t>
    decWords() const
    {
        return {dec_, 4 * (rounds_ + 1)};
    }

    /** Scrub the schedule from memory. */
    void scrub();

  private:
    std::uint32_t enc_[AES_MAX_KEY_WORDS];
    std::uint32_t dec_[AES_MAX_KEY_WORDS];
    unsigned rounds_;
    unsigned keyBytes_;
};

/** Direct-array environment for the aes_round.hh engine. */
class NativeAesEnv
{
  public:
    explicit NativeAesEnv(const AesKeySchedule &schedule)
        : tables_(aesTables()), schedule_(schedule)
    {}

    std::uint32_t te(unsigned t, std::uint8_t i) const
    {
        return tables_.te[t][i];
    }
    std::uint32_t td(unsigned t, std::uint8_t i) const
    {
        return tables_.td[t][i];
    }
    std::uint8_t sbox(std::uint8_t i) const { return tables_.sbox[i]; }
    std::uint8_t invSbox(std::uint8_t i) const { return tables_.invSbox[i]; }
    std::uint32_t encKey(unsigned i) const { return schedule_.encWords()[i]; }
    std::uint32_t decKey(unsigned i) const { return schedule_.decWords()[i]; }
    unsigned rounds() const { return schedule_.rounds(); }

  private:
    const AesTables &tables_;
    const AesKeySchedule &schedule_;
};

/**
 * The generic AES block cipher (paper terminology: "unsafe AES" /
 * "generic AES"): all state lives in ordinary host memory.
 */
class Aes
{
  public:
    /** @param key 16-, 24-, or 32-byte key. */
    explicit Aes(std::span<const std::uint8_t> key);

    /** Encrypt a single 16-byte block (T-table path). */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Decrypt a single 16-byte block (T-table path). */
    void decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Encrypt via the canonical FIPS-197 step-by-step algorithm. */
    void encryptBlockCanonical(const std::uint8_t in[16],
                               std::uint8_t out[16]) const;

    /** Decrypt via the canonical FIPS-197 step-by-step algorithm. */
    void decryptBlockCanonical(const std::uint8_t in[16],
                               std::uint8_t out[16]) const;

    /** @return the expanded key schedule. */
    const AesKeySchedule &schedule() const { return schedule_; }

    /** @return number of rounds. */
    unsigned rounds() const { return schedule_.rounds(); }

  private:
    AesKeySchedule schedule_;
};

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_AES_HH
