/**
 * @file
 * Key derivation for Sentry's two root keys (paper section 7):
 *   - the volatile root key, generated fresh on every boot and kept on
 *     the SoC only;
 *   - the persistent root key, derived from a boot-time password combined
 *     with the secret burned into the device's secure hardware fuse.
 */

#ifndef SENTRY_CRYPTO_KDF_HH
#define SENTRY_CRYPTO_KDF_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sentry::crypto
{

/**
 * PBKDF2-HMAC-SHA256 (RFC 8018).
 *
 * @param password   user secret
 * @param salt       per-device salt (here: the fuse secret)
 * @param iterations PBKDF2 iteration count
 * @param dkLen      derived-key length in bytes
 */
std::vector<std::uint8_t> pbkdf2Sha256(std::span<const std::uint8_t> password,
                                       std::span<const std::uint8_t> salt,
                                       unsigned iterations,
                                       std::size_t dkLen);

/**
 * Derive a 16-byte AES persistent root key from a password and the
 * device fuse secret, as Sentry's bootstrap step does.
 */
std::vector<std::uint8_t> derivePersistentKey(
    const std::string &password, std::span<const std::uint8_t> fuse_secret);

} // namespace sentry::crypto

#endif // SENTRY_CRYPTO_KDF_HH
