#include "crypto/aes.hh"

#include <cstring>

#include "common/bytes.hh"
#include "common/logging.hh"
#include "crypto/aes_round.hh"
#include "host/kernels.hh"

namespace sentry::crypto
{

namespace
{

std::uint32_t
subWord(std::uint32_t w)
{
    const AesTables &t = aesTables();
    return (static_cast<std::uint32_t>(t.sbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<std::uint32_t>(t.sbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(t.sbox[(w >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(t.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

/** InvMixColumns applied to a packed big-endian column word. */
std::uint32_t
invMixColumnsWord(std::uint32_t w)
{
    const auto a0 = static_cast<std::uint8_t>(w >> 24);
    const auto a1 = static_cast<std::uint8_t>(w >> 16);
    const auto a2 = static_cast<std::uint8_t>(w >> 8);
    const auto a3 = static_cast<std::uint8_t>(w);
    const std::uint8_t b0 =
        gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9);
    const std::uint8_t b1 =
        gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13);
    const std::uint8_t b2 =
        gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11);
    const std::uint8_t b3 =
        gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14);
    return (static_cast<std::uint32_t>(b0) << 24) |
           (static_cast<std::uint32_t>(b1) << 16) |
           (static_cast<std::uint32_t>(b2) << 8) |
           static_cast<std::uint32_t>(b3);
}

} // namespace

AesKeySchedule::AesKeySchedule(std::span<const std::uint8_t> key)
{
    const std::size_t len = key.size();
    if (len != 16 && len != 24 && len != 32)
        fatal("AES key must be 16, 24, or 32 bytes (got %zu)", len);

    keyBytes_ = static_cast<unsigned>(len);
    const unsigned nk = keyBytes_ / 4;
    rounds_ = nk + 6;
    const unsigned total = 4 * (rounds_ + 1);
    const AesTables &tables = aesTables();

    for (unsigned i = 0; i < nk; ++i)
        enc_[i] = loadBe32(key.data() + 4 * i);

    for (unsigned i = nk; i < total; ++i) {
        std::uint32_t temp = enc_[i - 1];
        if (i % nk == 0)
            temp = subWord(rotWord(temp)) ^ tables.rcon[i / nk - 1];
        else if (nk > 6 && i % nk == 4)
            temp = subWord(temp);
        enc_[i] = enc_[i - nk] ^ temp;
    }

    // Equivalent inverse cipher schedule: reverse the round order and
    // push the middle round keys through InvMixColumns.
    for (unsigned round = 0; round <= rounds_; ++round) {
        for (unsigned w = 0; w < 4; ++w) {
            std::uint32_t word = enc_[4 * (rounds_ - round) + w];
            if (round != 0 && round != rounds_)
                word = invMixColumnsWord(word);
            dec_[4 * round + w] = word;
        }
    }
}

void
AesKeySchedule::scrub()
{
    secureZero(enc_, sizeof(enc_));
    secureZero(dec_, sizeof(dec_));
}

Aes::Aes(std::span<const std::uint8_t> key) : schedule_(key) {}

void
Aes::encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    host::kernels().aes.encryptBlock(schedule_, in, out);
}

void
Aes::decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    host::kernels().aes.decryptBlock(schedule_, in, out);
}

namespace
{

/** 4x4 byte state in column-major order (FIPS-197 layout). */
struct State
{
    std::uint8_t b[16]; // b[4*col + row]
};

void
addRoundKey(State &s, std::span<const std::uint32_t> words, unsigned round)
{
    for (unsigned col = 0; col < 4; ++col) {
        const std::uint32_t w = words[4 * round + col];
        s.b[4 * col + 0] ^= static_cast<std::uint8_t>(w >> 24);
        s.b[4 * col + 1] ^= static_cast<std::uint8_t>(w >> 16);
        s.b[4 * col + 2] ^= static_cast<std::uint8_t>(w >> 8);
        s.b[4 * col + 3] ^= static_cast<std::uint8_t>(w);
    }
}

void
subBytes(State &s, bool inverse)
{
    const AesTables &t = aesTables();
    const std::uint8_t *box = inverse ? t.invSbox : t.sbox;
    for (auto &byte : s.b)
        byte = box[byte];
}

void
shiftRows(State &s, bool inverse)
{
    State copy = s;
    for (unsigned row = 1; row < 4; ++row) {
        for (unsigned col = 0; col < 4; ++col) {
            const unsigned src =
                inverse ? (col + 4 - row) % 4 : (col + row) % 4;
            s.b[4 * col + row] = copy.b[4 * src + row];
        }
    }
}

void
mixColumns(State &s, bool inverse)
{
    static const std::uint8_t fwd[4] = {2, 3, 1, 1};
    static const std::uint8_t inv[4] = {14, 11, 13, 9};
    const std::uint8_t *coef = inverse ? inv : fwd;
    for (unsigned col = 0; col < 4; ++col) {
        std::uint8_t a[4];
        std::memcpy(a, &s.b[4 * col], 4);
        for (unsigned row = 0; row < 4; ++row) {
            s.b[4 * col + row] = static_cast<std::uint8_t>(
                gfMul(a[0], coef[(4 - row) % 4]) ^
                gfMul(a[1], coef[(5 - row) % 4]) ^
                gfMul(a[2], coef[(6 - row) % 4]) ^
                gfMul(a[3], coef[(7 - row) % 4]));
        }
    }
}

} // namespace

void
Aes::encryptBlockCanonical(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    State s;
    std::memcpy(s.b, in, 16);
    const auto words = schedule_.encWords();
    const unsigned nr = schedule_.rounds();

    addRoundKey(s, words, 0);
    for (unsigned round = 1; round < nr; ++round) {
        subBytes(s, false);
        shiftRows(s, false);
        mixColumns(s, false);
        addRoundKey(s, words, round);
    }
    subBytes(s, false);
    shiftRows(s, false);
    addRoundKey(s, words, nr);
    std::memcpy(out, s.b, 16);
}

void
Aes::decryptBlockCanonical(const std::uint8_t in[16],
                           std::uint8_t out[16]) const
{
    State s;
    std::memcpy(s.b, in, 16);
    const auto words = schedule_.encWords();
    const unsigned nr = schedule_.rounds();

    addRoundKey(s, words, nr);
    for (unsigned round = nr - 1; round >= 1; --round) {
        shiftRows(s, true);
        subBytes(s, true);
        addRoundKey(s, words, round);
        mixColumns(s, true);
    }
    shiftRows(s, true);
    subBytes(s, true);
    addRoundKey(s, words, 0);
    std::memcpy(out, s.b, 16);
}

} // namespace sentry::crypto
