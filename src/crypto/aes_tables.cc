#include "crypto/aes_tables.hh"

namespace sentry::crypto
{

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t product = 0;
    while (b) {
        if (b & 1)
            product ^= a;
        const bool carry = a & 0x80;
        a <<= 1;
        if (carry)
            a ^= 0x1b; // reduce modulo x^8 + x^4 + x^3 + x + 1
        b >>= 1;
    }
    return product;
}

namespace
{

/** Multiplicative inverse in GF(2^8); 0 maps to 0 per FIPS-197. */
std::uint8_t
gfInverse(std::uint8_t a)
{
    if (a == 0)
        return 0;
    // a^254 = a^-1 in GF(2^8). Square-and-multiply over the 8-bit
    // exponent 254 = 0b11111110.
    std::uint8_t result = 1;
    std::uint8_t base = a;
    for (int bit = 0; bit < 8; ++bit) {
        if ((254 >> bit) & 1)
            result = gfMul(result, base);
        base = gfMul(base, base);
    }
    return result;
}

/** The FIPS-197 affine transform applied after inversion. */
std::uint8_t
affine(std::uint8_t x)
{
    auto rotl8 = [](std::uint8_t v, int k) -> std::uint8_t {
        return static_cast<std::uint8_t>((v << k) | (v >> (8 - k)));
    };
    return static_cast<std::uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                     rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
}

std::uint32_t
pack(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2, std::uint8_t b3)
{
    return (static_cast<std::uint32_t>(b0) << 24) |
           (static_cast<std::uint32_t>(b1) << 16) |
           (static_cast<std::uint32_t>(b2) << 8) |
           static_cast<std::uint32_t>(b3);
}

std::uint32_t
ror8(std::uint32_t w)
{
    return (w >> 8) | (w << 24);
}

AesTables
generate()
{
    AesTables t{};

    for (unsigned i = 0; i < 256; ++i) {
        const auto x = static_cast<std::uint8_t>(i);
        t.sbox[i] = affine(gfInverse(x));
    }
    for (unsigned i = 0; i < 256; ++i)
        t.invSbox[t.sbox[i]] = static_cast<std::uint8_t>(i);

    for (unsigned i = 0; i < 256; ++i) {
        const std::uint8_t s = t.sbox[i];
        // MixColumns contribution of the first input byte: (2,1,1,3)·S.
        t.te[0][i] = pack(gfMul(s, 2), s, s, gfMul(s, 3));
        t.te[1][i] = ror8(t.te[0][i]);
        t.te[2][i] = ror8(t.te[1][i]);
        t.te[3][i] = ror8(t.te[2][i]);

        const std::uint8_t is = t.invSbox[i];
        // InvMixColumns contribution: (14,9,13,11)·IS.
        t.td[0][i] = pack(gfMul(is, 14), gfMul(is, 9), gfMul(is, 13),
                          gfMul(is, 11));
        t.td[1][i] = ror8(t.td[0][i]);
        t.td[2][i] = ror8(t.td[1][i]);
        t.td[3][i] = ror8(t.td[2][i]);
    }

    std::uint8_t rc = 1;
    for (unsigned i = 0; i < AES_RCON_WORDS; ++i) {
        t.rcon[i] = static_cast<std::uint32_t>(rc) << 24;
        rc = gfMul(rc, 2);
    }

    return t;
}

} // namespace

const AesTables &
aesTables()
{
    static const AesTables tables = generate();
    return tables;
}

} // namespace sentry::crypto
