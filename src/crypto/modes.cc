#include "crypto/modes.hh"

#include <cstring>

#include "common/logging.hh"
#include "crypto/aes.hh"

namespace sentry::crypto
{

void
AesBlockCipher::encryptBlock(const std::uint8_t in[16],
                             std::uint8_t out[16]) const
{
    aes_.encryptBlock(in, out);
}

void
AesBlockCipher::decryptBlock(const std::uint8_t in[16],
                             std::uint8_t out[16]) const
{
    aes_.decryptBlock(in, out);
}

namespace
{
void
checkBlockMultiple(std::size_t len, const char *what)
{
    if (len % AES_BLOCK_SIZE != 0)
        fatal("%s requires a multiple of 16 bytes (got %zu)", what, len);
}

void
xorBlock(std::uint8_t *dst, const std::uint8_t *src)
{
    for (std::size_t i = 0; i < AES_BLOCK_SIZE; ++i)
        dst[i] ^= src[i];
}
} // namespace

void
cbcEncrypt(const BlockCipher &cipher, const Iv &iv,
           std::span<std::uint8_t> data)
{
    checkBlockMultiple(data.size(), "cbcEncrypt");
    std::uint8_t chain[AES_BLOCK_SIZE];
    std::memcpy(chain, iv.data(), AES_BLOCK_SIZE);
    for (std::size_t off = 0; off < data.size(); off += AES_BLOCK_SIZE) {
        xorBlock(data.data() + off, chain);
        cipher.encryptBlock(data.data() + off, data.data() + off);
        std::memcpy(chain, data.data() + off, AES_BLOCK_SIZE);
    }
}

void
cbcDecrypt(const BlockCipher &cipher, const Iv &iv,
           std::span<std::uint8_t> data)
{
    checkBlockMultiple(data.size(), "cbcDecrypt");
    std::uint8_t chain[AES_BLOCK_SIZE];
    std::uint8_t next[AES_BLOCK_SIZE];
    std::memcpy(chain, iv.data(), AES_BLOCK_SIZE);
    for (std::size_t off = 0; off < data.size(); off += AES_BLOCK_SIZE) {
        std::memcpy(next, data.data() + off, AES_BLOCK_SIZE);
        cipher.decryptBlock(data.data() + off, data.data() + off);
        xorBlock(data.data() + off, chain);
        std::memcpy(chain, next, AES_BLOCK_SIZE);
    }
}

void
ctrTransform(const BlockCipher &cipher, const Iv &iv,
             std::span<std::uint8_t> data)
{
    std::uint8_t counter[AES_BLOCK_SIZE];
    std::memcpy(counter, iv.data(), AES_BLOCK_SIZE);
    std::uint8_t keystream[AES_BLOCK_SIZE];

    std::size_t off = 0;
    while (off < data.size()) {
        cipher.encryptBlock(counter, keystream);
        const std::size_t chunk =
            std::min<std::size_t>(AES_BLOCK_SIZE, data.size() - off);
        for (std::size_t i = 0; i < chunk; ++i)
            data[off + i] ^= keystream[i];
        off += chunk;
        // Increment the big-endian counter in the low 8 bytes.
        for (int i = AES_BLOCK_SIZE - 1; i >= 8; --i) {
            if (++counter[i] != 0)
                break;
        }
    }
}

void
ecbEncrypt(const BlockCipher &cipher, std::span<std::uint8_t> data)
{
    checkBlockMultiple(data.size(), "ecbEncrypt");
    for (std::size_t off = 0; off < data.size(); off += AES_BLOCK_SIZE)
        cipher.encryptBlock(data.data() + off, data.data() + off);
}

void
ecbDecrypt(const BlockCipher &cipher, std::span<std::uint8_t> data)
{
    checkBlockMultiple(data.size(), "ecbDecrypt");
    for (std::size_t off = 0; off < data.size(); off += AES_BLOCK_SIZE)
        cipher.decryptBlock(data.data() + off, data.data() + off);
}

void
pkcs7Pad(std::vector<std::uint8_t> &data)
{
    const std::size_t pad =
        AES_BLOCK_SIZE - (data.size() % AES_BLOCK_SIZE);
    data.insert(data.end(), pad, static_cast<std::uint8_t>(pad));
}

bool
pkcs7Unpad(std::vector<std::uint8_t> &data)
{
    if (data.empty() || data.size() % AES_BLOCK_SIZE != 0)
        return false;
    const std::uint8_t pad = data.back();
    if (pad == 0 || pad > AES_BLOCK_SIZE || pad > data.size())
        return false;
    for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
        if (data[i] != pad)
            return false;
    }
    data.resize(data.size() - pad);
    return true;
}

} // namespace sentry::crypto
