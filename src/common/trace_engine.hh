/**
 * @file
 * The per-Soc TraceEngine that fans typed trace points (common/probe.hh)
 * out to subscribers, plus two stock sinks: a passive per-device counter
 * accumulator (CounterSink) and a chrome://tracing timeline dumper
 * (ChromeTraceSink).
 *
 * Subscribers are called synchronously, in subscription order — the
 * fault injector subscribes at arm time (before any attack probe), so
 * fault effects are applied before monitors record the transaction,
 * exactly as the old hook-before-observer plumbing behaved.
 */

#ifndef SENTRY_COMMON_TRACE_ENGINE_HH
#define SENTRY_COMMON_TRACE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/probe.hh"

namespace sentry
{
class SimClock;
}

namespace sentry::probe
{

/**
 * Receiver interface for trace points. Override only the kinds you
 * subscribe to; the defaults ignore the event.
 *
 * Payloads are passed by non-const reference so response channels
 * (BusTransfer::extraWrites, KcryptdOp::stallSeconds) can be filled.
 */
class Subscriber
{
  public:
    virtual ~Subscriber() = default;

    virtual void onMemAccess(MemAccess &event) { (void)event; }
    virtual void onBusTransfer(BusTransfer &event) { (void)event; }
    virtual void onCacheEvent(CacheEvent &event) { (void)event; }
    virtual void onPowerEvent(PowerEvent &event) { (void)event; }
    virtual void onDmaBurst(DmaBurst &event) { (void)event; }
    virtual void onCryptoOp(CryptoOp &event) { (void)event; }
    virtual void onKcryptdOp(KcryptdOp &event) { (void)event; }
};

/**
 * Fan-out point for one simulated machine. Every device of a Soc holds
 * a pointer to its engine and guards each emission site with
 * `enabled(kind)` — one load plus one bit test when nobody listens.
 */
class TraceEngine
{
  public:
    /**
     * Attach @p sub for the kinds in @p mask. Subscribing an already
     * attached subscriber replaces its mask.
     */
    void subscribe(Subscriber *sub, TraceMask mask);

    /** Detach @p sub (no-op when it is not attached). */
    void unsubscribe(Subscriber *sub);

    /** @return true when at least one subscriber wants @p kind. */
    bool
    enabled(TraceKind kind) const
    {
        return (activeMask_ & maskOf(kind)) != 0;
    }

    /** @return true when any subscriber is attached at all. */
    bool anyEnabled() const { return activeMask_ != 0; }

    /** @return number of attached subscribers. */
    std::size_t subscriberCount() const { return entries_.size(); }

    void emit(MemAccess &event);
    void emit(BusTransfer &event);
    void emit(CacheEvent &event);
    void emit(PowerEvent &event);
    void emit(DmaBurst &event);
    void emit(CryptoOp &event);
    void emit(KcryptdOp &event);

  private:
    struct Entry
    {
        Subscriber *sub;
        TraceMask mask;
    };

    void recomputeMask();

    std::vector<Entry> entries_;
    TraceMask activeMask_ = 0;
};

/** Passive per-device totals accumulated from every trace-point kind. */
struct TraceCounters
{
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t iramReads = 0;
    std::uint64_t iramWrites = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busWrites = 0;
    std::uint64_t busDuplicates = 0;
    std::uint64_t busReadBytes = 0;
    std::uint64_t busWriteBytes = 0;
    std::uint64_t cacheWritebacks = 0;
    std::uint64_t powerEvents = 0;
    double joules = 0.0;
    std::uint64_t dmaBursts = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t cryptoOps = 0;
    std::uint64_t cryptoBytes = 0;
    std::uint64_t kcryptdBlocks = 0;
    double kcryptdStallSeconds = 0.0;

    /** @return DRAM + iRAM accesses of either direction. */
    std::uint64_t
    memOps() const
    {
        return dramReads + dramWrites + iramReads + iramWrites;
    }

    /** @return bus transactions of either direction (incl. duplicates). */
    std::uint64_t busOps() const { return busReads + busWrites; }

    /** Sum another device's counters into this one (commutative for
     * the integer fields; the two double fields are plain sums). */
    TraceCounters &
    operator+=(const TraceCounters &other)
    {
        dramReads += other.dramReads;
        dramWrites += other.dramWrites;
        iramReads += other.iramReads;
        iramWrites += other.iramWrites;
        busReads += other.busReads;
        busWrites += other.busWrites;
        busDuplicates += other.busDuplicates;
        busReadBytes += other.busReadBytes;
        busWriteBytes += other.busWriteBytes;
        cacheWritebacks += other.cacheWritebacks;
        powerEvents += other.powerEvents;
        joules += other.joules;
        dmaBursts += other.dmaBursts;
        dmaBytes += other.dmaBytes;
        cryptoOps += other.cryptoOps;
        cryptoBytes += other.cryptoBytes;
        kcryptdBlocks += other.kcryptdBlocks;
        kcryptdStallSeconds += other.kcryptdStallSeconds;
        return *this;
    }

    /** @return one-line "k:v k:v ..." rendering (stable field order). */
    std::string summary() const;
};

/**
 * Subscriber that accumulates TraceCounters. Deterministic: totals
 * depend only on the simulated event stream, never on host timing.
 */
class CounterSink : public Subscriber
{
  public:
    ~CounterSink() override { detach(); }

    /** Subscribe to @p engine for every kind (detaches from any prior). */
    void attach(TraceEngine &engine);

    /** Unsubscribe (no-op when unattached). */
    void detach();

    const TraceCounters &counters() const { return counters_; }
    void reset() { counters_ = TraceCounters{}; }

    void onMemAccess(MemAccess &event) override;
    void onBusTransfer(BusTransfer &event) override;
    void onCacheEvent(CacheEvent &event) override;
    void onPowerEvent(PowerEvent &event) override;
    void onDmaBurst(DmaBurst &event) override;
    void onCryptoOp(CryptoOp &event) override;
    void onKcryptdOp(KcryptdOp &event) override;

  private:
    TraceEngine *engine_ = nullptr;
    TraceCounters counters_;
};

/**
 * Subscriber that records a bounded timeline of instant events and
 * writes them as chrome://tracing JSON (load via chrome://tracing or
 * https://ui.perfetto.dev). Timestamps are *simulated* microseconds.
 */
class ChromeTraceSink : public Subscriber
{
  public:
    /** @param maxEvents hard cap; later events are dropped (truncated()). */
    explicit ChromeTraceSink(std::size_t maxEvents = 1u << 20)
        : maxEvents_(maxEvents)
    {}

    ~ChromeTraceSink() override { detach(); }

    /** Subscribe to @p engine, timestamping events from @p clock. */
    void attach(TraceEngine &engine, const SimClock &clock,
                TraceMask mask = TRACE_ALL);

    /** Unsubscribe (no-op when unattached). */
    void detach();

    /** Write the recorded timeline; @return false on I/O failure. */
    bool writeJson(const std::string &path) const;

    std::size_t eventCount() const { return events_.size(); }
    bool truncated() const { return truncated_; }

    void onMemAccess(MemAccess &event) override;
    void onBusTransfer(BusTransfer &event) override;
    void onCacheEvent(CacheEvent &event) override;
    void onPowerEvent(PowerEvent &event) override;
    void onDmaBurst(DmaBurst &event) override;
    void onCryptoOp(CryptoOp &event) override;
    void onKcryptdOp(KcryptdOp &event) override;

  private:
    struct Event
    {
        TraceKind kind;
        double tsUs;       //!< simulated microseconds
        std::uint64_t arg0; //!< addr / way / bytes (kind-dependent)
        std::uint64_t arg1; //!< len / flags (kind-dependent)
        double argF;        //!< joules / stall seconds
        bool flag;          //!< isWrite / wayLocked / encrypt / duplicate
    };

    void record(TraceKind kind, std::uint64_t arg0, std::uint64_t arg1,
                double argF, bool flag);

    TraceEngine *engine_ = nullptr;
    const SimClock *clock_ = nullptr;
    std::size_t maxEvents_;
    bool truncated_ = false;
    std::vector<Event> events_;
};

} // namespace sentry::probe

#endif // SENTRY_COMMON_TRACE_ENGINE_HH
