/**
 * @file
 * The per-Soc TraceEngine that fans typed trace points (common/probe.hh)
 * out to subscribers, plus two stock sinks: a passive per-device counter
 * accumulator (CounterSink) and a chrome://tracing timeline dumper
 * (ChromeTraceSink).
 *
 * Two subscriber classes exist:
 *
 *   - synchronous Subscribers are called inline at the emission site, in
 *     subscription order — the fault injector subscribes at arm time
 *     (before any attack probe), so fault effects are applied before
 *     monitors record the transaction, and response channels
 *     (BusTransfer::extraWrites, KcryptdOp::stallSeconds) work exactly
 *     as the old hook-before-observer plumbing behaved;
 *
 *   - batched BatchSubscribers (the passive sinks) receive POD
 *     TraceRecord snapshots from a per-Soc pending ring that the
 *     emitting devices flush at bus-burst boundaries. An enabled
 *     CounterSink or ChromeTraceSink therefore costs one snapshot
 *     append on the hot path instead of a virtual dispatch per event,
 *     while the *disabled* cost stays one pointer load plus one bit
 *     test. Records are appended after the synchronous pass, so batch
 *     consumers observe final response-field values, in exact emission
 *     order; sink accessors (counters(), writeJson()) force a flush, so
 *     readers never see a stale prefix (DESIGN.md section 14).
 */

#ifndef SENTRY_COMMON_TRACE_ENGINE_HH
#define SENTRY_COMMON_TRACE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/probe.hh"

namespace sentry
{
class SimClock;
}

namespace sentry::probe
{

/**
 * Receiver interface for trace points. Override only the kinds you
 * subscribe to; the defaults ignore the event.
 *
 * Payloads are passed by non-const reference so response channels
 * (BusTransfer::extraWrites, KcryptdOp::stallSeconds) can be filled.
 */
class Subscriber
{
  public:
    virtual ~Subscriber() = default;

    virtual void onMemAccess(MemAccess &event) { (void)event; }
    virtual void onBusTransfer(BusTransfer &event) { (void)event; }
    virtual void onCacheEvent(CacheEvent &event) { (void)event; }
    virtual void onPowerEvent(PowerEvent &event) { (void)event; }
    virtual void onDmaBurst(DmaBurst &event) { (void)event; }
    virtual void onCryptoOp(CryptoOp &event) { (void)event; }
    virtual void onKcryptdOp(KcryptdOp &event) { (void)event; }
};

/**
 * Receiver interface for batched trace records. Records arrive in
 * emission order, already filtered to the subscription mask, at burst
 * boundaries (or per event when batching is off).
 */
class BatchSubscriber
{
  public:
    virtual ~BatchSubscriber() = default;

    virtual void onRecords(const TraceRecord *records,
                           std::size_t count) = 0;
};

/**
 * Fan-out point for one simulated machine. Every device of a Soc holds
 * a pointer to its engine and guards each emission site with
 * `enabled(kind)` — one load plus one bit test when nobody listens.
 */
class TraceEngine
{
  public:
    /** Default pending-ring capacity (records) before a forced flush. */
    static constexpr std::size_t DEFAULT_BATCH_CAPACITY = 256;

    /**
     * Attach @p sub for the kinds in @p mask. Subscribing an already
     * attached subscriber replaces its mask.
     */
    void subscribe(Subscriber *sub, TraceMask mask);

    /** Detach @p sub (no-op when it is not attached). */
    void unsubscribe(Subscriber *sub);

    /**
     * Attach @p sub as a batch consumer for the kinds in @p mask.
     * Pending records are flushed first, so a new consumer never sees
     * events emitted before it attached.
     */
    void subscribeBatched(BatchSubscriber *sub, TraceMask mask);

    /** Flush, then detach @p sub (no-op when it is not attached). */
    void unsubscribeBatched(BatchSubscriber *sub);

    /** @return true when at least one subscriber wants @p kind. */
    bool
    enabled(TraceKind kind) const
    {
        return (activeMask_ & maskOf(kind)) != 0;
    }

    /** @return true when any subscriber is attached at all. */
    bool anyEnabled() const { return activeMask_ != 0; }

    /** @return number of attached subscribers (both classes). */
    std::size_t
    subscriberCount() const
    {
        return entries_.size() + batchEntries_.size();
    }

    /**
     * Wire the clock that stamps TraceRecord::tsUs (the Soc does this at
     * construction). Without a clock, records carry ts 0.
     */
    void setClock(const SimClock *clock) { clock_ = clock; }

    /**
     * Set the pending-ring capacity. 1 disables batching — every record
     * is delivered immediately, which the parity tests use to prove the
     * batched stream is identical to the unbatched one.
     */
    void setBatchCapacity(std::size_t capacity);

    /** @return the pending-ring capacity. */
    std::size_t batchCapacity() const { return capacity_; }

    /** @return records currently waiting in the ring. */
    std::size_t pendingCount() const { return pending_.size(); }

    /**
     * Deliver pending records to the batch subscribers. Devices call
     * this at burst boundaries (end of a bus transaction); sinks call
     * it from their read accessors. Inline early-out keeps the empty
     * case to one load.
     */
    void
    flushPending()
    {
        if (!pending_.empty())
            flushSlow();
    }

    void emit(MemAccess &event);
    void emit(BusTransfer &event);
    void emit(CacheEvent &event);
    void emit(PowerEvent &event);
    void emit(DmaBurst &event);
    void emit(CryptoOp &event);
    void emit(KcryptdOp &event);

  private:
    struct Entry
    {
        Subscriber *sub;
        TraceMask mask;
    };

    struct BatchEntry
    {
        BatchSubscriber *sub;
        TraceMask mask;
    };

    void recomputeMask();
    void flushSlow();
    /** Stamp ts/kind on a fresh pending record (payload set by caller),
     *  then flush when the ring is full. */
    TraceRecord &appendRecord(TraceKind kind);
    void commitRecord();

    std::vector<Entry> entries_;
    std::vector<BatchEntry> batchEntries_;
    TraceMask syncMask_ = 0;
    TraceMask batchMask_ = 0;
    TraceMask activeMask_ = 0;
    const SimClock *clock_ = nullptr;
    std::size_t capacity_ = DEFAULT_BATCH_CAPACITY;
    std::vector<TraceRecord> pending_;
};

/** Passive per-device totals accumulated from every trace-point kind. */
struct TraceCounters
{
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t iramReads = 0;
    std::uint64_t iramWrites = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busWrites = 0;
    std::uint64_t busDuplicates = 0;
    std::uint64_t busReadBytes = 0;
    std::uint64_t busWriteBytes = 0;
    std::uint64_t cacheWritebacks = 0;
    std::uint64_t powerEvents = 0;
    double joules = 0.0;
    std::uint64_t dmaBursts = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t cryptoOps = 0;
    std::uint64_t cryptoBytes = 0;
    std::uint64_t kcryptdBlocks = 0;
    double kcryptdStallSeconds = 0.0;

    /** @return DRAM + iRAM accesses of either direction. */
    std::uint64_t
    memOps() const
    {
        return dramReads + dramWrites + iramReads + iramWrites;
    }

    /** @return bus transactions of either direction (incl. duplicates). */
    std::uint64_t busOps() const { return busReads + busWrites; }

    /** Sum another device's counters into this one (commutative for
     * the integer fields; the two double fields are plain sums). */
    TraceCounters &
    operator+=(const TraceCounters &other)
    {
        dramReads += other.dramReads;
        dramWrites += other.dramWrites;
        iramReads += other.iramReads;
        iramWrites += other.iramWrites;
        busReads += other.busReads;
        busWrites += other.busWrites;
        busDuplicates += other.busDuplicates;
        busReadBytes += other.busReadBytes;
        busWriteBytes += other.busWriteBytes;
        cacheWritebacks += other.cacheWritebacks;
        powerEvents += other.powerEvents;
        joules += other.joules;
        dmaBursts += other.dmaBursts;
        dmaBytes += other.dmaBytes;
        cryptoOps += other.cryptoOps;
        cryptoBytes += other.cryptoBytes;
        kcryptdBlocks += other.kcryptdBlocks;
        kcryptdStallSeconds += other.kcryptdStallSeconds;
        return *this;
    }

    /** @return one-line "k:v k:v ..." rendering (stable field order). */
    std::string summary() const;
};

/**
 * Batch sink that accumulates TraceCounters. Deterministic: totals
 * depend only on the simulated event stream, never on host timing or
 * on where the burst boundaries fall.
 */
class CounterSink : public BatchSubscriber
{
  public:
    ~CounterSink() override { detach(); }

    /** Subscribe to @p engine for every kind (detaches from any prior). */
    void attach(TraceEngine &engine);

    /** Flush and unsubscribe (no-op when unattached). */
    void detach();

    /** @return the totals, flushing any pending records first. */
    const TraceCounters &counters() const;

    void reset() { counters_ = TraceCounters{}; }

    void onRecords(const TraceRecord *records, std::size_t count) override;

  private:
    TraceEngine *engine_ = nullptr;
    TraceCounters counters_;
};

/**
 * Batch sink that records a bounded timeline of instant events and
 * writes them as chrome://tracing JSON (load via chrome://tracing or
 * https://ui.perfetto.dev). Timestamps are *simulated* microseconds,
 * stamped at emit time by the engine's clock.
 *
 * With an auto-dump path set, the sink also writes its timeline from
 * the destructor and from the panic() crash path, so a fleet run that
 * dies on an invariant failure still leaves a loadable trace file.
 */
class ChromeTraceSink : public BatchSubscriber
{
  public:
    /** @param maxEvents hard cap; later events are dropped (truncated()). */
    explicit ChromeTraceSink(std::size_t maxEvents = 1u << 20)
        : maxEvents_(maxEvents)
    {}

    ~ChromeTraceSink() override;

    /** Subscribe to @p engine for the kinds in @p mask. */
    void attach(TraceEngine &engine, TraceMask mask = TRACE_ALL);

    /** Flush and unsubscribe (no-op when unattached). */
    void detach();

    /**
     * Arrange for the timeline to be written to @p path when this sink
     * is destroyed or when panic() aborts the process, whichever comes
     * first (an explicit writeJson() to any path disarms neither; the
     * dump simply records whatever has been captured so far).
     */
    void setAutoDump(const std::string &path);

    /** Write the recorded timeline; @return false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** @return captured events, flushing any pending records first. */
    std::size_t eventCount() const;

    bool truncated() const { return truncated_; }

    void onRecords(const TraceRecord *records, std::size_t count) override;

  private:
    struct Event
    {
        TraceKind kind;
        double tsUs;        //!< simulated microseconds
        std::uint64_t arg0; //!< addr / way / bytes (kind-dependent)
        std::uint64_t arg1; //!< len / flags (kind-dependent)
        double argF;        //!< joules / stall seconds
        bool flag;          //!< isWrite / wayLocked / encrypt / duplicate
    };

    static void crashHook(void *self);
    void syncFromEngine() const;

    TraceEngine *engine_ = nullptr;
    std::size_t maxEvents_;
    bool truncated_ = false;
    std::string autoDumpPath_;
    std::vector<Event> events_;
};

} // namespace sentry::probe

#endif // SENTRY_COMMON_TRACE_ENGINE_HH
