/**
 * @file
 * Simulated time base.
 *
 * All performance results in this reproduction are *simulated*: hardware
 * models charge cycles to a SimClock as work flows through them, and the
 * benchmarks convert accumulated cycles to seconds using the platform's
 * CPU frequency. Absolute numbers are calibrated anchors (see DESIGN.md);
 * relative shapes are the reproduction target.
 */

#ifndef SENTRY_COMMON_SIM_CLOCK_HH
#define SENTRY_COMMON_SIM_CLOCK_HH

#include <cstdint>

#include "common/types.hh"

namespace sentry
{

/** Cycle-accumulating clock owned by a simulated SoC. */
class SimClock
{
  public:
    /** @param freq_hz CPU frequency used to convert cycles to seconds. */
    explicit SimClock(double freq_hz = 1.2e9);

    /** Charge @p cycles of work to the clock. */
    void advance(Cycles cycles) { now_ += cycles; }

    /** Charge @p seconds of wall-clock work (converted to cycles). */
    void advanceSeconds(double seconds);

    /** @return current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** @return current simulated time in seconds. */
    double seconds() const { return static_cast<double>(now_) / freqHz_; }

    /** @return configured frequency in Hz. */
    double frequency() const { return freqHz_; }

    /** Convert a cycle count to seconds at this clock's frequency. */
    double toSeconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / freqHz_;
    }

    /** Reset simulated time to zero. */
    void reset() { now_ = 0; }

  private:
    double freqHz_;
    Cycles now_ = 0;
};

/**
 * RAII stopwatch measuring elapsed simulated seconds over a scope or
 * between explicit marks.
 */
class SimStopwatch
{
  public:
    explicit SimStopwatch(const SimClock &clock)
        : clock_(clock), startCycles_(clock.now())
    {}

    /** @return simulated seconds elapsed since construction or restart. */
    double
    elapsedSeconds() const
    {
        return clock_.toSeconds(clock_.now() - startCycles_);
    }

    /** @return simulated cycles elapsed since construction or restart. */
    Cycles elapsedCycles() const { return clock_.now() - startCycles_; }

    /** Restart the measurement window. */
    void restart() { startCycles_ = clock_.now(); }

  private:
    const SimClock &clock_;
    Cycles startCycles_;
};

} // namespace sentry

#endif // SENTRY_COMMON_SIM_CLOCK_HH
