/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Uses xoshiro256** seeded via SplitMix64. All simulated stochastic
 * behaviour (DRAM remanence decay, workload address streams, DMA timing)
 * draws from instances of this class so every experiment is reproducible
 * from its seed.
 */

#ifndef SENTRY_COMMON_RNG_HH
#define SENTRY_COMMON_RNG_HH

#include <cstdint>

namespace sentry
{

/** Fast, seedable PRNG (xoshiro256**). Not cryptographic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5e47ee1dULL) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 random bits. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next64()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sentry

#endif // SENTRY_COMMON_RNG_HH
