/**
 * @file
 * Fundamental scalar types and address-space constants shared by every
 * Sentry module.
 *
 * The memory map mirrors an NVidia Tegra 3 class SoC: a small internal
 * SRAM (iRAM) low in the physical address space and DRAM above it.
 */

#ifndef SENTRY_COMMON_TYPES_HH
#define SENTRY_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace sentry
{

/** Physical address on the simulated platform. */
using PhysAddr = std::uint64_t;

/** Virtual address inside a simulated process. */
using VirtAddr = std::uint64_t;

/** Simulated CPU cycle count. */
using Cycles = std::uint64_t;

/** Convenience size literals. */
constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * KiB;
constexpr std::size_t GiB = 1024 * MiB;

/** Page size used throughout the OS layer (matches ARM 4 KB small pages). */
constexpr std::size_t PAGE_SIZE = 4 * KiB;

/** Cache-line size of the PL310 L2 cache. */
constexpr std::size_t CACHE_LINE_SIZE = 32;

/**
 * Physical memory map (Tegra 3 flavoured).
 *
 * iRAM lives at 0x4000'0000 (256 KB on Tegra 3); DRAM is mapped at
 * 0x8000'0000. Device registers use a window at 0x7000'0000.
 */
constexpr PhysAddr IRAM_BASE = 0x4000'0000;
constexpr std::size_t IRAM_SIZE = 256 * KiB;

/** First 64 KB of iRAM are reserved by platform firmware (see paper 4.5). */
constexpr std::size_t IRAM_FIRMWARE_RESERVED = 64 * KiB;

constexpr PhysAddr MMIO_BASE = 0x7000'0000;
constexpr std::size_t MMIO_SIZE = 16 * MiB;

constexpr PhysAddr DRAM_BASE = 0x8000'0000;

/** AES block size in bytes (fixed by FIPS-197). */
constexpr std::size_t AES_BLOCK_SIZE = 16;

/** Round a value down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Round a value up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace sentry

#endif // SENTRY_COMMON_TYPES_HH
