#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sentry
{

void
RunningStat::add(double sample)
{
    ++count_;
    samples_.push_back(sample);
    if (count_ == 1) {
        mean_ = sample;
        min_ = max_ = sample;
        m2_ = 0.0;
        return;
    }
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    if (sample < min_)
        min_ = sample;
    if (sample > max_)
        max_ = sample;
}

double
RunningStat::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double
RunningStat::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

void
RunningStat::reset()
{
    count_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
    samples_.clear();
}

std::string
RunningStat::summary(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean(),
                  precision, stddev());
    return buf;
}

namespace
{

/** Heap/trim order: keep the samples with the *smallest* priorities,
 * breaking ties on value so the retained set is a pure function of the
 * sample multiset. */
bool
weightedLess(const MergeStat::Weighted &a, const MergeStat::Weighted &b)
{
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.value < b.value;
}

} // namespace

MergeStat::MergeStat(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {}

void
MergeStat::add(double sample, std::uint64_t priority)
{
    ++count_;
    runningSum_ += sample;
    if (count_ == 1) {
        min_ = max_ = sample;
    } else {
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }
    keep_.push_back({priority, sample});
    std::push_heap(keep_.begin(), keep_.end(), weightedLess);
    if (keep_.size() > cap_) {
        std::pop_heap(keep_.begin(), keep_.end(), weightedLess);
        keep_.pop_back();
    }
}

void
MergeStat::merge(const MergeStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    runningSum_ += other.runningSum_;
    for (const Weighted &w : other.keep_) {
        keep_.push_back(w);
        std::push_heap(keep_.begin(), keep_.end(), weightedLess);
        if (keep_.size() > cap_) {
            std::pop_heap(keep_.begin(), keep_.end(), weightedLess);
            keep_.pop_back();
        }
    }
}

double
MergeStat::mean() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ > keep_.size())
        return runningSum_ / static_cast<double>(count_);
    // Everything retained: sum in sorted order so the result is a pure
    // function of the sample multiset, not of fold/merge order.
    double sum = 0.0;
    for (double value : sortedValues())
        sum += value;
    return sum / static_cast<double>(count_);
}

double
MergeStat::percentile(double p) const
{
    if (keep_.empty())
        return 0.0;
    const std::vector<double> sorted = sortedValues();
    const double clamped = std::clamp(p, 0.0, 100.0);
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

std::vector<double>
MergeStat::sortedValues() const
{
    std::vector<double> values;
    values.reserve(keep_.size());
    for (const Weighted &w : keep_)
        values.push_back(w.value);
    std::sort(values.begin(), values.end());
    return values;
}

} // namespace sentry
