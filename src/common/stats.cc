#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sentry
{

void
RunningStat::add(double sample)
{
    ++count_;
    samples_.push_back(sample);
    if (count_ == 1) {
        mean_ = sample;
        min_ = max_ = sample;
        m2_ = 0.0;
        return;
    }
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    if (sample < min_)
        min_ = sample;
    if (sample > max_)
        max_ = sample;
}

double
RunningStat::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double
RunningStat::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
}

void
RunningStat::reset()
{
    count_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
    samples_.clear();
}

std::string
RunningStat::summary(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean(),
                  precision, stddev());
    return buf;
}

} // namespace sentry
