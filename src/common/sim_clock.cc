#include "common/sim_clock.hh"

#include "common/logging.hh"

namespace sentry
{

SimClock::SimClock(double freq_hz) : freqHz_(freq_hz)
{
    if (freq_hz <= 0)
        fatal("SimClock frequency must be positive (got %f)", freq_hz);
}

void
SimClock::advanceSeconds(double seconds)
{
    if (seconds < 0)
        panic("SimClock cannot move backwards (%f s)", seconds);
    now_ += static_cast<Cycles>(seconds * freqHz_);
}

} // namespace sentry
