#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sentry
{

namespace
{
/** Atomic: fleet worker threads consult this concurrently (the only
 *  process-global mutable state in the library — see DESIGN.md §7). */
std::atomic<bool> quietFlag{false};

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info: ", fmt, args);
    va_end(args);
}

} // namespace sentry
