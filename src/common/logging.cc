#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace sentry
{

namespace
{
/** Atomic: fleet worker threads consult this concurrently (the only
 *  process-global mutable state in the library — see DESIGN.md §7). */
std::atomic<bool> quietFlag{false};

struct CrashHook
{
    void (*fn)(void *);
    void *arg;
};

std::mutex &
crashHookMutex()
{
    static std::mutex m;
    return m;
}

std::vector<CrashHook> &
crashHooks()
{
    static std::vector<CrashHook> hooks;
    return hooks;
}

/**
 * Run the registered crash hooks newest-first. Reentrancy-guarded: a
 * hook that itself panics falls straight through to abort instead of
 * looping. The mutex is only held to snapshot the list — a hook may
 * legitimately unregister itself (or others) while running.
 */
void
runCrashHooks()
{
    static std::atomic<bool> ran{false};
    if (ran.exchange(true))
        return;
    std::vector<CrashHook> snapshot;
    {
        std::lock_guard<std::mutex> lock(crashHookMutex());
        snapshot = crashHooks();
    }
    for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it)
        it->fn(it->arg);
}

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
addCrashHook(void (*fn)(void *), void *arg)
{
    std::lock_guard<std::mutex> lock(crashHookMutex());
    crashHooks().push_back({fn, arg});
}

void
removeCrashHook(void (*fn)(void *), void *arg)
{
    std::lock_guard<std::mutex> lock(crashHookMutex());
    auto &hooks = crashHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->fn == fn && it->arg == arg) {
            hooks.erase(it);
            return;
        }
    }
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic: ", fmt, args);
    va_end(args);
    runCrashHooks();
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info: ", fmt, args);
    va_end(args);
}

} // namespace sentry
