#include "common/bytes.hh"

#include <cctype>
#include <cstring>

#include "common/logging.hh"
#include "host/kernels.hh"

namespace sentry
{

void
fillPattern(std::span<std::uint8_t> buf, std::span<const std::uint8_t> pattern)
{
    if (pattern.empty())
        panic("fillPattern: empty pattern");
    if (buf.empty())
        return;
    // Seed one copy, then double the filled prefix with self-memcpy
    // (log2 copies instead of one per repetition).
    std::size_t filled = std::min(pattern.size(), buf.size());
    std::memcpy(buf.data(), pattern.data(), filled);
    while (filled < buf.size()) {
        const std::size_t chunk = std::min(filled, buf.size() - filled);
        std::memcpy(buf.data() + filled, buf.data(), chunk);
        filled += chunk;
    }
}

std::size_t
countPattern(std::span<const std::uint8_t> buf,
             std::span<const std::uint8_t> pattern)
{
    if (pattern.empty())
        panic("countPattern: empty pattern");
    return host::kernels().bytes.countPattern(buf.data(), buf.size(),
                                              pattern.data(),
                                              pattern.size());
}

bool
containsBytes(std::span<const std::uint8_t> haystack,
              std::span<const std::uint8_t> needle)
{
    // The fleet audits scan every device's whole DRAM after every
    // scenario step, so this path is hot and kernel-dispatched.
    return host::kernels().bytes.containsBytes(haystack.data(),
                                               haystack.size(),
                                               needle.data(),
                                               needle.size());
}

bool
allZero(std::span<const std::uint8_t> buf)
{
    return host::kernels().bytes.allZero(buf.data(), buf.size());
}

std::string
toHex(std::span<const std::uint8_t> buf)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(buf.size() * 2);
    for (std::uint8_t b : buf) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("fromHex: odd-length hex string \"%s\"", hex.c_str());

    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fatal("fromHex: bad hex digit '%c'", c);
    };

    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
    }
    return out;
}

void
secureZero(void *buf, std::size_t len)
{
    auto *p = static_cast<volatile std::uint8_t *>(buf);
    while (len--)
        *p++ = 0;
}

} // namespace sentry
