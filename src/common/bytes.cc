#include "common/bytes.hh"

#include <cctype>
#include <cstring>

#include "common/logging.hh"

namespace sentry
{

void
fillPattern(std::span<std::uint8_t> buf, std::span<const std::uint8_t> pattern)
{
    if (pattern.empty())
        panic("fillPattern: empty pattern");
    std::size_t offset = 0;
    while (offset < buf.size()) {
        const std::size_t chunk =
            std::min(pattern.size(), buf.size() - offset);
        std::memcpy(buf.data() + offset, pattern.data(), chunk);
        offset += chunk;
    }
}

std::size_t
countPattern(std::span<const std::uint8_t> buf,
             std::span<const std::uint8_t> pattern)
{
    if (pattern.empty())
        panic("countPattern: empty pattern");
    std::size_t hits = 0;
    for (std::size_t offset = 0; offset + pattern.size() <= buf.size();
         offset += pattern.size()) {
        if (std::memcmp(buf.data() + offset, pattern.data(),
                        pattern.size()) == 0) {
            ++hits;
        }
    }
    return hits;
}

bool
containsBytes(std::span<const std::uint8_t> haystack,
              std::span<const std::uint8_t> needle)
{
    if (needle.empty() || needle.size() > haystack.size())
        return false;
    // memchr-hop to candidate first bytes: the fleet audits scan every
    // device's whole DRAM after every scenario step, so this path is hot.
    const auto *p = haystack.data();
    const auto *end = haystack.data() + haystack.size() - needle.size() + 1;
    while (p < end) {
        const auto *hit = static_cast<const std::uint8_t *>(
            std::memchr(p, needle[0], static_cast<std::size_t>(end - p)));
        if (hit == nullptr)
            return false;
        if (std::memcmp(hit, needle.data(), needle.size()) == 0)
            return true;
        p = hit + 1;
    }
    return false;
}

std::string
toHex(std::span<const std::uint8_t> buf)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(buf.size() * 2);
    for (std::uint8_t b : buf) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("fromHex: odd-length hex string \"%s\"", hex.c_str());

    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fatal("fromHex: bad hex digit '%c'", c);
    };

    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
    }
    return out;
}

void
secureZero(void *buf, std::size_t len)
{
    auto *p = static_cast<volatile std::uint8_t *>(buf);
    while (len--)
        *p++ = 0;
}

} // namespace sentry
