/**
 * @file
 * Byte-buffer utilities: pattern fills, pattern counting (the Table 2
 * remanence methodology greps memory dumps for a repeated 8-byte pattern),
 * hex formatting, and guaranteed-not-elided secure zeroization.
 */

#ifndef SENTRY_COMMON_BYTES_HH
#define SENTRY_COMMON_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sentry
{

/** Fill @p buf with repetitions of @p pattern (truncating the tail). */
void fillPattern(std::span<std::uint8_t> buf,
                 std::span<const std::uint8_t> pattern);

/**
 * Count non-overlapping aligned occurrences of @p pattern in @p buf.
 *
 * Matches the paper's methodology: the dump is scanned in pattern-sized
 * strides, so a partially-decayed copy does not count.
 */
std::size_t countPattern(std::span<const std::uint8_t> buf,
                         std::span<const std::uint8_t> pattern);

/** Search for @p needle anywhere in @p haystack (byte-granular). */
bool containsBytes(std::span<const std::uint8_t> haystack,
                   std::span<const std::uint8_t> needle);

/** @return true when every byte of @p buf is zero. */
bool allZero(std::span<const std::uint8_t> buf);

/** @return lowercase hex string of @p buf. */
std::string toHex(std::span<const std::uint8_t> buf);

/** Parse a hex string (no separators) into bytes; fatal on bad input. */
std::vector<std::uint8_t> fromHex(const std::string &hex);

/** Zero a buffer through a volatile pointer so it cannot be elided. */
void secureZero(void *buf, std::size_t len);

} // namespace sentry

#endif // SENTRY_COMMON_BYTES_HH
