/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal invariant was violated (a Sentry bug); aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — something is questionable but the simulation continues.
 * inform() — plain status output.
 */

#ifndef SENTRY_COMMON_LOGGING_HH
#define SENTRY_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sentry
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for unusable configurations. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benchmarks want clean tables). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool isQuiet();

/**
 * Register @p fn to run (with @p arg) after panic() prints its message
 * and before it aborts, so best-effort salvage work — dumping a partial
 * chrome trace, say — happens even when an invariant fails. Hooks run
 * newest-first, at most once per process (a hook that panics again does
 * not recurse), and never on the fatal()/exit path.
 */
void addCrashHook(void (*fn)(void *), void *arg);

/** Remove a previously registered hook (matched on both fn and arg). */
void removeCrashHook(void (*fn)(void *), void *arg);

} // namespace sentry

#endif // SENTRY_COMMON_LOGGING_HH
