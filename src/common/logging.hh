/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal invariant was violated (a Sentry bug); aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — something is questionable but the simulation continues.
 * inform() — plain status output.
 */

#ifndef SENTRY_COMMON_LOGGING_HH
#define SENTRY_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sentry
{

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for unusable configurations. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benchmarks want clean tables). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool isQuiet();

} // namespace sentry

#endif // SENTRY_COMMON_LOGGING_HH
