#include "common/trace_engine.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/sim_clock.hh"

namespace sentry::probe
{

void
TraceEngine::subscribe(Subscriber *sub, TraceMask mask)
{
    for (Entry &e : entries_) {
        if (e.sub == sub) {
            e.mask = mask;
            recomputeMask();
            return;
        }
    }
    entries_.push_back({sub, mask});
    syncMask_ |= mask;
    activeMask_ |= mask;
}

void
TraceEngine::unsubscribe(Subscriber *sub)
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [sub](const Entry &e) {
                                      return e.sub == sub;
                                  }),
                   entries_.end());
    recomputeMask();
}

void
TraceEngine::subscribeBatched(BatchSubscriber *sub, TraceMask mask)
{
    flushPending();
    for (BatchEntry &e : batchEntries_) {
        if (e.sub == sub) {
            e.mask = mask;
            recomputeMask();
            return;
        }
    }
    batchEntries_.push_back({sub, mask});
    batchMask_ |= mask;
    activeMask_ |= mask;
}

void
TraceEngine::unsubscribeBatched(BatchSubscriber *sub)
{
    flushPending();
    batchEntries_.erase(std::remove_if(batchEntries_.begin(),
                                       batchEntries_.end(),
                                       [sub](const BatchEntry &e) {
                                           return e.sub == sub;
                                       }),
                        batchEntries_.end());
    recomputeMask();
}

void
TraceEngine::recomputeMask()
{
    syncMask_ = 0;
    for (const Entry &e : entries_)
        syncMask_ |= e.mask;
    batchMask_ = 0;
    for (const BatchEntry &e : batchEntries_)
        batchMask_ |= e.mask;
    activeMask_ = syncMask_ | batchMask_;
}

void
TraceEngine::setBatchCapacity(std::size_t capacity)
{
    flushPending();
    capacity_ = capacity == 0 ? 1 : capacity;
}

void
TraceEngine::flushSlow()
{
    // Swap the ring out so records a subscriber emits indirectly while
    // consuming (e.g. a sink read that triggers simulated work) land in
    // a fresh buffer instead of invalidating the one being walked.
    std::vector<TraceRecord> batch;
    batch.swap(pending_);
    for (const BatchEntry &e : batchEntries_) {
        // Common case: one sink subscribed to everything — hand over
        // the whole run without a filtering copy.
        bool coversAll = true;
        for (const TraceRecord &r : batch) {
            if ((e.mask & maskOf(r.kind)) == 0) {
                coversAll = false;
                break;
            }
        }
        if (coversAll) {
            e.sub->onRecords(batch.data(), batch.size());
            continue;
        }
        std::size_t runStart = 0;
        for (std::size_t i = 0; i <= batch.size(); ++i) {
            const bool wanted =
                i < batch.size() && (e.mask & maskOf(batch[i].kind)) != 0;
            if (!wanted) {
                if (i > runStart)
                    e.sub->onRecords(batch.data() + runStart, i - runStart);
                runStart = i + 1;
            }
        }
    }
    // Give the allocation back to the ring (unless an indirect emission
    // already started refilling it).
    if (pending_.empty()) {
        batch.clear();
        batch.swap(pending_);
    }
}

TraceRecord &
TraceEngine::appendRecord(TraceKind kind)
{
    pending_.emplace_back();
    TraceRecord &rec = pending_.back();
    rec.kind = kind;
    rec.tsUs = clock_ != nullptr ? clock_->seconds() * 1e6 : 0.0;
    return rec;
}

void
TraceEngine::commitRecord()
{
    if (pending_.size() >= capacity_)
        flushSlow();
}

// One dispatch body per payload type; kept out of the header so the
// emission sites inline only the enabled() test. The synchronous pass
// runs first (response fields get their final values), then the payload
// is snapshotted for the batch ring.
#define SENTRY_TRACE_DISPATCH(Kind, Method, Field)                          \
    void TraceEngine::emit(Kind &event)                                     \
    {                                                                       \
        const TraceMask bit = maskOf(TraceKind::Kind);                      \
        if ((syncMask_ & bit) != 0) {                                       \
            for (const Entry &e : entries_) {                               \
                if ((e.mask & bit) != 0)                                    \
                    e.sub->Method(event);                                   \
            }                                                               \
        }                                                                   \
        if ((batchMask_ & bit) != 0) {                                      \
            appendRecord(TraceKind::Kind).Field = event;                    \
            commitRecord();                                                 \
        }                                                                   \
    }

SENTRY_TRACE_DISPATCH(MemAccess, onMemAccess, mem)
SENTRY_TRACE_DISPATCH(CacheEvent, onCacheEvent, cache)
SENTRY_TRACE_DISPATCH(PowerEvent, onPowerEvent, power)
SENTRY_TRACE_DISPATCH(DmaBurst, onDmaBurst, dma)
SENTRY_TRACE_DISPATCH(CryptoOp, onCryptoOp, crypto)
SENTRY_TRACE_DISPATCH(KcryptdOp, onKcryptdOp, kcryptd)

#undef SENTRY_TRACE_DISPATCH

// BusTransfer is special-cased: the payload pointer is only valid
// during the synchronous callback, so the snapshot drops it.
void
TraceEngine::emit(BusTransfer &event)
{
    const TraceMask bit = maskOf(TraceKind::BusTransfer);
    if ((syncMask_ & bit) != 0) {
        for (const Entry &e : entries_) {
            if ((e.mask & bit) != 0)
                e.sub->onBusTransfer(event);
        }
    }
    if ((batchMask_ & bit) != 0) {
        TraceRecord &rec = appendRecord(TraceKind::BusTransfer);
        rec.bus = event;
        rec.bus.data = nullptr;
        commitRecord();
    }
}

std::string
TraceCounters::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "dramR:%llu dramW:%llu iramR:%llu iramW:%llu busR:%llu busW:%llu "
        "busDup:%llu busRB:%llu busWB:%llu wb:%llu power:%llu "
        "joules:%.9g dma:%llu dmaB:%llu crypto:%llu cryptoB:%llu "
        "kcryptd:%llu stall:%.9g",
        static_cast<unsigned long long>(dramReads),
        static_cast<unsigned long long>(dramWrites),
        static_cast<unsigned long long>(iramReads),
        static_cast<unsigned long long>(iramWrites),
        static_cast<unsigned long long>(busReads),
        static_cast<unsigned long long>(busWrites),
        static_cast<unsigned long long>(busDuplicates),
        static_cast<unsigned long long>(busReadBytes),
        static_cast<unsigned long long>(busWriteBytes),
        static_cast<unsigned long long>(cacheWritebacks),
        static_cast<unsigned long long>(powerEvents), joules,
        static_cast<unsigned long long>(dmaBursts),
        static_cast<unsigned long long>(dmaBytes),
        static_cast<unsigned long long>(cryptoOps),
        static_cast<unsigned long long>(cryptoBytes),
        static_cast<unsigned long long>(kcryptdBlocks),
        kcryptdStallSeconds);
    return buf;
}

void
CounterSink::attach(TraceEngine &engine)
{
    detach();
    engine_ = &engine;
    engine_->subscribeBatched(this, TRACE_ALL);
}

void
CounterSink::detach()
{
    if (engine_ != nullptr) {
        engine_->unsubscribeBatched(this);
        engine_ = nullptr;
    }
}

const TraceCounters &
CounterSink::counters() const
{
    if (engine_ != nullptr)
        engine_->flushPending();
    return counters_;
}

void
CounterSink::onRecords(const TraceRecord *records, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord &r = records[i];
        switch (r.kind) {
          case TraceKind::MemAccess:
            if (r.mem.device == MemAccess::Device::Dram)
                ++(r.mem.isWrite ? counters_.dramWrites
                                 : counters_.dramReads);
            else
                ++(r.mem.isWrite ? counters_.iramWrites
                                 : counters_.iramReads);
            break;
          case TraceKind::BusTransfer:
            if (r.bus.duplicate)
                ++counters_.busDuplicates;
            if (r.bus.isWrite) {
                ++counters_.busWrites;
                counters_.busWriteBytes += r.bus.size;
            } else {
                ++counters_.busReads;
                counters_.busReadBytes += r.bus.size;
            }
            break;
          case TraceKind::CacheEvent:
            ++counters_.cacheWritebacks;
            break;
          case TraceKind::PowerEvent:
            ++counters_.powerEvents;
            counters_.joules += r.power.joules;
            break;
          case TraceKind::DmaBurst:
            ++counters_.dmaBursts;
            counters_.dmaBytes += r.dma.len;
            break;
          case TraceKind::CryptoOp:
            ++counters_.cryptoOps;
            counters_.cryptoBytes += r.crypto.bytes;
            break;
          case TraceKind::KcryptdOp:
            ++counters_.kcryptdBlocks;
            counters_.kcryptdStallSeconds += r.kcryptd.stallSeconds;
            break;
          default:
            break;
        }
    }
}

ChromeTraceSink::~ChromeTraceSink()
{
    if (!autoDumpPath_.empty()) {
        syncFromEngine();
        removeCrashHook(&ChromeTraceSink::crashHook, this);
        writeJson(autoDumpPath_);
        autoDumpPath_.clear();
    }
    detach();
}

void
ChromeTraceSink::attach(TraceEngine &engine, TraceMask mask)
{
    detach();
    engine_ = &engine;
    engine_->subscribeBatched(this, mask);
}

void
ChromeTraceSink::detach()
{
    if (engine_ != nullptr) {
        engine_->unsubscribeBatched(this);
        engine_ = nullptr;
    }
}

void
ChromeTraceSink::setAutoDump(const std::string &path)
{
    if (!autoDumpPath_.empty())
        removeCrashHook(&ChromeTraceSink::crashHook, this);
    autoDumpPath_ = path;
    if (!autoDumpPath_.empty())
        addCrashHook(&ChromeTraceSink::crashHook, this);
}

void
ChromeTraceSink::crashHook(void *self)
{
    auto *sink = static_cast<ChromeTraceSink *>(self);
    // Crash path: skip the engine flush (its state may be what paniced)
    // and dump whatever has already been delivered.
    if (!sink->autoDumpPath_.empty())
        sink->writeJson(sink->autoDumpPath_);
}

void
ChromeTraceSink::syncFromEngine() const
{
    if (engine_ != nullptr)
        engine_->flushPending();
}

std::size_t
ChromeTraceSink::eventCount() const
{
    syncFromEngine();
    return events_.size();
}

void
ChromeTraceSink::onRecords(const TraceRecord *records, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord &r = records[i];
        if (events_.size() >= maxEvents_) {
            truncated_ = true;
            return;
        }
        Event e{r.kind, r.tsUs, 0, 0, 0.0, false};
        switch (r.kind) {
          case TraceKind::MemAccess:
            e.arg0 = r.mem.offset |
                     (r.mem.device == MemAccess::Device::Iram
                          ? std::uint64_t{1} << 63
                          : 0);
            e.arg1 = r.mem.len;
            e.flag = r.mem.isWrite;
            break;
          case TraceKind::BusTransfer:
            e.arg0 = r.bus.addr;
            e.arg1 = (std::uint64_t{r.bus.duplicate} << 32) | r.bus.size;
            e.flag = r.bus.isWrite;
            break;
          case TraceKind::CacheEvent:
            e.arg0 = r.cache.addr;
            e.arg1 = r.cache.way;
            e.flag = r.cache.wayLocked;
            break;
          case TraceKind::PowerEvent:
            e.argF = r.power.joules;
            break;
          case TraceKind::DmaBurst:
            e.arg0 = r.dma.addr;
            e.arg1 = r.dma.len;
            e.flag = r.dma.isWrite;
            break;
          case TraceKind::CryptoOp:
            e.arg0 = r.crypto.bytes;
            e.flag = r.crypto.encrypt;
            break;
          case TraceKind::KcryptdOp:
            e.argF = r.kcryptd.stallSeconds;
            break;
          default:
            break;
        }
        events_.push_back(e);
    }
}

bool
ChromeTraceSink::writeJson(const std::string &path) const
{
    syncFromEngine();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\"traceEvents\":[\n");
    bool first = true;
    for (const Event &e : events_) {
        std::fprintf(
            f,
            "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
            "\"tid\":0,\"ts\":%.3f,\"args\":{\"a\":%llu,\"b\":%llu,"
            "\"f\":%.9g,\"w\":%s}}",
            first ? "" : ",\n", traceKindName(e.kind), e.tsUs,
            static_cast<unsigned long long>(e.arg0),
            static_cast<unsigned long long>(e.arg1), e.argF,
            e.flag ? "true" : "false");
        first = false;
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
}

} // namespace sentry::probe
