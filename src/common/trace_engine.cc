#include "common/trace_engine.hh"

#include <algorithm>
#include <cstdio>

#include "common/sim_clock.hh"

namespace sentry::probe
{

void
TraceEngine::subscribe(Subscriber *sub, TraceMask mask)
{
    for (Entry &e : entries_) {
        if (e.sub == sub) {
            e.mask = mask;
            recomputeMask();
            return;
        }
    }
    entries_.push_back({sub, mask});
    activeMask_ |= mask;
}

void
TraceEngine::unsubscribe(Subscriber *sub)
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [sub](const Entry &e) {
                                      return e.sub == sub;
                                  }),
                   entries_.end());
    recomputeMask();
}

void
TraceEngine::recomputeMask()
{
    activeMask_ = 0;
    for (const Entry &e : entries_)
        activeMask_ |= e.mask;
}

// One dispatch body per payload type; kept out of the header so the
// emission sites inline only the enabled() test.
#define SENTRY_TRACE_DISPATCH(Kind, Method)                                 \
    void TraceEngine::emit(Kind &event)                                     \
    {                                                                       \
        for (const Entry &e : entries_) {                                   \
            if ((e.mask & maskOf(TraceKind::Kind)) != 0)                    \
                e.sub->Method(event);                                       \
        }                                                                   \
    }

SENTRY_TRACE_DISPATCH(MemAccess, onMemAccess)
SENTRY_TRACE_DISPATCH(BusTransfer, onBusTransfer)
SENTRY_TRACE_DISPATCH(CacheEvent, onCacheEvent)
SENTRY_TRACE_DISPATCH(PowerEvent, onPowerEvent)
SENTRY_TRACE_DISPATCH(DmaBurst, onDmaBurst)
SENTRY_TRACE_DISPATCH(CryptoOp, onCryptoOp)
SENTRY_TRACE_DISPATCH(KcryptdOp, onKcryptdOp)

#undef SENTRY_TRACE_DISPATCH

std::string
TraceCounters::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "dramR:%llu dramW:%llu iramR:%llu iramW:%llu busR:%llu busW:%llu "
        "busDup:%llu busRB:%llu busWB:%llu wb:%llu power:%llu "
        "joules:%.9g dma:%llu dmaB:%llu crypto:%llu cryptoB:%llu "
        "kcryptd:%llu stall:%.9g",
        static_cast<unsigned long long>(dramReads),
        static_cast<unsigned long long>(dramWrites),
        static_cast<unsigned long long>(iramReads),
        static_cast<unsigned long long>(iramWrites),
        static_cast<unsigned long long>(busReads),
        static_cast<unsigned long long>(busWrites),
        static_cast<unsigned long long>(busDuplicates),
        static_cast<unsigned long long>(busReadBytes),
        static_cast<unsigned long long>(busWriteBytes),
        static_cast<unsigned long long>(cacheWritebacks),
        static_cast<unsigned long long>(powerEvents), joules,
        static_cast<unsigned long long>(dmaBursts),
        static_cast<unsigned long long>(dmaBytes),
        static_cast<unsigned long long>(cryptoOps),
        static_cast<unsigned long long>(cryptoBytes),
        static_cast<unsigned long long>(kcryptdBlocks),
        kcryptdStallSeconds);
    return buf;
}

void
CounterSink::attach(TraceEngine &engine)
{
    detach();
    engine_ = &engine;
    engine_->subscribe(this, TRACE_ALL);
}

void
CounterSink::detach()
{
    if (engine_ != nullptr) {
        engine_->unsubscribe(this);
        engine_ = nullptr;
    }
}

void
CounterSink::onMemAccess(MemAccess &event)
{
    if (event.device == MemAccess::Device::Dram)
        ++(event.isWrite ? counters_.dramWrites : counters_.dramReads);
    else
        ++(event.isWrite ? counters_.iramWrites : counters_.iramReads);
}

void
CounterSink::onBusTransfer(BusTransfer &event)
{
    if (event.duplicate)
        ++counters_.busDuplicates;
    if (event.isWrite) {
        ++counters_.busWrites;
        counters_.busWriteBytes += event.size;
    } else {
        ++counters_.busReads;
        counters_.busReadBytes += event.size;
    }
}

void
CounterSink::onCacheEvent(CacheEvent &event)
{
    (void)event;
    ++counters_.cacheWritebacks;
}

void
CounterSink::onPowerEvent(PowerEvent &event)
{
    ++counters_.powerEvents;
    counters_.joules += event.joules;
}

void
CounterSink::onDmaBurst(DmaBurst &event)
{
    ++counters_.dmaBursts;
    counters_.dmaBytes += event.len;
}

void
CounterSink::onCryptoOp(CryptoOp &event)
{
    ++counters_.cryptoOps;
    counters_.cryptoBytes += event.bytes;
}

void
CounterSink::onKcryptdOp(KcryptdOp &event)
{
    ++counters_.kcryptdBlocks;
    counters_.kcryptdStallSeconds += event.stallSeconds;
}

void
ChromeTraceSink::attach(TraceEngine &engine, const SimClock &clock,
                        TraceMask mask)
{
    detach();
    engine_ = &engine;
    clock_ = &clock;
    engine_->subscribe(this, mask);
}

void
ChromeTraceSink::detach()
{
    if (engine_ != nullptr) {
        engine_->unsubscribe(this);
        engine_ = nullptr;
    }
}

void
ChromeTraceSink::record(TraceKind kind, std::uint64_t arg0,
                        std::uint64_t arg1, double argF, bool flag)
{
    if (events_.size() >= maxEvents_) {
        truncated_ = true;
        return;
    }
    const double tsUs = clock_ != nullptr ? clock_->seconds() * 1e6 : 0.0;
    events_.push_back({kind, tsUs, arg0, arg1, argF, flag});
}

void
ChromeTraceSink::onMemAccess(MemAccess &event)
{
    record(TraceKind::MemAccess,
           event.offset | (event.device == MemAccess::Device::Iram
                               ? std::uint64_t{1} << 63
                               : 0),
           event.len, 0.0, event.isWrite);
}

void
ChromeTraceSink::onBusTransfer(BusTransfer &event)
{
    record(TraceKind::BusTransfer, event.addr,
           (std::uint64_t{event.duplicate} << 32) | event.size, 0.0,
           event.isWrite);
}

void
ChromeTraceSink::onCacheEvent(CacheEvent &event)
{
    record(TraceKind::CacheEvent, event.addr, event.way, 0.0,
           event.wayLocked);
}

void
ChromeTraceSink::onPowerEvent(PowerEvent &event)
{
    record(TraceKind::PowerEvent, 0, 0, event.joules, false);
}

void
ChromeTraceSink::onDmaBurst(DmaBurst &event)
{
    record(TraceKind::DmaBurst, event.addr, event.len, 0.0, event.isWrite);
}

void
ChromeTraceSink::onCryptoOp(CryptoOp &event)
{
    record(TraceKind::CryptoOp, event.bytes, 0, 0.0, event.encrypt);
}

void
ChromeTraceSink::onKcryptdOp(KcryptdOp &event)
{
    record(TraceKind::KcryptdOp, 0, 0, event.stallSeconds, false);
}

bool
ChromeTraceSink::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\"traceEvents\":[\n");
    bool first = true;
    for (const Event &e : events_) {
        std::fprintf(
            f,
            "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
            "\"tid\":0,\"ts\":%.3f,\"args\":{\"a\":%llu,\"b\":%llu,"
            "\"f\":%.9g,\"w\":%s}}",
            first ? "" : ",\n", traceKindName(e.kind), e.tsUs,
            static_cast<unsigned long long>(e.arg0),
            static_cast<unsigned long long>(e.arg1), e.argF,
            e.flag ? "true" : "false");
        first = false;
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
}

} // namespace sentry::probe
