/**
 * @file
 * Typed trace points for the simulated SoC — the single observation
 * spine every instrumentation consumer attaches to.
 *
 * Hardware and OS models *emit* trace points; they know nothing about
 * who listens. Consumers (the fault injector, the bus-monitor probe,
 * counter sinks, timeline dumpers) *subscribe* to a per-Soc
 * TraceEngine (common/trace_engine.hh) for the kinds they care about.
 * With no subscriber for a kind, the emission site reduces to one
 * pointer test plus one bit test and builds no payload — the host fast
 * path (DESIGN.md §6) stays intact.
 *
 * Some payloads are bidirectional: a subscriber may write a *response*
 * field (BusTransfer::extraWrites, KcryptdOp::stallSeconds) that the
 * emitting device acts on after the emit returns. This is how fault
 * injection feeds effects back into the machine without the devices
 * ever holding a pointer to the fault model.
 */

#ifndef SENTRY_COMMON_PROBE_HH
#define SENTRY_COMMON_PROBE_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace sentry::probe
{

/** Who initiated a bus transfer. */
enum class BusInitiator
{
    CpuCache, //!< L2 line fill or writeback on behalf of the CPU
    Dma,      //!< a DMA controller transfer
};

/** Every kind of trace point a device can fire. */
enum class TraceKind : unsigned
{
    MemAccess,   //!< DRAM or iRAM cell-array access
    BusTransfer, //!< external-bus read or write transaction
    CacheEvent,  //!< L2 dirty-line writeback
    PowerEvent,  //!< energy charged to the battery model
    DmaBurst,    //!< DMA engine moved a buffer
    CryptoOp,    //!< hardware crypto accelerator request
    KcryptdOp,   //!< dm-crypt worker picked up one 512-byte block
    NumKinds,
};

/** Bitmask over TraceKind used for subscriptions. */
using TraceMask = std::uint32_t;

/** @return the subscription bit for one trace-point kind. */
constexpr TraceMask
maskOf(TraceKind kind)
{
    return TraceMask{1} << static_cast<unsigned>(kind);
}

/** Subscription mask covering every trace-point kind. */
constexpr TraceMask TRACE_ALL =
    (TraceMask{1} << static_cast<unsigned>(TraceKind::NumKinds)) - 1;

/** @return a short stable name for a trace-point kind. */
constexpr const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::MemAccess:
        return "mem-access";
      case TraceKind::BusTransfer:
        return "bus-transfer";
      case TraceKind::CacheEvent:
        return "cache-event";
      case TraceKind::PowerEvent:
        return "power-event";
      case TraceKind::DmaBurst:
        return "dma-burst";
      case TraceKind::CryptoOp:
        return "crypto-op";
      default:
        return "kcryptd-op";
    }
}

/** A DRAM or iRAM cell-array access (device-relative offset). */
struct MemAccess
{
    enum class Device
    {
        Dram,
        Iram,
    };

    Device device;
    bool isWrite;
    PhysAddr offset;
    std::size_t len;
};

/** One transaction on the external memory bus. */
struct BusTransfer
{
    PhysAddr addr;
    std::uint32_t size;
    bool isWrite;
    BusInitiator initiator;
    /** Payload; valid only during the subscriber callback. */
    const std::uint8_t *data;
    /** True when this is a fault-injected replay of the previous write. */
    bool duplicate;
    /**
     * Response channel: a subscriber may ask the bus to replay this
     * write @c extraWrites more times (each replay fires again with
     * @c duplicate set, and replies on replays are ignored).
     */
    unsigned extraWrites;
};

/** An L2 dirty line leaving the SoC (fires before the bus write). */
struct CacheEvent
{
    unsigned way;
    bool wayLocked;
    PhysAddr addr;
};

/** Energy charged to the battery model. */
struct PowerEvent
{
    const char *category; //!< energyCategoryName() string
    double joules;
};

/** A DMA engine moved @c len bytes at @c addr. */
struct DmaBurst
{
    PhysAddr addr;
    std::size_t len;
    bool isWrite;
};

/** The hardware crypto accelerator processed one request. */
struct CryptoOp
{
    std::size_t bytes;
    bool encrypt;
};

/** A dm-crypt worker picked up one 512-byte block. */
struct KcryptdOp
{
    /**
     * Response channel: subscribers add worker-stall seconds here; the
     * emitting kcryptd path charges the total to the sim clock.
     */
    double stallSeconds;
};

/**
 * One batched trace point: a POD snapshot of the payload taken at emit
 * time, *after* every synchronous subscriber ran — response fields
 * (stallSeconds, extraWrites) carry their final values.
 *
 * Snapshots outlive the emitting call, so transient pointers are
 * dropped: BusTransfer::data is nulled (it is only valid during a
 * synchronous callback). PowerEvent::category survives because it
 * always points at a static energyCategoryName() string.
 */
struct TraceRecord
{
    TraceKind kind;
    double tsUs; //!< simulated microseconds at emit (0 with no clock)
    union {
        MemAccess mem;
        BusTransfer bus;
        CacheEvent cache;
        PowerEvent power;
        DmaBurst dma;
        CryptoOp crypto;
        KcryptdOp kcryptd;
    };
};

} // namespace sentry::probe

#endif // SENTRY_COMMON_PROBE_HH
