/**
 * @file
 * Small statistics helpers used by the benchmark harnesses.
 *
 * The paper repeats every experiment at least ten times and plots average
 * and standard deviation; RunningStat provides exactly that.
 */

#ifndef SENTRY_COMMON_STATS_HH
#define SENTRY_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sentry
{

/**
 * Online mean / variance / extrema accumulator (Welford's algorithm)
 * that also keeps every sample, so exact percentiles are available
 * without reservoir approximation. Benchmark sample counts are small
 * (tens to a few thousand), so full retention is cheap.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** @return number of samples added. */
    std::size_t count() const { return count_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sample standard deviation (0 with fewer than 2 samples). */
    double stddev() const;

    /** @return smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Exact nearest-rank percentile of the retained samples: the
     * smallest sample with at least @p p percent of the mass at or
     * below it (p is clamped to [0,100]; 0 when empty).
     */
    double percentile(double p) const;

    /** Shorthands for the usual latency summary points. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Drop all samples. */
    void reset();

    /** @return "mean ± stddev" formatted with @p precision decimals. */
    std::string summary(int precision = 3) const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

} // namespace sentry

#endif // SENTRY_COMMON_STATS_HH
