/**
 * @file
 * Small statistics helpers used by the benchmark harnesses.
 *
 * The paper repeats every experiment at least ten times and plots average
 * and standard deviation; RunningStat provides exactly that.
 */

#ifndef SENTRY_COMMON_STATS_HH
#define SENTRY_COMMON_STATS_HH

#include <cstddef>
#include <string>

namespace sentry
{

/** Online mean / variance / extrema accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** @return number of samples added. */
    std::size_t count() const { return count_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sample standard deviation (0 with fewer than 2 samples). */
    double stddev() const;

    /** @return smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Drop all samples. */
    void reset();

    /** @return "mean ± stddev" formatted with @p precision decimals. */
    std::string summary(int precision = 3) const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace sentry

#endif // SENTRY_COMMON_STATS_HH
