/**
 * @file
 * Small statistics helpers used by the benchmark harnesses.
 *
 * The paper repeats every experiment at least ten times and plots average
 * and standard deviation; RunningStat provides exactly that.
 */

#ifndef SENTRY_COMMON_STATS_HH
#define SENTRY_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sentry
{

/**
 * Online mean / variance / extrema accumulator (Welford's algorithm)
 * that also keeps every sample, so exact percentiles are available
 * without reservoir approximation. Benchmark sample counts are small
 * (tens to a few thousand), so full retention is cheap.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** @return number of samples added. */
    std::size_t count() const { return count_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return sample standard deviation (0 with fewer than 2 samples). */
    double stddev() const;

    /** @return smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Exact nearest-rank percentile of the retained samples: the
     * smallest sample with at least @p p percent of the mass at or
     * below it (p is clamped to [0,100]; 0 when empty).
     */
    double percentile(double p) const;

    /** Shorthands for the usual latency summary points. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Drop all samples. */
    void reset();

    /** @return "mean ± stddev" formatted with @p precision decimals. */
    std::string summary(int precision = 3) const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

/**
 * Mergeable, fixed-memory sample statistic for population-scale
 * aggregation (the SentryFleet shard accumulators).
 *
 * Exact quantities (count, min, max) and a *weighted bottom-k*
 * reservoir for percentiles: every sample carries a caller-supplied
 * 64-bit priority (a deterministic hash of its origin — device seed,
 * metric, ordinal), and the stat retains the `cap` samples with the
 * smallest priorities. Bottom-k selection is commutative and
 * associative under merge (bottom-k of a union equals bottom-k of the
 * parts' bottom-k sets), so any merge tree over any partition of the
 * samples yields the *same retained set* — aggregation order cannot
 * change the result. While the total sample count fits the cap the
 * reservoir holds everything and percentile() is exact (bit-identical
 * to RunningStat::percentile over the same samples); beyond the cap it
 * is a uniform subsample with the usual reservoir error bounds.
 *
 * mean() is order-independent by construction while all samples are
 * retained: it sums the retained values in sorted order. Past the cap
 * it falls back to a running sum, whose last-ulp rounding depends on
 * the (deterministic) merge tree but not on thread count.
 */
class MergeStat
{
  public:
    /** Default retained-sample bound (see FLEET_SAMPLE_CAP users). */
    static constexpr std::size_t DEFAULT_CAP = 8192;

    /** One retained sample and its selection priority. */
    struct Weighted
    {
        std::uint64_t priority = 0;
        double value = 0.0;
    };

    explicit MergeStat(std::size_t cap = DEFAULT_CAP);

    /** Add one sample with its deterministic selection priority. */
    void add(double sample, std::uint64_t priority);

    /** Fold @p other into this stat (commutative, associative in the
     * retained set; see class comment for mean() caveats). */
    void merge(const MergeStat &other);

    /** @return true count of samples added (not just retained). */
    std::uint64_t count() const { return count_; }

    /** @return number of samples currently retained (≤ cap). */
    std::size_t retained() const { return keep_.size(); }

    /** @return retained-sample bound. */
    std::size_t cap() const { return cap_; }

    /** @return smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * @return arithmetic mean (0 when empty). Exact and merge-order
     * independent while every sample is retained.
     */
    double mean() const;

    /**
     * Nearest-rank percentile over the retained samples (same formula
     * as RunningStat::percentile; exact while count() ≤ cap()).
     */
    double percentile(double p) const;

    /** @return retained values sorted ascending (for digests/tests). */
    std::vector<double> sortedValues() const;

  private:
    std::size_t cap_;
    std::uint64_t count_ = 0;
    double runningSum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<Weighted> keep_; //!< max-heap by (priority, value)
};

} // namespace sentry

#endif // SENTRY_COMMON_STATS_HH
