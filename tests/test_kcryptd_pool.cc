/**
 * @file
 * kcryptd worker-pool tests: the batched DmCrypt::writeBlocks() path
 * runs host-side AES on real threads, so it must produce byte-identical
 * on-disk ciphertext to the per-block inline path, charge identical
 * simulated time/energy, never let plaintext reach the backing device
 * or DRAM, and leave the engine's charge divisor restored.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.hh"
#include "core/device.hh"
#include "core/security_audit.hh"
#include "os/block_device.hh"
#include "os/dm_crypt.hh"

using namespace sentry;
using namespace sentry::core;
using namespace sentry::os;

namespace
{

struct KcryptdFixture : testing::Test
{
    KcryptdFixture()
        : device(hw::PlatformConfig::tegra3(64 * MiB)),
          diskA(device.soc().clock(), 2 * MiB),
          diskB(device.soc().clock(), 2 * MiB)
    {
        device.sentry().registerCryptoProviders();
    }

    std::unique_ptr<DmCrypt>
    makeDmCrypt(RamBlockDevice &disk, unsigned workers)
    {
        const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
        return std::make_unique<DmCrypt>(
            disk, device.kernel().cryptoApi().allocCipher("aes", key),
            workers);
    }

    /** A recognisable plaintext payload of @p nblocks blocks. */
    static std::vector<std::uint8_t>
    plaintext(std::size_t nblocks)
    {
        std::vector<std::uint8_t> data(nblocks * BLOCK_SIZE);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(0x5A ^ (i * 13));
        return data;
    }

    Device device;
    RamBlockDevice diskA, diskB;
};

} // namespace

TEST_F(KcryptdFixture, BatchCiphertextMatchesPerBlockLoop)
{
    auto batched = makeDmCrypt(diskA, 4);
    auto inline1 = makeDmCrypt(diskB, 4);
    const auto data = plaintext(16);

    batched->writeBlocks(3, data);
    for (std::size_t b = 0; b < 16; ++b)
        inline1->writeBlock(3 + b,
                            std::span(data).subspan(b * BLOCK_SIZE,
                                                    BLOCK_SIZE));

    const auto a = diskA.raw();
    const auto b = diskB.raw();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST_F(KcryptdFixture, WorkerCountDoesNotChangeCiphertext)
{
    auto one = makeDmCrypt(diskA, 1);
    auto four = makeDmCrypt(diskB, 4);
    const auto data = plaintext(8);

    one->writeBlocks(0, data);
    four->writeBlocks(0, data);

    const auto a = diskA.raw();
    const auto b = diskB.raw();
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST_F(KcryptdFixture, BatchChargesMatchPerBlockLoop)
{
    auto batched = makeDmCrypt(diskA, 4);
    auto inline1 = makeDmCrypt(diskB, 4);
    const auto data = plaintext(12);
    SimClock &clock = device.soc().clock();
    hw::EnergyModel &energy = device.soc().energy();

    const Cycles c0 = clock.now();
    const double j0 = energy.totalConsumed();
    batched->writeBlocks(0, data);
    const Cycles batchCycles = clock.now() - c0;
    const double batchJoules = energy.totalConsumed() - j0;

    const Cycles c1 = clock.now();
    const double j1 = energy.totalConsumed();
    for (std::size_t b = 0; b < 12; ++b)
        inline1->writeBlock(b, std::span(data).subspan(b * BLOCK_SIZE,
                                                       BLOCK_SIZE));
    const Cycles loopCycles = clock.now() - c1;
    const double loopJoules = energy.totalConsumed() - j1;

    EXPECT_EQ(batchCycles, loopCycles);
    // Same per-op charges; the running total accumulates in a different
    // order, so allow double-rounding noise.
    EXPECT_NEAR(batchJoules, loopJoules, 1e-12);
}

TEST_F(KcryptdFixture, BatchRoundTripsThroughReads)
{
    auto dm = makeDmCrypt(diskA, 4);
    const auto data = plaintext(10);
    dm->writeBlocks(5, data);

    std::vector<std::uint8_t> back(BLOCK_SIZE);
    for (std::size_t b = 0; b < 10; ++b) {
        dm->readBlock(5 + b, back);
        EXPECT_EQ(0, std::memcmp(back.data(),
                                 data.data() + b * BLOCK_SIZE, BLOCK_SIZE))
            << "block " << b;
    }
}

TEST_F(KcryptdFixture, NoPlaintextOnDiskOrInDram)
{
    auto dm = makeDmCrypt(diskA, 4);
    const auto data = plaintext(8);
    const std::vector<std::uint8_t> marker(data.begin(), data.begin() + 64);

    dm->writeBlocks(0, data);

    EXPECT_FALSE(containsBytes(diskA.raw(), marker));
    EXPECT_FALSE(containsBytes(device.soc().dram().raw(), marker));

    // The programmatic audit agrees (markers checked among the rest).
    const std::vector<std::vector<std::uint8_t>> markers{marker};
    SecurityAudit audit(device.kernel(), device.sentry());
    EXPECT_TRUE(audit.run(markers).allPassed());
}

TEST_F(KcryptdFixture, DivisorRestoredAndPoolReusable)
{
    auto dm = makeDmCrypt(diskA, 4);
    const auto data = plaintext(4);

    for (int round = 0; round < 3; ++round) {
        dm->writeBlocks(static_cast<std::uint64_t>(4 * round), data);
        EXPECT_DOUBLE_EQ(dm->cipher().chargeDivisor(), 1.0);
    }
    std::vector<std::uint8_t> back(BLOCK_SIZE);
    dm->readBlock(8, back);
    EXPECT_EQ(0, std::memcmp(back.data(), data.data(), BLOCK_SIZE));
}
