/**
 * @file
 * Assembled-SoC tests: memory-system routing, power events, firmware
 * behaviour, and platform configuration differences.
 */

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::hw;

TEST(MemorySystem, RoutesIramAndDram)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));

    soc.memory().write32(IRAM_BASE + 0x100, 0x11111111);
    soc.memory().write32(DRAM_BASE + 0x100, 0x22222222);

    EXPECT_EQ(soc.memory().read32(IRAM_BASE + 0x100), 0x11111111u);
    EXPECT_EQ(soc.memory().read32(DRAM_BASE + 0x100), 0x22222222u);

    // iRAM accesses bypass the cache entirely.
    EXPECT_TRUE(soc.memory().isIram(IRAM_BASE + 0x100));
    EXPECT_FALSE(soc.memory().isIram(DRAM_BASE));
    EXPECT_EQ(soc.iramRaw()[0x100], 0x11);
}

TEST(MemorySystem, CrossLineAccessesAreSplit)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);

    // Unaligned, multi-line write and read back.
    soc.memory().write(DRAM_BASE + 17, data.data(), data.size());
    std::vector<std::uint8_t> back(100);
    soc.memory().read(DRAM_BASE + 17, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(MemorySystem, FillAndCopy)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    soc.memory().fill(DRAM_BASE + 0x1000, 0x5a, 4096);
    EXPECT_EQ(soc.memory().read32(DRAM_BASE + 0x1000), 0x5a5a5a5au);

    soc.memory().copy(DRAM_BASE + 0x3000, DRAM_BASE + 0x1000, 4096);
    EXPECT_EQ(soc.memory().read32(DRAM_BASE + 0x3fff - 3), 0x5a5a5a5au);
}

TEST(MemorySystem, UnmappedAccessPanics)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    EXPECT_DEATH(soc.memory().read32(0x100), "unmapped");
}

TEST(MemorySystem, CopyCrossesTheIramDramWindows)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    std::vector<std::uint8_t> data(300);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(3 * i + 1);

    // Unaligned source near the top of iRAM, destination in cached DRAM.
    const PhysAddr iramEnd = IRAM_BASE + soc.iram().size();
    const PhysAddr src = iramEnd - data.size() - 5;
    soc.memory().write(src, data.data(), data.size());
    soc.memory().copy(DRAM_BASE + 0x2000 + 9, src, data.size());
    std::vector<std::uint8_t> back(data.size());
    soc.memory().read(DRAM_BASE + 0x2000 + 9, back.data(), back.size());
    EXPECT_EQ(back, data);

    // And back again into the very last bytes of the iRAM window.
    soc.memory().copy(iramEnd - data.size(), DRAM_BASE + 0x2000 + 9,
                      data.size());
    soc.memory().read(iramEnd - data.size(), back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(MemorySystem, FillReachesTheIramWindowEdgeButNotPast)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    const PhysAddr iramEnd = IRAM_BASE + soc.iram().size();
    soc.memory().fill(iramEnd - 100, 0x7e, 100);
    EXPECT_EQ(soc.memory().read32(iramEnd - 4), 0x7e7e7e7eu);
    // One byte past the window is unmapped (iRAM and DRAM windows are
    // not adjacent), so a straddling fill must panic, not wrap.
    EXPECT_DEATH(soc.memory().fill(iramEnd - 4, 0x00, 8), "unmapped");
}

TEST(MemorySystem, OverlappingCopyDstAboveSrc)
{
    // dst > src by less than the chunk size: a naive forward chunked
    // copy would re-read bytes it already overwrote. copy() must give
    // memmove semantics (backward chunk walk in MemorySystem::copy).
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    std::vector<std::uint8_t> data(256);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(7 * i + 11);

    soc.memory().write(DRAM_BASE + 0x100, data.data(), data.size());
    soc.memory().copy(DRAM_BASE + 0x100 + 13, DRAM_BASE + 0x100,
                      data.size());
    std::vector<std::uint8_t> back(data.size());
    soc.memory().read(DRAM_BASE + 0x100 + 13, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(MemorySystem, OverlappingCopyDstBelowSrc)
{
    // dst < src overlap is naturally safe for a forward walk; make
    // sure it stays that way.
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    std::vector<std::uint8_t> data(256);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(5 * i + 3);

    soc.memory().write(DRAM_BASE + 0x200, data.data(), data.size());
    soc.memory().copy(DRAM_BASE + 0x200 - 13, DRAM_BASE + 0x200,
                      data.size());
    std::vector<std::uint8_t> back(data.size());
    soc.memory().read(DRAM_BASE + 0x200 - 13, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(Soc, PowerCycleZeroesIramAndResetsCache)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    const auto secret = fromHex("5ec2e75ec2e75ec2");
    soc.iram().write(0x3000, secret.data(), secret.size());
    soc.memory().write32(DRAM_BASE + 0x40, 0x77777777);

    soc.powerCycle(0.007);

    // Boot ROM zeroed iRAM.
    EXPECT_FALSE(containsBytes(soc.iramRaw(), secret));
    // The cache was reset without writeback: the dirty word is gone.
    EXPECT_EQ(soc.l2().peek(DRAM_BASE + 0x40), nullptr);
}

TEST(Soc, WarmRebootPreservesIram)
{
    Soc soc(PlatformConfig::tegra3(16 * MiB));
    const auto secret = fromHex("5ec2e75ec2e75ec2");
    soc.iram().write(0x3000, secret.data(), secret.size());

    soc.warmReboot();
    EXPECT_TRUE(containsBytes(soc.iramRaw(), secret));
}

TEST(Soc, BootOverwritesSomeDram)
{
    Soc soc(PlatformConfig::tegra3(64 * MiB));
    const auto pattern = fromHex("00aa00aa00aa00aa");
    fillPattern(soc.dram().raw(), pattern);
    const std::size_t before =
        countPattern(soc.dramRaw(), pattern);

    soc.warmReboot();
    const std::size_t after = countPattern(soc.dramRaw(), pattern);
    EXPECT_LT(after, before);
    // ...but only a few percent of it (Table 2: 96.4% preserved).
    EXPECT_GT(static_cast<double>(after) / static_cast<double>(before),
              0.90);
}

TEST(Soc, PlatformDifferences)
{
    Soc tegra(PlatformConfig::tegra3(16 * MiB));
    Soc nexus(PlatformConfig::nexus4(16 * MiB));

    EXPECT_TRUE(tegra.trustzone().secureWorldAvailable());
    EXPECT_FALSE(nexus.trustzone().secureWorldAvailable());
    EXPECT_EQ(tegra.accel(), nullptr);
    EXPECT_NE(nexus.accel(), nullptr);
    EXPECT_GT(nexus.clock().frequency(), tegra.clock().frequency());
    EXPECT_GT(nexus.energy().batteryCapacity(), 0.0);
}

TEST(Firmware, RejectsUnsignedImages)
{
    Firmware firmware(BootFootprint{});
    const std::vector<std::uint8_t> image(1024, 0x90);
    EXPECT_TRUE(firmware.acceptImage(image, true));
    // The firmware-replacement attack vector from section 4.3.
    EXPECT_FALSE(firmware.acceptImage(image, false));
    EXPECT_FALSE(firmware.acceptImage({}, true));
}
