/**
 * @file
 * DMA controller and peripheral tests, including the properties the
 * paper's section 4.2 validation depends on: DMA bypasses the cache,
 * the UART debug port loops data back, the NIC TX FIFO is write-only,
 * and TrustZone protection stops iRAM dumps.
 */

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "hw/platform.hh"
#include "hw/soc.hh"

using namespace sentry;
using namespace sentry::hw;

namespace
{

struct DmaFixture : testing::Test
{
    DmaFixture() : soc(PlatformConfig::tegra3(16 * MiB)) {}
    Soc soc;
};

} // namespace

TEST_F(DmaFixture, ReadsAndWritesDram)
{
    const auto data = fromHex("00aa11bb22cc33dd");
    ASSERT_EQ(soc.dma().writeMemory(DRAM_BASE + 0x4000, data.data(),
                                    data.size()),
              DmaStatus::Ok);
    std::vector<std::uint8_t> back(data.size());
    ASSERT_EQ(soc.dma().readMemory(DRAM_BASE + 0x4000, back.data(),
                                   back.size()),
              DmaStatus::Ok);
    EXPECT_EQ(back, data);
    EXPECT_EQ(soc.dma().bytesTransferred(), 16u);
}

TEST_F(DmaFixture, BypassesTheCache)
{
    // CPU writes through the cache: dirty line, stale DRAM.
    const std::uint32_t value = 0x0badf00d;
    soc.memory().write32(DRAM_BASE + 0x8000, value);

    // DMA sees the stale DRAM, not the cached data.
    std::uint32_t viaDma = 0;
    ASSERT_EQ(soc.dma().readMemory(DRAM_BASE + 0x8000,
                                   reinterpret_cast<std::uint8_t *>(
                                       &viaDma),
                                   4),
              DmaStatus::Ok);
    EXPECT_EQ(viaDma, 0u);
    EXPECT_EQ(soc.memory().read32(DRAM_BASE + 0x8000), value);
}

TEST_F(DmaFixture, SoftwareCoherenceCleanMakesDmaSeeData)
{
    const std::uint32_t value = 0x0badf00d;
    soc.memory().write32(DRAM_BASE + 0x8000, value);
    soc.l2().cleanRange(DRAM_BASE + 0x8000, 4);

    std::uint32_t viaDma = 0;
    ASSERT_EQ(soc.dma().readMemory(DRAM_BASE + 0x8000,
                                   reinterpret_cast<std::uint8_t *>(
                                       &viaDma),
                                   4),
              DmaStatus::Ok);
    EXPECT_EQ(viaDma, value);
}

TEST_F(DmaFixture, CanAddressIramWhenUnprotected)
{
    const auto data = fromHex("fefdfcfb");
    soc.iram().write(0x2000, data.data(), data.size());

    std::vector<std::uint8_t> back(4);
    ASSERT_EQ(soc.dma().readMemory(IRAM_BASE + 0x2000, back.data(), 4),
              DmaStatus::Ok);
    EXPECT_EQ(back, data);
}

TEST_F(DmaFixture, TrustZoneProtectionDeniesIram)
{
    {
        SecureWorldGuard guard(soc.trustzone());
        ASSERT_TRUE(guard.entered());
        soc.trustzone().protectRegionFromDma(IRAM_BASE,
                                             soc.iram().size());
    }
    std::uint8_t buf[16];
    EXPECT_EQ(soc.dma().readMemory(IRAM_BASE, buf, sizeof(buf)),
              DmaStatus::DeniedByTrustZone);
    EXPECT_EQ(soc.dma().writeMemory(IRAM_BASE, buf, sizeof(buf)),
              DmaStatus::DeniedByTrustZone);
}

TEST_F(DmaFixture, BadAddressRejected)
{
    std::uint8_t buf[4];
    EXPECT_EQ(soc.dma().readMemory(0x100, buf, 4),
              DmaStatus::BadAddress);
}

TEST_F(DmaFixture, UartLoopbackReturnsDmaData)
{
    // The paper's trick: DMA memory to the UART debug port and read it
    // back over serial — the only way to observe DMA read results.
    const auto data = fromHex("1122334455667788");
    soc.dma().writeMemory(DRAM_BASE + 0x100, data.data(), data.size());
    ASSERT_EQ(soc.dma().transfer(DRAM_BASE + 0x100, UART_DEBUG_PORT, 8),
              DmaStatus::Ok);
    EXPECT_EQ(toHex(soc.uart().drainLoopback()), toHex(data));
}

TEST_F(DmaFixture, NicTxFifoIsWriteOnly)
{
    const auto data = fromHex("aabbccdd");
    soc.dma().writeMemory(DRAM_BASE + 0x200, data.data(), data.size());
    ASSERT_EQ(soc.dma().transfer(DRAM_BASE + 0x200, NIC_TX_FIFO, 4),
              DmaStatus::Ok);
    EXPECT_EQ(soc.nic().bytesTransmitted(), 4u);

    // "The NIC only allowed DMA-ing data out... that cannot be DMA-ed
    // back in" (paper 4.2).
    EXPECT_EQ(soc.dma().transfer(NIC_TX_FIFO, DRAM_BASE + 0x300, 4),
              DmaStatus::DeviceNotReadable);
}

TEST_F(DmaFixture, NicRxPathDelivers)
{
    soc.nic().receiveFrame({0xde, 0xad, 0xbe, 0xef});
    ASSERT_EQ(soc.dma().transfer(NIC_RX_FIFO, DRAM_BASE + 0x400, 4),
              DmaStatus::Ok);
    std::vector<std::uint8_t> back(4);
    soc.dma().readMemory(DRAM_BASE + 0x400, back.data(), 4);
    EXPECT_EQ(toHex(back), "deadbeef");
}
